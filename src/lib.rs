//! # learnedwmp — workload memory prediction using distributions of query templates
//!
//! A from-scratch Rust reproduction of *"LearnedWMP: Workload Memory
//! Prediction Using Distribution of Query Templates"* (EDBT 2026,
//! arXiv:2401.12103): predict the working-memory demand of a **batch of SQL
//! queries** from the histogram of its queries over learned query templates,
//! rather than summing per-query estimates.
//!
//! This facade re-exports the workspace crates:
//!
//! | crate | contents |
//! |---|---|
//! | [`core`] ([`learnedwmp_core`]) | LearnedWMP + SingleWMP pipelines, templates, histograms, evaluation |
//! | [`mlkit`] ([`wmp_mlkit`]) | from-scratch ML: k-means, DBSCAN, Ridge, CART, Random Forest, GBDT, MLP |
//! | [`plan`] ([`wmp_plan`]) | schema/catalog, cardinality estimation, physical planner, plan features |
//! | [`serve`] ([`wmp_serve`]) | thread-safe serving engine: streaming windows, shared handles, hot model swap |
//! | [`sched`] ([`wmp_sched`]) | discrete-event multi-tenant capacity scheduler: placement policies, SLA costs, log replay |
//! | [`sim`] ([`wmp_sim`]) | executor memory simulator (ground truth) + DBMS heuristic baseline + admission scenario + executor/cluster capacity model |
//! | [`sql`] ([`wmp_sql`]) | SQL front-end: tokenizer, dialect-aware parser, lowering to [`plan`] query specs |
//! | [`workloads`] ([`wmp_workloads`]) | TPC-DS / JOB / TPC-C / TPC-H style generators and query logs |
//! | [`text`] ([`wmp_text`]) | SQL tokenization, bag-of-words, text-mining, word embeddings |
//! | [`obs`] ([`wmp_obs`]) | observability: metrics registry, tracing facade, prediction-quality monitors |
//!
//! ## Quickstart
//!
//! ```
//! use learnedwmp::core::{LearnedWmp, ModelKind, TemplateSpec, WorkloadPredictor};
//!
//! // 1. Generate an executed-query log (here: a small TPC-C-style corpus).
//! let log = learnedwmp::workloads::tpcc::generate(400, 7).unwrap();
//!
//! // 2. Train LearnedWMP through the validated builder: k-means templates
//! //    over plan features, then a distribution regressor over workload
//! //    histograms.
//! let model = LearnedWmp::builder()
//!     .model(ModelKind::Xgb)
//!     .templates(TemplateSpec::PlanKMeans { k: 8, seed: 42 })
//!     .batch_size(10)
//!     .fit(&log)
//!     .unwrap();
//!
//! // 3. Persist the trained model and reload it — the reloaded artifact
//! //    predicts bit-identically (train once, load many).
//! let mut artifact = Vec::new();
//! model.save_to_writer(&mut artifact).unwrap();
//! let served = LearnedWmp::load_from_reader(&mut artifact.as_slice()).unwrap();
//!
//! // 4. Predict the collective memory demand of a 10-query workload through
//! //    the uniform `WorkloadPredictor` trait (every family implements it).
//! let workload: Vec<_> = log.records.iter().take(10).collect();
//! let predictor: &dyn WorkloadPredictor = &served;
//! let predicted_mb = predictor.predict_workload(&workload).unwrap();
//! assert!(predicted_mb > 0.0);
//! assert_eq!(predicted_mb, model.predict_workload(&workload).unwrap());
//! ```
//!
//! ## SQL ingestion
//!
//! Queries can also arrive as SQL text: [`sql`] tokenizes and parses the
//! supported `SELECT` subset under a [`sql::Dialect`] (ANSI, Postgres,
//! MySQL) and lowers the statement against a [`plan::Catalog`] into the
//! same [`plan::query::QuerySpec`] the planner consumes, with typed,
//! span-carrying errors instead of panics. At serving time, attach a
//! [`serve::SqlFrontend`] and feed text straight into
//! [`serve::Engine::submit_sql`]; offline, build a whole
//! [`workloads::QueryLog`] from a text log with
//! [`workloads::QueryLog::from_sql_lines`].
//!
//! ```
//! use learnedwmp::sql::{parse_to_spec, Ansi};
//!
//! let catalog = learnedwmp::workloads::tpch::catalog();
//! let spec = parse_to_spec(
//!     "SELECT COUNT(*) FROM lineitem l WHERE l.l_quantity > 30",
//!     &Ansi,
//!     &catalog,
//! )
//! .unwrap();
//! assert_eq!(spec.tables[0].table, "lineitem");
//! assert_eq!(spec.predicates.len(), 1);
//! ```
//!
//! ## Scheduling
//!
//! [`sched`] closes the loop from prediction to decision: it replays a
//! query log as workload windows arriving at a capacity-bounded
//! [`sim::Cluster`] and measures what a placement policy's demand
//! estimates cost — SLA penalties for late starts, stranded capacity for
//! over-reservation, overflow episodes for under-prediction.
//!
//! ```
//! use learnedwmp::plan::ResourceVector;
//! use learnedwmp::sched::{replay, BestFit, DemandSource, ReplayConfig, Scheduler, SlaClass};
//! use learnedwmp::sim::Cluster;
//!
//! let log = learnedwmp::workloads::tpch::generate(300, 7).unwrap();
//! let cluster = Cluster::uniform(3, ResourceVector::new(192.0, f64::INFINITY, f64::INFINITY));
//! let scheduler = Scheduler::new(cluster, Box::new(BestFit))
//!     .with_sla_classes(vec![SlaClass::new(500, 10.0)]);
//! let report =
//!     replay(&log, DemandSource::Oracle, scheduler, &ReplayConfig::default()).unwrap();
//! // Every window ends in exactly one outcome, and the run is costed.
//! assert_eq!(report.placed() + report.rejected, report.workloads);
//! assert!(report.total_cost() >= 0.0);
//! ```

pub use learnedwmp_core as core;
pub use wmp_mlkit as mlkit;
pub use wmp_obs as obs;
pub use wmp_plan as plan;
pub use wmp_sched as sched;
pub use wmp_serve as serve;
pub use wmp_sim as sim;
pub use wmp_sql as sql;
pub use wmp_text as text;
pub use wmp_workloads as workloads;
