//! Cost-based physical planner: access-path selection, greedy join ordering,
//! join-method selection, aggregation-method selection, sort elision, and
//! limit placement. It produces the operator trees with estimated/true
//! cardinalities that everything downstream (featurization, the memory
//! simulator, the heuristic estimator) consumes.

use crate::card::{join_cards, scan_cards, Cards};
use crate::catalog::Catalog;
use crate::datamodel::estimate_groups;
use crate::error::{PlanError, PlanResult};
use crate::plan::{OpKind, Operator, PlanNode};
use crate::query::{CmpOp, QuerySpec, TableRef};

/// Planner tunables.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Use an index scan when an indexed predicate's selectivity is below
    /// this threshold.
    pub index_scan_max_sel: f64,
    /// Use index nested-loop join when the outer's estimated cardinality is
    /// below this threshold and the inner has an index on the join column.
    pub nl_outer_max_rows: f64,
    /// When `false`, joins are combined in FROM-clause order (left-deep,
    /// no reordering) — the `ablation_planner` baseline.
    pub greedy_join_ordering: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            index_scan_max_sel: 0.05,
            nl_outer_max_rows: 2_000.0,
            greedy_join_ordering: true,
        }
    }
}

/// The planner. Stateless apart from catalog + config; `plan` may be called
/// concurrently from multiple threads.
#[derive(Debug, Clone)]
pub struct Planner<'a> {
    catalog: &'a Catalog,
    config: PlannerConfig,
}

/// A partially joined fragment during join enumeration.
struct Fragment {
    node: PlanNode,
    aliases: Vec<String>,
    cards: Cards,
    /// `(alias, column)` the output is ordered on, if any.
    sorted_on: Option<(String, String)>,
}

impl<'a> Planner<'a> {
    /// Creates a planner with default tunables.
    pub fn new(catalog: &'a Catalog) -> Self {
        Planner { catalog, config: PlannerConfig::default() }
    }

    /// Creates a planner with explicit tunables.
    pub fn with_config(catalog: &'a Catalog, config: PlannerConfig) -> Self {
        Planner { catalog, config }
    }

    /// Plans a query.
    ///
    /// # Errors
    /// Returns [`PlanError`] when the spec references unknown tables, columns,
    /// or aliases, or has no tables.
    pub fn plan(&self, spec: &QuerySpec) -> PlanResult<PlanNode> {
        if spec.tables.is_empty() {
            return Err(PlanError::NoTables);
        }
        let mut fragments: Vec<Fragment> =
            spec.tables.iter().map(|t| self.build_scan(spec, t)).collect::<PlanResult<_>>()?;

        // Join enumeration.
        while fragments.len() > 1 {
            let (i, j, joined) = self.pick_next_join(spec, &fragments)?;
            // Remove the higher index first so the lower stays valid.
            let (hi, lo) = if i > j { (i, j) } else { (j, i) };
            fragments.remove(hi);
            fragments.remove(lo);
            fragments.push(joined);
        }
        let mut current = fragments.pop().expect("one fragment remains");

        // Aggregation.
        if !spec.group_by.is_empty() {
            current = self.add_group_by(spec, current)?;
        } else if !spec.aggregates.is_empty() {
            // Scalar aggregate: streaming, one output row.
            let width = 16 + 16 * spec.aggregates.len() as u32;
            let node = PlanNode::unary(
                Operator::StreamAggregate { n_aggs: spec.aggregates.len() },
                current.node,
                1.0,
                1.0,
                width,
            );
            current = Fragment {
                node,
                aliases: current.aliases,
                cards: Cards { est: 1.0, truth: 1.0 },
                sorted_on: None,
            };
        }

        // DISTINCT (hash-based duplicate elimination over the current output).
        if spec.distinct {
            let out = Cards {
                est: (current.cards.est * 0.5).max(1.0),
                truth: (current.cards.truth * 0.5).max(1.0),
            };
            let width = current.node.row_width;
            let node =
                PlanNode::unary(Operator::HashDistinct, current.node, out.est, out.truth, width);
            current = Fragment { node, aliases: current.aliases, cards: out, sorted_on: None };
        }

        // ORDER BY with sort elision.
        if let Some(first_key) = spec.order_by.first() {
            if current.sorted_on.as_ref() != Some(first_key) {
                let keys: Vec<String> =
                    spec.order_by.iter().map(|(a, c)| format!("{a}.{c}")).collect();
                let width = current.node.row_width;
                let cards = current.cards;
                let node = PlanNode::unary(
                    Operator::Sort { keys },
                    current.node,
                    cards.est,
                    cards.truth,
                    width,
                );
                current = Fragment {
                    node,
                    aliases: current.aliases,
                    cards,
                    sorted_on: Some(first_key.clone()),
                };
            }
        }

        // LIMIT.
        if let Some(n) = spec.limit {
            let out = Cards {
                est: current.cards.est.min(n as f64),
                truth: current.cards.truth.min(n as f64),
            };
            let width = current.node.row_width;
            current.node =
                PlanNode::unary(Operator::Limit { n }, current.node, out.est, out.truth, width);
            current.cards = out;
        }

        Ok(current.node)
    }

    /// Access-path selection for one table reference.
    fn build_scan(&self, spec: &QuerySpec, tref: &TableRef) -> PlanResult<Fragment> {
        let table = self
            .catalog
            .table(&tref.table)
            .ok_or_else(|| PlanError::UnknownTable(tref.table.clone()))?;
        // Validate predicate columns early so errors surface deterministically.
        for p in spec.predicates_for(&tref.alias) {
            if table.column(&p.column).is_none() {
                return Err(PlanError::UnknownColumn {
                    table: tref.table.clone(),
                    column: p.column.clone(),
                });
            }
        }
        let cards = scan_cards(self.catalog, spec, &tref.alias)?;
        let preds = spec.predicates_for(&tref.alias);
        // Pick the most selective sargable indexed predicate.
        let index_pred = preds
            .iter()
            .filter(|p| {
                matches!(
                    p.op,
                    CmpOp::Eq
                        | CmpOp::InList(_)
                        | CmpOp::Between
                        | CmpOp::Le
                        | CmpOp::Lt
                        | CmpOp::Ge
                        | CmpOp::Gt
                ) && self.catalog.has_index(&tref.table, &p.column)
            })
            .min_by(|a, b| a.sel_est.partial_cmp(&b.sel_est).expect("finite selectivity"));
        let width = table.row_width();
        match index_pred {
            Some(p) if p.sel_est <= self.config.index_scan_max_sel => {
                let node = PlanNode::leaf(
                    Operator::IndexScan {
                        table: tref.table.clone(),
                        alias: tref.alias.clone(),
                        column: p.column.clone(),
                    },
                    cards.est,
                    cards.truth,
                    width,
                );
                Ok(Fragment {
                    node,
                    aliases: vec![tref.alias.clone()],
                    cards,
                    sorted_on: Some((tref.alias.clone(), p.column.clone())),
                })
            }
            _ => {
                let node = PlanNode::leaf(
                    Operator::TableScan { table: tref.table.clone(), alias: tref.alias.clone() },
                    cards.est,
                    cards.truth,
                    width,
                );
                Ok(Fragment { node, aliases: vec![tref.alias.clone()], cards, sorted_on: None })
            }
        }
    }

    /// Chooses the next pair of fragments to join and builds the join node.
    fn pick_next_join(
        &self,
        spec: &QuerySpec,
        fragments: &[Fragment],
    ) -> PlanResult<(usize, usize, Fragment)> {
        // All candidate (i, j, edge) combinations where an edge connects i and j.
        let mut best: Option<(f64, usize, usize, usize, bool)> = None; // (est, i, j, edge_idx, i_is_left)
        for (ei, edge) in spec.joins.iter().enumerate() {
            let li = fragments.iter().position(|f| f.aliases.contains(&edge.left_alias));
            let ri = fragments.iter().position(|f| f.aliases.contains(&edge.right_alias));
            let (Some(li), Some(ri)) = (li, ri) else {
                return Err(PlanError::UnknownAlias(format!(
                    "{} or {}",
                    edge.left_alias, edge.right_alias
                )));
            };
            if li == ri {
                continue; // edge already internal to one fragment
            }
            let joined = join_cards(
                self.catalog,
                spec,
                &edge.left_alias,
                &edge.left_col,
                &edge.right_alias,
                &edge.right_col,
                fragments[li].cards,
                fragments[ri].cards,
            )?;
            let candidate = (joined.est, li, ri, ei, true);
            let better = match (&best, self.config.greedy_join_ordering) {
                (None, _) => true,
                (Some((b, ..)), true) => joined.est < *b,
                // Non-greedy: keep the first (FROM-order) connected edge.
                (Some(_), false) => false,
            };
            if better {
                best = Some(candidate);
            }
        }

        if let Some((_, li, ri, ei, _)) = best {
            let edge = &spec.joins[ei];
            let joined_cards = join_cards(
                self.catalog,
                spec,
                &edge.left_alias,
                &edge.left_col,
                &edge.right_alias,
                &edge.right_col,
                fragments[li].cards,
                fragments[ri].cards,
            )?;
            let frag = self.build_join(spec, &fragments[li], &fragments[ri], ei, joined_cards)?;
            Ok((li, ri, frag))
        } else {
            // No connecting edge: cross join the two smallest fragments.
            let mut order: Vec<usize> = (0..fragments.len()).collect();
            order.sort_by(|&a, &b| {
                fragments[a]
                    .cards
                    .est
                    .partial_cmp(&fragments[b].cards.est)
                    .expect("finite cardinalities")
            });
            let (i, j) = (order[0], order[1]);
            let (a, b) = (&fragments[i], &fragments[j]);
            let cards = Cards {
                est: (a.cards.est * b.cards.est).max(1.0),
                truth: (a.cards.truth * b.cards.truth).max(1.0),
            };
            let width = a.node.row_width + b.node.row_width;
            let node = PlanNode {
                op: Operator::NestedLoopJoin,
                children: vec![a.node.clone(), b.node.clone()],
                est_rows: cards.est,
                true_rows: cards.truth,
                row_width: width,
            };
            let mut aliases = a.aliases.clone();
            aliases.extend(b.aliases.iter().cloned());
            Ok((i, j, Fragment { node, aliases, cards, sorted_on: None }))
        }
    }

    /// Join-method selection for a chosen pair.
    fn build_join(
        &self,
        spec: &QuerySpec,
        left: &Fragment,
        right: &Fragment,
        edge_idx: usize,
        cards: Cards,
    ) -> PlanResult<Fragment> {
        let edge = &spec.joins[edge_idx];
        // Orient: `outer` holds the edge's left alias.
        let (outer, inner, inner_alias, inner_col, outer_key, inner_key) =
            if left.aliases.contains(&edge.left_alias) {
                (
                    left,
                    right,
                    &edge.right_alias,
                    &edge.right_col,
                    (edge.left_alias.clone(), edge.left_col.clone()),
                    (edge.right_alias.clone(), edge.right_col.clone()),
                )
            } else {
                (
                    right,
                    left,
                    &edge.left_alias,
                    &edge.left_col,
                    (edge.right_alias.clone(), edge.right_col.clone()),
                    (edge.left_alias.clone(), edge.left_col.clone()),
                )
            };
        let inner_table = spec
            .table_of_alias(inner_alias)
            .ok_or_else(|| PlanError::UnknownAlias(inner_alias.clone()))?;
        let width = outer.node.row_width + inner.node.row_width;
        let mut aliases = outer.aliases.clone();
        aliases.extend(inner.aliases.iter().cloned());

        // Index nested-loop: small outer, indexed single-table inner.
        let inner_is_base = inner.aliases.len() == 1
            && matches!(inner.node.op.kind(), OpKind::TableScan | OpKind::IndexScan);
        if inner_is_base
            && self.catalog.has_index(inner_table, inner_col)
            && outer.cards.est <= self.config.nl_outer_max_rows
        {
            let node = PlanNode {
                op: Operator::NestedLoopJoin,
                children: vec![outer.node.clone(), inner.node.clone()],
                est_rows: cards.est,
                true_rows: cards.truth,
                row_width: width,
            };
            return Ok(Fragment { node, aliases, cards, sorted_on: outer.sorted_on.clone() });
        }

        // Merge join: both inputs already ordered on the join keys.
        if outer.sorted_on.as_ref() == Some(&outer_key)
            && inner.sorted_on.as_ref() == Some(&inner_key)
        {
            let node = PlanNode {
                op: Operator::MergeJoin,
                children: vec![outer.node.clone(), inner.node.clone()],
                est_rows: cards.est,
                true_rows: cards.truth,
                row_width: width,
            };
            return Ok(Fragment { node, aliases, cards, sorted_on: Some(outer_key) });
        }

        // Hash join: build on the smaller estimated input (children[1] = build).
        let (probe, build) =
            if outer.cards.est >= inner.cards.est { (outer, inner) } else { (inner, outer) };
        let node = PlanNode {
            op: Operator::HashJoin,
            children: vec![probe.node.clone(), build.node.clone()],
            est_rows: cards.est,
            true_rows: cards.truth,
            row_width: width,
        };
        Ok(Fragment { node, aliases, cards, sorted_on: probe.sorted_on.clone() })
    }

    /// GROUP BY: hash vs. stream aggregation.
    fn add_group_by(&self, spec: &QuerySpec, input: Fragment) -> PlanResult<Fragment> {
        let mut ndv_product_est = 1.0f64;
        let mut ndv_product_true = 1.0f64;
        let mut width: u32 = 16;
        for (alias, col) in &spec.group_by {
            let table_name =
                spec.table_of_alias(alias).ok_or_else(|| PlanError::UnknownAlias(alias.clone()))?;
            let (_, column) = self.catalog.column(table_name, col).ok_or_else(|| {
                PlanError::UnknownColumn { table: table_name.to_string(), column: col.clone() }
            })?;
            ndv_product_est = (ndv_product_est * column.ndv as f64).min(1e18);
            ndv_product_true = (ndv_product_true * column.ndv as f64).min(1e18);
            width += column.ty.width_bytes();
        }
        width += 16 * spec.aggregates.len().max(1) as u32;
        let groups = Cards {
            est: estimate_groups(input.cards.est, ndv_product_est.min(input.cards.est)).max(1.0),
            truth: estimate_groups(input.cards.truth, ndv_product_true.min(input.cards.truth))
                .max(1.0),
        };
        let streaming = input.sorted_on.as_ref() == spec.group_by.first();
        let op = if streaming {
            Operator::StreamAggregate { n_aggs: spec.aggregates.len() }
        } else {
            Operator::HashAggregate {
                n_group_cols: spec.group_by.len(),
                n_aggs: spec.aggregates.len(),
            }
        };
        let node = PlanNode::unary(op, input.node, groups.est, groups.truth, width);
        Ok(Fragment { node, aliases: input.aliases, cards: groups, sorted_on: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{AggFunc, Aggregate, JoinEdge, Predicate};
    use crate::schema::{Column, ColumnType, Table};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "fact",
            1_000_000,
            vec![
                Column::new("f_id", ColumnType::BigInt, 1_000_000),
                Column::new("f_dim", ColumnType::Int, 10_000),
                Column::new("f_val", ColumnType::Decimal, 500_000),
                Column::new("f_cat", ColumnType::Int, 50),
            ],
        ));
        cat.add_table(Table::new(
            "dim",
            10_000,
            vec![
                Column::new("d_id", ColumnType::Int, 10_000),
                Column::new("d_attr", ColumnType::Char(10), 100),
            ],
        ));
        cat.add_index("dim", "d_id", true);
        cat.add_index("fact", "f_id", true);
        cat
    }

    fn eq_pred(alias: &str, col: &str, sel: f64) -> Predicate {
        Predicate {
            table_alias: alias.into(),
            column: col.into(),
            op: CmpOp::Eq,
            literal: "1".into(),
            sel_est: sel,
            sel_true: sel,
        }
    }

    fn star_query() -> QuerySpec {
        QuerySpec {
            id: 1,
            tables: vec![TableRef::new("fact", "f"), TableRef::new("dim", "d")],
            joins: vec![JoinEdge {
                left_alias: "f".into(),
                left_col: "f_dim".into(),
                right_alias: "d".into(),
                right_col: "d_id".into(),
            }],
            predicates: vec![eq_pred("d", "d_attr", 0.01)],
            group_by: vec![("f".into(), "f_cat".into())],
            aggregates: vec![Aggregate {
                func: AggFunc::Sum,
                table_alias: "f".into(),
                column: "f_val".into(),
            }],
            order_by: vec![("f".into(), "f_cat".into())],
            distinct: false,
            limit: Some(100),
        }
    }

    #[test]
    fn plans_star_join_with_expected_operators() {
        let cat = catalog();
        let planner = Planner::new(&cat);
        let plan = planner.plan(&star_query()).unwrap();
        assert_eq!(plan.op.kind(), OpKind::Limit);
        assert_eq!(plan.count_kind(OpKind::Sort), 1);
        assert_eq!(plan.count_kind(OpKind::HashAggregate), 1);
        // f is large and unsorted; d gets filtered: hash join expected.
        assert_eq!(plan.count_kind(OpKind::HashJoin), 1);
        assert_eq!(plan.count_kind(OpKind::TableScan), 2, "no usable index predicate");
    }

    #[test]
    fn hash_join_builds_on_smaller_side() {
        let cat = catalog();
        let planner = Planner::new(&cat);
        let plan = planner.plan(&star_query()).unwrap();
        let hj = plan.iter().find(|n| n.op.kind() == OpKind::HashJoin).unwrap();
        assert!(hj.children[1].est_rows < hj.children[0].est_rows, "children[1] is build");
    }

    #[test]
    fn index_scan_chosen_for_selective_indexed_predicate() {
        let cat = catalog();
        let planner = Planner::new(&cat);
        let spec = QuerySpec {
            tables: vec![TableRef::new("dim", "d")],
            predicates: vec![eq_pred("d", "d_id", 1.0 / 10_000.0)],
            ..QuerySpec::default()
        };
        let plan = planner.plan(&spec).unwrap();
        assert_eq!(plan.op.kind(), OpKind::IndexScan);
        assert!((plan.est_rows - 1.0).abs() < 1.0);
    }

    #[test]
    fn table_scan_for_unselective_predicate() {
        let cat = catalog();
        let planner = Planner::new(&cat);
        let spec = QuerySpec {
            tables: vec![TableRef::new("dim", "d")],
            predicates: vec![eq_pred("d", "d_attr", 0.5)],
            ..QuerySpec::default()
        };
        let plan = planner.plan(&spec).unwrap();
        assert_eq!(plan.op.kind(), OpKind::TableScan);
    }

    #[test]
    fn nested_loop_join_for_tiny_outer_with_indexed_inner() {
        let cat = catalog();
        let planner = Planner::new(&cat);
        let spec = QuerySpec {
            tables: vec![TableRef::new("dim", "d"), TableRef::new("fact", "f")],
            joins: vec![JoinEdge {
                left_alias: "d".into(),
                left_col: "d_id".into(),
                right_alias: "f".into(),
                right_col: "f_id".into(),
            }],
            // Tiny outer: a single dim row.
            predicates: vec![eq_pred("d", "d_id", 1.0 / 10_000.0)],
            ..QuerySpec::default()
        };
        let plan = planner.plan(&spec).unwrap();
        assert_eq!(plan.op.kind(), OpKind::NestedLoopJoin);
    }

    #[test]
    fn scalar_aggregate_becomes_stream_aggregate() {
        let cat = catalog();
        let planner = Planner::new(&cat);
        let spec = QuerySpec {
            tables: vec![TableRef::new("fact", "f")],
            aggregates: vec![Aggregate {
                func: AggFunc::Min,
                table_alias: "f".into(),
                column: "f_val".into(),
            }],
            ..QuerySpec::default()
        };
        let plan = planner.plan(&spec).unwrap();
        assert_eq!(plan.op.kind(), OpKind::StreamAggregate);
        assert_eq!(plan.est_rows, 1.0);
    }

    #[test]
    fn sort_elided_when_input_already_ordered() {
        let cat = catalog();
        let planner = Planner::new(&cat);
        let spec = QuerySpec {
            tables: vec![TableRef::new("dim", "d")],
            predicates: vec![eq_pred("d", "d_id", 0.0001)],
            order_by: vec![("d".into(), "d_id".into())],
            ..QuerySpec::default()
        };
        let plan = planner.plan(&spec).unwrap();
        assert_eq!(plan.count_kind(OpKind::Sort), 0, "index scan already orders by d_id");
    }

    #[test]
    fn sort_added_when_order_differs() {
        let cat = catalog();
        let planner = Planner::new(&cat);
        let spec = QuerySpec {
            tables: vec![TableRef::new("dim", "d")],
            predicates: vec![eq_pred("d", "d_id", 0.0001)],
            order_by: vec![("d".into(), "d_attr".into())],
            ..QuerySpec::default()
        };
        let plan = planner.plan(&spec).unwrap();
        assert_eq!(plan.count_kind(OpKind::Sort), 1);
    }

    #[test]
    fn distinct_adds_hash_distinct() {
        let cat = catalog();
        let planner = Planner::new(&cat);
        let spec = QuerySpec {
            tables: vec![TableRef::new("dim", "d")],
            distinct: true,
            ..QuerySpec::default()
        };
        let plan = planner.plan(&spec).unwrap();
        assert_eq!(plan.op.kind(), OpKind::HashDistinct);
        assert!(plan.est_rows <= 10_000.0 * 0.5 + 1.0);
    }

    #[test]
    fn limit_caps_cardinalities() {
        let cat = catalog();
        let planner = Planner::new(&cat);
        let spec = QuerySpec {
            tables: vec![TableRef::new("fact", "f")],
            limit: Some(10),
            ..QuerySpec::default()
        };
        let plan = planner.plan(&spec).unwrap();
        assert_eq!(plan.op.kind(), OpKind::Limit);
        assert_eq!(plan.est_rows, 10.0);
        assert_eq!(plan.true_rows, 10.0);
    }

    #[test]
    fn cross_join_fallback_without_edges() {
        let cat = catalog();
        let planner = Planner::new(&cat);
        let spec = QuerySpec {
            tables: vec![TableRef::new("dim", "d"), TableRef::new("fact", "f")],
            ..QuerySpec::default()
        };
        let plan = planner.plan(&spec).unwrap();
        assert_eq!(plan.op.kind(), OpKind::NestedLoopJoin);
        assert!((plan.est_rows - 10_000.0 * 1_000_000.0).abs() < 1.0);
    }

    #[test]
    fn errors_surface_for_bad_specs() {
        let cat = catalog();
        let planner = Planner::new(&cat);
        assert_eq!(planner.plan(&QuerySpec::default()), Err(PlanError::NoTables));
        let spec = QuerySpec { tables: vec![TableRef::new("nope", "n")], ..QuerySpec::default() };
        assert!(matches!(planner.plan(&spec), Err(PlanError::UnknownTable(_))));
        let spec = QuerySpec {
            tables: vec![TableRef::new("dim", "d")],
            predicates: vec![eq_pred("d", "nope", 0.5)],
            ..QuerySpec::default()
        };
        assert!(matches!(planner.plan(&spec), Err(PlanError::UnknownColumn { .. })));
        let spec = QuerySpec {
            tables: vec![TableRef::new("dim", "d")],
            group_by: vec![("zz".into(), "d_attr".into())],
            ..QuerySpec::default()
        };
        assert!(matches!(planner.plan(&spec), Err(PlanError::UnknownAlias(_))));
    }

    #[test]
    fn greedy_ordering_can_differ_from_from_order() {
        // Three-table chain where greedy starts from the filtered dim table.
        let cat = catalog();
        let spec = QuerySpec {
            tables: vec![
                TableRef::new("fact", "f1"),
                TableRef::new("fact", "f2"),
                TableRef::new("dim", "d"),
            ],
            joins: vec![
                JoinEdge {
                    left_alias: "f1".into(),
                    left_col: "f_id".into(),
                    right_alias: "f2".into(),
                    right_col: "f_id".into(),
                },
                JoinEdge {
                    left_alias: "f2".into(),
                    left_col: "f_dim".into(),
                    right_alias: "d".into(),
                    right_col: "d_id".into(),
                },
            ],
            predicates: vec![eq_pred("d", "d_attr", 0.01)],
            ..QuerySpec::default()
        };
        let greedy = Planner::new(&cat).plan(&spec).unwrap();
        let fixed = Planner::with_config(
            &cat,
            PlannerConfig { greedy_join_ordering: false, ..PlannerConfig::default() },
        )
        .plan(&spec)
        .unwrap();
        // Both are valid plans over the same tables.
        assert_eq!(greedy.count_kind(OpKind::TableScan) + greedy.count_kind(OpKind::IndexScan), 3);
        assert_eq!(fixed.count_kind(OpKind::TableScan) + fixed.count_kind(OpKind::IndexScan), 3);
        // Greedy must join d (after filtering) before the f1⋈f2 giant.
        let greedy_first_join = greedy
            .iter()
            .filter(|n| {
                matches!(n.op.kind(), OpKind::HashJoin | OpKind::NestedLoopJoin | OpKind::MergeJoin)
            })
            .last()
            .unwrap();
        assert!(greedy_first_join.est_rows <= 1_000_000.0);
    }
}
