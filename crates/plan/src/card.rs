//! Cardinality estimation. Two parallel computations run through planning:
//!
//! - **Estimates** follow the textbook playbook (uniformity + independence)
//!   from visible catalog statistics — what a real optimizer would produce.
//! - **Truths** consult the hidden [`crate::datamodel::CorrelationModel`] and the per-predicate
//!   `sel_true` drawn by the workload generator — what actually flows through
//!   the executor and determines real working memory.
//!
//! The gap between the two is precisely the estimation error the paper blames
//! for the state-of-practice baseline's poor memory predictions.

use crate::catalog::Catalog;
use crate::datamodel::fold_selectivities;
use crate::error::{PlanError, PlanResult};
use crate::query::QuerySpec;

/// Estimated and true cardinalities of one plan fragment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cards {
    /// Optimizer estimate.
    pub est: f64,
    /// Ground truth.
    pub truth: f64,
}

impl Cards {
    /// Ratio `truth / est` (the q-error direction), guarded against zero.
    pub fn underestimation_factor(&self) -> f64 {
        self.truth / self.est.max(1e-9)
    }
}

/// Cardinalities of scanning `alias` with its local predicates applied.
///
/// The estimate multiplies per-predicate selectivities independently; the
/// truth folds the generator-drawn true selectivities with the catalog's
/// hidden pairwise correlations (adjacent predicates in spec order).
///
/// # Errors
/// Returns [`PlanError`] for unknown aliases/tables.
pub fn scan_cards(catalog: &Catalog, spec: &QuerySpec, alias: &str) -> PlanResult<Cards> {
    let table_name =
        spec.table_of_alias(alias).ok_or_else(|| PlanError::UnknownAlias(alias.to_string()))?;
    let table =
        catalog.table(table_name).ok_or_else(|| PlanError::UnknownTable(table_name.to_string()))?;
    let preds = spec.predicates_for(alias);
    let rows = table.row_count as f64;
    if preds.is_empty() {
        return Ok(Cards { est: rows, truth: rows });
    }
    let est_sel: f64 = preds.iter().map(|p| p.sel_est.clamp(0.0, 1.0)).product();
    // Truth: fold true selectivities, boosting adjacent pairs by their
    // declared correlation.
    let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(preds.len());
    for (i, p) in preds.iter().enumerate() {
        let rho = if i == 0 {
            0.0
        } else {
            catalog.correlations.predicate_correlation(table_name, &preds[i - 1].column, &p.column)
        };
        pairs.push((p.sel_true.clamp(0.0, 1.0), rho));
    }
    let true_sel = fold_selectivities(&pairs);
    Ok(Cards { est: (rows * est_sel).max(1.0), truth: (rows * true_sel).max(1.0) })
}

/// Join selectivities for an equi-join between two fragments whose current
/// cardinalities are `left`/`right`.
///
/// Estimate: `1 / max(adjusted ndv)` where each side's distinct count is
/// capped by its current cardinality. Truth: the same containment formula
/// evaluated on true cardinalities, multiplied by the hidden join skew.
///
/// # Errors
/// Returns [`PlanError`] for unknown aliases/tables/columns.
#[allow(clippy::too_many_arguments)]
pub fn join_cards(
    catalog: &Catalog,
    spec: &QuerySpec,
    left_alias: &str,
    left_col: &str,
    right_alias: &str,
    right_col: &str,
    left: Cards,
    right: Cards,
) -> PlanResult<Cards> {
    let lt = spec
        .table_of_alias(left_alias)
        .ok_or_else(|| PlanError::UnknownAlias(left_alias.to_string()))?;
    let rt = spec
        .table_of_alias(right_alias)
        .ok_or_else(|| PlanError::UnknownAlias(right_alias.to_string()))?;
    let (_, lc) = catalog.column(lt, left_col).ok_or_else(|| PlanError::UnknownColumn {
        table: lt.to_string(),
        column: left_col.to_string(),
    })?;
    let (_, rc) = catalog.column(rt, right_col).ok_or_else(|| PlanError::UnknownColumn {
        table: rt.to_string(),
        column: right_col.to_string(),
    })?;
    let est_sel = 1.0 / (lc.ndv as f64).min(left.est).max((rc.ndv as f64).min(right.est)).max(1.0);
    let true_sel_base =
        1.0 / (lc.ndv as f64).min(left.truth).max((rc.ndv as f64).min(right.truth)).max(1.0);
    let skew = catalog.correlations.join_skew(lt, left_col, rt, right_col);
    Ok(Cards {
        est: (left.est * right.est * est_sel).max(1.0),
        truth: (left.truth * right.truth * true_sel_base * skew).max(1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{CmpOp, Predicate, TableRef};
    use crate::schema::{Column, ColumnType, Table};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "orders",
            10_000,
            vec![
                Column::new("o_id", ColumnType::Int, 10_000),
                Column::new("o_cust", ColumnType::Int, 1_000),
                Column::new("o_status", ColumnType::Char(1), 5),
                Column::new("o_prio", ColumnType::Char(1), 5),
            ],
        ));
        cat.add_table(Table::new(
            "customer",
            1_000,
            vec![Column::new("c_id", ColumnType::Int, 1_000)],
        ));
        cat
    }

    fn pred(alias: &str, col: &str, se: f64, st: f64) -> Predicate {
        Predicate {
            table_alias: alias.into(),
            column: col.into(),
            op: CmpOp::Eq,
            literal: "'x'".into(),
            sel_est: se,
            sel_true: st,
        }
    }

    fn spec_with(preds: Vec<Predicate>) -> QuerySpec {
        QuerySpec {
            tables: vec![TableRef::new("orders", "o"), TableRef::new("customer", "c")],
            predicates: preds,
            ..QuerySpec::default()
        }
    }

    #[test]
    fn scan_without_predicates_returns_table_cardinality() {
        let cat = catalog();
        let spec = spec_with(vec![]);
        let c = scan_cards(&cat, &spec, "o").unwrap();
        assert_eq!(c.est, 10_000.0);
        assert_eq!(c.truth, 10_000.0);
    }

    #[test]
    fn independent_predicates_multiply() {
        let cat = catalog();
        let spec = spec_with(vec![pred("o", "o_status", 0.2, 0.2), pred("o", "o_prio", 0.2, 0.2)]);
        let c = scan_cards(&cat, &spec, "o").unwrap();
        assert!((c.est - 10_000.0 * 0.04).abs() < 1e-6);
        assert!((c.truth - 10_000.0 * 0.04).abs() < 1e-6);
    }

    #[test]
    fn correlation_inflates_truth_but_not_estimate() {
        let mut cat = catalog();
        cat.correlations.set_predicate_correlation("orders", "o_status", "o_prio", 1.0);
        let spec = spec_with(vec![pred("o", "o_status", 0.2, 0.2), pred("o", "o_prio", 0.2, 0.2)]);
        let c = scan_cards(&cat, &spec, "o").unwrap();
        assert!((c.est - 400.0).abs() < 1e-6, "estimate keeps the independence product");
        assert!((c.truth - 2000.0).abs() < 1e-6, "truth follows min(s1, s2) under rho=1");
        assert!(c.underestimation_factor() > 4.9);
    }

    #[test]
    fn true_selectivity_differs_from_estimate() {
        let cat = catalog();
        let spec = spec_with(vec![pred("o", "o_status", 0.2, 0.5)]);
        let c = scan_cards(&cat, &spec, "o").unwrap();
        assert_eq!(c.est, 2000.0);
        assert_eq!(c.truth, 5000.0);
    }

    #[test]
    fn pk_fk_join_estimates_left_cardinality() {
        let cat = catalog();
        let spec = spec_with(vec![]);
        let l = Cards { est: 10_000.0, truth: 10_000.0 };
        let r = Cards { est: 1_000.0, truth: 1_000.0 };
        let j = join_cards(&cat, &spec, "o", "o_cust", "c", "c_id", l, r).unwrap();
        // |O ⋈ C| = |O|·|C| / max(ndv) = 10000·1000/1000 = 10000.
        assert!((j.est - 10_000.0).abs() < 1e-6);
        assert!((j.truth - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn join_skew_inflates_truth_only() {
        let mut cat = catalog();
        cat.correlations.set_join_skew("orders", "o_cust", "customer", "c_id", 4.0);
        let spec = spec_with(vec![]);
        let l = Cards { est: 10_000.0, truth: 10_000.0 };
        let r = Cards { est: 1_000.0, truth: 1_000.0 };
        let j = join_cards(&cat, &spec, "o", "o_cust", "c", "c_id", l, r).unwrap();
        assert!((j.est - 10_000.0).abs() < 1e-6);
        assert!((j.truth - 40_000.0).abs() < 1e-6);
    }

    #[test]
    fn ndv_is_capped_by_fragment_cardinality() {
        let cat = catalog();
        let spec = spec_with(vec![]);
        // Only 10 customer rows survive filters: join selectivity adapts.
        let l = Cards { est: 10_000.0, truth: 10_000.0 };
        let r = Cards { est: 10.0, truth: 10.0 };
        let j = join_cards(&cat, &spec, "o", "o_cust", "c", "c_id", l, r).unwrap();
        // max(min(1000, 10000), min(1000, 10)) = 1000 → 10000*10/1000 = 100.
        assert!((j.est - 100.0).abs() < 1e-6);
    }

    #[test]
    fn errors_on_unknown_objects() {
        let cat = catalog();
        let spec = spec_with(vec![]);
        assert!(matches!(scan_cards(&cat, &spec, "zz"), Err(PlanError::UnknownAlias(_))));
        let l = Cards { est: 1.0, truth: 1.0 };
        assert!(join_cards(&cat, &spec, "o", "nope", "c", "c_id", l, l).is_err());
        assert!(join_cards(&cat, &spec, "zz", "o_cust", "c", "c_id", l, l).is_err());
    }
}
