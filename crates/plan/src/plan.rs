//! Physical query plans: operator trees annotated with estimated and true
//! cardinalities — the `p` of the paper's query triple `q = (e, p, m)` and
//! the direct input to both plan featurization (paper Fig. 2) and the
//! working-memory simulator.

use std::fmt;

/// Flat operator taxonomy used for featurization. The paper's Fig. 2 example
/// features exactly this kind of per-operator-type `(count, cardinality)`
/// pair; our taxonomy covers the operators the mini-planner emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Full table scan (the paper's `TBSCAN`).
    TableScan,
    /// Index range/point scan (the paper's `IXSCAN`).
    IndexScan,
    /// Hash join (the paper's `HSJOIN`); memory-hungry build side.
    HashJoin,
    /// Index nested-loop join.
    NestedLoopJoin,
    /// Merge join over sorted inputs.
    MergeJoin,
    /// Explicit sort (the paper's `SORT`); bounded by the sort heap.
    Sort,
    /// Hash aggregation (the paper's `GROUP BY` in hashed form).
    HashAggregate,
    /// Streaming aggregation over sorted/scalar input.
    StreamAggregate,
    /// Hash-based duplicate elimination.
    HashDistinct,
    /// Row-limit operator.
    Limit,
}

/// Every operator kind in the stable order used by featurization.
pub const ALL_OP_KINDS: [OpKind; 10] = [
    OpKind::TableScan,
    OpKind::IndexScan,
    OpKind::HashJoin,
    OpKind::NestedLoopJoin,
    OpKind::MergeJoin,
    OpKind::Sort,
    OpKind::HashAggregate,
    OpKind::StreamAggregate,
    OpKind::HashDistinct,
    OpKind::Limit,
];

impl OpKind {
    /// Position in [`ALL_OP_KINDS`] (stable across runs; feature layout).
    pub fn index(self) -> usize {
        ALL_OP_KINDS.iter().position(|&k| k == self).expect("kind present in ALL_OP_KINDS")
    }

    /// Short display name (matches common EXPLAIN vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::TableScan => "TBSCAN",
            OpKind::IndexScan => "IXSCAN",
            OpKind::HashJoin => "HSJOIN",
            OpKind::NestedLoopJoin => "NLJOIN",
            OpKind::MergeJoin => "MSJOIN",
            OpKind::Sort => "SORT",
            OpKind::HashAggregate => "GRPBY(HASH)",
            OpKind::StreamAggregate => "GRPBY(STREAM)",
            OpKind::HashDistinct => "DISTINCT",
            OpKind::Limit => "LIMIT",
        }
    }
}

/// A physical operator with its parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum Operator {
    /// Sequential scan of a base table.
    TableScan {
        /// Scanned table.
        table: String,
        /// Alias in the query.
        alias: String,
    },
    /// Index scan driven by a predicate on `column`.
    IndexScan {
        /// Scanned table.
        table: String,
        /// Alias in the query.
        alias: String,
        /// Indexed column that drives the scan.
        column: String,
    },
    /// Hash join; `children[1]` is always the build side.
    HashJoin,
    /// Index nested-loop join; `children[0]` is the outer.
    NestedLoopJoin,
    /// Merge join over inputs sorted on the join keys.
    MergeJoin,
    /// Sort on the given `alias.column` keys.
    Sort {
        /// Sort keys.
        keys: Vec<String>,
    },
    /// Hash aggregation.
    HashAggregate {
        /// Number of grouping columns.
        n_group_cols: usize,
        /// Number of aggregate expressions.
        n_aggs: usize,
    },
    /// Streaming aggregation (sorted input or scalar aggregate).
    StreamAggregate {
        /// Number of aggregate expressions.
        n_aggs: usize,
    },
    /// Hash-based DISTINCT.
    HashDistinct,
    /// LIMIT n.
    Limit {
        /// Row limit.
        n: u64,
    },
}

impl Operator {
    /// The flat kind of this operator.
    pub fn kind(&self) -> OpKind {
        match self {
            Operator::TableScan { .. } => OpKind::TableScan,
            Operator::IndexScan { .. } => OpKind::IndexScan,
            Operator::HashJoin => OpKind::HashJoin,
            Operator::NestedLoopJoin => OpKind::NestedLoopJoin,
            Operator::MergeJoin => OpKind::MergeJoin,
            Operator::Sort { .. } => OpKind::Sort,
            Operator::HashAggregate { .. } => OpKind::HashAggregate,
            Operator::StreamAggregate { .. } => OpKind::StreamAggregate,
            Operator::HashDistinct => OpKind::HashDistinct,
            Operator::Limit { .. } => OpKind::Limit,
        }
    }
}

/// A node of the physical plan tree.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// The operator.
    pub op: Operator,
    /// Input plans (execution order: children run before/within the parent).
    pub children: Vec<PlanNode>,
    /// Optimizer-estimated output cardinality (visible to models).
    pub est_rows: f64,
    /// Actual output cardinality against the synthetic data (hidden truth;
    /// drives the memory simulator's ground-truth labels).
    pub true_rows: f64,
    /// Output row width in bytes.
    pub row_width: u32,
}

impl PlanNode {
    /// Leaf constructor.
    pub fn leaf(op: Operator, est_rows: f64, true_rows: f64, row_width: u32) -> Self {
        PlanNode { op, children: Vec::new(), est_rows, true_rows, row_width }
    }

    /// Internal-node constructor.
    pub fn unary(
        op: Operator,
        child: PlanNode,
        est_rows: f64,
        true_rows: f64,
        row_width: u32,
    ) -> Self {
        PlanNode { op, children: vec![child], est_rows, true_rows, row_width }
    }

    /// Pre-order iterator over all nodes.
    pub fn iter(&self) -> PlanIter<'_> {
        PlanIter { stack: vec![self] }
    }

    /// Number of nodes in the plan.
    pub fn n_nodes(&self) -> usize {
        self.iter().count()
    }

    /// Number of nodes of a given kind.
    pub fn count_kind(&self, kind: OpKind) -> usize {
        self.iter().filter(|n| n.op.kind() == kind).count()
    }

    /// EXPLAIN-style indented rendering (est/true rows per operator).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        for _ in 0..depth {
            out.push_str("  ");
        }
        let detail = match &self.op {
            Operator::TableScan { table, alias } | Operator::IndexScan { table, alias, .. } => {
                if table == alias {
                    format!(" {table}")
                } else {
                    format!(" {table} as {alias}")
                }
            }
            Operator::Sort { keys } => format!(" by {}", keys.join(", ")),
            Operator::Limit { n } => format!(" {n}"),
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "{}{} (est_rows={:.0}, true_rows={:.0}, width={}B)",
            self.op.kind().name(),
            detail,
            self.est_rows,
            self.true_rows,
            self.row_width
        );
        for c in &self.children {
            c.explain_into(out, depth + 1);
        }
    }
}

impl fmt::Display for PlanNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

/// Pre-order plan iterator.
pub struct PlanIter<'a> {
    stack: Vec<&'a PlanNode>,
}

impl<'a> Iterator for PlanIter<'a> {
    type Item = &'a PlanNode;

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.stack.pop()?;
        for c in node.children.iter().rev() {
            self.stack.push(c);
        }
        Some(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> PlanNode {
        let scan_a = PlanNode::leaf(
            Operator::TableScan { table: "a".into(), alias: "a".into() },
            1000.0,
            1200.0,
            100,
        );
        let scan_b = PlanNode::leaf(
            Operator::IndexScan { table: "b".into(), alias: "b".into(), column: "id".into() },
            10.0,
            12.0,
            50,
        );
        let join = PlanNode {
            op: Operator::HashJoin,
            children: vec![scan_a, scan_b],
            est_rows: 500.0,
            true_rows: 900.0,
            row_width: 150,
        };
        PlanNode::unary(Operator::Sort { keys: vec!["a.x".into()] }, join, 500.0, 900.0, 150)
    }

    #[test]
    fn op_kind_indices_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for (i, k) in ALL_OP_KINDS.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(seen.insert(*k));
        }
        assert_eq!(ALL_OP_KINDS.len(), 10);
    }

    #[test]
    fn preorder_iteration_visits_all_nodes() {
        let plan = sample_plan();
        let kinds: Vec<OpKind> = plan.iter().map(|n| n.op.kind()).collect();
        assert_eq!(
            kinds,
            vec![OpKind::Sort, OpKind::HashJoin, OpKind::TableScan, OpKind::IndexScan]
        );
        assert_eq!(plan.n_nodes(), 4);
    }

    #[test]
    fn count_kind_counts_correctly() {
        let plan = sample_plan();
        assert_eq!(plan.count_kind(OpKind::TableScan), 1);
        assert_eq!(plan.count_kind(OpKind::HashJoin), 1);
        assert_eq!(plan.count_kind(OpKind::MergeJoin), 0);
    }

    #[test]
    fn explain_renders_tree_shape() {
        let text = sample_plan().explain();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("SORT"));
        assert!(lines[1].starts_with("  HSJOIN"));
        assert!(lines[2].starts_with("    TBSCAN a"));
        assert!(lines[3].starts_with("    IXSCAN b"));
        assert!(lines[0].contains("est_rows=500"));
        assert!(lines[0].contains("true_rows=900"));
        assert_eq!(format!("{}", sample_plan()), text);
    }

    #[test]
    fn operator_kind_mapping_is_total() {
        // Every operator constructor maps to the advertised kind.
        assert_eq!(Operator::HashJoin.kind(), OpKind::HashJoin);
        assert_eq!(Operator::NestedLoopJoin.kind(), OpKind::NestedLoopJoin);
        assert_eq!(Operator::MergeJoin.kind(), OpKind::MergeJoin);
        assert_eq!(Operator::HashDistinct.kind(), OpKind::HashDistinct);
        assert_eq!(Operator::Limit { n: 5 }.kind(), OpKind::Limit);
        assert_eq!(
            Operator::HashAggregate { n_group_cols: 1, n_aggs: 2 }.kind(),
            OpKind::HashAggregate
        );
        assert_eq!(Operator::StreamAggregate { n_aggs: 1 }.kind(), OpKind::StreamAggregate);
    }
}
