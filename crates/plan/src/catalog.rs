//! The catalog: tables, indexes, and the hidden data model. One catalog per
//! benchmark instance (TPC-DS / JOB / TPC-C).

use std::collections::HashMap;

use crate::datamodel::CorrelationModel;
use crate::schema::{Column, Table};

/// A single-column index usable for index scans and index-nested-loop joins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Index {
    /// Indexed table.
    pub table: String,
    /// Indexed column.
    pub column: String,
    /// Whether the index enforces uniqueness (primary keys).
    pub unique: bool,
}

/// A database catalog: schema + statistics + (hidden) correlation model.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<Table>,
    by_name: HashMap<String, usize>,
    indexes: Vec<Index>,
    /// The hidden truth about the data; the cardinality *estimator* never
    /// reads this, only the workload generator and the executor simulator do.
    pub correlations: CorrelationModel,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table (replacing any previous definition with the same name).
    pub fn add_table(&mut self, table: Table) {
        if let Some(&i) = self.by_name.get(&table.name) {
            self.tables[i] = table;
        } else {
            self.by_name.insert(table.name.clone(), self.tables.len());
            self.tables.push(table);
        }
    }

    /// Declares a single-column index.
    pub fn add_index(&mut self, table: &str, column: &str, unique: bool) {
        self.indexes.push(Index { table: table.to_string(), column: column.to_string(), unique });
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.by_name.get(name).map(|&i| &self.tables[i])
    }

    /// All tables in insertion order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Whether an index exists on `table.column`.
    pub fn has_index(&self, table: &str, column: &str) -> bool {
        self.indexes.iter().any(|i| i.table == table && i.column == column)
    }

    /// All indexes.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Looks up a column, returning `(table, column)` on success.
    pub fn column(&self, table: &str, column: &str) -> Option<(&Table, &Column)> {
        let t = self.table(table)?;
        let c = t.column(column)?;
        Some((t, c))
    }

    /// Names of all tables and columns, used by the text-mining vocabulary
    /// builder (identifiers vs. arbitrary tokens).
    pub fn identifier_vocabulary(&self) -> Vec<String> {
        let mut out = Vec::new();
        for t in &self.tables {
            out.push(t.name.clone());
            for c in &t.columns {
                out.push(c.name.clone());
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn toy() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "orders",
            1000,
            vec![
                Column::new("o_id", ColumnType::Int, 1000),
                Column::new("o_cust", ColumnType::Int, 100),
            ],
        ));
        cat.add_index("orders", "o_id", true);
        cat
    }

    #[test]
    fn table_and_column_lookup() {
        let cat = toy();
        assert!(cat.table("orders").is_some());
        assert!(cat.table("nope").is_none());
        assert!(cat.column("orders", "o_cust").is_some());
        assert!(cat.column("orders", "nope").is_none());
        assert!(cat.column("nope", "o_id").is_none());
    }

    #[test]
    fn index_lookup() {
        let cat = toy();
        assert!(cat.has_index("orders", "o_id"));
        assert!(!cat.has_index("orders", "o_cust"));
        assert_eq!(cat.indexes().len(), 1);
        assert!(cat.indexes()[0].unique);
    }

    #[test]
    fn add_table_replaces_same_name() {
        let mut cat = toy();
        cat.add_table(Table::new("orders", 5000, vec![Column::new("o_id", ColumnType::Int, 5000)]));
        assert_eq!(cat.table("orders").unwrap().row_count, 5000);
        assert_eq!(cat.tables().len(), 1);
    }

    #[test]
    fn identifier_vocabulary_is_sorted_and_unique() {
        let cat = toy();
        let vocab = cat.identifier_vocabulary();
        assert!(vocab.contains(&"orders".to_string()));
        assert!(vocab.contains(&"o_cust".to_string()));
        let mut sorted = vocab.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(vocab, sorted);
    }
}
