//! SQL text rendering of a [`QuerySpec`]. The text-based template learners
//! (bag-of-words / text-mining / embeddings, paper §IV-C) consume this output;
//! it is also what the examples print and what the SQL ingestion front-end
//! (`wmp_sql`) parses back.
//!
//! Rendering is canonical ANSI and *lossless* with respect to the query
//! structure: identifiers that would not survive a parse round trip (reserved
//! words, upper-case spellings, non-word characters) are `"`-quoted, `COUNT`
//! keeps its column argument, and `AS` is elided exactly when the alias
//! equals the table name (which the parser reconstructs by defaulting the
//! alias to the table).

use std::fmt::Write as _;

use crate::query::{AggFunc, CmpOp, QuerySpec};

/// Words with clause or operator meaning in the supported SELECT grammar.
/// Identifiers spelled like one are quoted so they always read back as
/// identifiers.
const RESERVED: [&str; 45] = [
    "ALL",
    "AND",
    "AS",
    "ASC",
    "AVG",
    "BETWEEN",
    "BY",
    "CAST",
    "COUNT",
    "CROSS",
    "DATE",
    "DESC",
    "DISTINCT",
    "EXISTS",
    "FETCH",
    "FIRST",
    "FROM",
    "FULL",
    "GROUP",
    "HAVING",
    "IN",
    "INNER",
    "INTERVAL",
    "IS",
    "JOIN",
    "LEFT",
    "LIKE",
    "LIMIT",
    "MAX",
    "MIN",
    "NOT",
    "NULL",
    "OFFSET",
    "ON",
    "ONLY",
    "OR",
    "ORDER",
    "OUTER",
    "RIGHT",
    "ROW",
    "ROWS",
    "SELECT",
    "SUM",
    "TIME",
    "TIMESTAMP",
];

/// True when `ident` must be `"`-quoted to survive an ANSI parse round trip:
/// it is empty, not entirely lower-case (unquoted ANSI identifiers fold),
/// not shaped like a plain word, or reserved.
fn needs_quoting(ident: &str) -> bool {
    if ident.is_empty() || ident.chars().any(|c| c.is_ascii_uppercase()) {
        return true;
    }
    let mut chars = ident.chars();
    let head_ok = chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if !head_ok || !ident.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return true;
    }
    RESERVED.iter().any(|kw| ident.eq_ignore_ascii_case(kw))
}

/// Renders `ident` as ANSI SQL, `"`-quoting (with embedded quotes doubled)
/// only when a bare spelling would be ambiguous or case-folded.
pub fn quote_ident(ident: &str) -> String {
    if !needs_quoting(ident) {
        return ident.to_string();
    }
    let mut out = String::with_capacity(ident.len() + 2);
    out.push('"');
    for c in ident.chars() {
        if c == '"' {
            out.push('"');
        }
        out.push(c);
    }
    out.push('"');
    out
}

fn qualified(alias: &str, column: &str) -> String {
    format!("{}.{}", quote_ident(alias), quote_ident(column))
}

/// Renders a query spec as a SQL `SELECT` statement.
pub fn render_sql(q: &QuerySpec) -> String {
    let mut s = String::with_capacity(256);
    s.push_str("SELECT ");
    if q.distinct {
        s.push_str("DISTINCT ");
    }
    let mut select_items: Vec<String> = Vec::new();
    for (alias, col) in &q.group_by {
        select_items.push(qualified(alias, col));
    }
    for agg in &q.aggregates {
        if agg.func == AggFunc::Count && agg.column.is_empty() {
            select_items.push("COUNT(*)".to_string());
        } else {
            select_items.push(format!(
                "{}({})",
                agg.func.sql(),
                qualified(&agg.table_alias, &agg.column)
            ));
        }
    }
    if select_items.is_empty() {
        // Project the first table's columns.
        select_items.push(match q.tables.first() {
            Some(t) => format!("{}.*", quote_ident(&t.alias)),
            None => "*".to_string(),
        });
    }
    s.push_str(&select_items.join(", "));

    s.push_str(" FROM ");
    let froms: Vec<String> = q
        .tables
        .iter()
        .map(|t| {
            if t.table == t.alias {
                quote_ident(&t.table)
            } else {
                format!("{} AS {}", quote_ident(&t.table), quote_ident(&t.alias))
            }
        })
        .collect();
    s.push_str(&froms.join(", "));

    let mut conds: Vec<String> = Vec::new();
    for j in &q.joins {
        conds.push(format!(
            "{} = {}",
            qualified(&j.left_alias, &j.left_col),
            qualified(&j.right_alias, &j.right_col)
        ));
    }
    for p in &q.predicates {
        let col = qualified(&p.table_alias, &p.column);
        match &p.op {
            CmpOp::InList(_) => {
                conds.push(format!("{col} IN ({})", p.literal));
            }
            CmpOp::Between => {
                conds.push(format!("{col} BETWEEN {}", p.literal));
            }
            op => {
                conds.push(format!("{col} {} {}", op.sql(), p.literal));
            }
        }
    }
    if !conds.is_empty() {
        s.push_str(" WHERE ");
        s.push_str(&conds.join(" AND "));
    }

    if !q.group_by.is_empty() {
        s.push_str(" GROUP BY ");
        let cols: Vec<String> = q.group_by.iter().map(|(a, c)| qualified(a, c)).collect();
        s.push_str(&cols.join(", "));
    }
    if !q.order_by.is_empty() {
        s.push_str(" ORDER BY ");
        let cols: Vec<String> = q.order_by.iter().map(|(a, c)| qualified(a, c)).collect();
        s.push_str(&cols.join(", "));
    }
    if let Some(n) = q.limit {
        let _ = write!(s, " FETCH FIRST {n} ROWS ONLY");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Aggregate, JoinEdge, Predicate, TableRef};

    fn join_query() -> QuerySpec {
        QuerySpec {
            id: 7,
            tables: vec![TableRef::new("orders", "o"), TableRef::new("customer", "c")],
            joins: vec![JoinEdge {
                left_alias: "o".into(),
                left_col: "o_cust".into(),
                right_alias: "c".into(),
                right_col: "c_id".into(),
            }],
            predicates: vec![Predicate {
                table_alias: "c".into(),
                column: "c_nation".into(),
                op: CmpOp::Eq,
                literal: "'CA'".into(),
                sel_est: 0.04,
                sel_true: 0.05,
            }],
            group_by: vec![("c".into(), "c_nation".into())],
            aggregates: vec![Aggregate {
                func: AggFunc::Sum,
                table_alias: "o".into(),
                column: "o_total".into(),
            }],
            order_by: vec![("c".into(), "c_nation".into())],
            distinct: false,
            limit: Some(100),
        }
    }

    #[test]
    fn renders_full_query_shape() {
        let sql = render_sql(&join_query());
        assert!(
            sql.starts_with("SELECT c.c_nation, SUM(o.o_total) FROM orders AS o, customer AS c")
        );
        assert!(sql.contains("WHERE o.o_cust = c.c_id AND c.c_nation = 'CA'"));
        assert!(sql.contains("GROUP BY c.c_nation"));
        assert!(sql.contains("ORDER BY c.c_nation"));
        assert!(sql.ends_with("FETCH FIRST 100 ROWS ONLY"));
    }

    #[test]
    fn renders_count_star_and_distinct() {
        let q = QuerySpec {
            tables: vec![TableRef::plain("item")],
            aggregates: vec![Aggregate {
                func: AggFunc::Count,
                table_alias: "item".into(),
                column: String::new(),
            }],
            distinct: true,
            ..QuerySpec::default()
        };
        let sql = render_sql(&q);
        assert_eq!(sql, "SELECT DISTINCT COUNT(*) FROM item");
    }

    #[test]
    fn count_with_a_column_keeps_it() {
        let q = QuerySpec {
            tables: vec![TableRef::plain("item")],
            aggregates: vec![Aggregate {
                func: AggFunc::Count,
                table_alias: "item".into(),
                column: "i_id".into(),
            }],
            ..QuerySpec::default()
        };
        assert_eq!(render_sql(&q), "SELECT COUNT(item.i_id) FROM item");
    }

    #[test]
    fn renders_in_and_between() {
        let q = QuerySpec {
            tables: vec![TableRef::plain("t")],
            predicates: vec![
                Predicate {
                    table_alias: "t".into(),
                    column: "a".into(),
                    op: CmpOp::InList(2),
                    literal: "1, 2".into(),
                    sel_est: 0.1,
                    sel_true: 0.1,
                },
                Predicate {
                    table_alias: "t".into(),
                    column: "b".into(),
                    op: CmpOp::Between,
                    literal: "5 AND 10".into(),
                    sel_est: 0.1,
                    sel_true: 0.1,
                },
            ],
            ..QuerySpec::default()
        };
        let sql = render_sql(&q);
        assert!(sql.contains("t.a IN (1, 2)"));
        assert!(sql.contains("t.b BETWEEN 5 AND 10"));
    }

    #[test]
    fn select_star_fallback_without_aggregates() {
        let q = QuerySpec { tables: vec![TableRef::plain("t")], ..QuerySpec::default() };
        assert_eq!(render_sql(&q), "SELECT t.* FROM t");
    }

    #[test]
    fn reserved_and_cased_identifiers_are_quoted() {
        assert_eq!(quote_ident("c_nation"), "c_nation");
        assert_eq!(quote_ident("order"), "\"order\"", "reserved word");
        assert_eq!(quote_ident("Lineitem"), "\"Lineitem\"", "would fold to lower case");
        assert_eq!(quote_ident("odd name"), "\"odd name\"");
        assert_eq!(quote_ident("a\"b"), "\"a\"\"b\"", "embedded quote doubles");
        let q = QuerySpec {
            tables: vec![TableRef::plain("order")],
            predicates: vec![Predicate {
                table_alias: "order".into(),
                column: "total".into(),
                op: CmpOp::Gt,
                literal: "5".into(),
                sel_est: 0.3,
                sel_true: 0.3,
            }],
            ..QuerySpec::default()
        };
        assert_eq!(render_sql(&q), "SELECT \"order\".* FROM \"order\" WHERE \"order\".total > 5");
    }
}
