//! SQL text rendering of a [`QuerySpec`]. The text-based template learners
//! (bag-of-words / text-mining / embeddings, paper §IV-C) consume this output;
//! it is also what the examples print.

use std::fmt::Write as _;

use crate::query::{AggFunc, CmpOp, QuerySpec};

/// Renders a query spec as a SQL `SELECT` statement.
pub fn render_sql(q: &QuerySpec) -> String {
    let mut s = String::with_capacity(256);
    s.push_str("SELECT ");
    if q.distinct {
        s.push_str("DISTINCT ");
    }
    let mut select_items: Vec<String> = Vec::new();
    for (alias, col) in &q.group_by {
        select_items.push(format!("{alias}.{col}"));
    }
    for agg in &q.aggregates {
        if agg.func == AggFunc::Count {
            select_items.push("COUNT(*)".to_string());
        } else {
            select_items.push(format!("{}({}.{})", agg.func.sql(), agg.table_alias, agg.column));
        }
    }
    if select_items.is_empty() {
        // Project the first table's columns.
        select_items
            .push(format!("{}.*", q.tables.first().map(|t| t.alias.as_str()).unwrap_or("*")));
    }
    s.push_str(&select_items.join(", "));

    s.push_str(" FROM ");
    let froms: Vec<String> = q
        .tables
        .iter()
        .map(|t| {
            if t.table == t.alias {
                t.table.clone()
            } else {
                format!("{} AS {}", t.table, t.alias)
            }
        })
        .collect();
    s.push_str(&froms.join(", "));

    let mut conds: Vec<String> = Vec::new();
    for j in &q.joins {
        conds.push(format!("{}.{} = {}.{}", j.left_alias, j.left_col, j.right_alias, j.right_col));
    }
    for p in &q.predicates {
        match &p.op {
            CmpOp::InList(_) => {
                conds.push(format!("{}.{} IN ({})", p.table_alias, p.column, p.literal));
            }
            CmpOp::Between => {
                conds.push(format!("{}.{} BETWEEN {}", p.table_alias, p.column, p.literal));
            }
            op => {
                conds.push(format!("{}.{} {} {}", p.table_alias, p.column, op.sql(), p.literal));
            }
        }
    }
    if !conds.is_empty() {
        s.push_str(" WHERE ");
        s.push_str(&conds.join(" AND "));
    }

    if !q.group_by.is_empty() {
        s.push_str(" GROUP BY ");
        let cols: Vec<String> = q.group_by.iter().map(|(a, c)| format!("{a}.{c}")).collect();
        s.push_str(&cols.join(", "));
    }
    if !q.order_by.is_empty() {
        s.push_str(" ORDER BY ");
        let cols: Vec<String> = q.order_by.iter().map(|(a, c)| format!("{a}.{c}")).collect();
        s.push_str(&cols.join(", "));
    }
    if let Some(n) = q.limit {
        let _ = write!(s, " FETCH FIRST {n} ROWS ONLY");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Aggregate, JoinEdge, Predicate, TableRef};

    fn join_query() -> QuerySpec {
        QuerySpec {
            id: 7,
            tables: vec![TableRef::new("orders", "o"), TableRef::new("customer", "c")],
            joins: vec![JoinEdge {
                left_alias: "o".into(),
                left_col: "o_cust".into(),
                right_alias: "c".into(),
                right_col: "c_id".into(),
            }],
            predicates: vec![Predicate {
                table_alias: "c".into(),
                column: "c_nation".into(),
                op: CmpOp::Eq,
                literal: "'CA'".into(),
                sel_est: 0.04,
                sel_true: 0.05,
            }],
            group_by: vec![("c".into(), "c_nation".into())],
            aggregates: vec![Aggregate {
                func: AggFunc::Sum,
                table_alias: "o".into(),
                column: "o_total".into(),
            }],
            order_by: vec![("c".into(), "c_nation".into())],
            distinct: false,
            limit: Some(100),
        }
    }

    #[test]
    fn renders_full_query_shape() {
        let sql = render_sql(&join_query());
        assert!(
            sql.starts_with("SELECT c.c_nation, SUM(o.o_total) FROM orders AS o, customer AS c")
        );
        assert!(sql.contains("WHERE o.o_cust = c.c_id AND c.c_nation = 'CA'"));
        assert!(sql.contains("GROUP BY c.c_nation"));
        assert!(sql.contains("ORDER BY c.c_nation"));
        assert!(sql.ends_with("FETCH FIRST 100 ROWS ONLY"));
    }

    #[test]
    fn renders_count_star_and_distinct() {
        let q = QuerySpec {
            tables: vec![TableRef::plain("item")],
            aggregates: vec![Aggregate {
                func: AggFunc::Count,
                table_alias: "item".into(),
                column: String::new(),
            }],
            distinct: true,
            ..QuerySpec::default()
        };
        let sql = render_sql(&q);
        assert_eq!(sql, "SELECT DISTINCT COUNT(*) FROM item");
    }

    #[test]
    fn renders_in_and_between() {
        let q = QuerySpec {
            tables: vec![TableRef::plain("t")],
            predicates: vec![
                Predicate {
                    table_alias: "t".into(),
                    column: "a".into(),
                    op: CmpOp::InList(2),
                    literal: "1, 2".into(),
                    sel_est: 0.1,
                    sel_true: 0.1,
                },
                Predicate {
                    table_alias: "t".into(),
                    column: "b".into(),
                    op: CmpOp::Between,
                    literal: "5 AND 10".into(),
                    sel_est: 0.1,
                    sel_true: 0.1,
                },
            ],
            ..QuerySpec::default()
        };
        let sql = render_sql(&q);
        assert!(sql.contains("t.a IN (1, 2)"));
        assert!(sql.contains("t.b BETWEEN 5 AND 10"));
    }

    #[test]
    fn select_star_fallback_without_aggregates() {
        let q = QuerySpec { tables: vec![TableRef::plain("t")], ..QuerySpec::default() };
        assert_eq!(render_sql(&q), "SELECT t.* FROM t");
    }
}
