//! Plan featurization (paper §III-B1, Fig. 2): for every operator type, a
//! `(count, Σ estimated output cardinality)` pair, laid out in the stable
//! [`ALL_OP_KINDS`] order. The paper borrows this feature set from Ganapathi
//! et al. (reference 16 of the paper); both the k-means template learner and the SingleWMP per-query
//! models consume it.

use crate::plan::{PlanNode, ALL_OP_KINDS};

/// Length of a plan feature vector: two features per operator kind.
pub const N_PLAN_FEATURES: usize = ALL_OP_KINDS.len() * 2;

/// Extracts the `(count, Σ est. cardinality)` feature vector from a plan.
///
/// Cardinalities are the *estimated* ones — at inference time true
/// cardinalities are unknown, so models may only see optimizer output.
pub fn featurize_plan(plan: &PlanNode) -> Vec<f64> {
    let mut v = vec![0.0; N_PLAN_FEATURES];
    for node in plan.iter() {
        let i = node.op.kind().index();
        v[2 * i] += 1.0;
        v[2 * i + 1] += node.est_rows;
    }
    v
}

/// Human-readable names for each feature slot (`<OP>_count`, `<OP>_card`).
pub fn feature_names() -> Vec<String> {
    let mut names = Vec::with_capacity(N_PLAN_FEATURES);
    for k in ALL_OP_KINDS {
        names.push(format!("{}_count", k.name()));
        names.push(format!("{}_card", k.name()));
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{OpKind, Operator, PlanNode};

    fn sample_plan() -> PlanNode {
        let scan_a = PlanNode::leaf(
            Operator::TableScan { table: "a".into(), alias: "a".into() },
            1000.0,
            1100.0,
            100,
        );
        let scan_b = PlanNode::leaf(
            Operator::TableScan { table: "b".into(), alias: "b".into() },
            200.0,
            250.0,
            80,
        );
        let join = PlanNode {
            op: Operator::HashJoin,
            children: vec![scan_a, scan_b],
            est_rows: 500.0,
            true_rows: 700.0,
            row_width: 180,
        };
        PlanNode::unary(Operator::Sort { keys: vec!["a.x".into()] }, join, 500.0, 700.0, 180)
    }

    #[test]
    fn feature_vector_has_fixed_layout() {
        let v = featurize_plan(&sample_plan());
        assert_eq!(v.len(), N_PLAN_FEATURES);
        let ts = OpKind::TableScan.index();
        let hj = OpKind::HashJoin.index();
        let so = OpKind::Sort.index();
        assert_eq!(v[2 * ts], 2.0, "two table scans");
        assert_eq!(v[2 * ts + 1], 1200.0, "sum of scan est cardinalities");
        assert_eq!(v[2 * hj], 1.0);
        assert_eq!(v[2 * hj + 1], 500.0);
        assert_eq!(v[2 * so], 1.0);
        // Absent operators contribute zeros.
        let mj = OpKind::MergeJoin.index();
        assert_eq!(v[2 * mj], 0.0);
        assert_eq!(v[2 * mj + 1], 0.0);
    }

    #[test]
    fn features_use_estimated_not_true_cardinalities() {
        let v = featurize_plan(&sample_plan());
        let hj = OpKind::HashJoin.index();
        assert_eq!(v[2 * hj + 1], 500.0, "est_rows (500), never true_rows (700)");
    }

    #[test]
    fn feature_names_align_with_vector() {
        let names = feature_names();
        assert_eq!(names.len(), N_PLAN_FEATURES);
        assert_eq!(names[0], "TBSCAN_count");
        assert_eq!(names[1], "TBSCAN_card");
        let hj = OpKind::HashJoin.index();
        assert_eq!(names[2 * hj], "HSJOIN_count");
    }

    #[test]
    fn identical_plans_have_identical_features() {
        assert_eq!(featurize_plan(&sample_plan()), featurize_plan(&sample_plan()));
    }
}
