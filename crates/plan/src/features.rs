//! Plan featurization (paper §III-B1, Fig. 2): for every operator type, a
//! `(count, Σ estimated output cardinality)` pair, laid out in the stable
//! [`ALL_OP_KINDS`] order, followed by [`N_STRUCT_FEATURES`] operator-tree
//! *structure* features (depth, pipeline-breaker volume, row widths). The
//! per-operator pairs are the paper's feature set (borrowed from Ganapathi
//! et al., reference 16); the structural tail generalizes template identity
//! toward plan shape, in the spirit of the Query Plan Encoders line of
//! work. Both the k-means template learner and the SingleWMP per-query
//! models consume the full vector.

use crate::cost::is_pipeline_breaker;
use crate::plan::{PlanNode, ALL_OP_KINDS};

/// Number of operator-tree structure features appended after the
/// per-operator `(count, card)` pairs: plan depth, node count,
/// pipeline-breaker count, Σ estimated rows at pipeline breakers,
/// Σ estimated megabytes buffered at pipeline breakers, and the maximum
/// row width in the plan.
pub const N_STRUCT_FEATURES: usize = 6;

/// Length of a plan feature vector: two features per operator kind plus the
/// structural tail. Every consumer of query features (template learners,
/// per-query models, synthetic test records) must derive widths from this
/// constant — training asserts consistency against it.
pub const N_PLAN_FEATURES: usize = ALL_OP_KINDS.len() * 2 + N_STRUCT_FEATURES;

fn depth_of(node: &PlanNode) -> usize {
    1 + node.children.iter().map(depth_of).max().unwrap_or(0)
}

/// Extracts the feature vector from a plan: `(count, Σ est. cardinality)`
/// per operator kind, then the structural tail described on
/// [`N_STRUCT_FEATURES`].
///
/// Cardinalities are the *estimated* ones — at inference time true
/// cardinalities are unknown, so models may only see optimizer output.
pub fn featurize_plan(plan: &PlanNode) -> Vec<f64> {
    let mut v = vec![0.0; N_PLAN_FEATURES];
    let base = ALL_OP_KINDS.len() * 2;
    let mut max_width = 0u32;
    for node in plan.iter() {
        let i = node.op.kind().index();
        v[2 * i] += 1.0;
        v[2 * i + 1] += node.est_rows;
        v[base + 1] += 1.0; // node count
        if is_pipeline_breaker(node.op.kind()) {
            // Pipeline breakers buffer their *input*; charge the rows and
            // bytes of the materialized side (hash join: the build child).
            let buffered = match node.op.kind() {
                crate::plan::OpKind::HashJoin => node.children.get(1),
                _ => node.children.first(),
            };
            let (rows, bytes) = buffered
                .map(|c| (c.est_rows, c.est_rows * f64::from(c.row_width)))
                .unwrap_or((node.est_rows, node.est_rows * f64::from(node.row_width)));
            v[base + 2] += 1.0;
            v[base + 3] += rows;
            v[base + 4] += bytes / (1024.0 * 1024.0);
        }
        max_width = max_width.max(node.row_width);
    }
    v[base] = depth_of(plan) as f64;
    v[base + 5] = f64::from(max_width);
    v
}

/// Human-readable names for each feature slot (`<OP>_count`, `<OP>_card`,
/// then the structural tail).
pub fn feature_names() -> Vec<String> {
    let mut names = Vec::with_capacity(N_PLAN_FEATURES);
    for k in ALL_OP_KINDS {
        names.push(format!("{}_count", k.name()));
        names.push(format!("{}_card", k.name()));
    }
    for s in
        ["plan_depth", "plan_nodes", "breaker_count", "breaker_card", "breaker_mb", "max_row_width"]
    {
        names.push(s.to_string());
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{OpKind, Operator, PlanNode};

    fn sample_plan() -> PlanNode {
        let scan_a = PlanNode::leaf(
            Operator::TableScan { table: "a".into(), alias: "a".into() },
            1000.0,
            1100.0,
            100,
        );
        let scan_b = PlanNode::leaf(
            Operator::TableScan { table: "b".into(), alias: "b".into() },
            200.0,
            250.0,
            80,
        );
        let join = PlanNode {
            op: Operator::HashJoin,
            children: vec![scan_a, scan_b],
            est_rows: 500.0,
            true_rows: 700.0,
            row_width: 180,
        };
        PlanNode::unary(Operator::Sort { keys: vec!["a.x".into()] }, join, 500.0, 700.0, 180)
    }

    #[test]
    fn feature_vector_has_fixed_layout() {
        let v = featurize_plan(&sample_plan());
        assert_eq!(v.len(), N_PLAN_FEATURES);
        let ts = OpKind::TableScan.index();
        let hj = OpKind::HashJoin.index();
        let so = OpKind::Sort.index();
        assert_eq!(v[2 * ts], 2.0, "two table scans");
        assert_eq!(v[2 * ts + 1], 1200.0, "sum of scan est cardinalities");
        assert_eq!(v[2 * hj], 1.0);
        assert_eq!(v[2 * hj + 1], 500.0);
        assert_eq!(v[2 * so], 1.0);
        // Absent operators contribute zeros.
        let mj = OpKind::MergeJoin.index();
        assert_eq!(v[2 * mj], 0.0);
        assert_eq!(v[2 * mj + 1], 0.0);
    }

    #[test]
    fn structural_tail_encodes_depth_breakers_and_widths() {
        let v = featurize_plan(&sample_plan());
        let base = ALL_OP_KINDS.len() * 2;
        assert_eq!(v[base], 3.0, "sort -> join -> scans is depth 3");
        assert_eq!(v[base + 1], 4.0, "four plan nodes");
        assert_eq!(v[base + 2], 2.0, "hash join and sort are pipeline breakers");
        // Breaker cardinality: hash join buffers its build child (scan b,
        // 200 est rows); sort buffers its input (the join, 500 est rows).
        assert_eq!(v[base + 3], 700.0);
        let expected_mb = (200.0 * 80.0 + 500.0 * 180.0) / (1024.0 * 1024.0);
        assert!((v[base + 4] - expected_mb).abs() < 1e-12);
        assert_eq!(v[base + 5], 180.0, "widest row in the plan");
    }

    #[test]
    fn single_leaf_plan_has_depth_one_and_no_breakers() {
        let scan = PlanNode::leaf(
            Operator::TableScan { table: "t".into(), alias: "t".into() },
            10.0,
            12.0,
            40,
        );
        let v = featurize_plan(&scan);
        let base = ALL_OP_KINDS.len() * 2;
        assert_eq!(v[base], 1.0);
        assert_eq!(v[base + 1], 1.0);
        assert_eq!(v[base + 2], 0.0);
        assert_eq!(v[base + 3], 0.0);
        assert_eq!(v[base + 5], 40.0);
    }

    #[test]
    fn features_use_estimated_not_true_cardinalities() {
        let v = featurize_plan(&sample_plan());
        let hj = OpKind::HashJoin.index();
        assert_eq!(v[2 * hj + 1], 500.0, "est_rows (500), never true_rows (700)");
    }

    #[test]
    fn feature_names_align_with_vector() {
        let names = feature_names();
        assert_eq!(names.len(), N_PLAN_FEATURES);
        assert_eq!(names[0], "TBSCAN_count");
        assert_eq!(names[1], "TBSCAN_card");
        let hj = OpKind::HashJoin.index();
        assert_eq!(names[2 * hj], "HSJOIN_count");
    }

    #[test]
    fn identical_plans_have_identical_features() {
        assert_eq!(featurize_plan(&sample_plan()), featurize_plan(&sample_plan()));
    }
}
