//! Logical query specification — the `e` (expression) of the paper's query
//! triple `q = (e, p, m)`. A [`QuerySpec`] carries both the *visible*
//! statistics-based selectivity of each predicate and the *hidden* true
//! selectivity drawn by the workload generator from the data model.

/// A table reference with an alias (JOB-style queries reference the same
/// table multiple times under different aliases).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Catalog table name.
    pub table: String,
    /// Alias used in joins/predicates.
    pub alias: String,
}

impl TableRef {
    /// Creates a reference with an explicit alias.
    pub fn new(table: &str, alias: &str) -> Self {
        TableRef { table: table.to_string(), alias: alias.to_string() }
    }

    /// Creates a reference aliased by the table's own name.
    pub fn plain(table: &str) -> Self {
        TableRef::new(table, table)
    }
}

/// Comparison operator of a local predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmpOp {
    /// `col = literal`
    Eq,
    /// `col < literal`
    Lt,
    /// `col <= literal`
    Le,
    /// `col > literal`
    Gt,
    /// `col >= literal`
    Ge,
    /// `col BETWEEN a AND b` (the literal holds `"a AND b"`)
    Between,
    /// `col IN (...)` with the given list length
    InList(u8),
    /// `col LIKE literal`
    Like,
}

impl CmpOp {
    /// SQL rendering of the operator (the literal is appended separately).
    pub fn sql(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Between => "BETWEEN",
            CmpOp::InList(_) => "IN",
            CmpOp::Like => "LIKE",
        }
    }
}

/// A local (single-table) filter predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Alias of the table the predicate filters.
    pub table_alias: String,
    /// Filtered column.
    pub column: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Rendered literal (for SQL text and the text-based template learners).
    pub literal: String,
    /// Selectivity the optimizer derives from catalog statistics under the
    /// uniformity assumption (e.g. `1 / ndv` for equality).
    pub sel_est: f64,
    /// The actual selectivity against the (synthetic) data — drawn by the
    /// workload generator; never visible to the estimator.
    pub sel_true: f64,
}

/// An equi-join edge between two aliases.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinEdge {
    /// Left alias.
    pub left_alias: String,
    /// Left join column.
    pub left_col: String,
    /// Right alias.
    pub right_alias: String,
    /// Right join column.
    pub right_col: String,
}

/// Aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)`
    Count,
    /// `SUM(col)`
    Sum,
    /// `AVG(col)`
    Avg,
    /// `MIN(col)`
    Min,
    /// `MAX(col)`
    Max,
}

impl AggFunc {
    /// SQL keyword.
    pub fn sql(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// One aggregate expression in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Function.
    pub func: AggFunc,
    /// Alias of the aggregated column's table (ignored for `COUNT(*)`).
    pub table_alias: String,
    /// Aggregated column (ignored for `COUNT(*)`).
    pub column: String,
}

/// A full logical query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuerySpec {
    /// Stable query id within its workload corpus.
    pub id: u64,
    /// Referenced tables.
    pub tables: Vec<TableRef>,
    /// Equi-join edges.
    pub joins: Vec<JoinEdge>,
    /// Local predicates.
    pub predicates: Vec<Predicate>,
    /// GROUP BY columns as `(alias, column)` pairs.
    pub group_by: Vec<(String, String)>,
    /// Aggregates in the SELECT list.
    pub aggregates: Vec<Aggregate>,
    /// ORDER BY columns as `(alias, column)` pairs.
    pub order_by: Vec<(String, String)>,
    /// SELECT DISTINCT.
    pub distinct: bool,
    /// LIMIT / FETCH FIRST n ROWS.
    pub limit: Option<u64>,
}

impl QuerySpec {
    /// Predicates filtering a specific alias.
    pub fn predicates_for(&self, alias: &str) -> Vec<&Predicate> {
        self.predicates.iter().filter(|p| p.table_alias == alias).collect()
    }

    /// Resolves an alias to its catalog table name.
    pub fn table_of_alias(&self, alias: &str) -> Option<&str> {
        self.tables.iter().find(|t| t.alias == alias).map(|t| t.table.as_str())
    }

    /// True when the query has any blocking aggregation/sorting construct.
    pub fn has_memory_operators(&self) -> bool {
        !self.group_by.is_empty()
            || !self.order_by.is_empty()
            || self.distinct
            || self.tables.len() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> QuerySpec {
        QuerySpec {
            id: 1,
            tables: vec![TableRef::new("orders", "o"), TableRef::new("customer", "c")],
            joins: vec![JoinEdge {
                left_alias: "o".into(),
                left_col: "o_cust".into(),
                right_alias: "c".into(),
                right_col: "c_id".into(),
            }],
            predicates: vec![Predicate {
                table_alias: "c".into(),
                column: "c_nation".into(),
                op: CmpOp::Eq,
                literal: "'CA'".into(),
                sel_est: 0.04,
                sel_true: 0.08,
            }],
            group_by: vec![("c".into(), "c_nation".into())],
            aggregates: vec![Aggregate {
                func: AggFunc::Sum,
                table_alias: "o".into(),
                column: "o_total".into(),
            }],
            order_by: vec![],
            distinct: false,
            limit: None,
        }
    }

    #[test]
    fn predicates_for_filters_by_alias() {
        let s = spec();
        assert_eq!(s.predicates_for("c").len(), 1);
        assert!(s.predicates_for("o").is_empty());
    }

    #[test]
    fn alias_resolution() {
        let s = spec();
        assert_eq!(s.table_of_alias("o"), Some("orders"));
        assert_eq!(s.table_of_alias("x"), None);
    }

    #[test]
    fn memory_operator_detection() {
        let s = spec();
        assert!(s.has_memory_operators());
        let trivial = QuerySpec { tables: vec![TableRef::plain("t")], ..QuerySpec::default() };
        assert!(!trivial.has_memory_operators());
    }

    #[test]
    fn operator_sql_strings() {
        assert_eq!(CmpOp::Eq.sql(), "=");
        assert_eq!(CmpOp::Between.sql(), "BETWEEN");
        assert_eq!(CmpOp::InList(3).sql(), "IN");
        assert_eq!(CmpOp::Like.sql(), "LIKE");
        assert_eq!(AggFunc::Count.sql(), "COUNT");
        assert_eq!(AggFunc::Max.sql(), "MAX");
    }
}
