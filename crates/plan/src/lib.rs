//! # wmp-plan — mini query-planning substrate for the LearnedWMP reproduction
//!
//! The paper runs against a commercial DBMS whose optimizer produces query
//! execution plans annotated with estimated cardinalities. This crate rebuilds
//! that substrate from scratch:
//!
//! - [`schema`] / [`catalog`] — tables, columns, statistics, indexes;
//! - [`datamodel`] — the *hidden* truth (predicate correlations, join skew)
//!   that breaks the estimator's independence assumptions;
//! - [`query`] — logical query specifications, [`sql`] — SQL text rendering;
//! - [`card`] — textbook cardinality estimation (estimates vs. truths);
//! - [`planner`] — access paths, greedy join ordering, join/aggregation
//!   method selection, sort elision;
//! - [`plan`] — physical plan trees, [`features`] — the paper's
//!   `(count, Σ cardinality)`-per-operator featurization (Fig. 2) plus
//!   operator-tree structure features;
//! - [`resource`] — the multi-resource [`ResourceVector`] target,
//!   [`cost`] — the CPU/IO cost model that labels its non-memory
//!   components.

#![warn(missing_docs)]

pub mod card;
pub mod catalog;
pub mod cost;
pub mod datamodel;
pub mod error;
pub mod features;
pub mod plan;
pub mod planner;
pub mod query;
pub mod resource;
pub mod schema;
pub mod sql;

pub use catalog::Catalog;
pub use cost::{CardSource, CostModel, PlanCost};
pub use error::{PlanError, PlanResult};
pub use plan::{OpKind, Operator, PlanNode, ALL_OP_KINDS};
pub use planner::{Planner, PlannerConfig};
pub use query::QuerySpec;
pub use resource::{ResourceKind, ResourceVector, N_RESOURCES};
