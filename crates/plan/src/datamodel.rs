//! The synthetic "data" behind the catalog: pairwise predicate correlations
//! and join skew. This is what makes the textbook estimator's uniformity and
//! independence assumptions *wrong* in controlled, benchmark-specific ways —
//! the root cause of the paper's weak state-of-practice baseline.

use std::collections::HashMap;

/// Correlation and skew model for a database instance.
///
/// - **Predicate correlation** `rho ∈ [0, 1]` between two columns of the same
///   table: the true joint selectivity of predicates on both columns is
///   boosted from the independence product toward `min(s1, s2)`.
/// - **Join skew** `> 0`: multiplier on the true join output relative to the
///   estimator's `1 / max(ndv)` guess (JOB-style correlated joins have
///   skew ≫ 1, i.e. the estimator under-estimates).
#[derive(Debug, Clone, Default)]
pub struct CorrelationModel {
    predicate_rho: HashMap<(String, String, String), f64>,
    join_skew: HashMap<(String, String, String, String), f64>,
}

fn pair_key(table: &str, col_a: &str, col_b: &str) -> (String, String, String) {
    // Canonical order so lookups are symmetric.
    if col_a <= col_b {
        (table.to_string(), col_a.to_string(), col_b.to_string())
    } else {
        (table.to_string(), col_b.to_string(), col_a.to_string())
    }
}

fn join_key(
    table_a: &str,
    col_a: &str,
    table_b: &str,
    col_b: &str,
) -> (String, String, String, String) {
    if (table_a, col_a) <= (table_b, col_b) {
        (table_a.to_string(), col_a.to_string(), table_b.to_string(), col_b.to_string())
    } else {
        (table_b.to_string(), col_b.to_string(), table_a.to_string(), col_a.to_string())
    }
}

impl CorrelationModel {
    /// Empty model: all assumptions hold (everything independent/uniform).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares correlation `rho` between two columns of `table`.
    pub fn set_predicate_correlation(&mut self, table: &str, col_a: &str, col_b: &str, rho: f64) {
        self.predicate_rho.insert(pair_key(table, col_a, col_b), rho.clamp(0.0, 1.0));
    }

    /// Correlation between two columns (0 when undeclared).
    pub fn predicate_correlation(&self, table: &str, col_a: &str, col_b: &str) -> f64 {
        self.predicate_rho.get(&pair_key(table, col_a, col_b)).copied().unwrap_or(0.0)
    }

    /// Declares a join-skew multiplier for an equi-join edge.
    pub fn set_join_skew(
        &mut self,
        table_a: &str,
        col_a: &str,
        table_b: &str,
        col_b: &str,
        skew: f64,
    ) {
        self.join_skew.insert(join_key(table_a, col_a, table_b, col_b), skew.max(1e-6));
    }

    /// Join-skew multiplier (1 when undeclared: estimator assumption holds).
    pub fn join_skew(&self, table_a: &str, col_a: &str, table_b: &str, col_b: &str) -> f64 {
        self.join_skew.get(&join_key(table_a, col_a, table_b, col_b)).copied().unwrap_or(1.0)
    }
}

/// Joint selectivity of two predicates with correlation `rho`:
/// `rho = 0` gives the independence product, `rho = 1` gives `min(s1, s2)`
/// (fully correlated), with linear interpolation in between.
pub fn joint_selectivity(s1: f64, s2: f64, rho: f64) -> f64 {
    let independent = s1 * s2;
    let correlated = s1.min(s2);
    (independent + rho.clamp(0.0, 1.0) * (correlated - independent)).clamp(0.0, 1.0)
}

/// Folds a list of `(selectivity, rho_with_previous)` pairs into one joint
/// selectivity, applying [`joint_selectivity`] sequentially. The first
/// predicate's `rho` is ignored.
pub fn fold_selectivities(sels: &[(f64, f64)]) -> f64 {
    let mut acc = 1.0;
    for (i, &(s, rho)) in sels.iter().enumerate() {
        if i == 0 {
            acc = s;
        } else {
            acc = joint_selectivity(acc, s, rho);
        }
    }
    if sels.is_empty() {
        1.0
    } else {
        acc
    }
}

/// Textbook distinct-group estimate for a GROUP BY: the product of per-column
/// distinct counts capped by the input cardinality (Cardenas-style saturation:
/// with `n` rows thrown into `d` buckets, roughly `d·(1 − (1 − 1/d)ⁿ)`
/// buckets are hit).
pub fn estimate_groups(input_rows: f64, ndv_product: f64) -> f64 {
    if input_rows <= 0.0 || ndv_product <= 0.0 {
        return 0.0;
    }
    let d = ndv_product;
    let n = input_rows;
    if n / d > 50.0 {
        // Saturated: essentially every group is hit.
        return d.min(n);
    }
    (d * (1.0 - (1.0 - 1.0 / d).powf(n))).min(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_lookup_is_symmetric() {
        let mut m = CorrelationModel::new();
        m.set_predicate_correlation("t", "a", "b", 0.8);
        assert_eq!(m.predicate_correlation("t", "a", "b"), 0.8);
        assert_eq!(m.predicate_correlation("t", "b", "a"), 0.8);
        assert_eq!(m.predicate_correlation("t", "a", "c"), 0.0);
        assert_eq!(m.predicate_correlation("u", "a", "b"), 0.0);
    }

    #[test]
    fn join_skew_lookup_is_symmetric() {
        let mut m = CorrelationModel::new();
        m.set_join_skew("t", "id", "u", "t_id", 3.5);
        assert_eq!(m.join_skew("t", "id", "u", "t_id"), 3.5);
        assert_eq!(m.join_skew("u", "t_id", "t", "id"), 3.5);
        assert_eq!(m.join_skew("t", "id", "v", "t_id"), 1.0);
    }

    #[test]
    fn correlation_is_clamped() {
        let mut m = CorrelationModel::new();
        m.set_predicate_correlation("t", "a", "b", 2.0);
        assert_eq!(m.predicate_correlation("t", "a", "b"), 1.0);
    }

    #[test]
    fn joint_selectivity_interpolates() {
        assert!((joint_selectivity(0.1, 0.2, 0.0) - 0.02).abs() < 1e-12);
        assert!((joint_selectivity(0.1, 0.2, 1.0) - 0.1).abs() < 1e-12);
        let half = joint_selectivity(0.1, 0.2, 0.5);
        assert!(half > 0.02 && half < 0.1);
    }

    #[test]
    fn fold_selectivities_handles_edge_cases() {
        assert_eq!(fold_selectivities(&[]), 1.0);
        assert_eq!(fold_selectivities(&[(0.3, 0.9)]), 0.3);
        let two_indep = fold_selectivities(&[(0.5, 0.0), (0.5, 0.0)]);
        assert!((two_indep - 0.25).abs() < 1e-12);
        let two_corr = fold_selectivities(&[(0.5, 0.0), (0.5, 1.0)]);
        assert!((two_corr - 0.5).abs() < 1e-12);
    }

    #[test]
    fn group_estimate_is_capped_and_saturates() {
        // Few rows, many potential groups: roughly one group per row.
        let g = estimate_groups(10.0, 1e9);
        assert!((g - 10.0).abs() < 0.1);
        // Many rows, few groups: all groups hit.
        let g = estimate_groups(1e6, 100.0);
        assert!((g - 100.0).abs() < 1e-6);
        // Degenerate inputs.
        assert_eq!(estimate_groups(0.0, 10.0), 0.0);
        assert_eq!(estimate_groups(10.0, 0.0), 0.0);
        // Intermediate regime is between the two extremes.
        let g = estimate_groups(100.0, 100.0);
        assert!(g > 50.0 && g < 100.0);
    }
}
