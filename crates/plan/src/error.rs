//! Planning errors.

use std::fmt;

/// Errors produced while planning a query against a catalog.
///
/// Marked `#[non_exhaustive]`: planners gain failure modes as operator
/// coverage grows; downstream matches carry a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanError {
    /// The query references a table the catalog does not define.
    UnknownTable(String),
    /// The query references a column its table does not define.
    UnknownColumn {
        /// Table searched.
        table: String,
        /// Missing column.
        column: String,
    },
    /// The query references an alias its FROM clause does not bind.
    UnknownAlias(String),
    /// The query has no tables.
    NoTables,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            PlanError::UnknownColumn { table, column } => {
                write!(f, "unknown column: {table}.{column}")
            }
            PlanError::UnknownAlias(a) => write!(f, "unknown alias: {a}"),
            PlanError::NoTables => write!(f, "query references no tables"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Convenience alias.
pub type PlanResult<T> = Result<T, PlanError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(PlanError::UnknownTable("t".into()).to_string().contains("t"));
        assert!(PlanError::UnknownColumn { table: "t".into(), column: "c".into() }
            .to_string()
            .contains("t.c"));
        assert!(PlanError::UnknownAlias("x".into()).to_string().contains("x"));
        assert!(PlanError::NoTables.to_string().contains("no tables"));
    }
}
