//! Multi-resource targets: the [`ResourceVector`] label/prediction triple
//! (working memory, CPU time, I/O pages) threaded through the whole pipeline.
//!
//! The paper predicts a single number — workload memory — but scheduling
//! decisions (placement, deferral, admission) need joint memory/CPU/IO
//! costs. Every layer that used to carry a scalar `true_memory_mb` now
//! carries one of these vectors; scalar call sites project the memory
//! component via [`ResourceVector::memory_mb`].

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Number of resource dimensions in a [`ResourceVector`].
pub const N_RESOURCES: usize = 3;

/// Identifies one dimension of a [`ResourceVector`] — used by evaluation
/// reports, observability gauges, and admission budgets to iterate the
/// resource dimensions generically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Peak working memory, in megabytes.
    Memory,
    /// CPU time, in milliseconds.
    Cpu,
    /// Logical I/O volume, in pages.
    Io,
}

impl ResourceKind {
    /// Every resource dimension, in the stable [`ResourceVector`] layout
    /// order (memory, CPU, I/O).
    pub const ALL: [ResourceKind; N_RESOURCES] =
        [ResourceKind::Memory, ResourceKind::Cpu, ResourceKind::Io];

    /// Position in [`ResourceKind::ALL`] and in [`ResourceVector::as_array`].
    pub fn index(self) -> usize {
        match self {
            ResourceKind::Memory => 0,
            ResourceKind::Cpu => 1,
            ResourceKind::Io => 2,
        }
    }

    /// Short stable name used in reports and metric names.
    pub fn label(self) -> &'static str {
        match self {
            ResourceKind::Memory => "memory",
            ResourceKind::Cpu => "cpu",
            ResourceKind::Io => "io",
        }
    }

    /// Unit suffix for display ("MB", "ms", "pages").
    pub fn unit(self) -> &'static str {
        match self {
            ResourceKind::Memory => "MB",
            ResourceKind::Cpu => "ms",
            ResourceKind::Io => "pages",
        }
    }
}

/// A joint (memory, CPU, I/O) resource amount: the multi-output target the
/// regression pipeline learns and the prediction the serving/scheduling
/// layers consume.
///
/// The struct is plain data (`Copy`), additive, and component-wise
/// comparable; aggregation over a workload is either a component-wise sum
/// (total demand) or a component-wise max (peak demand) — see
/// `LabelMode` in the core crate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceVector {
    /// Peak working memory in megabytes.
    pub memory_mb: f64,
    /// CPU time in milliseconds.
    pub cpu_ms: f64,
    /// Logical I/O volume in pages.
    pub io_pages: f64,
}

impl ResourceVector {
    /// The all-zero vector (additive identity).
    pub const ZERO: ResourceVector = ResourceVector { memory_mb: 0.0, cpu_ms: 0.0, io_pages: 0.0 };

    /// Builds a vector from its three components.
    pub fn new(memory_mb: f64, cpu_ms: f64, io_pages: f64) -> Self {
        ResourceVector { memory_mb, cpu_ms, io_pages }
    }

    /// A memory-only vector (CPU and I/O zero) — the projection used when
    /// interoperating with pre-multi-resource artifacts and call sites.
    pub fn memory_only(memory_mb: f64) -> Self {
        ResourceVector { memory_mb, cpu_ms: 0.0, io_pages: 0.0 }
    }

    /// The components as an array in [`ResourceKind::ALL`] order.
    pub fn as_array(self) -> [f64; N_RESOURCES] {
        [self.memory_mb, self.cpu_ms, self.io_pages]
    }

    /// Inverse of [`ResourceVector::as_array`].
    pub fn from_array(a: [f64; N_RESOURCES]) -> Self {
        ResourceVector { memory_mb: a[0], cpu_ms: a[1], io_pages: a[2] }
    }

    /// Builds a vector from a possibly-short slice in [`ResourceKind::ALL`]
    /// order; missing trailing components are zero. This is how predictions
    /// from single-output (memory-only) models, e.g. loaded from v1
    /// artifacts, are widened.
    pub fn from_partial(values: &[f64]) -> Self {
        let mut a = [0.0; N_RESOURCES];
        for (slot, v) in a.iter_mut().zip(values) {
            *slot = *v;
        }
        ResourceVector::from_array(a)
    }

    /// The component for `kind`.
    pub fn get(self, kind: ResourceKind) -> f64 {
        self.as_array()[kind.index()]
    }

    /// Component-wise maximum (peak aggregation).
    pub fn component_max(self, other: Self) -> Self {
        ResourceVector {
            memory_mb: self.memory_mb.max(other.memory_mb),
            cpu_ms: self.cpu_ms.max(other.cpu_ms),
            io_pages: self.io_pages.max(other.io_pages),
        }
    }

    /// Component-wise absolute difference (per-resource error).
    pub fn abs_diff(self, other: Self) -> Self {
        ResourceVector {
            memory_mb: (self.memory_mb - other.memory_mb).abs(),
            cpu_ms: (self.cpu_ms - other.cpu_ms).abs(),
            io_pages: (self.io_pages - other.io_pages).abs(),
        }
    }

    /// All components scaled by `factor`.
    pub fn scale(self, factor: f64) -> Self {
        ResourceVector {
            memory_mb: self.memory_mb * factor,
            cpu_ms: self.cpu_ms * factor,
            io_pages: self.io_pages * factor,
        }
    }

    /// `true` iff every component is finite.
    pub fn is_finite(self) -> bool {
        self.as_array().iter().all(|v| v.is_finite())
    }
}

impl Add for ResourceVector {
    type Output = ResourceVector;
    fn add(self, rhs: Self) -> Self {
        ResourceVector {
            memory_mb: self.memory_mb + rhs.memory_mb,
            cpu_ms: self.cpu_ms + rhs.cpu_ms,
            io_pages: self.io_pages + rhs.io_pages,
        }
    }
}

impl AddAssign for ResourceVector {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sum for ResourceVector {
    fn sum<I: Iterator<Item = ResourceVector>>(iter: I) -> Self {
        iter.fold(ResourceVector::ZERO, Add::add)
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} MB / {:.2} ms / {:.0} pages", self.memory_mb, self.cpu_ms, self.io_pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_index_into_the_array_layout() {
        let v = ResourceVector::new(1.0, 2.0, 3.0);
        for kind in ResourceKind::ALL {
            assert_eq!(v.get(kind), v.as_array()[kind.index()]);
        }
        assert_eq!(v.get(ResourceKind::Memory), 1.0);
        assert_eq!(v.get(ResourceKind::Cpu), 2.0);
        assert_eq!(v.get(ResourceKind::Io), 3.0);
    }

    #[test]
    fn array_round_trip_and_partial_widening() {
        let v = ResourceVector::new(4.0, 5.0, 6.0);
        assert_eq!(ResourceVector::from_array(v.as_array()), v);
        assert_eq!(ResourceVector::from_partial(&[7.0]), ResourceVector::memory_only(7.0));
        assert_eq!(ResourceVector::from_partial(&[]), ResourceVector::ZERO);
        assert_eq!(
            ResourceVector::from_partial(&[1.0, 2.0, 3.0, 99.0]),
            ResourceVector::new(1.0, 2.0, 3.0),
            "extra components beyond the known three are ignored"
        );
    }

    #[test]
    fn sum_max_and_scale_are_component_wise() {
        let a = ResourceVector::new(1.0, 20.0, 3.0);
        let b = ResourceVector::new(2.0, 10.0, 30.0);
        assert_eq!(a + b, ResourceVector::new(3.0, 30.0, 33.0));
        assert_eq!(a.component_max(b), ResourceVector::new(2.0, 20.0, 30.0));
        assert_eq!(a.scale(2.0), ResourceVector::new(2.0, 40.0, 6.0));
        let total: ResourceVector = [a, b].into_iter().sum();
        assert_eq!(total, a + b);
        let mut acc = ResourceVector::ZERO;
        acc += a;
        assert_eq!(acc, a);
    }

    #[test]
    fn abs_diff_and_finiteness() {
        let a = ResourceVector::new(1.0, 5.0, 10.0);
        let b = ResourceVector::new(3.0, 2.0, 10.0);
        assert_eq!(a.abs_diff(b), ResourceVector::new(2.0, 3.0, 0.0));
        assert!(a.is_finite());
        assert!(!ResourceVector::new(f64::NAN, 0.0, 0.0).is_finite());
    }

    #[test]
    fn display_names_all_units() {
        let text = ResourceVector::new(1.5, 2.25, 30.0).to_string();
        assert!(text.contains("MB") && text.contains("ms") && text.contains("pages"), "{text}");
    }
}
