//! Logical schema objects: column types, per-column statistics, and tables.
//!
//! The statistics mirror what a DBMS catalog keeps (row counts, distinct
//! counts, null fractions, value-distribution hints) — exactly the inputs a
//! textbook cardinality estimator consumes.

/// SQL column type; widths drive row-size estimates, which in turn drive the
/// working-memory model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 32-bit integer.
    Int,
    /// 64-bit integer.
    BigInt,
    /// Fixed-point decimal (stored as 8 bytes here).
    Decimal,
    /// Fixed-width character string.
    Char(u16),
    /// Variable-width string; the argument is the declared maximum, the
    /// estimator assumes half of it on average.
    Varchar(u16),
    /// Calendar date (4 bytes).
    Date,
}

impl ColumnType {
    /// Estimated stored width in bytes (the average width for `Varchar`).
    pub fn width_bytes(self) -> u32 {
        match self {
            ColumnType::Int => 4,
            ColumnType::BigInt => 8,
            ColumnType::Decimal => 8,
            ColumnType::Char(w) => w as u32,
            ColumnType::Varchar(w) => (w as u32 / 2).max(1),
            ColumnType::Date => 4,
        }
    }
}

/// Value-frequency distribution of a column, used when the workload generator
/// draws the *true* selectivity of predicates (skewed columns make the
/// uniformity assumption wrong).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Every distinct value is equally frequent — the estimator's assumption
    /// holds and true selectivities sit close to `1 / ndv`.
    Uniform,
    /// Zipf-like skew with the given exponent (larger = more skew). Equality
    /// predicates on such columns have heavy-tailed true selectivities.
    Zipf(f64),
}

/// A column definition plus catalog statistics.
#[derive(Debug, Clone)]
pub struct Column {
    /// Column name (unique within its table).
    pub name: String,
    /// SQL type.
    pub ty: ColumnType,
    /// Number of distinct values.
    pub ndv: u64,
    /// Fraction of NULLs in `[0, 1)`.
    pub null_frac: f64,
    /// Value-frequency distribution.
    pub distribution: Distribution,
}

impl Column {
    /// Convenience constructor for a uniform, non-null column.
    pub fn new(name: &str, ty: ColumnType, ndv: u64) -> Self {
        Column {
            name: name.to_string(),
            ty,
            ndv,
            null_frac: 0.0,
            distribution: Distribution::Uniform,
        }
    }

    /// Builder-style override of the distribution.
    pub fn with_distribution(mut self, d: Distribution) -> Self {
        self.distribution = d;
        self
    }

    /// Builder-style override of the null fraction.
    pub fn with_null_frac(mut self, f: f64) -> Self {
        self.null_frac = f;
        self
    }
}

/// A base table with statistics.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name (unique within the catalog).
    pub name: String,
    /// Cardinality (row count).
    pub row_count: u64,
    /// Column definitions.
    pub columns: Vec<Column>,
}

impl Table {
    /// Creates a table from parts.
    pub fn new(name: &str, row_count: u64, columns: Vec<Column>) -> Self {
        Table { name: name.to_string(), row_count, columns }
    }

    /// Looks up a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Average stored row width in bytes (sum of column widths plus a small
    /// per-row header, as real systems charge).
    pub fn row_width(&self) -> u32 {
        let data: u32 = self.columns.iter().map(|c| c.ty.width_bytes()).sum();
        data + 16 // tuple header
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_type_widths() {
        assert_eq!(ColumnType::Int.width_bytes(), 4);
        assert_eq!(ColumnType::BigInt.width_bytes(), 8);
        assert_eq!(ColumnType::Decimal.width_bytes(), 8);
        assert_eq!(ColumnType::Char(10).width_bytes(), 10);
        assert_eq!(ColumnType::Varchar(100).width_bytes(), 50);
        assert_eq!(ColumnType::Varchar(1).width_bytes(), 1, "avg width never rounds to zero");
        assert_eq!(ColumnType::Date.width_bytes(), 4);
    }

    #[test]
    fn table_row_width_sums_columns_plus_header() {
        let t = Table::new(
            "t",
            100,
            vec![Column::new("a", ColumnType::Int, 10), Column::new("b", ColumnType::Char(20), 5)],
        );
        assert_eq!(t.row_width(), 4 + 20 + 16);
    }

    #[test]
    fn column_lookup() {
        let t = Table::new("t", 1, vec![Column::new("a", ColumnType::Int, 10)]);
        assert!(t.column("a").is_some());
        assert!(t.column("zz").is_none());
    }

    #[test]
    fn builders_set_fields() {
        let c = Column::new("a", ColumnType::Int, 10)
            .with_distribution(Distribution::Zipf(1.1))
            .with_null_frac(0.25);
        assert_eq!(c.distribution, Distribution::Zipf(1.1));
        assert_eq!(c.null_frac, 0.25);
    }
}
