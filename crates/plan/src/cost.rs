//! Per-query CPU and I/O cost model over physical plans — the source of the
//! non-memory components of a [`crate::resource::ResourceVector`].
//!
//! The memory component of a query's resource label comes from the working
//! memory simulator (the sim crate); CPU and I/O come from this textbook
//! cost model driven by the same per-operator cardinalities. Both an
//! *estimated* variant (optimizer `est_rows`, what a DBMS-style heuristic
//! would reserve) and a *true* variant (`true_rows`, the hidden ground
//! truth that labels training data) are exposed.

use crate::plan::{OpKind, Operator, PlanNode};
use crate::resource::ResourceVector;

/// Which cardinality annotation drives the cost walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CardSource {
    /// Optimizer-estimated cardinalities (visible at planning time).
    Estimated,
    /// Actual cardinalities against the synthetic data (hidden truth).
    True,
}

/// CPU and I/O cost of one plan, in the label units used throughout the
/// pipeline (milliseconds, pages).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlanCost {
    /// CPU time in milliseconds.
    pub cpu_ms: f64,
    /// Logical I/O volume in pages.
    pub io_pages: f64,
}

/// Textbook per-operator cost model: CPU charged per tuple processed (with
/// an `n log n` term for sorts), I/O charged per page produced at leaf
/// scans plus spill traffic for blocking operators whose working set
/// exceeds the in-memory budget.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// CPU cost of streaming one tuple through a simple operator, in
    /// microseconds.
    pub tuple_us: f64,
    /// CPU cost of one hash-table insert/probe, in microseconds.
    pub hash_tuple_us: f64,
    /// CPU cost per comparison in a sort (multiplied by `n log2 n`), in
    /// microseconds.
    pub sort_cmp_us: f64,
    /// Page size in bytes for I/O accounting.
    pub page_bytes: f64,
    /// Working-set budget in megabytes above which blocking operators
    /// (sort, hash build, hash aggregate) spill to disk.
    pub spill_budget_mb: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            tuple_us: 0.08,
            hash_tuple_us: 0.25,
            sort_cmp_us: 0.02,
            page_bytes: 8192.0,
            spill_budget_mb: 64.0,
        }
    }
}

impl CostModel {
    fn rows(node: &PlanNode, source: CardSource) -> f64 {
        match source {
            CardSource::Estimated => node.est_rows,
            CardSource::True => node.true_rows,
        }
        .max(0.0)
    }

    fn bytes(node: &PlanNode, source: CardSource) -> f64 {
        Self::rows(node, source) * f64::from(node.row_width)
    }

    fn pages(&self, bytes: f64) -> f64 {
        (bytes / self.page_bytes).ceil()
    }

    /// Spill pages for a blocking operator buffering `bytes`: zero while it
    /// fits the budget, write-then-read traffic once it does not.
    fn spill_pages(&self, bytes: f64) -> f64 {
        let budget = self.spill_budget_mb * 1024.0 * 1024.0;
        if bytes > budget {
            2.0 * self.pages(bytes - budget)
        } else {
            0.0
        }
    }

    /// Costs one plan under the chosen cardinality source.
    pub fn cost(&self, plan: &PlanNode, source: CardSource) -> PlanCost {
        let mut cpu_us = 0.0;
        let mut io_pages = 0.0;
        for node in plan.iter() {
            let out_rows = Self::rows(node, source);
            let input_rows: f64 = node.children.iter().map(|c| Self::rows(c, source)).sum();
            match &node.op {
                Operator::TableScan { .. } => {
                    cpu_us += out_rows * self.tuple_us;
                    io_pages += self.pages(Self::bytes(node, source));
                }
                Operator::IndexScan { .. } => {
                    // Random access: cheaper volume, pricier per row.
                    cpu_us += out_rows * 2.0 * self.tuple_us;
                    io_pages += self.pages(Self::bytes(node, source)) + out_rows.min(64.0);
                }
                Operator::HashJoin => {
                    let build = node.children.get(1).map_or(0.0, |c| Self::rows(c, source));
                    let build_bytes = node.children.get(1).map_or(0.0, |c| Self::bytes(c, source));
                    let probe = node.children.first().map_or(0.0, |c| Self::rows(c, source));
                    cpu_us += (build + probe) * self.hash_tuple_us + out_rows * self.tuple_us;
                    io_pages += self.spill_pages(build_bytes);
                }
                Operator::NestedLoopJoin => {
                    let outer = node.children.first().map_or(0.0, |c| Self::rows(c, source));
                    // Index-driven inner lookups: one probe per outer row.
                    cpu_us += outer * 2.0 * self.tuple_us + out_rows * self.tuple_us;
                }
                Operator::MergeJoin => {
                    cpu_us += (input_rows + out_rows) * self.tuple_us;
                }
                Operator::Sort { .. } => {
                    let n = input_rows.max(1.0);
                    cpu_us += n * n.log2().max(1.0) * self.sort_cmp_us;
                    let sort_bytes = node.children.first().map_or(0.0, |c| Self::bytes(c, source));
                    io_pages += self.spill_pages(sort_bytes);
                }
                Operator::HashAggregate { n_aggs, .. } => {
                    cpu_us += input_rows * (self.hash_tuple_us + *n_aggs as f64 * self.tuple_us);
                    io_pages += self.spill_pages(Self::bytes(node, source));
                }
                Operator::StreamAggregate { n_aggs } => {
                    cpu_us += input_rows * (1.0 + *n_aggs as f64) * self.tuple_us;
                }
                Operator::HashDistinct => {
                    cpu_us += input_rows * self.hash_tuple_us;
                    io_pages += self.spill_pages(Self::bytes(node, source));
                }
                Operator::Limit { .. } => {
                    cpu_us += out_rows * 0.1 * self.tuple_us;
                }
            }
        }
        PlanCost { cpu_ms: cpu_us / 1000.0, io_pages }
    }

    /// CPU/IO under true cardinalities (ground-truth labels).
    pub fn true_cost(&self, plan: &PlanNode) -> PlanCost {
        self.cost(plan, CardSource::True)
    }

    /// CPU/IO under estimated cardinalities (DBMS-style estimate).
    pub fn estimated_cost(&self, plan: &PlanNode) -> PlanCost {
        self.cost(plan, CardSource::Estimated)
    }

    /// Widens a [`PlanCost`] with a memory component into a full
    /// [`ResourceVector`].
    pub fn with_memory(cost: PlanCost, memory_mb: f64) -> ResourceVector {
        ResourceVector { memory_mb, cpu_ms: cost.cpu_ms, io_pages: cost.io_pages }
    }
}

/// Operators that materialize their input (hash build, sort, hash
/// aggregate/distinct) — the pipeline breakers whose buffered rows drive
/// both memory footprints and spill I/O.
pub fn is_pipeline_breaker(kind: OpKind) -> bool {
    matches!(kind, OpKind::HashJoin | OpKind::Sort | OpKind::HashAggregate | OpKind::HashDistinct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Operator, PlanNode};

    fn scan(rows_est: f64, rows_true: f64, width: u32) -> PlanNode {
        PlanNode::leaf(
            Operator::TableScan { table: "t".into(), alias: "t".into() },
            rows_est,
            rows_true,
            width,
        )
    }

    fn join_plan(est: f64, truth: f64) -> PlanNode {
        let a = scan(est, truth, 100);
        let b = scan(est / 10.0, truth / 10.0, 50);
        PlanNode {
            op: Operator::HashJoin,
            children: vec![a, b],
            est_rows: est,
            true_rows: truth,
            row_width: 150,
        }
    }

    #[test]
    fn cost_scales_with_cardinality() {
        let m = CostModel::default();
        let small = m.true_cost(&join_plan(100.0, 100.0));
        let large = m.true_cost(&join_plan(100.0, 100_000.0));
        assert!(large.cpu_ms > 10.0 * small.cpu_ms);
        assert!(large.io_pages > small.io_pages);
    }

    #[test]
    fn estimated_and_true_costs_diverge_with_misestimation() {
        let m = CostModel::default();
        let plan = join_plan(100.0, 50_000.0);
        let est = m.estimated_cost(&plan);
        let truth = m.true_cost(&plan);
        assert!(truth.cpu_ms > est.cpu_ms, "{truth:?} vs {est:?}");
    }

    #[test]
    fn sorts_cost_superlinearly_and_spill_when_large() {
        let m = CostModel::default();
        let small_sort = PlanNode::unary(
            Operator::Sort { keys: vec!["t.x".into()] },
            scan(1_000.0, 1_000.0, 100),
            1_000.0,
            1_000.0,
            100,
        );
        let big_sort = PlanNode::unary(
            Operator::Sort { keys: vec!["t.x".into()] },
            scan(2_000_000.0, 2_000_000.0, 100),
            2_000_000.0,
            2_000_000.0,
            100,
        );
        let small = m.true_cost(&small_sort);
        let big = m.true_cost(&big_sort);
        // 2000x the rows must cost more than 2000x the CPU (n log n).
        assert!(big.cpu_ms > 2_000.0 * small.cpu_ms);
        // 2M × 100 B ≈ 190 MB input exceeds the 64 MB budget → spill I/O
        // beyond the scan's own pages.
        let scan_only = m.true_cost(&scan(2_000_000.0, 2_000_000.0, 100));
        assert!(big.io_pages > scan_only.io_pages);
        assert_eq!(small.io_pages, m.true_cost(&scan(1_000.0, 1_000.0, 100)).io_pages);
    }

    #[test]
    fn costs_are_deterministic_and_finite() {
        let m = CostModel::default();
        let plan = join_plan(500.0, 700.0);
        let a = m.true_cost(&plan);
        let b = m.true_cost(&plan);
        assert_eq!(a, b);
        assert!(a.cpu_ms.is_finite() && a.io_pages.is_finite());
        assert!(a.cpu_ms > 0.0 && a.io_pages > 0.0);
    }

    #[test]
    fn pipeline_breakers_are_the_materializing_operators() {
        use crate::plan::OpKind;
        assert!(is_pipeline_breaker(OpKind::HashJoin));
        assert!(is_pipeline_breaker(OpKind::Sort));
        assert!(is_pipeline_breaker(OpKind::HashAggregate));
        assert!(is_pipeline_breaker(OpKind::HashDistinct));
        assert!(!is_pipeline_breaker(OpKind::TableScan));
        assert!(!is_pipeline_breaker(OpKind::MergeJoin));
        assert!(!is_pipeline_breaker(OpKind::StreamAggregate));
        assert!(!is_pipeline_breaker(OpKind::Limit));
    }

    #[test]
    fn with_memory_widens_to_a_resource_vector() {
        let v = CostModel::with_memory(PlanCost { cpu_ms: 2.0, io_pages: 30.0 }, 12.0);
        assert_eq!(v, ResourceVector::new(12.0, 2.0, 30.0));
    }
}
