//! # wmp-text — text featurization of SQL queries
//!
//! The paper's Fig. 9 compares the plan-feature template learner against four
//! text-based alternatives. This crate provides the text side:
//!
//! - [`token`] — SQL tokenizer and keyword list;
//! - [`bow::Vectorizer`] — bag-of-words and schema-aware "text mining"
//!   count vectorizers;
//! - [`embed::WordEmbedder`] — count-based word embeddings (windowed
//!   co-occurrence → PPMI → truncated eigendecomposition), with mean-pooled
//!   query vectors.

#![warn(missing_docs)]

pub mod bow;
pub mod embed;
pub mod token;

pub use bow::Vectorizer;
pub use embed::{EmbedConfig, WordEmbedder};
