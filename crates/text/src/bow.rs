//! Bag-of-words and schema-aware ("text mining") vectorizers — two of the
//! alternative template-learning featurizations the paper compares in Fig. 9.

use std::collections::HashMap;

use crate::token::{is_keyword, tokenize};

/// Token-count vectorizer over a learned vocabulary.
///
/// - **Bag-of-words mode** keeps the `max_features` most frequent tokens from
///   the corpus indiscriminately (including literal fragments), reproducing
///   the paper's "numerous keywords" limitation.
/// - **Text-mining mode** ([`Vectorizer::text_mining`]) restricts the
///   vocabulary to database object names and SQL clauses, as §IV-C describes.
#[derive(Debug, Clone)]
pub struct Vectorizer {
    vocab: HashMap<String, usize>,
    names: Vec<String>,
}

impl Vectorizer {
    /// Learns a bag-of-words vocabulary: the `max_features` most frequent
    /// tokens across the corpus (ties broken alphabetically for determinism).
    pub fn bag_of_words(corpus: &[String], max_features: usize) -> Self {
        let mut freq: HashMap<String, usize> = HashMap::new();
        for sql in corpus {
            for tok in tokenize(sql) {
                *freq.entry(tok).or_insert(0) += 1;
            }
        }
        let mut by_freq: Vec<(String, usize)> = freq.into_iter().collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        by_freq.truncate(max_features);
        let mut names: Vec<String> = by_freq.into_iter().map(|(t, _)| t).collect();
        names.sort();
        let vocab = names.iter().cloned().enumerate().map(|(i, t)| (t, i)).collect();
        Vectorizer { vocab, names }
    }

    /// Builds a text-mining vocabulary: only tokens that are database object
    /// names (from the catalog) or SQL keywords; all other tokens (literals,
    /// aliases) are ignored.
    pub fn text_mining(identifiers: &[String]) -> Self {
        let mut names: Vec<String> = identifiers.iter().map(|s| s.to_lowercase()).collect();
        names.extend(crate::token::SQL_KEYWORDS.iter().map(|s| s.to_string()));
        names.sort();
        names.dedup();
        let vocab = names.iter().cloned().enumerate().map(|(i, t)| (t, i)).collect();
        Vectorizer { vocab, names }
    }

    /// Rebuilds a vectorizer from a vocabulary in feature order — the inverse
    /// of [`Vectorizer::vocabulary`], used to reload persisted models. Token
    /// order is preserved exactly, so feature indices match the original.
    pub fn from_vocabulary(names: Vec<String>) -> Self {
        let vocab = names.iter().cloned().enumerate().map(|(i, t)| (t, i)).collect();
        Vectorizer { vocab, names }
    }

    /// Vocabulary size (feature-vector length).
    pub fn vocab_size(&self) -> usize {
        self.names.len()
    }

    /// Vocabulary tokens in feature order.
    pub fn vocabulary(&self) -> &[String] {
        &self.names
    }

    /// Token-count vector of one SQL string (out-of-vocabulary tokens are
    /// dropped).
    pub fn vectorize(&self, sql: &str) -> Vec<f64> {
        let mut v = vec![0.0; self.names.len()];
        for tok in tokenize(sql) {
            if let Some(&i) = self.vocab.get(&tok) {
                v[i] += 1.0;
            }
        }
        v
    }

    /// Vectorizes a whole corpus.
    pub fn vectorize_all(&self, corpus: &[String]) -> Vec<Vec<f64>> {
        corpus.iter().map(|s| self.vectorize(s)).collect()
    }
}

/// True when a token would enter a text-mining vocabulary built over the
/// given identifier list.
pub fn is_schema_token(identifiers: &[String], token: &str) -> bool {
    is_keyword(token) || identifiers.iter().any(|i| i.eq_ignore_ascii_case(token))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        vec![
            "SELECT a.x FROM alpha AS a WHERE a.x = 'V1'".to_string(),
            "SELECT a.x FROM alpha AS a WHERE a.y = 'V2'".to_string(),
            "SELECT b.z FROM beta AS b GROUP BY b.z".to_string(),
        ]
    }

    #[test]
    fn bag_of_words_keeps_frequent_tokens() {
        let v = Vectorizer::bag_of_words(&corpus(), 8);
        assert!(v.vocab_size() <= 8);
        assert!(v.vocabulary().contains(&"select".to_string()));
        assert!(v.vocabulary().contains(&"a".to_string()));
    }

    #[test]
    fn max_features_caps_vocabulary() {
        let v = Vectorizer::bag_of_words(&corpus(), 3);
        assert_eq!(v.vocab_size(), 3);
    }

    #[test]
    fn vectorize_counts_tokens() {
        let v = Vectorizer::bag_of_words(&corpus(), 100);
        let vec = v.vectorize("SELECT a.x FROM alpha AS a WHERE a.x = 'V1'");
        let idx = v.vocabulary().iter().position(|t| t == "a").unwrap();
        assert_eq!(vec[idx], 3.0, "alias `a` appears three times");
        let x_idx = v.vocabulary().iter().position(|t| t == "x").unwrap();
        assert_eq!(vec[x_idx], 2.0);
    }

    #[test]
    fn out_of_vocabulary_tokens_are_dropped() {
        let v = Vectorizer::bag_of_words(&corpus(), 100);
        let vec = v.vectorize("SELECT zzz FROM unknown_table");
        let known: f64 = vec.iter().sum();
        // Only `select` and `from` are known.
        assert_eq!(known, 2.0);
    }

    #[test]
    fn text_mining_restricts_to_schema_and_keywords() {
        let idents = vec!["alpha".to_string(), "x".to_string()];
        let v = Vectorizer::text_mining(&idents);
        let vec = v.vectorize("SELECT a.x FROM alpha AS a WHERE a.x = 'V1'");
        let total: f64 = vec.iter().sum();
        // select, x, from, alpha, as, where, x = 7 matches; alias `a` and
        // literal v1 are excluded.
        assert_eq!(total, 7.0);
        assert!(!v.vocabulary().contains(&"v1".to_string()));
    }

    #[test]
    fn deterministic_vocabulary_order() {
        let a = Vectorizer::bag_of_words(&corpus(), 10);
        let b = Vectorizer::bag_of_words(&corpus(), 10);
        assert_eq!(a.vocabulary(), b.vocabulary());
    }

    #[test]
    fn schema_token_check() {
        let idents = vec!["customer".to_string()];
        assert!(is_schema_token(&idents, "customer"));
        assert!(is_schema_token(&idents, "select"));
        assert!(!is_schema_token(&idents, "random_literal"));
    }

    #[test]
    fn vectorize_all_matches_single_calls() {
        let v = Vectorizer::bag_of_words(&corpus(), 10);
        let all = v.vectorize_all(&corpus());
        assert_eq!(all.len(), 3);
        assert_eq!(all[0], v.vectorize(&corpus()[0]));
    }
}
