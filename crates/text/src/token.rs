//! SQL tokenization for the text-based template learners (paper §IV-C).

/// SQL keywords recognized by the text-mining vocabulary builder.
pub const SQL_KEYWORDS: [&str; 24] = [
    "select", "distinct", "from", "where", "and", "or", "group", "by", "order", "having", "fetch",
    "first", "rows", "only", "as", "in", "between", "like", "sum", "count", "avg", "min", "max",
    "not",
];

/// Lower-cases and splits SQL text into identifier/keyword/number tokens.
/// Punctuation and operators separate tokens; quoted literals contribute
/// their inner word characters (so `'CA'` becomes `ca`), matching how naive
/// bag-of-words pipelines treat query text.
pub fn tokenize(sql: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in sql.chars() {
        if ch.is_alphanumeric() || ch == '_' {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// True when the token is a SQL keyword.
pub fn is_keyword(token: &str) -> bool {
    SQL_KEYWORDS.contains(&token)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_simple_query() {
        let t = tokenize("SELECT c.name FROM customer AS c WHERE c.nation = 'CA'");
        assert_eq!(
            t,
            vec![
                "select", "c", "name", "from", "customer", "as", "c", "where", "c", "nation", "ca"
            ]
        );
    }

    #[test]
    fn underscores_stay_inside_identifiers() {
        let t = tokenize("ss_sold_date_sk = 42");
        assert_eq!(t, vec!["ss_sold_date_sk", "42"]);
    }

    #[test]
    fn punctuation_separates_tokens() {
        let t = tokenize("SUM(o.total), COUNT(*)");
        assert_eq!(t, vec!["sum", "o", "total", "count"]);
    }

    #[test]
    fn empty_and_symbol_only_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("()=<>,;").is_empty());
    }

    #[test]
    fn keyword_detection() {
        assert!(is_keyword("select"));
        assert!(is_keyword("between"));
        assert!(!is_keyword("customer"));
    }
}
