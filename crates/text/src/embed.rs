//! Word embeddings for query text — the fifth template-learning alternative
//! in the paper's Fig. 9 comparison.
//!
//! Classic count-based pipeline: windowed co-occurrence counts over the query
//! corpus → positive pointwise mutual information (PPMI) → truncated
//! eigendecomposition by subspace (orthogonal) iteration. A query's vector is
//! the mean of its tokens' embeddings, which addresses the two bag-of-words
//! limitations the paper names: vocabulary size (dimension is `dim`, not
//! `|vocab|`) and keyword proximity (co-occurrence captures it).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wmp_mlkit::linalg::{dot, Matrix};

use crate::token::tokenize;

/// Hyper-parameters for [`WordEmbedder`].
#[derive(Debug, Clone)]
pub struct EmbedConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Co-occurrence window radius (tokens at distance ≤ window co-occur).
    pub window: usize,
    /// Keep the `max_vocab` most frequent tokens.
    pub max_vocab: usize,
    /// Subspace-iteration rounds.
    pub iterations: usize,
    /// RNG seed for the iteration's starting basis.
    pub seed: u64,
}

impl Default for EmbedConfig {
    fn default() -> Self {
        EmbedConfig { dim: 16, window: 2, max_vocab: 400, iterations: 30, seed: 42 }
    }
}

/// Trained word embeddings over a SQL corpus.
#[derive(Debug, Clone)]
pub struct WordEmbedder {
    vocab: HashMap<String, usize>,
    /// One row per vocabulary token.
    vectors: Matrix,
    dim: usize,
}

impl WordEmbedder {
    /// Trains embeddings on a corpus of SQL strings.
    pub fn train(corpus: &[String], config: &EmbedConfig) -> Self {
        // 1. Frequency-capped vocabulary (deterministic order).
        let mut freq: HashMap<String, usize> = HashMap::new();
        let token_streams: Vec<Vec<String>> = corpus.iter().map(|s| tokenize(s)).collect();
        for stream in &token_streams {
            for t in stream {
                *freq.entry(t.clone()).or_insert(0) += 1;
            }
        }
        let mut by_freq: Vec<(String, usize)> = freq.into_iter().collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        by_freq.truncate(config.max_vocab);
        let vocab: HashMap<String, usize> =
            by_freq.iter().enumerate().map(|(i, (t, _))| (t.clone(), i)).collect();
        let n = vocab.len();
        if n == 0 {
            return WordEmbedder { vocab, vectors: Matrix::zeros(0, config.dim), dim: config.dim };
        }

        // 2. Symmetric windowed co-occurrence counts.
        let mut cooc = Matrix::zeros(n, n);
        for stream in &token_streams {
            let ids: Vec<Option<usize>> = stream.iter().map(|t| vocab.get(t).copied()).collect();
            for (i, a) in ids.iter().enumerate() {
                let Some(a) = a else { continue };
                let end = (i + config.window + 1).min(ids.len());
                for b in ids[i + 1..end].iter().flatten() {
                    cooc.set(*a, *b, cooc.get(*a, *b) + 1.0);
                    cooc.set(*b, *a, cooc.get(*b, *a) + 1.0);
                }
            }
        }

        // 3. PPMI transform.
        let total: f64 = cooc.as_slice().iter().sum::<f64>().max(1.0);
        let row_sums: Vec<f64> = (0..n).map(|r| cooc.row(r).iter().sum::<f64>()).collect();
        let mut ppmi = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                let joint = cooc.get(r, c);
                if joint > 0.0 && row_sums[r] > 0.0 && row_sums[c] > 0.0 {
                    let pmi = (joint * total / (row_sums[r] * row_sums[c])).ln();
                    if pmi > 0.0 {
                        ppmi.set(r, c, pmi);
                    }
                }
            }
        }

        // 4. Top-`dim` eigenvectors of the symmetric PPMI matrix by subspace
        // iteration with Gram-Schmidt re-orthonormalization.
        let dim = config.dim.min(n);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut basis = Matrix::zeros(n, dim);
        for v in basis.as_mut_slice() {
            *v = rng.gen::<f64>() - 0.5;
        }
        orthonormalize(&mut basis);
        // Each round applies the (symmetric) PPMI operator twice before
        // re-orthonormalizing: iterating on A² squares the eigenvalue ratios,
        // doubling the convergence rate per round while keeping the same
        // eigenvectors. Stop early once the subspace stabilizes.
        for _ in 0..config.iterations {
            let prev = basis.clone();
            basis = ppmi.matmul(&basis).expect("square product");
            basis = ppmi.matmul(&basis).expect("square product");
            orthonormalize(&mut basis);
            let min_alignment = (0..dim)
                .map(|c| {
                    let mut d = 0.0;
                    for r in 0..n {
                        d += basis.get(r, c) * prev.get(r, c);
                    }
                    d.abs()
                })
                .fold(f64::INFINITY, f64::min);
            if min_alignment > 1.0 - 1e-12 {
                break;
            }
        }
        // Scale columns by sqrt(|eigenvalue|) (Rayleigh quotients) so more
        // informative directions carry more weight.
        let projected = ppmi.matmul(&basis).expect("square product");
        let mut scales = vec![0.0f64; dim];
        for (d, scale) in scales.iter_mut().enumerate() {
            let mut lambda = 0.0;
            for r in 0..n {
                lambda += basis.get(r, d) * projected.get(r, d);
            }
            *scale = lambda.abs().sqrt();
        }
        let mut vectors = basis;
        for r in 0..n {
            for (d, s) in scales.iter().enumerate() {
                vectors.set(r, d, vectors.get(r, d) * s);
            }
        }
        let mut padded = Matrix::zeros(n, config.dim);
        for r in 0..n {
            for d in 0..dim {
                padded.set(r, d, vectors.get(r, d));
            }
        }
        WordEmbedder { vocab, vectors: padded, dim: config.dim }
    }

    /// Rebuilds an embedder from a token list and its embedding matrix (one
    /// row per token, in the same order) — the inverse of
    /// [`WordEmbedder::vocabulary`] + [`WordEmbedder::vectors`], used to
    /// reload persisted models.
    ///
    /// # Panics
    /// Panics when `names.len() != vectors.rows()` (callers validate first).
    pub fn from_parts(names: Vec<String>, vectors: Matrix) -> Self {
        assert_eq!(names.len(), vectors.rows(), "one embedding row per vocabulary token");
        let dim = vectors.cols();
        let vocab = names.into_iter().enumerate().map(|(i, t)| (t, i)).collect();
        WordEmbedder { vocab, vectors, dim }
    }

    /// Vocabulary tokens ordered by embedding row index.
    pub fn vocabulary(&self) -> Vec<String> {
        let mut names = vec![String::new(); self.vocab.len()];
        for (token, &i) in &self.vocab {
            names[i] = token.clone();
        }
        names
    }

    /// The embedding matrix (one row per vocabulary token).
    pub fn vectors(&self) -> &Matrix {
        &self.vectors
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// The embedding of a single token, if in vocabulary.
    pub fn token_vector(&self, token: &str) -> Option<&[f64]> {
        self.vocab.get(token).map(|&i| self.vectors.row(i))
    }

    /// Mean-of-token-vectors embedding of a SQL string (zeros when no token
    /// is in vocabulary).
    pub fn embed(&self, sql: &str) -> Vec<f64> {
        let mut acc = vec![0.0; self.dim];
        let mut count = 0usize;
        for tok in tokenize(sql) {
            if let Some(v) = self.token_vector(&tok) {
                for (a, b) in acc.iter_mut().zip(v) {
                    *a += b;
                }
                count += 1;
            }
        }
        if count > 0 {
            for a in &mut acc {
                *a /= count as f64;
            }
        }
        acc
    }

    /// Embeds a whole corpus.
    pub fn embed_all(&self, corpus: &[String]) -> Vec<Vec<f64>> {
        corpus.iter().map(|s| self.embed(s)).collect()
    }
}

/// Cosine similarity between two vectors (0 for zero vectors).
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

/// Modified Gram-Schmidt orthonormalization of a matrix's columns, in place.
fn orthonormalize(m: &mut Matrix) {
    let (n, d) = (m.rows(), m.cols());
    for c in 0..d {
        for prev in 0..c {
            let mut proj = 0.0;
            for r in 0..n {
                proj += m.get(r, c) * m.get(r, prev);
            }
            for r in 0..n {
                let v = m.get(r, c) - proj * m.get(r, prev);
                m.set(r, c, v);
            }
        }
        let mut norm = 0.0;
        for r in 0..n {
            norm += m.get(r, c) * m.get(r, c);
        }
        let norm = norm.sqrt();
        if norm > 1e-12 {
            for r in 0..n {
                m.set(r, c, m.get(r, c) / norm);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        // Two "topics": alpha/x queries and beta/z queries.
        let mut c = Vec::new();
        for i in 0..20 {
            c.push(format!("SELECT a.x FROM alpha AS a WHERE a.x = {i}"));
            c.push(format!("SELECT b.z FROM beta AS b WHERE b.z = {i} GROUP BY b.z"));
        }
        c
    }

    #[test]
    fn training_produces_vectors_for_frequent_tokens() {
        let e = WordEmbedder::train(&corpus(), &EmbedConfig::default());
        assert!(e.vocab_size() > 5);
        assert!(e.token_vector("alpha").is_some());
        assert!(e.token_vector("nonexistent_token").is_none());
        assert_eq!(e.dim(), 16);
    }

    #[test]
    fn cooccurring_tokens_are_closer_than_unrelated_ones() {
        let e = WordEmbedder::train(&corpus(), &EmbedConfig::default());
        let alpha = e.token_vector("alpha").unwrap().to_vec();
        let x = e.token_vector("x").unwrap().to_vec();
        let z = e.token_vector("z").unwrap().to_vec();
        // `x` always co-occurs with `alpha`, `z` never does.
        assert!(cosine(&alpha, &x) > cosine(&alpha, &z) + 0.1);
    }

    #[test]
    fn query_embeddings_cluster_by_topic() {
        let e = WordEmbedder::train(&corpus(), &EmbedConfig::default());
        let qa1 = e.embed("SELECT a.x FROM alpha AS a WHERE a.x = 99");
        let qa2 = e.embed("SELECT a.x FROM alpha AS a WHERE a.x = 123");
        let qb = e.embed("SELECT b.z FROM beta AS b GROUP BY b.z");
        assert!(cosine(&qa1, &qa2) > cosine(&qa1, &qb));
    }

    #[test]
    fn embedding_has_fixed_dimension_regardless_of_text_length() {
        let e = WordEmbedder::train(&corpus(), &EmbedConfig::default());
        assert_eq!(e.embed("SELECT").len(), 16);
        assert_eq!(e.embed(&corpus().join(" ")).len(), 16);
    }

    #[test]
    fn unknown_text_embeds_to_zeros() {
        let e = WordEmbedder::train(&corpus(), &EmbedConfig::default());
        let v = e.embed("zzz yyy qqq");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn empty_corpus_is_safe() {
        let e = WordEmbedder::train(&[], &EmbedConfig::default());
        assert_eq!(e.vocab_size(), 0);
        assert_eq!(e.embed("select x").len(), 16);
    }

    #[test]
    fn training_is_deterministic() {
        let a = WordEmbedder::train(&corpus(), &EmbedConfig::default());
        let b = WordEmbedder::train(&corpus(), &EmbedConfig::default());
        assert_eq!(a.token_vector("alpha"), b.token_vector("alpha"));
    }

    #[test]
    fn dim_larger_than_vocab_is_padded() {
        let tiny = vec!["select a".to_string()];
        let e = WordEmbedder::train(&tiny, &EmbedConfig { dim: 8, ..Default::default() });
        assert_eq!(e.embed("select a").len(), 8);
    }

    #[test]
    fn cosine_edge_cases() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
    }
}
