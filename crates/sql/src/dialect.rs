//! SQL dialect handling: quoting, parameter markers, cast syntax, and
//! identifier case folding.
//!
//! Production query logs are never written in textbook ANSI. The three
//! dialects here cover the quirks that actually break naive parsers:
//!
//! | quirk | ANSI | Postgres | MySQL |
//! |---|---|---|---|
//! | identifier quote | `"x"` | `"x"` | `` `x` `` |
//! | `"..."` means | identifier | identifier | **string literal** |
//! | parameter marker | `?` | `$1`, `$2`, … | `?` |
//! | shorthand cast | — | `expr::type` | — |
//! | unquoted identifiers fold to | lower case | lower case | preserved |
//! | `LIMIT` spelling | `FETCH FIRST n ROWS ONLY` | `LIMIT n` | `LIMIT n` |
//!
//! All dialects additionally accept `CAST(expr AS type)`, standard string
//! quoting with `''` escapes, and both limit spellings on input (a Postgres
//! log may contain ANSI `FETCH FIRST`; rejecting it would be pedantry).

/// Dialect-specific lexical and rendering rules. Implementations are
/// stateless unit structs; pass `&Ansi` / `&Postgres` / `&MySql`.
pub trait Dialect: Send + Sync {
    /// Dialect name for diagnostics and metric labels.
    fn name(&self) -> &'static str;

    /// The character that opens/closes a quoted identifier.
    fn ident_quote(&self) -> char {
        '"'
    }

    /// Whether `"..."` is a *string literal* rather than an identifier
    /// (MySQL without `ANSI_QUOTES`).
    fn double_quote_is_string(&self) -> bool {
        false
    }

    /// Whether `$1`-style positional parameter markers are recognized.
    fn dollar_params(&self) -> bool {
        false
    }

    /// Whether `?` parameter markers are recognized.
    fn question_params(&self) -> bool {
        true
    }

    /// Whether the `expr::type` cast shorthand is recognized.
    fn double_colon_cast(&self) -> bool {
        false
    }

    /// Folds an *unquoted* identifier to its catalog form. Quoted
    /// identifiers always bypass folding.
    fn fold_ident(&self, ident: &str) -> String {
        ident.to_ascii_lowercase()
    }

    /// Renders the LIMIT clause (with its leading space).
    fn render_limit(&self, n: u64) -> String {
        format!(" LIMIT {n}")
    }
}

/// ANSI SQL: `"` identifiers, `?` parameters, lower-case folding,
/// `FETCH FIRST n ROWS ONLY`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ansi;

impl Dialect for Ansi {
    fn name(&self) -> &'static str {
        "ansi"
    }

    fn render_limit(&self, n: u64) -> String {
        format!(" FETCH FIRST {n} ROWS ONLY")
    }
}

/// PostgreSQL: `"` identifiers, `$1` parameters, `expr::type` casts,
/// lower-case folding, `LIMIT n`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Postgres;

impl Dialect for Postgres {
    fn name(&self) -> &'static str {
        "postgres"
    }

    fn dollar_params(&self) -> bool {
        true
    }

    fn double_colon_cast(&self) -> bool {
        true
    }
}

/// MySQL: `` ` `` identifiers, `"` strings, `?` parameters, identifier case
/// preserved (Unix `lower_case_table_names = 0`), `LIMIT n`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MySql;

impl Dialect for MySql {
    fn name(&self) -> &'static str {
        "mysql"
    }

    fn ident_quote(&self) -> char {
        '`'
    }

    fn double_quote_is_string(&self) -> bool {
        true
    }

    fn fold_ident(&self, ident: &str) -> String {
        ident.to_string()
    }
}

/// The three built-in dialects, for "test under every dialect" loops.
pub fn all_dialects() -> [&'static dyn Dialect; 3] {
    [&Ansi, &Postgres, &MySql]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dialect_matrix() {
        assert_eq!(Ansi.name(), "ansi");
        assert_eq!(Ansi.ident_quote(), '"');
        assert!(!Ansi.dollar_params());
        assert!(Ansi.question_params());
        assert_eq!(Ansi.render_limit(5), " FETCH FIRST 5 ROWS ONLY");

        assert!(Postgres.dollar_params());
        assert!(Postgres.double_colon_cast());
        assert_eq!(Postgres.render_limit(5), " LIMIT 5");

        assert_eq!(MySql.ident_quote(), '`');
        assert!(MySql.double_quote_is_string());
        assert!(!MySql.double_colon_cast());
    }

    #[test]
    fn case_folding() {
        assert_eq!(Ansi.fold_ident("Customer"), "customer");
        assert_eq!(Postgres.fold_ident("C_NATION"), "c_nation");
        assert_eq!(MySql.fold_ident("Customer"), "Customer", "MySQL preserves case");
    }

    #[test]
    fn all_dialects_are_distinct() {
        let names: Vec<_> = all_dialects().iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["ansi", "postgres", "mysql"]);
    }
}
