//! Recursive-descent parser for the `SELECT` subset the plan model covers.
//!
//! Grammar (informally; `[]` optional, `{}` repeated):
//!
//! ```text
//! select    := SELECT [DISTINCT|ALL] items FROM froms [WHERE conj]
//!              [GROUP BY cols] [ORDER BY cols] [limit] [;]
//! items     := item {, item}
//! item      := * | qualifier.* | agg | colref [AS ident]
//! agg       := (COUNT|SUM|AVG|MIN|MAX) ( * | colref )
//! froms     := from {(, | [INNER|CROSS] JOIN) from [ON cond]}
//! from      := table [AS] [alias]
//! conj      := cond {AND cond}
//! cond      := ( conj ) | operand (op operand | BETWEEN lit AND lit
//!              | IN ( lit {, lit} ) | LIKE lit)
//! operand   := colref | lit
//! lit       := number | string | param | CAST ( lit AS type )
//!              | lit :: type | (DATE|TIME|TIMESTAMP) string
//! limit     := LIMIT number | FETCH FIRST number ROW[S] ONLY
//! ```
//!
//! Constructs outside the subset (outer joins, `OR`, `HAVING`, subqueries,
//! `NOT`, `IS NULL`, …) produce a typed [`ParseError::Unsupported`] with
//! the span of the offending construct — a parse front-end for a predictor
//! must *reject* what it cannot model, never mis-model it silently.

use crate::ast::{ColumnRef, Condition, FromItem, Literal, SelectItem, SelectStmt};
use crate::dialect::Dialect;
use crate::error::{ParseError, Span, SqlResult};
use crate::token::{tokenize, Token, TokenKind};
use wmp_plan::query::AggFunc;

/// Parses one `SELECT` statement under `dialect`'s lexical rules.
///
/// # Errors
/// Returns a span-carrying [`ParseError`]; never panics on any input.
pub fn parse(sql: &str, dialect: &dyn Dialect) -> SqlResult<SelectStmt> {
    let tokens = tokenize(sql, dialect)?;
    Parser { tokens, pos: 0, end: sql.len() }.select()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn end_span(&self) -> Span {
        Span::at(self.end)
    }

    fn unexpected(&self, expected: &'static str) -> ParseError {
        match self.peek() {
            Some(t) => ParseError::UnexpectedToken { expected, found: t.describe(), span: t.span },
            None => ParseError::UnexpectedEnd { expected, span: self.end_span() },
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &'static str) -> SqlResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(kw))
        }
    }

    fn eat_symbol(&mut self, sym: char) -> bool {
        if matches!(self.peek(), Some(Token { kind: TokenKind::Symbol(c), .. }) if *c == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: char, expected: &'static str) -> SqlResult<Span> {
        match self.peek() {
            Some(Token { kind: TokenKind::Symbol(c), span }) if *c == sym => {
                let span = *span;
                self.pos += 1;
                Ok(span)
            }
            _ => Err(self.unexpected(expected)),
        }
    }

    /// A word token used as an identifier (keywords are allowed — context
    /// decides; `SELECT count FROM counts` is legal SQL).
    fn ident(&mut self, expected: &'static str) -> SqlResult<(String, Span)> {
        match self.peek() {
            Some(Token { kind: TokenKind::Word { text, .. }, span }) => {
                let out = (text.clone(), *span);
                self.pos += 1;
                Ok(out)
            }
            _ => Err(self.unexpected(expected)),
        }
    }

    // ---- statement ------------------------------------------------------

    fn select(mut self) -> SqlResult<SelectStmt> {
        self.expect_kw("SELECT")?;
        let mut stmt = SelectStmt { distinct: self.eat_kw("DISTINCT"), ..Default::default() };
        if !stmt.distinct {
            self.eat_kw("ALL"); // explicit ALL is the default; accept and drop
        }
        stmt.items = self.select_items()?;
        self.expect_kw("FROM")?;
        self.parse_from_list(&mut stmt)?;
        if self.eat_kw("WHERE") {
            self.conjunction(&mut stmt.conditions)?;
        }
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            stmt.group_by = self.column_list()?;
        }
        if let Some(t) = self.peek() {
            if t.is_kw("HAVING") {
                return Err(ParseError::Unsupported { what: "HAVING clause", span: t.span });
            }
        }
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            stmt.order_by = self.column_list_with_direction()?;
        }
        stmt.limit = self.limit()?;
        if let Some(t) = self.peek() {
            if t.is_kw("OFFSET") {
                return Err(ParseError::Unsupported { what: "OFFSET clause", span: t.span });
            }
        }
        self.eat_symbol(';');
        if let Some(t) = self.peek() {
            return Err(ParseError::TrailingInput { span: t.span });
        }
        Ok(stmt)
    }

    // ---- SELECT list ----------------------------------------------------

    fn select_items(&mut self) -> SqlResult<Vec<SelectItem>> {
        let mut items = vec![self.select_item()?];
        while self.eat_symbol(',') {
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn select_item(&mut self) -> SqlResult<SelectItem> {
        if let Some(Token { kind: TokenKind::Symbol('*'), span }) = self.peek() {
            let span = *span;
            self.pos += 1;
            return Ok(SelectItem::Star(span));
        }
        // An aggregate call is a word immediately followed by `(`.
        if let (Some(Token { kind: TokenKind::Word { text, quoted: false }, span }), Some(next)) =
            (self.peek(), self.tokens.get(self.pos + 1))
        {
            if matches!(next.kind, TokenKind::Symbol('(')) {
                if let Some(func) = agg_func(text) {
                    let start = *span;
                    self.pos += 2; // word + (
                    return self.aggregate(func, start);
                }
            }
        }
        let (first, first_span) = self.ident("a select item")?;
        if self.eat_symbol('.') {
            if let Some(Token { kind: TokenKind::Symbol('*'), span }) = self.peek() {
                let span = first_span.merge(*span);
                self.pos += 1;
                return Ok(SelectItem::QualifiedStar { qualifier: first, span });
            }
            let (column, col_span) = self.ident("a column after '.'")?;
            let item = SelectItem::Column(ColumnRef {
                qualifier: Some(first),
                column,
                span: first_span.merge(col_span),
            });
            self.select_item_alias()?;
            return Ok(item);
        }
        self.select_item_alias()?;
        Ok(SelectItem::Column(ColumnRef { qualifier: None, column: first, span: first_span }))
    }

    /// Accepts and discards an optional `AS output_name` — `QuerySpec` has
    /// no projection aliases, and [`crate::render`] never emits them.
    fn select_item_alias(&mut self) -> SqlResult<()> {
        if self.eat_kw("AS") {
            self.ident("an output name after AS")?;
        }
        Ok(())
    }

    fn aggregate(&mut self, func: AggFunc, start: Span) -> SqlResult<SelectItem> {
        if let Some(t) = self.peek() {
            if t.is_kw("DISTINCT") {
                return Err(ParseError::Unsupported {
                    what: "DISTINCT inside an aggregate",
                    span: t.span,
                });
            }
        }
        let arg = if let Some(Token { kind: TokenKind::Symbol('*'), span }) = self.peek() {
            if func != AggFunc::Count {
                return Err(ParseError::UnexpectedToken {
                    expected: "a column argument",
                    found: "*".into(),
                    span: *span,
                });
            }
            self.pos += 1;
            None
        } else {
            Some(self.column_ref()?)
        };
        let close = self.expect_symbol(')', "')' closing the aggregate")?;
        let item = SelectItem::Aggregate { func, arg, span: start.merge(close) };
        self.select_item_alias()?;
        Ok(item)
    }

    // ---- FROM -----------------------------------------------------------

    fn parse_from_list(&mut self, stmt: &mut SelectStmt) -> SqlResult<()> {
        self.parse_from_item(stmt)?;
        loop {
            if self.eat_symbol(',') {
                self.parse_from_item(stmt)?;
                continue;
            }
            if let Some(t) = self.peek() {
                if t.is_kw("LEFT") || t.is_kw("RIGHT") || t.is_kw("FULL") || t.is_kw("OUTER") {
                    return Err(ParseError::Unsupported { what: "outer join", span: t.span });
                }
            }
            let explicit_inner = self.eat_kw("INNER");
            let cross = !explicit_inner && self.eat_kw("CROSS");
            if self.eat_kw("JOIN") {
                self.parse_from_item(stmt)?;
                if self.eat_kw("ON") {
                    if cross {
                        // CROSS JOIN takes no ON; treat as a plain condition
                        // grammar error at the ON keyword.
                        let span = self.tokens[self.pos - 1].span;
                        return Err(ParseError::UnexpectedToken {
                            expected: "',' or JOIN",
                            found: "ON".into(),
                            span,
                        });
                    }
                    self.condition(&mut stmt.conditions)?;
                }
                continue;
            }
            if explicit_inner || cross {
                return Err(self.unexpected("JOIN"));
            }
            return Ok(());
        }
    }

    fn parse_from_item(&mut self, stmt: &mut SelectStmt) -> SqlResult<()> {
        if let Some(Token { kind: TokenKind::Symbol('('), span }) = self.peek() {
            return Err(ParseError::Unsupported {
                what: "derived table (subquery in FROM)",
                span: *span,
            });
        }
        let (table, table_span) = self.ident("a table name")?;
        let mut span = table_span;
        let alias = if self.eat_kw("AS") {
            let (a, s) = self.ident("an alias after AS")?;
            span = span.merge(s);
            a
        } else if let Some(Token { kind: TokenKind::Word { .. }, .. }) = self.peek() {
            // Bare alias — but clause keywords terminate the FROM item.
            let t = self.peek().expect("peeked");
            if FROM_TERMINATORS.iter().any(|k| t.is_kw(k)) {
                table.clone()
            } else {
                let (a, s) = self.ident("an alias")?;
                span = span.merge(s);
                a
            }
        } else {
            table.clone()
        };
        stmt.from.push(FromItem { table, alias, span });
        Ok(())
    }

    // ---- WHERE ----------------------------------------------------------

    fn conjunction(&mut self, out: &mut Vec<Condition>) -> SqlResult<()> {
        self.condition(out)?;
        loop {
            if let Some(t) = self.peek() {
                if t.is_kw("OR") {
                    return Err(ParseError::Unsupported { what: "OR disjunction", span: t.span });
                }
            }
            if self.eat_kw("AND") {
                self.condition(out)?;
            } else {
                return Ok(());
            }
        }
    }

    fn condition(&mut self, out: &mut Vec<Condition>) -> SqlResult<()> {
        // Parenthesized group: splice its conjuncts into the flat list.
        if self.eat_symbol('(') {
            self.conjunction(out)?;
            self.expect_symbol(')', "')' closing the condition group")?;
            return Ok(());
        }
        if let Some(t) = self.peek() {
            if t.is_kw("NOT") {
                return Err(ParseError::Unsupported { what: "NOT", span: t.span });
            }
            if t.is_kw("EXISTS") {
                return Err(ParseError::Unsupported { what: "EXISTS subquery", span: t.span });
            }
        }
        let left = self.operand()?;
        match &left {
            Operand::Column(col) => self.condition_after_column(col.clone(), out),
            Operand::Literal(lit) => {
                // `literal op column`: normalize by mirroring the operator.
                let op = self.comparison_op()?;
                let right = self.operand()?;
                match right {
                    Operand::Column(col) => {
                        let span = lit.span.merge(col.span);
                        let mirrored = match op {
                            "<" => ">",
                            "<=" => ">=",
                            ">" => "<",
                            ">=" => "<=",
                            other => other,
                        };
                        out.push(Condition::Cmp { col, op: mirrored, literal: lit.clone(), span });
                        Ok(())
                    }
                    Operand::Literal(other) => Err(ParseError::Unsupported {
                        what: "literal-to-literal comparison",
                        span: lit.span.merge(other.span),
                    }),
                }
            }
        }
    }

    fn condition_after_column(
        &mut self,
        col: ColumnRef,
        out: &mut Vec<Condition>,
    ) -> SqlResult<()> {
        if let Some(t) = self.peek() {
            if t.is_kw("IS") {
                return Err(ParseError::Unsupported { what: "IS [NOT] NULL", span: t.span });
            }
            if t.is_kw("BETWEEN") {
                self.pos += 1;
                let lo = self.literal()?;
                self.expect_kw("AND")?;
                let hi = self.literal()?;
                let span = col.span.merge(hi.span);
                out.push(Condition::Between { col, lo, hi, span });
                return Ok(());
            }
            if t.is_kw("IN") {
                self.pos += 1;
                self.expect_symbol('(', "'(' opening the IN list")?;
                if let Some(t) = self.peek() {
                    if t.is_kw("SELECT") {
                        return Err(ParseError::Unsupported { what: "IN subquery", span: t.span });
                    }
                }
                let mut items = vec![self.literal()?];
                while self.eat_symbol(',') {
                    items.push(self.literal()?);
                }
                let close = self.expect_symbol(')', "')' closing the IN list")?;
                let span = col.span.merge(close);
                out.push(Condition::InList { col, items, span });
                return Ok(());
            }
            if t.is_kw("LIKE") {
                self.pos += 1;
                let pattern = self.literal()?;
                let span = col.span.merge(pattern.span);
                out.push(Condition::Like { col, pattern, span });
                return Ok(());
            }
        }
        let op = self.comparison_op()?;
        match self.operand()? {
            Operand::Column(right) => {
                let span = col.span.merge(right.span);
                if op != "=" {
                    return Err(ParseError::Unsupported {
                        what: "non-equi column-to-column comparison",
                        span,
                    });
                }
                out.push(Condition::Join { left: col, right, span });
            }
            Operand::Literal(literal) => {
                if op == "<>" || op == "!=" {
                    return Err(ParseError::Unsupported {
                        what: "not-equal predicate",
                        span: col.span.merge(literal.span),
                    });
                }
                let span = col.span.merge(literal.span);
                out.push(Condition::Cmp { col, op, literal, span });
            }
        }
        Ok(())
    }

    fn comparison_op(&mut self) -> SqlResult<&'static str> {
        match self.peek() {
            Some(Token { kind: TokenKind::Op(op), .. }) => {
                let op = *op;
                self.pos += 1;
                Ok(op)
            }
            _ => Err(self.unexpected("a comparison operator")),
        }
    }

    fn operand(&mut self) -> SqlResult<Operand> {
        match self.peek() {
            Some(Token { kind: TokenKind::Word { text, quoted }, span }) => {
                // CAST(...) and typed literals start with a word too.
                if !quoted {
                    if text.eq_ignore_ascii_case("CAST") {
                        return Ok(Operand::Literal(self.literal()?));
                    }
                    if is_type_literal_prefix(text)
                        && matches!(
                            self.tokens.get(self.pos + 1).map(|t| &t.kind),
                            Some(TokenKind::StringLit(_))
                        )
                    {
                        return Ok(Operand::Literal(self.literal()?));
                    }
                }
                let _ = span;
                Ok(Operand::Column(self.column_ref()?))
            }
            Some(Token {
                kind: TokenKind::Number(_) | TokenKind::StringLit(_) | TokenKind::Param(_),
                ..
            }) => Ok(Operand::Literal(self.literal()?)),
            _ => Err(self.unexpected("a column or literal")),
        }
    }

    /// Parses a literal, unwrapping `CAST(lit AS type)`, `lit::type`, and
    /// `DATE '…'`-style typed literals down to the inner spelling.
    fn literal(&mut self) -> SqlResult<Literal> {
        let lit = match self.peek().cloned() {
            Some(Token { kind: TokenKind::Number(text), span }) => {
                self.pos += 1;
                Literal { text, span }
            }
            Some(Token { kind: TokenKind::StringLit(text), span }) => {
                self.pos += 1;
                Literal { text, span }
            }
            Some(Token { kind: TokenKind::Param(text), span }) => {
                self.pos += 1;
                Literal { text, span }
            }
            Some(Token { kind: TokenKind::Word { text, quoted: false }, span })
                if text.eq_ignore_ascii_case("CAST") =>
            {
                self.pos += 1;
                self.expect_symbol('(', "'(' after CAST")?;
                let inner = self.literal()?;
                self.expect_kw("AS")?;
                self.type_name()?;
                let close = self.expect_symbol(')', "')' closing CAST")?;
                Literal { text: inner.text, span: span.merge(close) }
            }
            Some(Token { kind: TokenKind::Word { text, quoted: false }, span })
                if is_type_literal_prefix(&text) =>
            {
                self.pos += 1;
                match self.peek().cloned() {
                    Some(Token { kind: TokenKind::StringLit(text), span: lit_span }) => {
                        self.pos += 1;
                        Literal { text, span: span.merge(lit_span) }
                    }
                    _ => return Err(self.unexpected("a string literal after the type keyword")),
                }
            }
            _ => return Err(self.unexpected("a literal")),
        };
        // Postgres shorthand cast chain: `'x'::date::text` is legal.
        let mut lit = lit;
        while matches!(self.peek(), Some(Token { kind: TokenKind::DoubleColon, .. })) {
            self.pos += 1;
            let end = self.type_name()?;
            lit = Literal { text: lit.text, span: lit.span.merge(end) };
        }
        Ok(lit)
    }

    /// A type name: `word [ ( number {, number} ) ]`.
    fn type_name(&mut self) -> SqlResult<Span> {
        let (_, mut span) = self.ident("a type name")?;
        if self.eat_symbol('(') {
            loop {
                match self.peek() {
                    Some(Token { kind: TokenKind::Number(_), .. }) => {
                        self.pos += 1;
                    }
                    _ => return Err(self.unexpected("a number in the type arguments")),
                }
                if !self.eat_symbol(',') {
                    break;
                }
            }
            span = span.merge(self.expect_symbol(')', "')' closing the type arguments")?);
        }
        Ok(span)
    }

    fn column_ref(&mut self) -> SqlResult<ColumnRef> {
        let (first, first_span) = self.ident("a column reference")?;
        if self.eat_symbol('.') {
            let (column, col_span) = self.ident("a column after '.'")?;
            Ok(ColumnRef { qualifier: Some(first), column, span: first_span.merge(col_span) })
        } else {
            Ok(ColumnRef { qualifier: None, column: first, span: first_span })
        }
    }

    fn column_list(&mut self) -> SqlResult<Vec<ColumnRef>> {
        if let Some(Token { kind: TokenKind::Number(_), span }) = self.peek() {
            return Err(ParseError::Unsupported {
                what: "positional column reference",
                span: *span,
            });
        }
        let mut cols = vec![self.column_ref()?];
        while self.eat_symbol(',') {
            if let Some(Token { kind: TokenKind::Number(_), span }) = self.peek() {
                return Err(ParseError::Unsupported {
                    what: "positional column reference",
                    span: *span,
                });
            }
            cols.push(self.column_ref()?);
        }
        Ok(cols)
    }

    /// ORDER BY columns; `ASC`/`DESC` are accepted and discarded (the plan
    /// model does not distinguish sort direction).
    fn column_list_with_direction(&mut self) -> SqlResult<Vec<ColumnRef>> {
        let mut cols = Vec::new();
        loop {
            if let Some(Token { kind: TokenKind::Number(_), span }) = self.peek() {
                return Err(ParseError::Unsupported {
                    what: "positional column reference",
                    span: *span,
                });
            }
            cols.push(self.column_ref()?);
            let _ = self.eat_kw("ASC") || self.eat_kw("DESC");
            if !self.eat_symbol(',') {
                return Ok(cols);
            }
        }
    }

    fn limit(&mut self) -> SqlResult<Option<u64>> {
        if self.eat_kw("LIMIT") {
            return Ok(Some(self.limit_count()?));
        }
        if self.eat_kw("FETCH") {
            self.expect_kw("FIRST")?;
            let n = self.limit_count()?;
            if !(self.eat_kw("ROWS") || self.eat_kw("ROW")) {
                return Err(self.unexpected("ROWS"));
            }
            self.expect_kw("ONLY")?;
            return Ok(Some(n));
        }
        Ok(None)
    }

    fn limit_count(&mut self) -> SqlResult<u64> {
        match self.peek() {
            Some(Token { kind: TokenKind::Number(text), span }) => {
                let n = text
                    .parse::<u64>()
                    .map_err(|_| ParseError::InvalidNumber { text: text.clone(), span: *span })?;
                self.pos += 1;
                Ok(n)
            }
            _ => Err(self.unexpected("a row count")),
        }
    }
}

enum Operand {
    Column(ColumnRef),
    Literal(Literal),
}

/// Keywords that terminate a FROM item and therefore cannot be bare aliases.
const FROM_TERMINATORS: [&str; 12] = [
    "WHERE", "GROUP", "ORDER", "LIMIT", "FETCH", "HAVING", "JOIN", "INNER", "CROSS", "ON",
    "OFFSET", "LEFT",
];

fn agg_func(word: &str) -> Option<AggFunc> {
    if word.eq_ignore_ascii_case("COUNT") {
        Some(AggFunc::Count)
    } else if word.eq_ignore_ascii_case("SUM") {
        Some(AggFunc::Sum)
    } else if word.eq_ignore_ascii_case("AVG") {
        Some(AggFunc::Avg)
    } else if word.eq_ignore_ascii_case("MIN") {
        Some(AggFunc::Min)
    } else if word.eq_ignore_ascii_case("MAX") {
        Some(AggFunc::Max)
    } else {
        None
    }
}

fn is_type_literal_prefix(word: &str) -> bool {
    word.eq_ignore_ascii_case("DATE")
        || word.eq_ignore_ascii_case("TIME")
        || word.eq_ignore_ascii_case("TIMESTAMP")
        || word.eq_ignore_ascii_case("INTERVAL")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::{Ansi, MySql, Postgres};

    fn p(sql: &str) -> SelectStmt {
        parse(sql, &Ansi).unwrap_or_else(|e| panic!("{sql:?}: {e}"))
    }

    #[test]
    fn parses_the_rendered_shape() {
        let s = p("SELECT c.c_nation, SUM(o.o_total) FROM orders AS o, customer AS c \
                   WHERE o.o_cust = c.c_id AND c.c_nation = 'CA' GROUP BY c.c_nation \
                   ORDER BY c.c_nation FETCH FIRST 100 ROWS ONLY");
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].alias, "o");
        assert_eq!(s.conditions.len(), 2);
        assert!(matches!(s.conditions[0], Condition::Join { .. }));
        assert!(matches!(&s.conditions[1], Condition::Cmp { op: "=", literal, .. }
            if literal.text == "'CA'"));
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.order_by.len(), 1);
        assert_eq!(s.limit, Some(100));
        assert!(matches!(
            &s.items[1],
            SelectItem::Aggregate { func: AggFunc::Sum, arg: Some(_), .. }
        ));
    }

    #[test]
    fn join_on_folds_into_the_conjunction() {
        let s = p("SELECT o.* FROM orders o JOIN customer c ON o.o_cust = c.c_id \
                   INNER JOIN nation n ON c.c_nation = n.n_id WHERE n.n_name = 'US'");
        assert_eq!(s.from.len(), 3);
        assert_eq!(s.conditions.len(), 3);
        assert!(matches!(s.conditions[0], Condition::Join { .. }));
        assert!(matches!(s.conditions[1], Condition::Join { .. }));
        assert!(matches!(s.conditions[2], Condition::Cmp { .. }));
    }

    #[test]
    fn bare_and_as_aliases() {
        let s = p("SELECT t.* FROM orders t WHERE t.a = 1");
        assert_eq!(s.from[0].alias, "t");
        let s = p("SELECT orders.* FROM orders WHERE orders.a = 1");
        assert_eq!(s.from[0].alias, "orders", "missing alias defaults to the table name");
    }

    #[test]
    fn between_in_like_and_star_aggregates() {
        let s = p("SELECT COUNT(*) FROM t WHERE t.a BETWEEN 1 AND 10 \
                   AND t.b IN ('x', 'y', 'z') AND t.c LIKE '%ab%'");
        assert!(matches!(
            &s.items[0],
            SelectItem::Aggregate { func: AggFunc::Count, arg: None, .. }
        ));
        assert!(matches!(&s.conditions[0], Condition::Between { lo, hi, .. }
            if lo.text == "1" && hi.text == "10"));
        assert!(matches!(&s.conditions[1], Condition::InList { items, .. } if items.len() == 3));
        assert!(matches!(&s.conditions[2], Condition::Like { pattern, .. }
            if pattern.text == "'%ab%'"));
    }

    #[test]
    fn casts_unwrap_to_the_inner_literal() {
        let s = p("SELECT t.* FROM t WHERE t.d = CAST('2020-01-01' AS DATE)");
        assert!(matches!(&s.conditions[0], Condition::Cmp { literal, .. }
            if literal.text == "'2020-01-01'"));
        let s = parse("SELECT t.* FROM t WHERE t.d = '2020-01-01'::date", &Postgres).unwrap();
        assert!(matches!(&s.conditions[0], Condition::Cmp { literal, .. }
            if literal.text == "'2020-01-01'"));
        let s = p("SELECT t.* FROM t WHERE t.d >= DATE '2020-01-01'");
        assert!(matches!(&s.conditions[0], Condition::Cmp { op: ">=", literal, .. }
            if literal.text == "'2020-01-01'"));
        let s = p("SELECT t.* FROM t WHERE t.n = CAST('9.99' AS DECIMAL(10, 2))");
        assert!(matches!(&s.conditions[0], Condition::Cmp { literal, .. }
            if literal.text == "'9.99'"));
    }

    #[test]
    fn parameter_markers_are_literals() {
        let s = parse("SELECT t.* FROM t WHERE t.a = $1 AND t.b IN ($2, $3)", &Postgres).unwrap();
        assert!(matches!(&s.conditions[0], Condition::Cmp { literal, .. } if literal.text == "$1"));
        let s = parse("SELECT t.* FROM t WHERE t.a = ?", &MySql).unwrap();
        assert!(matches!(&s.conditions[0], Condition::Cmp { literal, .. } if literal.text == "?"));
    }

    #[test]
    fn literal_op_column_normalizes_by_mirroring() {
        let s = p("SELECT t.* FROM t WHERE 10 < t.a");
        assert!(matches!(&s.conditions[0], Condition::Cmp { op: ">", literal, .. }
            if literal.text == "10"));
        let s = p("SELECT t.* FROM t WHERE 10 = t.a");
        assert!(matches!(&s.conditions[0], Condition::Cmp { op: "=", .. }));
    }

    #[test]
    fn parenthesized_groups_splice() {
        let s = p("SELECT t.* FROM t WHERE (t.a = 1 AND t.b = 2) AND t.c = 3");
        assert_eq!(s.conditions.len(), 3);
    }

    #[test]
    fn distinct_all_and_order_direction() {
        let s = p("SELECT DISTINCT t.a FROM t ORDER BY t.a DESC, t.b ASC");
        assert!(s.distinct);
        assert_eq!(s.order_by.len(), 2);
        let s = p("SELECT ALL t.a FROM t");
        assert!(!s.distinct);
    }

    #[test]
    fn unsupported_constructs_produce_typed_errors() {
        let cases: [(&str, &str); 10] = [
            ("SELECT t.* FROM t WHERE t.a = 1 OR t.b = 2", "OR disjunction"),
            ("SELECT t.* FROM t LEFT JOIN u ON t.a = u.a", "outer join"),
            ("SELECT t.* FROM t WHERE NOT t.a = 1", "NOT"),
            ("SELECT t.* FROM t WHERE t.a IS NULL", "IS [NOT] NULL"),
            ("SELECT t.* FROM t GROUP BY t.a HAVING COUNT(*) > 1", "HAVING clause"),
            ("SELECT t.* FROM t WHERE t.a IN (SELECT b.a FROM b)", "IN subquery"),
            ("SELECT COUNT(DISTINCT t.a) FROM t", "DISTINCT inside an aggregate"),
            ("SELECT t.* FROM (SELECT 1) x", "derived table (subquery in FROM)"),
            ("SELECT t.* FROM t WHERE t.a <> 5", "not-equal predicate"),
            ("SELECT t.* FROM t LIMIT 10 OFFSET 5", "OFFSET clause"),
        ];
        for (sql, what) in cases {
            match parse(sql, &Ansi) {
                Err(ParseError::Unsupported { what: got, span }) => {
                    assert_eq!(got, what, "{sql}");
                    assert!(span.end > span.start || span.end <= sql.len());
                }
                other => panic!("{sql}: expected Unsupported({what}), got {other:?}"),
            }
        }
    }

    #[test]
    fn syntax_errors_carry_spans() {
        // "FROM" is consumed as the (keyword-named) select item, so the
        // parser reports the missing FROM keyword at "t".
        let e = parse("SELECT FROM t", &Ansi).unwrap_err();
        assert!(matches!(e, ParseError::UnexpectedToken { expected: "FROM", found, .. }
            if found == "t"));
        let e = parse("SELECT t.a FROM", &Ansi).unwrap_err();
        assert!(matches!(e, ParseError::UnexpectedEnd { .. }));
        assert_eq!(e.span(), Span::at(15));
        let e = parse("SELECT t.a FROM t WHERE", &Ansi).unwrap_err();
        assert_eq!(e.kind(), "unexpected_end");
        // "extra" binds as a bare alias; "nonsense" is left over.
        let e = parse("SELECT t.a FROM t extra nonsense", &Ansi).unwrap_err();
        assert_eq!(e.kind(), "trailing_input");
        assert_eq!(e.span().slice("SELECT t.a FROM t extra nonsense"), "nonsense");
        let e = parse("UPDATE t SET a = 1", &Ansi).unwrap_err();
        assert!(matches!(e, ParseError::UnexpectedToken { expected: "SELECT", .. }));
        let e = parse("SELECT t.a FROM t; SELECT 1", &Ansi).unwrap_err();
        assert_eq!(e.kind(), "trailing_input");
    }

    #[test]
    fn keywords_can_still_be_identifiers() {
        // `count` as a column, `first` as a table: context disambiguates.
        let s = p("SELECT t.count FROM first t WHERE t.count > 3");
        assert_eq!(s.from[0].table, "first");
        assert!(matches!(&s.items[0], SelectItem::Column(c) if c.column == "count"));
    }

    #[test]
    fn semicolon_terminates_cleanly() {
        assert_eq!(p("SELECT t.a FROM t;").from.len(), 1);
    }

    #[test]
    fn mysql_quoting_round_trips() {
        let s =
            parse("SELECT `o`.`total` FROM `orders` AS `o` WHERE `o`.`total` > 5", &MySql).unwrap();
        assert_eq!(s.from[0].table, "orders");
        assert!(matches!(&s.items[0], SelectItem::Column(c) if c.column == "total"));
    }
}
