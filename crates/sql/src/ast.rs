//! The parsed form of a `SELECT` statement — the narrow waist between the
//! dialect-aware parser and the catalog-aware lowering pass.
//!
//! The AST mirrors the grammar subset the plan model covers (see
//! [`crate`]-level docs): a single `SELECT` block with comma- or
//! `JOIN … ON`-style joins, an `AND`-conjunction of comparisons in `WHERE`,
//! `GROUP BY` / `ORDER BY` column lists, aggregates, `DISTINCT`, and a
//! limit. Literals keep their source spelling so a render → parse round
//! trip is lossless.

use crate::error::Span;
use wmp_plan::query::AggFunc;

/// A possibly-qualified column reference (`alias.col` or `col`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// The qualifier before the dot, if any.
    pub qualifier: Option<String>,
    /// The column name.
    pub column: String,
    /// Source span of the whole reference.
    pub span: Span,
}

/// A literal operand, spelled as in the source (`42`, `'CA'`, `$1`, `?`).
/// Casts are unwrapped during parsing: `CAST('2020-01-01' AS DATE)` and
/// `'2020-01-01'::date` both yield the inner literal's spelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Literal {
    /// Source text of the literal (quotes included for strings).
    pub text: String,
    /// Source span (of the full cast expression when one was unwrapped).
    pub span: Span,
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectItem {
    /// `*`
    Star(Span),
    /// `alias.*`
    QualifiedStar {
        /// The qualifying alias.
        qualifier: String,
        /// Source span.
        span: Span,
    },
    /// A plain column (projection only; `QuerySpec` carries no projection
    /// list, so lowering validates and drops these).
    Column(ColumnRef),
    /// An aggregate call: `COUNT(*)`, `SUM(alias.col)`, …
    Aggregate {
        /// The function.
        func: AggFunc,
        /// The argument column; `None` for `COUNT(*)`.
        arg: Option<ColumnRef>,
        /// Source span of the whole call.
        span: Span,
    },
}

/// A FROM-clause table binding: `table [AS] [alias]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FromItem {
    /// Catalog table name (dialect-folded unless quoted).
    pub table: String,
    /// Binding alias; defaults to the table name when absent.
    pub alias: String,
    /// Source span of the binding.
    pub span: Span,
}

/// One conjunct of the WHERE clause (or a `JOIN … ON` condition, which the
/// parser folds into the same conjunction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Condition {
    /// `a.x = b.y` — an equi-join edge between two column references.
    Join {
        /// Left column.
        left: ColumnRef,
        /// Right column.
        right: ColumnRef,
        /// Source span.
        span: Span,
    },
    /// `col <op> literal` (or `literal <op> col`, normalized with the
    /// operator mirrored).
    Cmp {
        /// Filtered column.
        col: ColumnRef,
        /// Comparison operator: `=`, `<`, `<=`, `>`, `>=` (and `<>` / `!=`,
        /// which lowering rejects as unsupported by the plan model).
        op: &'static str,
        /// Comparand.
        literal: Literal,
        /// Source span.
        span: Span,
    },
    /// `col BETWEEN lo AND hi`.
    Between {
        /// Filtered column.
        col: ColumnRef,
        /// Lower bound.
        lo: Literal,
        /// Upper bound.
        hi: Literal,
        /// Source span.
        span: Span,
    },
    /// `col IN (a, b, …)`.
    InList {
        /// Filtered column.
        col: ColumnRef,
        /// List items.
        items: Vec<Literal>,
        /// Source span.
        span: Span,
    },
    /// `col LIKE pattern`.
    Like {
        /// Filtered column.
        col: ColumnRef,
        /// Pattern literal.
        pattern: Literal,
        /// Source span.
        span: Span,
    },
}

impl Condition {
    /// The span of the whole condition.
    pub fn span(&self) -> Span {
        match self {
            Condition::Join { span, .. }
            | Condition::Cmp { span, .. }
            | Condition::Between { span, .. }
            | Condition::InList { span, .. }
            | Condition::Like { span, .. } => *span,
        }
    }
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// The SELECT list.
    pub items: Vec<SelectItem>,
    /// FROM bindings in source order.
    pub from: Vec<FromItem>,
    /// The WHERE conjunction (including folded `JOIN … ON` conditions), in
    /// source order.
    pub conditions: Vec<Condition>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnRef>,
    /// ORDER BY columns (directions are not modeled).
    pub order_by: Vec<ColumnRef>,
    /// `LIMIT n` / `FETCH FIRST n ROWS ONLY`.
    pub limit: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condition_span_covers_every_variant() {
        let col = ColumnRef { qualifier: None, column: "c".into(), span: Span::new(1, 2) };
        let lit = Literal { text: "1".into(), span: Span::new(3, 4) };
        let conds = [
            Condition::Join { left: col.clone(), right: col.clone(), span: Span::new(0, 5) },
            Condition::Cmp {
                col: col.clone(),
                op: "=",
                literal: lit.clone(),
                span: Span::new(0, 6),
            },
            Condition::Between {
                col: col.clone(),
                lo: lit.clone(),
                hi: lit.clone(),
                span: Span::new(0, 7),
            },
            Condition::InList { col: col.clone(), items: vec![lit.clone()], span: Span::new(0, 8) },
            Condition::Like { col, pattern: lit, span: Span::new(0, 9) },
        ];
        for (i, c) in conds.iter().enumerate() {
            assert_eq!(c.span(), Span::new(0, 5 + i));
        }
    }
}
