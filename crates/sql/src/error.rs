//! Typed, span-carrying parse and lowering errors.
//!
//! Every error points at the byte range of the offending text, so a log
//! ingestion pipeline can report *where* a production query diverged from
//! the supported grammar — the difference between "parse error" and an
//! actionable rejection line in a multi-million-query replay.

use std::fmt;

/// A half-open byte range `[start, end)` into the source SQL text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first byte of the spanned text.
    pub start: usize,
    /// Byte offset one past the last byte of the spanned text.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-width span at `at` (end-of-input errors).
    pub fn at(at: usize) -> Self {
        Span { start: at, end: at }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// The spanned slice of `source` (empty when out of range — spans are
    /// diagnostics, never an excuse to panic).
    pub fn slice<'a>(&self, source: &'a str) -> &'a str {
        source.get(self.start..self.end).unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytes {}..{}", self.start, self.end)
    }
}

/// Errors produced while tokenizing, parsing, or lowering SQL text.
///
/// Marked `#[non_exhaustive]`: the dialect grows new rejection cases;
/// downstream matches carry a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// A character outside the SQL lexical grammar (tokenizer).
    UnexpectedChar {
        /// The offending character.
        ch: char,
        /// Where it sits.
        span: Span,
    },
    /// A string literal whose closing quote never arrives.
    UnterminatedString {
        /// From the opening quote to end of input.
        span: Span,
    },
    /// A quoted identifier whose closing quote never arrives.
    UnterminatedIdent {
        /// From the opening quote to end of input.
        span: Span,
    },
    /// A quoted identifier with no characters between the quotes.
    EmptyIdent {
        /// The empty quotes.
        span: Span,
    },
    /// The parser expected one construct and found another token.
    UnexpectedToken {
        /// What the grammar wanted here.
        expected: &'static str,
        /// The token text actually found.
        found: String,
        /// Where it sits.
        span: Span,
    },
    /// Input ended where the grammar still required something.
    UnexpectedEnd {
        /// What the grammar wanted next.
        expected: &'static str,
        /// Zero-width span at end of input.
        span: Span,
    },
    /// The statement parsed, but tokens remain after it.
    TrailingInput {
        /// The first unconsumed token.
        span: Span,
    },
    /// Recognized SQL that the supported SELECT subset does not cover.
    Unsupported {
        /// The construct (e.g. "HAVING clause", "scalar subquery").
        what: &'static str,
        /// Where it starts.
        span: Span,
    },
    /// A planner rejection surfaced through the SQL front-end (lowering
    /// already resolved identifiers, so these indicate catalog drift).
    Planner {
        /// The planner error, rendered.
        message: String,
        /// Zero span: the failure is not tied to a byte range.
        span: Span,
    },
    /// A numeric token that does not fit its slot (e.g. a LIMIT overflow).
    InvalidNumber {
        /// The literal text.
        text: String,
        /// Where it sits.
        span: Span,
    },
    /// A FROM-clause table the catalog does not define.
    UnknownTable {
        /// Catalog-folded table name.
        name: String,
        /// Where it is referenced.
        span: Span,
    },
    /// A column its resolved table does not define.
    UnknownColumn {
        /// The table searched.
        table: String,
        /// The missing column.
        column: String,
        /// Where it is referenced.
        span: Span,
    },
    /// A qualifier (`x` in `x.col`) no FROM item binds.
    UnknownAlias {
        /// The unbound qualifier.
        alias: String,
        /// Where it is referenced.
        span: Span,
    },
    /// An unqualified column defined by more than one FROM table.
    AmbiguousColumn {
        /// The ambiguous column.
        column: String,
        /// Where it is referenced.
        span: Span,
    },
    /// The same alias bound twice in FROM.
    DuplicateAlias {
        /// The rebound alias.
        alias: String,
        /// The second binding.
        span: Span,
    },
}

impl ParseError {
    /// The byte range the error points at.
    pub fn span(&self) -> Span {
        match self {
            ParseError::UnexpectedChar { span, .. }
            | ParseError::UnterminatedString { span }
            | ParseError::UnterminatedIdent { span }
            | ParseError::EmptyIdent { span }
            | ParseError::UnexpectedToken { span, .. }
            | ParseError::UnexpectedEnd { span, .. }
            | ParseError::TrailingInput { span }
            | ParseError::Unsupported { span, .. }
            | ParseError::InvalidNumber { span, .. }
            | ParseError::UnknownTable { span, .. }
            | ParseError::UnknownColumn { span, .. }
            | ParseError::UnknownAlias { span, .. }
            | ParseError::AmbiguousColumn { span, .. }
            | ParseError::DuplicateAlias { span, .. }
            | ParseError::Planner { span, .. } => *span,
        }
    }

    /// Short machine-friendly kind tag (metric labels, corpus assertions).
    pub fn kind(&self) -> &'static str {
        match self {
            ParseError::UnexpectedChar { .. } => "unexpected_char",
            ParseError::UnterminatedString { .. } => "unterminated_string",
            ParseError::UnterminatedIdent { .. } => "unterminated_ident",
            ParseError::EmptyIdent { .. } => "empty_ident",
            ParseError::UnexpectedToken { .. } => "unexpected_token",
            ParseError::UnexpectedEnd { .. } => "unexpected_end",
            ParseError::TrailingInput { .. } => "trailing_input",
            ParseError::Unsupported { .. } => "unsupported",
            ParseError::InvalidNumber { .. } => "invalid_number",
            ParseError::UnknownTable { .. } => "unknown_table",
            ParseError::UnknownColumn { .. } => "unknown_column",
            ParseError::UnknownAlias { .. } => "unknown_alias",
            ParseError::AmbiguousColumn { .. } => "ambiguous_column",
            ParseError::DuplicateAlias { .. } => "duplicate_alias",
            ParseError::Planner { .. } => "planner",
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedChar { ch, span } => {
                write!(f, "unexpected character {ch:?} at {span}")
            }
            ParseError::UnterminatedString { span } => {
                write!(f, "unterminated string literal at {span}")
            }
            ParseError::UnterminatedIdent { span } => {
                write!(f, "unterminated quoted identifier at {span}")
            }
            ParseError::EmptyIdent { span } => write!(f, "empty quoted identifier at {span}"),
            ParseError::UnexpectedToken { expected, found, span } => {
                write!(f, "expected {expected}, found {found:?} at {span}")
            }
            ParseError::UnexpectedEnd { expected, span } => {
                write!(f, "expected {expected}, found end of input at {span}")
            }
            ParseError::TrailingInput { span } => {
                write!(f, "trailing input after statement at {span}")
            }
            ParseError::Unsupported { what, span } => {
                write!(f, "unsupported SQL: {what} at {span}")
            }
            ParseError::InvalidNumber { text, span } => {
                write!(f, "invalid number {text:?} at {span}")
            }
            ParseError::UnknownTable { name, span } => {
                write!(f, "unknown table {name:?} at {span}")
            }
            ParseError::UnknownColumn { table, column, span } => {
                write!(f, "unknown column {table}.{column} at {span}")
            }
            ParseError::UnknownAlias { alias, span } => {
                write!(f, "unknown table alias {alias:?} at {span}")
            }
            ParseError::AmbiguousColumn { column, span } => {
                write!(f, "ambiguous column {column:?} (qualify it) at {span}")
            }
            ParseError::DuplicateAlias { alias, span } => {
                write!(f, "duplicate table alias {alias:?} at {span}")
            }
            ParseError::Planner { message, span } => {
                write!(f, "planner rejected lowered query: {message} at {span}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Convenience alias.
pub type SqlResult<T> = Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_and_slice() {
        let s = Span::new(3, 7).merge(Span::new(5, 10));
        assert_eq!(s, Span::new(3, 10));
        assert_eq!(Span::new(0, 6).slice("SELECT 1"), "SELECT");
        assert_eq!(Span::new(90, 99).slice("short"), "", "out-of-range slices are empty");
        assert_eq!(Span::at(4), Span::new(4, 4));
    }

    #[test]
    fn errors_expose_span_and_kind() {
        let e = ParseError::UnknownTable { name: "nope".into(), span: Span::new(14, 18) };
        assert_eq!(e.span(), Span::new(14, 18));
        assert_eq!(e.kind(), "unknown_table");
        assert!(e.to_string().contains("nope"));
        assert!(e.to_string().contains("14..18"));
    }

    #[test]
    fn display_covers_every_variant() {
        let s = Span::new(0, 1);
        let variants: Vec<ParseError> = vec![
            ParseError::UnexpectedChar { ch: '#', span: s },
            ParseError::UnterminatedString { span: s },
            ParseError::UnterminatedIdent { span: s },
            ParseError::EmptyIdent { span: s },
            ParseError::UnexpectedToken { expected: "FROM", found: "WHERE".into(), span: s },
            ParseError::UnexpectedEnd { expected: "a column", span: s },
            ParseError::TrailingInput { span: s },
            ParseError::Unsupported { what: "HAVING clause", span: s },
            ParseError::InvalidNumber { text: "9e999".into(), span: s },
            ParseError::UnknownTable { name: "t".into(), span: s },
            ParseError::UnknownColumn { table: "t".into(), column: "c".into(), span: s },
            ParseError::UnknownAlias { alias: "x".into(), span: s },
            ParseError::AmbiguousColumn { column: "c".into(), span: s },
            ParseError::DuplicateAlias { alias: "a".into(), span: s },
        ];
        let mut kinds = std::collections::HashSet::new();
        for v in &variants {
            assert!(!v.to_string().is_empty());
            assert!(kinds.insert(v.kind()), "kind tags are unique");
        }
    }
}
