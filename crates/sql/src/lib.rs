//! SQL ingestion front-end for LearnedWMP: a dependency-free tokenizer,
//! recursive-descent parser, and catalog-aware lowering pass for the
//! `SELECT` subset the plan model covers.
//!
//! The paper's pipeline starts from *query plans*; production systems start
//! from *query text*. This crate bridges the two: SQL text from a DBMS log
//! is parsed under a concrete [`Dialect`] (ANSI, Postgres, MySQL — quoting,
//! parameter markers, cast syntax, and case folding differ) and lowered
//! against a [`wmp_plan::catalog::Catalog`] into a
//! [`wmp_plan::query::QuerySpec`], after which the existing planner →
//! featurizer → predictor path applies unchanged.
//!
//! Supported grammar: single-block `SELECT` with `DISTINCT`, aggregates
//! (`COUNT`/`SUM`/`AVG`/`MIN`/`MAX`), comma- and `JOIN … ON`-style
//! equi-joins, an `AND` conjunction of comparison / `BETWEEN` / `IN` /
//! `LIKE` predicates, `GROUP BY`, `ORDER BY`, and both limit spellings.
//! Everything else fails with a typed, span-carrying [`ParseError`] —
//! a memory predictor must reject what it cannot model, never guess.
//!
//! ```
//! use wmp_sql::{parse_to_spec, Postgres};
//! use wmp_plan::catalog::Catalog;
//! use wmp_plan::schema::{Column, ColumnType, Table};
//!
//! let mut catalog = Catalog::new();
//! catalog.add_table(Table::new(
//!     "orders",
//!     1000,
//!     vec![Column::new("o_id", ColumnType::Int, 1000),
//!          Column::new("o_total", ColumnType::Decimal, 500)],
//! ));
//! let spec = parse_to_spec(
//!     "SELECT COUNT(*) FROM orders o WHERE o.o_total > $1",
//!     &Postgres,
//!     &catalog,
//! ).unwrap();
//! assert_eq!(spec.tables.len(), 1);
//! assert_eq!(spec.predicates.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod dialect;
pub mod error;
pub mod lower;
pub mod parser;
pub mod render;
pub mod token;

pub use ast::SelectStmt;
pub use dialect::{all_dialects, Ansi, Dialect, MySql, Postgres};
pub use error::{ParseError, Span, SqlResult};
pub use lower::lower;
pub use parser::parse;
pub use render::{ident_needs_quoting, quote_ident, render_sql_dialect};

use wmp_plan::catalog::Catalog;
use wmp_plan::query::QuerySpec;

/// Parses SQL text under `dialect` and lowers it against `catalog` in one
/// step — the entry point log-ingestion paths use.
///
/// # Errors
/// Any tokenizer, parser, or lowering [`ParseError`]; never panics.
pub fn parse_to_spec(sql: &str, dialect: &dyn Dialect, catalog: &Catalog) -> SqlResult<QuerySpec> {
    lower(&parse(sql, dialect)?, catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmp_plan::schema::{Column, ColumnType, Table};

    #[test]
    fn parse_to_spec_end_to_end_under_each_dialect() {
        let mut catalog = Catalog::new();
        catalog.add_table(Table::new(
            "orders",
            1000,
            vec![
                Column::new("o_id", ColumnType::Int, 1000),
                Column::new("o_total", ColumnType::Decimal, 500),
            ],
        ));
        for d in all_dialects() {
            let spec = parse_to_spec(
                "SELECT COUNT(*) FROM orders o WHERE o.o_total > 5 LIMIT 10",
                d,
                &catalog,
            )
            .unwrap_or_else(|e| panic!("{}: {e}", d.name()));
            assert_eq!(spec.tables.len(), 1, "{}", d.name());
            assert_eq!(spec.limit, Some(10));
        }
    }

    #[test]
    fn errors_propagate_from_every_stage() {
        let catalog = Catalog::new();
        // tokenizer
        assert_eq!(parse_to_spec("SELECT #", &Ansi, &catalog).unwrap_err().kind(), {
            "unexpected_char"
        });
        // parser
        assert_eq!(
            parse_to_spec("SELECT , FROM t", &Ansi, &catalog).unwrap_err().kind(),
            "unexpected_token"
        );
        // lowering (empty catalog: no tables exist)
        assert_eq!(
            parse_to_spec("SELECT t.* FROM t", &Ansi, &catalog).unwrap_err().kind(),
            "unknown_table"
        );
    }
}
