//! Lowering: resolve a parsed [`SelectStmt`] against a [`Catalog`] into the
//! plan model's [`QuerySpec`].
//!
//! Resolution follows SQL scoping rules for the supported subset: FROM
//! bindings introduce aliases (rejecting duplicates), qualified references
//! must name a bound alias, and unqualified references must resolve to
//! exactly one table in scope.
//!
//! Selectivities cannot be recovered from text — `sel_true` is a property
//! of the hidden data model and `sel_est` of the generator's estimator run.
//! Lowering therefore assigns the textbook statistics-based defaults the
//! optimizer literature uses (System R heuristics over catalog `ndv`):
//!
//! | predicate | `sel_est` |
//! |---|---|
//! | `col = lit` | `1 / ndv` |
//! | `col IN (k items)` | `min(k / ndv, 1)` |
//! | `col < / <= / > / >= lit` | `1/3` |
//! | `col BETWEEN a AND b` | `1/9` |
//! | `col LIKE pat` | `0.05` |
//!
//! `sel_true` is set equal to `sel_est`: for text-ingested queries there is
//! no hidden truth to disagree with, and downstream consumers (simulator,
//! featurizers) treat the pair as "estimate + actual" without caring where
//! they came from.

use std::collections::HashMap;

use wmp_plan::catalog::Catalog;
use wmp_plan::query::{Aggregate, CmpOp, JoinEdge, Predicate, QuerySpec, TableRef};

use crate::ast::{ColumnRef, Condition, Literal, SelectItem, SelectStmt};
use crate::error::{ParseError, SqlResult};

/// Selectivity assigned to a single-sided range predicate.
pub const RANGE_SELECTIVITY: f64 = 1.0 / 3.0;
/// Selectivity assigned to `BETWEEN` (two range bounds).
pub const BETWEEN_SELECTIVITY: f64 = 1.0 / 9.0;
/// Selectivity assigned to `LIKE`.
pub const LIKE_SELECTIVITY: f64 = 0.05;

/// Lowers a parsed statement to a [`QuerySpec`], resolving every table and
/// column against `catalog`.
///
/// The produced spec has `id = 0` (callers assign corpus ids) and
/// statistics-based default selectivities (see module docs).
///
/// # Errors
/// [`ParseError::UnknownTable`], [`ParseError::UnknownColumn`],
/// [`ParseError::UnknownAlias`], [`ParseError::AmbiguousColumn`],
/// [`ParseError::DuplicateAlias`], or [`ParseError::Unsupported`] for
/// parseable constructs the plan model cannot express; all span-carrying.
pub fn lower(stmt: &SelectStmt, catalog: &Catalog) -> SqlResult<QuerySpec> {
    let scope = Scope::bind(stmt, catalog)?;
    let mut spec = QuerySpec {
        distinct: stmt.distinct,
        limit: stmt.limit,
        tables: stmt
            .from
            .iter()
            .map(|f| TableRef { table: f.table.clone(), alias: f.alias.clone() })
            .collect(),
        ..QuerySpec::default()
    };

    for item in &stmt.items {
        match item {
            SelectItem::Star(_) => {}
            SelectItem::QualifiedStar { qualifier, span } => {
                scope.alias_table(qualifier, *span)?;
            }
            SelectItem::Column(col) => {
                scope.resolve(col, catalog)?;
            }
            SelectItem::Aggregate { func, arg, .. } => {
                let (table_alias, column) = match arg {
                    Some(col) => {
                        let (alias, _, column) = scope.resolve(col, catalog)?;
                        (alias, column)
                    }
                    None => (String::new(), String::new()),
                };
                spec.aggregates.push(Aggregate { func: *func, table_alias, column });
            }
        }
    }

    for cond in &stmt.conditions {
        match cond {
            Condition::Join { left, right, .. } => {
                let (left_alias, _, left_col) = scope.resolve(left, catalog)?;
                let (right_alias, _, right_col) = scope.resolve(right, catalog)?;
                spec.joins.push(JoinEdge { left_alias, left_col, right_alias, right_col });
            }
            Condition::Cmp { col, op, literal, span } => {
                let (table_alias, ndv, column) = scope.resolve(col, catalog)?;
                let (op, sel) = match *op {
                    "=" => (CmpOp::Eq, eq_selectivity(ndv)),
                    "<" => (CmpOp::Lt, RANGE_SELECTIVITY),
                    "<=" => (CmpOp::Le, RANGE_SELECTIVITY),
                    ">" => (CmpOp::Gt, RANGE_SELECTIVITY),
                    ">=" => (CmpOp::Ge, RANGE_SELECTIVITY),
                    _ => {
                        return Err(ParseError::Unsupported {
                            what: "not-equal predicate",
                            span: *span,
                        })
                    }
                };
                spec.predicates.push(predicate(table_alias, column, op, literal.text.clone(), sel));
            }
            Condition::Between { col, lo, hi, .. } => {
                let (table_alias, _, column) = scope.resolve(col, catalog)?;
                let literal = format!("{} AND {}", lo.text, hi.text);
                spec.predicates.push(predicate(
                    table_alias,
                    column,
                    CmpOp::Between,
                    literal,
                    BETWEEN_SELECTIVITY,
                ));
            }
            Condition::InList { col, items, span } => {
                let (table_alias, ndv, column) = scope.resolve(col, catalog)?;
                if items.len() > u8::MAX as usize {
                    return Err(ParseError::Unsupported {
                        what: "IN list longer than 255 items",
                        span: *span,
                    });
                }
                let sel = (items.len() as f64 * eq_selectivity(ndv)).min(1.0);
                spec.predicates.push(predicate(
                    table_alias,
                    column,
                    CmpOp::InList(items.len() as u8),
                    render_in_list(items),
                    sel,
                ));
            }
            Condition::Like { col, pattern, .. } => {
                let (table_alias, _, column) = scope.resolve(col, catalog)?;
                spec.predicates.push(predicate(
                    table_alias,
                    column,
                    CmpOp::Like,
                    pattern.text.clone(),
                    LIKE_SELECTIVITY,
                ));
            }
        }
    }

    for col in &stmt.group_by {
        let (alias, _, column) = scope.resolve(col, catalog)?;
        spec.group_by.push((alias, column));
    }
    for col in &stmt.order_by {
        let (alias, _, column) = scope.resolve(col, catalog)?;
        spec.order_by.push((alias, column));
    }
    Ok(spec)
}

fn predicate(
    table_alias: String,
    column: String,
    op: CmpOp,
    literal: String,
    sel: f64,
) -> Predicate {
    Predicate { table_alias, column, op, literal, sel_est: sel, sel_true: sel }
}

fn eq_selectivity(ndv: u64) -> f64 {
    1.0 / ndv.max(1) as f64
}

fn render_in_list(items: &[Literal]) -> String {
    let texts: Vec<&str> = items.iter().map(|l| l.text.as_str()).collect();
    texts.join(", ")
}

/// Alias scope built from the FROM clause.
struct Scope {
    /// alias → table name.
    by_alias: HashMap<String, String>,
}

impl Scope {
    fn bind(stmt: &SelectStmt, catalog: &Catalog) -> SqlResult<Scope> {
        let mut by_alias = HashMap::new();
        for item in &stmt.from {
            if catalog.table(&item.table).is_none() {
                return Err(ParseError::UnknownTable { name: item.table.clone(), span: item.span });
            }
            if by_alias.insert(item.alias.clone(), item.table.clone()).is_some() {
                return Err(ParseError::DuplicateAlias {
                    alias: item.alias.clone(),
                    span: item.span,
                });
            }
        }
        Ok(Scope { by_alias })
    }

    fn alias_table(&self, alias: &str, span: crate::error::Span) -> SqlResult<&str> {
        self.by_alias
            .get(alias)
            .map(String::as_str)
            .ok_or_else(|| ParseError::UnknownAlias { alias: alias.to_string(), span })
    }

    /// Resolves a column reference to `(alias, ndv, column)`.
    fn resolve(&self, col: &ColumnRef, catalog: &Catalog) -> SqlResult<(String, u64, String)> {
        match &col.qualifier {
            Some(alias) => {
                let table = self.alias_table(alias, col.span)?;
                match catalog.column(table, &col.column) {
                    Some((_, c)) => Ok((alias.clone(), c.ndv, col.column.clone())),
                    None => Err(ParseError::UnknownColumn {
                        table: table.to_string(),
                        column: col.column.clone(),
                        span: col.span,
                    }),
                }
            }
            None => {
                let mut hit: Option<(String, u64)> = None;
                for (alias, table) in &self.by_alias {
                    if let Some((_, c)) = catalog.column(table, &col.column) {
                        if hit.is_some() {
                            return Err(ParseError::AmbiguousColumn {
                                column: col.column.clone(),
                                span: col.span,
                            });
                        }
                        hit = Some((alias.clone(), c.ndv));
                    }
                }
                match hit {
                    Some((alias, ndv)) => Ok((alias, ndv, col.column.clone())),
                    None => Err(ParseError::UnknownColumn {
                        table: "<any table in scope>".to_string(),
                        column: col.column.clone(),
                        span: col.span,
                    }),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::Ansi;
    use crate::parser::parse;
    use wmp_plan::schema::{Column, ColumnType, Table};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(Table::new(
            "orders",
            10_000,
            vec![
                Column::new("o_id", ColumnType::Int, 10_000),
                Column::new("o_cust", ColumnType::Int, 1_000),
                Column::new("o_total", ColumnType::Decimal, 5_000),
            ],
        ));
        cat.add_table(Table::new(
            "customer",
            1_000,
            vec![
                Column::new("c_id", ColumnType::Int, 1_000),
                Column::new("c_nation", ColumnType::Char(2), 25),
            ],
        ));
        cat
    }

    fn lowered(sql: &str) -> QuerySpec {
        let stmt = parse(sql, &Ansi).unwrap_or_else(|e| panic!("{sql:?}: {e}"));
        lower(&stmt, &catalog()).unwrap_or_else(|e| panic!("{sql:?}: {e}"))
    }

    #[test]
    fn full_query_lowers() {
        let spec = lowered(
            "SELECT c.c_nation, SUM(o.o_total) FROM orders AS o, customer AS c \
             WHERE o.o_cust = c.c_id AND c.c_nation = 'CA' AND o.o_total BETWEEN 5 AND 10 \
             GROUP BY c.c_nation ORDER BY c.c_nation FETCH FIRST 10 ROWS ONLY",
        );
        assert_eq!(spec.tables.len(), 2);
        assert_eq!(spec.joins.len(), 1);
        assert_eq!(spec.joins[0].left_alias, "o");
        assert_eq!(spec.predicates.len(), 2);
        assert_eq!(spec.predicates[0].op, CmpOp::Eq);
        assert!((spec.predicates[0].sel_est - 1.0 / 25.0).abs() < 1e-12, "eq uses 1/ndv");
        assert_eq!(spec.predicates[1].op, CmpOp::Between);
        assert_eq!(spec.predicates[1].literal, "5 AND 10");
        assert!((spec.predicates[1].sel_est - BETWEEN_SELECTIVITY).abs() < 1e-12);
        assert_eq!(spec.group_by, vec![("c".to_string(), "c_nation".to_string())]);
        assert_eq!(spec.order_by.len(), 1);
        assert_eq!(spec.limit, Some(10));
        assert_eq!(spec.aggregates.len(), 1);
        assert_eq!(spec.aggregates[0].table_alias, "o");
    }

    #[test]
    fn selectivity_defaults() {
        let spec = lowered(
            "SELECT o.* FROM orders o WHERE o.o_total > 5 AND o.o_cust IN (1, 2, 3) \
             AND o.o_id LIKE '%9%'",
        );
        assert!((spec.predicates[0].sel_est - RANGE_SELECTIVITY).abs() < 1e-12);
        assert_eq!(spec.predicates[1].op, CmpOp::InList(3));
        assert!((spec.predicates[1].sel_est - 3.0 / 1_000.0).abs() < 1e-12, "IN uses k/ndv");
        assert_eq!(spec.predicates[1].literal, "1, 2, 3");
        assert!((spec.predicates[2].sel_est - LIKE_SELECTIVITY).abs() < 1e-12);
        for p in &spec.predicates {
            assert_eq!(p.sel_est, p.sel_true, "text ingestion has no hidden truth");
        }
    }

    #[test]
    fn count_star_has_empty_alias_and_column() {
        let spec = lowered("SELECT COUNT(*) FROM orders");
        assert_eq!(spec.aggregates.len(), 1);
        assert_eq!(spec.aggregates[0].table_alias, "");
        assert_eq!(spec.aggregates[0].column, "");
    }

    #[test]
    fn unqualified_columns_resolve_when_unambiguous() {
        let spec = lowered("SELECT c_nation FROM orders, customer WHERE o_cust = c_id");
        assert_eq!(spec.joins.len(), 1);
        // Unqualified resolution binds to the table-name aliases.
        let edge = &spec.joins[0];
        assert_eq!(edge.left_alias, "orders");
        assert_eq!(edge.right_alias, "customer");
    }

    #[test]
    fn resolution_errors_are_typed() {
        let cat = catalog();
        let fail = |sql: &str| {
            let stmt = parse(sql, &Ansi).unwrap();
            lower(&stmt, &cat).unwrap_err()
        };
        assert_eq!(fail("SELECT x.* FROM nope x").kind(), "unknown_table");
        assert_eq!(fail("SELECT o.nope FROM orders o").kind(), "unknown_column");
        assert_eq!(fail("SELECT z.o_id FROM orders o").kind(), "unknown_alias");
        assert_eq!(
            fail("SELECT o.o_id FROM orders o, orders o WHERE o.o_id = 1").kind(),
            "duplicate_alias"
        );
        let e = fail("SELECT o_id FROM orders, orders o2");
        assert_eq!(e.kind(), "ambiguous_column");
        assert!(e.span().end > e.span().start, "resolution errors carry real spans");
        assert_eq!(fail("SELECT nope FROM orders").kind(), "unknown_column");
    }

    #[test]
    fn long_in_lists_are_rejected() {
        let items: Vec<String> = (0..300).map(|i| i.to_string()).collect();
        let sql = format!("SELECT o.* FROM orders o WHERE o.o_cust IN ({})", items.join(", "));
        let stmt = parse(&sql, &Ansi).unwrap();
        let e = lower(&stmt, &catalog()).unwrap_err();
        assert_eq!(e.kind(), "unsupported");
    }

    #[test]
    fn in_list_selectivity_caps_at_one() {
        // 30 items against ndv=25 would exceed 1.0 without the cap.
        let items: Vec<String> = (0..30).map(|i| format!("'{i}'")).collect();
        let sql = format!("SELECT c.* FROM customer c WHERE c.c_nation IN ({})", items.join(", "));
        let stmt = parse(&sql, &Ansi).unwrap();
        let spec = lower(&stmt, &catalog()).unwrap();
        assert_eq!(spec.predicates[0].sel_est, 1.0);
    }
}
