//! Span-carrying SQL tokenizer, parameterized by [`Dialect`] for quoting
//! and parameter-marker rules.
//!
//! Unlike `wmp_text::token` (which shreds query text into a bag of words
//! for the text-based template learners), this tokenizer is *exact*: every
//! token knows its byte span, literals keep their source spelling, and
//! malformed input produces a typed [`ParseError`] instead of being
//! silently dropped.

use crate::dialect::Dialect;
use crate::error::{ParseError, Span, SqlResult};

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword. `text` is dialect-folded for unquoted
    /// words and verbatim (quotes stripped, escapes resolved) for quoted
    /// ones; keywords are only ever recognized in unquoted words.
    Word {
        /// Resolved identifier text.
        text: String,
        /// Whether the word was quoted (quoted words never match keywords
        /// and never case-fold).
        quoted: bool,
    },
    /// A numeric literal, spelled as in the source (`42`, `3.14`).
    Number(String),
    /// A string literal, spelled as in the source including its quotes.
    StringLit(String),
    /// A parameter marker (`?`, `$1`).
    Param(String),
    /// Single-character punctuation: `( ) , . * ;`.
    Symbol(char),
    /// A comparison operator: `=`, `<`, `<=`, `>`, `>=`, `<>`, `!=`.
    Op(&'static str),
    /// The Postgres `::` cast operator.
    DoubleColon,
}

/// A token plus its byte range in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it sits in the source.
    pub span: Span,
}

impl Token {
    /// True when the token is the unquoted keyword `kw` (case-insensitive).
    /// `kw` must be passed in upper case by convention.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(&self.kind, TokenKind::Word { text, quoted: false } if text.eq_ignore_ascii_case(kw))
    }

    /// Short description of the token for error messages.
    pub fn describe(&self) -> String {
        match &self.kind {
            TokenKind::Word { text, .. } => text.clone(),
            TokenKind::Number(n) => n.clone(),
            TokenKind::StringLit(s) => s.clone(),
            TokenKind::Param(p) => p.clone(),
            TokenKind::Symbol(c) => c.to_string(),
            TokenKind::Op(o) => (*o).to_string(),
            TokenKind::DoubleColon => "::".to_string(),
        }
    }
}

/// Tokenizes `sql` under `dialect`'s lexical rules.
///
/// # Errors
/// Returns a span-carrying [`ParseError`] on unterminated strings or quoted
/// identifiers, empty quoted identifiers, parameter markers the dialect
/// does not support, and characters outside the grammar.
pub fn tokenize(sql: &str, dialect: &dyn Dialect) -> SqlResult<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let ch = sql[i..].chars().next().expect("in-bounds char");
        match ch {
            c if c.is_whitespace() => {
                i += c.len_utf8();
            }
            // -- line comment
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            // /* block comment */ (unterminated runs to end of input; logs
            // get truncated mid-comment and that is not worth an error)
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i < bytes.len() && !(bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/')) {
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
            }
            '\'' => {
                let (text, end) = lex_quoted(sql, i, '\'')
                    .ok_or(ParseError::UnterminatedString { span: Span::new(i, sql.len()) })?;
                let _ = text;
                tokens.push(Token {
                    kind: TokenKind::StringLit(sql[i..end].to_string()),
                    span: Span::new(i, end),
                });
                i = end;
            }
            '"' if dialect.double_quote_is_string() => {
                let (_, end) = lex_quoted(sql, i, '"')
                    .ok_or(ParseError::UnterminatedString { span: Span::new(i, sql.len()) })?;
                tokens.push(Token {
                    kind: TokenKind::StringLit(sql[i..end].to_string()),
                    span: Span::new(i, end),
                });
                i = end;
            }
            c if c == dialect.ident_quote() => {
                let (inner, end) = lex_quoted(sql, i, c)
                    .ok_or(ParseError::UnterminatedIdent { span: Span::new(i, sql.len()) })?;
                if inner.is_empty() {
                    return Err(ParseError::EmptyIdent { span: Span::new(i, end) });
                }
                tokens.push(Token {
                    kind: TokenKind::Word { text: inner, quoted: true },
                    span: Span::new(i, end),
                });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = i;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                let word = &sql[i..end];
                tokens.push(Token {
                    kind: TokenKind::Word { text: dialect.fold_ident(word), quoted: false },
                    span: Span::new(i, end),
                });
                i = end;
            }
            c if c.is_ascii_digit() => {
                let mut end = i;
                let mut seen_dot = false;
                while end < bytes.len()
                    && (bytes[end].is_ascii_digit() || (bytes[end] == b'.' && !seen_dot))
                {
                    // `42.x` must lex as `42` `.` `x`, not a malformed
                    // number: a dot is part of the number only when a digit
                    // follows it.
                    if bytes[end] == b'.' {
                        if end + 1 < bytes.len() && bytes[end + 1].is_ascii_digit() {
                            seen_dot = true;
                        } else {
                            break;
                        }
                    }
                    end += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Number(sql[i..end].to_string()),
                    span: Span::new(i, end),
                });
                i = end;
            }
            '?' if dialect.question_params() => {
                tokens.push(Token {
                    kind: TokenKind::Param("?".to_string()),
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            '$' if dialect.dollar_params() => {
                let mut end = i + 1;
                while end < bytes.len() && bytes[end].is_ascii_digit() {
                    end += 1;
                }
                if end == i + 1 {
                    return Err(ParseError::UnexpectedChar { ch: '$', span: Span::new(i, i + 1) });
                }
                tokens.push(Token {
                    kind: TokenKind::Param(sql[i..end].to_string()),
                    span: Span::new(i, end),
                });
                i = end;
            }
            '(' | ')' | ',' | '.' | '*' | ';' => {
                tokens.push(Token { kind: TokenKind::Symbol(ch), span: Span::new(i, i + 1) });
                i += 1;
            }
            '=' => {
                tokens.push(Token { kind: TokenKind::Op("="), span: Span::new(i, i + 1) });
                i += 1;
            }
            '<' => {
                let (op, len) = match bytes.get(i + 1) {
                    Some(b'=') => ("<=", 2),
                    Some(b'>') => ("<>", 2),
                    _ => ("<", 1),
                };
                tokens.push(Token { kind: TokenKind::Op(op), span: Span::new(i, i + len) });
                i += len;
            }
            '>' => {
                let (op, len) = if bytes.get(i + 1) == Some(&b'=') { (">=", 2) } else { (">", 1) };
                tokens.push(Token { kind: TokenKind::Op(op), span: Span::new(i, i + len) });
                i += len;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token { kind: TokenKind::Op("!="), span: Span::new(i, i + 2) });
                i += 2;
            }
            ':' if dialect.double_colon_cast() && bytes.get(i + 1) == Some(&b':') => {
                tokens.push(Token { kind: TokenKind::DoubleColon, span: Span::new(i, i + 2) });
                i += 2;
            }
            c => {
                return Err(ParseError::UnexpectedChar {
                    ch: c,
                    span: Span::new(start, start + c.len_utf8()),
                });
            }
        }
    }
    Ok(tokens)
}

/// Lexes a `quote`-delimited region starting at `start` (which must point at
/// the opening quote). Doubled quotes escape. Returns the unescaped inner
/// text and the byte offset one past the closing quote, or `None` when
/// unterminated.
fn lex_quoted(sql: &str, start: usize, quote: char) -> Option<(String, usize)> {
    let mut inner = String::new();
    let mut chars = sql[start..].char_indices().skip(1).peekable();
    while let Some((off, c)) = chars.next() {
        if c == quote {
            if let Some(&(_, next)) = chars.peek() {
                if next == quote {
                    inner.push(quote);
                    chars.next();
                    continue;
                }
            }
            return Some((inner, start + off + quote.len_utf8()));
        }
        inner.push(c);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::{Ansi, MySql, Postgres};

    fn kinds(sql: &str, d: &dyn Dialect) -> Vec<TokenKind> {
        tokenize(sql, d).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_fold_per_dialect() {
        assert_eq!(
            kinds("SELECT C_Nation", &Ansi),
            vec![
                TokenKind::Word { text: "select".into(), quoted: false },
                TokenKind::Word { text: "c_nation".into(), quoted: false },
            ]
        );
        assert_eq!(
            kinds("C_Nation", &MySql),
            vec![TokenKind::Word { text: "C_Nation".into(), quoted: false }]
        );
    }

    #[test]
    fn quoted_identifiers_never_fold() {
        assert_eq!(
            kinds("\"Order\"", &Ansi),
            vec![TokenKind::Word { text: "Order".into(), quoted: true }]
        );
        assert_eq!(
            kinds("`Order`", &MySql),
            vec![TokenKind::Word { text: "Order".into(), quoted: true }]
        );
        // Doubled quotes escape inside quoted identifiers.
        assert_eq!(
            kinds("\"a\"\"b\"", &Postgres),
            vec![TokenKind::Word { text: "a\"b".into(), quoted: true }]
        );
    }

    #[test]
    fn mysql_double_quote_is_a_string() {
        assert_eq!(kinds("\"CA\"", &MySql), vec![TokenKind::StringLit("\"CA\"".into())]);
        // ...but a string under ANSI rules it is not.
        assert_eq!(
            kinds("\"ca\"", &Ansi),
            vec![TokenKind::Word { text: "ca".into(), quoted: true }]
        );
    }

    #[test]
    fn string_literals_keep_source_spelling() {
        assert_eq!(kinds("'CA'", &Ansi), vec![TokenKind::StringLit("'CA'".into())]);
        assert_eq!(kinds("'o''brien'", &Ansi), vec![TokenKind::StringLit("'o''brien'".into())]);
    }

    #[test]
    fn numbers_and_qualified_columns() {
        assert_eq!(
            kinds("t.a = 3.14", &Ansi),
            vec![
                TokenKind::Word { text: "t".into(), quoted: false },
                TokenKind::Symbol('.'),
                TokenKind::Word { text: "a".into(), quoted: false },
                TokenKind::Op("="),
                TokenKind::Number("3.14".into()),
            ]
        );
        // A trailing dot stays punctuation, not part of the number.
        assert_eq!(
            kinds("42.x", &Ansi),
            vec![
                TokenKind::Number("42".into()),
                TokenKind::Symbol('.'),
                TokenKind::Word { text: "x".into(), quoted: false },
            ]
        );
    }

    #[test]
    fn operators_and_params() {
        assert_eq!(
            kinds("<= >= <> != < > =", &Ansi),
            vec![
                TokenKind::Op("<="),
                TokenKind::Op(">="),
                TokenKind::Op("<>"),
                TokenKind::Op("!="),
                TokenKind::Op("<"),
                TokenKind::Op(">"),
                TokenKind::Op("="),
            ]
        );
        assert_eq!(kinds("?", &MySql), vec![TokenKind::Param("?".into())]);
        assert_eq!(
            kinds("$1 $23", &Postgres),
            vec![TokenKind::Param("$1".into()), TokenKind::Param("$23".into())]
        );
    }

    #[test]
    fn postgres_double_colon_cast_token() {
        assert_eq!(
            kinds("x::date", &Postgres),
            vec![
                TokenKind::Word { text: "x".into(), quoted: false },
                TokenKind::DoubleColon,
                TokenKind::Word { text: "date".into(), quoted: false },
            ]
        );
        // ANSI has no ::, so ':' is an unexpected character.
        assert!(matches!(
            tokenize("x::date", &Ansi),
            Err(ParseError::UnexpectedChar { ch: ':', .. })
        ));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("SELECT -- trailing\n 1 /* block */ , 2", &Ansi),
            vec![
                TokenKind::Word { text: "select".into(), quoted: false },
                TokenKind::Number("1".into()),
                TokenKind::Symbol(','),
                TokenKind::Number("2".into()),
            ]
        );
        assert!(kinds("/* unterminated", &Ansi).is_empty());
    }

    #[test]
    fn error_spans_point_at_the_problem() {
        let e = tokenize("SELECT 'oops", &Ansi).unwrap_err();
        assert_eq!(e, ParseError::UnterminatedString { span: Span::new(7, 12) });
        let e = tokenize("SELECT \"", &Ansi).unwrap_err();
        assert_eq!(e.kind(), "unterminated_ident");
        let e = tokenize("SELECT \"\" FROM t", &Ansi).unwrap_err();
        assert_eq!(e, ParseError::EmptyIdent { span: Span::new(7, 9) });
        let e = tokenize("a # b", &Ansi).unwrap_err();
        assert_eq!(e, ParseError::UnexpectedChar { ch: '#', span: Span::new(2, 3) });
        let e = tokenize("$ 1", &Postgres).unwrap_err();
        assert_eq!(e.kind(), "unexpected_char");
    }

    #[test]
    fn dollar_is_rejected_outside_postgres() {
        assert!(matches!(tokenize("$1", &Ansi), Err(ParseError::UnexpectedChar { ch: '$', .. })));
    }

    #[test]
    fn keyword_check_is_case_insensitive_and_unquoted_only() {
        let toks = tokenize("select \"select\"", &MySql).unwrap();
        // MySQL preserves case, so the keyword check must not rely on folding.
        assert!(toks[0].is_kw("SELECT"));
        let toks = tokenize("SELECT `select`", &MySql).unwrap();
        assert!(toks[0].is_kw("SELECT"));
        assert!(!toks[1].is_kw("SELECT"), "quoted words are identifiers, never keywords");
    }
}
