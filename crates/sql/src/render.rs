//! Dialect-aware SQL rendering of a [`QuerySpec`].
//!
//! [`wmp_plan::sql::render_sql`] emits canonical ANSI text for the
//! text-based featurizers; this module is the other direction of the same
//! contract — text a *specific* DBMS would accept, used to exercise the
//! render → parse → lower round trip under every dialect's quoting and
//! limit rules.

use std::fmt::Write as _;

use wmp_plan::query::{AggFunc, CmpOp, QuerySpec};

use crate::dialect::Dialect;

/// Words the parser gives clause or operator meaning; identifiers spelled
/// like one are always quoted so the round trip stays unambiguous.
const RESERVED: [&str; 45] = [
    "ALL",
    "AND",
    "AS",
    "ASC",
    "AVG",
    "BETWEEN",
    "BY",
    "CAST",
    "COUNT",
    "CROSS",
    "DATE",
    "DESC",
    "DISTINCT",
    "EXISTS",
    "FETCH",
    "FIRST",
    "FROM",
    "FULL",
    "GROUP",
    "HAVING",
    "IN",
    "INNER",
    "INTERVAL",
    "IS",
    "JOIN",
    "LEFT",
    "LIKE",
    "LIMIT",
    "MAX",
    "MIN",
    "NOT",
    "NULL",
    "OFFSET",
    "ON",
    "ONLY",
    "OR",
    "ORDER",
    "OUTER",
    "RIGHT",
    "ROW",
    "ROWS",
    "SELECT",
    "SUM",
    "TIME",
    "TIMESTAMP",
];

/// True when `ident` can be emitted bare under `dialect`: it must survive
/// the dialect's case folding, look like a plain word, and not collide with
/// a keyword.
pub fn ident_needs_quoting(ident: &str, dialect: &dyn Dialect) -> bool {
    if ident.is_empty() || dialect.fold_ident(ident) != ident {
        return true;
    }
    let mut chars = ident.chars();
    let head_ok = chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if !head_ok || !ident.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return true;
    }
    RESERVED.iter().any(|kw| ident.eq_ignore_ascii_case(kw))
}

/// Renders `ident`, quoting (with the dialect's quote character, doubled
/// when embedded) only when a bare spelling would not round-trip.
pub fn quote_ident(ident: &str, dialect: &dyn Dialect) -> String {
    if !ident_needs_quoting(ident, dialect) {
        return ident.to_string();
    }
    let q = dialect.ident_quote();
    let mut out = String::with_capacity(ident.len() + 2);
    out.push(q);
    for c in ident.chars() {
        if c == q {
            out.push(q);
        }
        out.push(c);
    }
    out.push(q);
    out
}

fn qualified(alias: &str, column: &str, dialect: &dyn Dialect) -> String {
    format!("{}.{}", quote_ident(alias, dialect), quote_ident(column, dialect))
}

/// Renders a query spec as a `SELECT` statement in `dialect`'s syntax.
///
/// Identifiers are quoted exactly when needed (see [`ident_needs_quoting`]),
/// `COUNT` keeps its column argument, and the limit clause uses the
/// dialect's spelling — the three properties the round-trip property test
/// ([`crate::parse_to_spec`] ∘ `render_sql_dialect` ≡ identity modulo
/// selectivities) relies on.
pub fn render_sql_dialect(q: &QuerySpec, dialect: &dyn Dialect) -> String {
    let mut s = String::with_capacity(256);
    s.push_str("SELECT ");
    if q.distinct {
        s.push_str("DISTINCT ");
    }
    let mut select_items: Vec<String> = Vec::new();
    for (alias, col) in &q.group_by {
        select_items.push(qualified(alias, col, dialect));
    }
    for agg in &q.aggregates {
        if agg.func == AggFunc::Count && agg.column.is_empty() {
            select_items.push("COUNT(*)".to_string());
        } else {
            select_items.push(format!(
                "{}({})",
                agg.func.sql(),
                qualified(&agg.table_alias, &agg.column, dialect)
            ));
        }
    }
    if select_items.is_empty() {
        select_items.push(match q.tables.first() {
            Some(t) => format!("{}.*", quote_ident(&t.alias, dialect)),
            None => "*".to_string(),
        });
    }
    s.push_str(&select_items.join(", "));

    s.push_str(" FROM ");
    let froms: Vec<String> = q
        .tables
        .iter()
        .map(|t| {
            if t.table == t.alias {
                quote_ident(&t.table, dialect)
            } else {
                format!("{} AS {}", quote_ident(&t.table, dialect), quote_ident(&t.alias, dialect))
            }
        })
        .collect();
    s.push_str(&froms.join(", "));

    let mut conds: Vec<String> = Vec::new();
    for j in &q.joins {
        conds.push(format!(
            "{} = {}",
            qualified(&j.left_alias, &j.left_col, dialect),
            qualified(&j.right_alias, &j.right_col, dialect)
        ));
    }
    for p in &q.predicates {
        let col = qualified(&p.table_alias, &p.column, dialect);
        match &p.op {
            CmpOp::InList(_) => conds.push(format!("{col} IN ({})", p.literal)),
            CmpOp::Between => conds.push(format!("{col} BETWEEN {}", p.literal)),
            op => conds.push(format!("{col} {} {}", op.sql(), p.literal)),
        }
    }
    if !conds.is_empty() {
        s.push_str(" WHERE ");
        s.push_str(&conds.join(" AND "));
    }

    if !q.group_by.is_empty() {
        s.push_str(" GROUP BY ");
        let cols: Vec<String> = q.group_by.iter().map(|(a, c)| qualified(a, c, dialect)).collect();
        s.push_str(&cols.join(", "));
    }
    if !q.order_by.is_empty() {
        s.push_str(" ORDER BY ");
        let cols: Vec<String> = q.order_by.iter().map(|(a, c)| qualified(a, c, dialect)).collect();
        s.push_str(&cols.join(", "));
    }
    if let Some(n) = q.limit {
        let _ = write!(s, "{}", dialect.render_limit(n));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::{Ansi, MySql, Postgres};
    use wmp_plan::query::{Aggregate, Predicate, TableRef};

    #[test]
    fn quoting_rules() {
        assert!(!ident_needs_quoting("c_nation", &Ansi));
        assert!(ident_needs_quoting("Order", &Ansi), "folding changes it");
        assert!(ident_needs_quoting("order", &Ansi), "reserved");
        assert!(ident_needs_quoting("2fast", &Ansi), "leading digit");
        assert!(ident_needs_quoting("odd name", &Ansi), "space");
        assert!(ident_needs_quoting("", &Ansi));
        assert!(!ident_needs_quoting("CamelCase", &MySql), "MySQL preserves case");
        assert!(ident_needs_quoting("group", &MySql), "still reserved");
        assert_eq!(quote_ident("order", &Ansi), "\"order\"");
        assert_eq!(quote_ident("order", &MySql), "`order`");
        assert_eq!(quote_ident("a\"b", &Ansi), "\"a\"\"b\"", "embedded quotes double");
        assert_eq!(quote_ident("plain", &Postgres), "plain");
    }

    #[test]
    fn count_keeps_its_column() {
        let q = QuerySpec {
            tables: vec![TableRef::plain("t")],
            aggregates: vec![
                Aggregate {
                    func: AggFunc::Count,
                    table_alias: String::new(),
                    column: String::new(),
                },
                Aggregate { func: AggFunc::Count, table_alias: "t".into(), column: "a".into() },
            ],
            ..QuerySpec::default()
        };
        let sql = render_sql_dialect(&q, &Ansi);
        assert!(sql.contains("COUNT(*)"));
        assert!(sql.contains("COUNT(t.a)"));
    }

    #[test]
    fn dialect_limit_spellings() {
        let q = QuerySpec {
            tables: vec![TableRef::plain("t")],
            limit: Some(7),
            ..QuerySpec::default()
        };
        assert!(render_sql_dialect(&q, &Ansi).ends_with("FETCH FIRST 7 ROWS ONLY"));
        assert!(render_sql_dialect(&q, &Postgres).ends_with("LIMIT 7"));
        assert!(render_sql_dialect(&q, &MySql).ends_with("LIMIT 7"));
    }

    #[test]
    fn reserved_table_names_are_quoted() {
        let q = QuerySpec {
            tables: vec![TableRef::plain("order")],
            predicates: vec![Predicate {
                table_alias: "order".into(),
                column: "total".into(),
                op: CmpOp::Gt,
                literal: "5".into(),
                sel_est: 0.3,
                sel_true: 0.3,
            }],
            ..QuerySpec::default()
        };
        let sql = render_sql_dialect(&q, &Ansi);
        assert_eq!(sql, "SELECT \"order\".* FROM \"order\" WHERE \"order\".total > 5");
        let sql = render_sql_dialect(&q, &MySql);
        assert_eq!(sql, "SELECT `order`.* FROM `order` WHERE `order`.total > 5");
    }
}
