//! The metrics registry: named, labeled, lock-free counters, gauges, and
//! log-bucketed histograms, with point-in-time snapshots rendered as
//! Prometheus text exposition or JSON.
//!
//! Registration takes a short registry lock once per instrument and hands
//! back an `Arc` handle; every subsequent update is a single relaxed atomic
//! operation, so N writer threads never serialize on telemetry. Snapshots
//! read each atomic once — values from different instruments are *not*
//! mutually coherent (each is exact at its own read instant), which is the
//! standard Prometheus scrape contract.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

use crate::json::JsonValue;

/// A monotonically increasing counter (wrap-around at `u64::MAX`).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        // ordering: Relaxed — independent monotonic counter; scrapes only
        // need an eventually-consistent point-in-time value.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — scrape reads are advisory, never ordered
        // against the instrumented operations they count.
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable floating-point gauge (stored as `f64` bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        // ordering: Relaxed — last-writer-wins sample; no other memory is
        // published alongside the gauge bits.
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (compare-and-swap loop; gauges are low-frequency).
    pub fn add(&self, delta: f64) {
        // ordering: Relaxed — the CAS loop only needs atomicity of the one
        // cell; no cross-variable ordering hangs off a gauge update.
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed, // ordering: same-cell CAS, no dependent loads
                Ordering::Relaxed, // ordering: failure reload of the same cell
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        // ordering: Relaxed — advisory scrape read of one atomic cell.
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of power-of-two buckets. Bucket 0 holds the value 0; bucket `i`
/// (for `i >= 1`) holds values in `[2^(i-1), 2^i)`. 63 value buckets cover
/// the entire `u64` range.
const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free, log-bucketed histogram of `u64` samples (microseconds,
/// bytes, …). Recording costs one relaxed `fetch_add` per sample (plus one
/// for the running sum).
///
/// Bucket `i` covers `[2^(i-1), 2^i)` (bucket 0 holds zeros), so any
/// quantile is known to within its bucket. [`Histogram::quantile`]
/// interpolates linearly *within* the bucket — on unimodal data this lands
/// within a few percent of the true value — while
/// [`Histogram::quantile_upper_bound`] keeps the historical conservative
/// behavior of reporting the bucket's inclusive upper bound (which can
/// overstate by up to 2×, but never understates).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)), sum: AtomicU64::new(0) }
    }
}

fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (0 for the zero bucket; the final
/// clamp bucket absorbs everything up to `u64::MAX`).
fn bucket_upper_inclusive(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Value range `[lo, hi)` of bucket `i`, as floats for interpolation.
fn bucket_range(i: usize) -> (f64, f64) {
    if i == 0 {
        (0.0, 1.0)
    } else {
        (
            (1u64 << (i - 1)) as f64,
            if i >= HISTOGRAM_BUCKETS - 1 { u64::MAX as f64 } else { (1u64 << i) as f64 },
        )
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        // ordering: Relaxed — bucket and sum are sampled independently;
        // scrapes tolerate a count/sum tear between the two updates.
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed); // ordering: same contract
    }

    /// Records a duration in whole microseconds.
    pub fn record_duration(&self, elapsed: Duration) {
        self.record(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        // ordering: Relaxed — the per-bucket sum is already a racy snapshot
        // by construction; stronger ordering would not make it consistent.
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples (wrapping).
    pub fn sum(&self) -> u64 {
        // ordering: Relaxed — advisory scrape read.
        self.sum.load(Ordering::Relaxed)
    }

    fn counts(&self) -> Vec<u64> {
        // ordering: Relaxed — same racy-snapshot contract as count().
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// The `q`-quantile (`q` in `[0, 1]`), linearly interpolated within the
    /// containing power-of-two bucket; 0.0 when nothing has been recorded.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = bucket_range(i);
                // Position of the rank within this bucket, in (0, 1].
                let within = (rank - seen) as f64 / c as f64;
                return lo + within * (hi - lo);
            }
            seen += c;
        }
        bucket_range(HISTOGRAM_BUCKETS - 1).1
    }

    /// The historical conservative quantile: the **inclusive upper bound**
    /// of the bucket containing the `q`-quantile sample (never understates;
    /// may overstate by up to 2×). Kept for dashboards that must never
    /// report a latency below the true value.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let counts = self.counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_inclusive(i);
            }
        }
        bucket_upper_inclusive(HISTOGRAM_BUCKETS - 1)
    }

    /// Materializes the histogram's non-empty buckets and headline
    /// quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts = self.counts();
        let count: u64 = counts.iter().sum();
        let buckets: Vec<(u64, u64)> = {
            let mut cumulative = 0u64;
            counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| {
                    cumulative += c;
                    (bucket_upper_inclusive(i), cumulative)
                })
                .collect()
        };
        HistogramSnapshot {
            count,
            sum: self.sum(),
            buckets,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time view of one [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// `(inclusive_upper_bound, cumulative_count)` for each non-empty
    /// bucket, in increasing bound order.
    pub buckets: Vec<(u64, u64)>,
    /// Interpolated median.
    pub p50: f64,
    /// Interpolated 90th percentile.
    pub p90: f64,
    /// Interpolated 99th percentile.
    pub p99: f64,
}

#[derive(Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

/// A set of named, labeled instruments.
///
/// Instruments are identified by `(name, sorted labels)`; registering the
/// same identity twice returns the **same** underlying instrument (so
/// independent components may share a counter), while re-registering a name
/// as a different instrument kind panics — that is a programming error, not
/// a runtime condition.
#[derive(Default)]
pub struct Registry {
    entries: RwLock<Vec<Entry>>,
}

fn canonical_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut owned: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    owned.sort();
    owned
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide default registry (used by library-level
    /// instrumentation that has no registry handle threaded through).
    pub fn global() -> &'static Registry {
        Self::global_shared_slot()
    }

    /// The process-wide default registry as a shareable `Arc` — for APIs
    /// (like an engine's observability config) that hold registries by
    /// `Arc<Registry>` regardless of whether they are private or global.
    pub fn global_shared() -> Arc<Registry> {
        Arc::clone(Self::global_shared_slot())
    }

    fn global_shared_slot() -> &'static Arc<Registry> {
        static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(Registry::new()))
    }

    fn register<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
        extract: impl Fn(&Instrument) -> Option<Arc<T>>,
    ) -> Arc<T> {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let labels = canonical_labels(labels);
        let mut entries = self.entries.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(entry) = entries.iter().find(|e| e.name == name && e.labels == labels) {
            return extract(&entry.instrument).unwrap_or_else(|| {
                // lint: allow(no_hot_panic, registering one name as two instrument kinds is a programming error caught at startup, not a runtime condition)
                panic!("metric {name:?} already registered as a {}", entry.instrument.kind())
            });
        }
        let instrument = make();
        // lint: allow(no_hot_panic, extract and make are paired by the caller one line up — a mismatch cannot depend on runtime input)
        let handle = extract(&instrument).expect("freshly built instrument matches its kind");
        entries.push(Entry { name: name.to_string(), help: help.to_string(), labels, instrument });
        handle
    }

    /// Registers (or retrieves) a counter.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.register(
            name,
            help,
            labels,
            || Instrument::Counter(Arc::new(Counter::default())),
            |i| match i {
                Instrument::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.register(
            name,
            help,
            labels,
            || Instrument::Gauge(Arc::new(Gauge::default())),
            |i| match i {
                Instrument::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) a histogram.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.register(
            name,
            help,
            labels,
            || Instrument::Histogram(Arc::new(Histogram::default())),
            |i| match i {
                Instrument::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Materializes a point-in-time view of every registered instrument,
    /// sorted by `(name, labels)` for deterministic rendering.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut metrics: Vec<MetricSnapshot> = entries
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name.clone(),
                help: e.help.clone(),
                labels: e.labels.clone(),
                value: match &e.instrument {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        metrics.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        Snapshot { metrics }
    }
}

/// One instrument's state inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// A snapshot value, by instrument kind.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// The counter value, if this is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge value, if this is a gauge.
    pub fn as_gauge(&self) -> Option<f64> {
        match self {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram state, if this is a histogram.
    pub fn as_histogram(&self) -> Option<&HistogramSnapshot> {
        match self {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

/// A point-in-time view of a whole [`Registry`].
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// All instruments, sorted by `(name, labels)`.
    pub metrics: Vec<MetricSnapshot>,
}

fn prometheus_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
}

fn format_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl Snapshot {
    /// Looks up a metric by name and exact label set.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        let labels = canonical_labels(labels);
        self.metrics.iter().find(|m| m.name == name && m.labels == labels).map(|m| &m.value)
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (`# HELP`/`# TYPE` headers; histograms as cumulative `_bucket`
    /// series plus `_sum`/`_count`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for m in &self.metrics {
            if last_name != Some(m.name.as_str()) {
                let kind = match &m.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                if !m.help.is_empty() {
                    let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
                }
                let _ = writeln!(out, "# TYPE {} {}", m.name, kind);
                last_name = Some(m.name.as_str());
            }
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&m.name);
                    prometheus_labels(&mut out, &m.labels, None);
                    let _ = writeln!(out, " {v}");
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&m.name);
                    prometheus_labels(&mut out, &m.labels, None);
                    let _ = writeln!(out, " {}", format_f64(*v));
                }
                MetricValue::Histogram(h) => {
                    for (le, cumulative) in &h.buckets {
                        let _ = write!(out, "{}_bucket", m.name);
                        prometheus_labels(&mut out, &m.labels, Some(("le", &le.to_string())));
                        let _ = writeln!(out, " {cumulative}");
                    }
                    let _ = write!(out, "{}_bucket", m.name);
                    prometheus_labels(&mut out, &m.labels, Some(("le", "+Inf")));
                    let _ = writeln!(out, " {}", h.count);
                    out.push_str(&m.name);
                    out.push_str("_sum");
                    prometheus_labels(&mut out, &m.labels, None);
                    let _ = writeln!(out, " {}", h.sum);
                    out.push_str(&m.name);
                    out.push_str("_count");
                    prometheus_labels(&mut out, &m.labels, None);
                    let _ = writeln!(out, " {}", h.count);
                }
            }
        }
        out
    }

    /// Renders the snapshot as a compact JSON document:
    /// `{"metrics": [{"name", "type", "labels", ...}]}`.
    pub fn to_json(&self) -> String {
        let metrics: Vec<JsonValue> = self
            .metrics
            .iter()
            .map(|m| {
                let mut fields = vec![
                    ("name".to_string(), JsonValue::String(m.name.clone())),
                    (
                        "labels".to_string(),
                        JsonValue::Object(
                            m.labels
                                .iter()
                                .map(|(k, v)| (k.clone(), JsonValue::String(v.clone())))
                                .collect(),
                        ),
                    ),
                ];
                match &m.value {
                    MetricValue::Counter(v) => {
                        fields.push(("type".to_string(), JsonValue::String("counter".into())));
                        fields.push(("value".to_string(), JsonValue::Number(*v as f64)));
                    }
                    MetricValue::Gauge(v) => {
                        fields.push(("type".to_string(), JsonValue::String("gauge".into())));
                        fields.push(("value".to_string(), JsonValue::Number(*v)));
                    }
                    MetricValue::Histogram(h) => {
                        fields.push(("type".to_string(), JsonValue::String("histogram".into())));
                        fields.push(("count".to_string(), JsonValue::Number(h.count as f64)));
                        fields.push(("sum".to_string(), JsonValue::Number(h.sum as f64)));
                        fields.push(("p50".to_string(), JsonValue::Number(h.p50)));
                        fields.push(("p90".to_string(), JsonValue::Number(h.p90)));
                        fields.push(("p99".to_string(), JsonValue::Number(h.p99)));
                        fields.push((
                            "buckets".to_string(),
                            JsonValue::Array(
                                h.buckets
                                    .iter()
                                    .map(|(le, c)| {
                                        JsonValue::Object(vec![
                                            ("le".to_string(), JsonValue::Number(*le as f64)),
                                            (
                                                "cumulative".to_string(),
                                                JsonValue::Number(*c as f64),
                                            ),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ));
                    }
                }
                JsonValue::Object(fields)
            })
            .collect();
        JsonValue::Object(vec![("metrics".to_string(), JsonValue::Array(metrics))]).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_update_lock_free() {
        let r = Registry::new();
        let c = r.counter("wmp_test_total", "help", &[]);
        let g = r.gauge("wmp_test_gauge", "help", &[]);
        c.inc();
        c.add(4);
        g.set(2.5);
        g.add(-0.5);
        assert_eq!(c.get(), 5);
        assert!((g.get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn re_registration_returns_the_same_instrument() {
        let r = Registry::new();
        let a = r.counter("wmp_shared_total", "help", &[("shard", "0")]);
        let b = r.counter("wmp_shared_total", "help", &[("shard", "0")]);
        let other = r.counter("wmp_shared_total", "help", &[("shard", "1")]);
        a.inc();
        b.inc();
        other.inc();
        assert_eq!(a.get(), 2, "same identity shares the counter");
        assert_eq!(other.get(), 1, "different labels are a different series");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _c = r.counter("wmp_kind_total", "help", &[]);
        let _g = r.gauge("wmp_kind_total", "help", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        Registry::new().counter("0bad name", "help", &[]);
    }

    #[test]
    fn histogram_quantiles_interpolate_within_the_bucket() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(50_000);
        // 100 µs lives in [64, 128); interpolation lands near the upper
        // half of the bucket instead of pinning to 127.
        let p50 = h.quantile(0.50);
        assert!((64.0..128.0).contains(&p50), "p50 = {p50}");
        assert!((p50 - 96.3).abs() < 1.0, "p50 = {p50} (rank 50 of 99 in-bucket)");
        // p100 reaches the outlier's bucket.
        assert!(h.quantile(1.0) >= 32_768.0);
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 99 * 100 + 50_000);
    }

    #[test]
    fn histogram_quantile_upper_bound_keeps_the_legacy_behavior() {
        // Regression test for the historical conservative quantile: the
        // power-of-two bucket's inclusive upper bound, which can overstate
        // by up to 2× but never understates.
        let h = Histogram::default();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(50_000);
        assert_eq!(h.quantile_upper_bound(0.50), 127);
        assert_eq!(h.quantile_upper_bound(0.99), 127);
        assert!(h.quantile_upper_bound(1.0) >= 50_000 - 1);
        // The interpolated quantile is strictly tighter and never exceeds
        // the conservative bound.
        assert!(h.quantile(0.50) <= 127.0 + f64::EPSILON);
        assert!(h.quantile(0.50) < 127.0);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile_upper_bound(0.99), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn zero_samples_hit_the_zero_bucket() {
        let h = Histogram::default();
        h.record(0);
        assert_eq!(h.quantile_upper_bound(1.0), 0);
        assert!(h.quantile(1.0) <= 1.0);
    }

    #[test]
    fn extreme_values_clamp_to_the_last_bucket() {
        let h = Histogram::default();
        h.record(u64::MAX);
        assert_eq!(h.quantile_upper_bound(1.0), u64::MAX);
        assert!(h.quantile(1.0).is_finite());
    }

    #[test]
    fn record_duration_uses_microseconds() {
        let h = Histogram::default();
        h.record_duration(Duration::from_micros(100));
        assert_eq!(h.sum(), 100);
    }

    #[test]
    fn concurrent_writers_never_lose_increments() {
        // Registry concurrency stress: N writer threads hammer shared
        // instruments while a reader snapshots continuously; the final
        // counts must be exact.
        let r = Arc::new(Registry::new());
        const WRITERS: usize = 8;
        const PER_WRITER: u64 = 20_000;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let r = Arc::clone(&r);
                scope.spawn(move || {
                    let c = r.counter("wmp_stress_total", "stress", &[]);
                    let h = r.histogram("wmp_stress_us", "stress", &[]);
                    let g = r.gauge("wmp_stress_gauge", "stress", &[]);
                    for i in 0..PER_WRITER {
                        c.inc();
                        h.record(i % 1024);
                        g.set(w as f64);
                    }
                });
            }
            let r = Arc::clone(&r);
            scope.spawn(move || {
                for _ in 0..200 {
                    let snap = r.snapshot();
                    // Snapshots observe monotonically growing counters and
                    // render without panicking mid-stress.
                    let _ = snap.to_prometheus();
                    let _ = snap.to_json();
                }
            });
        });
        let snap = r.snapshot();
        assert_eq!(
            snap.get("wmp_stress_total", &[]),
            Some(&MetricValue::Counter(WRITERS as u64 * PER_WRITER))
        );
        match snap.get("wmp_stress_us", &[]) {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count, WRITERS as u64 * PER_WRITER);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    fn golden_registry() -> Registry {
        let r = Registry::new();
        r.counter("wmp_queries_served_total", "Queries served.", &[]).add(25);
        r.counter("wmp_shard_total", "Per-shard submissions.", &[("shard", "0")]).add(7);
        r.counter("wmp_shard_total", "Per-shard submissions.", &[("shard", "1")]).add(9);
        r.gauge("wmp_model_version", "Serving model version.", &[]).set(3.0);
        r.gauge("wmp_prediction_mae_mb", "Rolling MAE (MB).", &[]).set(12.5);
        let h = r.histogram("wmp_latency_us", "Scoring latency (µs).", &[]);
        for _ in 0..3 {
            h.record(100);
        }
        h.record(5);
        r
    }

    #[test]
    fn prometheus_rendering_matches_golden() {
        let text = golden_registry().snapshot().to_prometheus();
        let expected = "\
# HELP wmp_latency_us Scoring latency (µs).
# TYPE wmp_latency_us histogram
wmp_latency_us_bucket{le=\"7\"} 1
wmp_latency_us_bucket{le=\"127\"} 4
wmp_latency_us_bucket{le=\"+Inf\"} 4
wmp_latency_us_sum 305
wmp_latency_us_count 4
# HELP wmp_model_version Serving model version.
# TYPE wmp_model_version gauge
wmp_model_version 3
# HELP wmp_prediction_mae_mb Rolling MAE (MB).
# TYPE wmp_prediction_mae_mb gauge
wmp_prediction_mae_mb 12.5
# HELP wmp_queries_served_total Queries served.
# TYPE wmp_queries_served_total counter
wmp_queries_served_total 25
# HELP wmp_shard_total Per-shard submissions.
# TYPE wmp_shard_total counter
wmp_shard_total{shard=\"0\"} 7
wmp_shard_total{shard=\"1\"} 9
";
        assert_eq!(text, expected);
    }

    #[test]
    fn json_rendering_is_valid_and_complete() {
        let text = golden_registry().snapshot().to_json();
        let doc = JsonValue::parse(&text).expect("renderer emits valid JSON");
        let metrics = doc.get("metrics").unwrap().as_array().unwrap();
        assert_eq!(metrics.len(), 6);
        let latency = metrics
            .iter()
            .find(|m| m.get("name").and_then(JsonValue::as_str) == Some("wmp_latency_us"))
            .unwrap();
        assert_eq!(latency.get("type").unwrap().as_str(), Some("histogram"));
        assert_eq!(latency.get("count").unwrap().as_f64(), Some(4.0));
        let shard1 = metrics
            .iter()
            .find(|m| {
                m.get("labels").and_then(|l| l.get("shard")).and_then(JsonValue::as_str)
                    == Some("1")
            })
            .unwrap();
        assert_eq!(shard1.get("value").unwrap().as_f64(), Some(9.0));
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = Registry::global().counter("wmp_global_smoke_total", "smoke", &[]);
        let b = Registry::global().counter("wmp_global_smoke_total", "smoke", &[]);
        a.inc();
        assert!(b.get() >= 1);
    }
}
