//! A structured tracing facade: cheap [`crate::event!`]/[`crate::span!`]
//! macros dispatching to a process-global, pluggable [`Subscriber`].
//!
//! Design constraints, in order:
//!
//! 1. **Free when off.** With no subscriber installed (the default), every
//!    `event!`/`span!` call site costs one relaxed atomic load and a
//!    branch — no allocation, no formatting, no lock.
//! 2. **Structured.** Events carry typed key/value fields
//!    ([`FieldValue`]), not pre-formatted strings, so subscribers decide
//!    the rendering (ring buffer keeps the values; the stderr writer emits
//!    JSON lines).
//! 3. **Spans are just timed events.** A [`SpanGuard`] records its start
//!    instant and, on drop, dispatches the same [`Event`] shape with
//!    `duration_us` filled in — subscribers need exactly one callback.

use std::collections::VecDeque;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use crate::json::JsonValue;

/// Event severity, ordered from most to least verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Per-query noise (e.g. every submission).
    Trace,
    /// Per-window diagnostics (e.g. every scored window).
    Debug,
    /// Lifecycle milestones (model swaps, retrains, reloads).
    Info,
    /// Degraded-but-serving conditions (retrain failures, overflow).
    Warn,
    /// Serving failures.
    Error,
}

impl Level {
    /// Lower-case name, as rendered in JSON lines.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl FieldValue {
    fn to_json(&self) -> JsonValue {
        match self {
            FieldValue::U64(v) => JsonValue::Number(*v as f64),
            FieldValue::I64(v) => JsonValue::Number(*v as f64),
            FieldValue::F64(v) => JsonValue::Number(*v),
            FieldValue::Bool(v) => JsonValue::Bool(*v),
            FieldValue::Str(v) => JsonValue::String(v.clone()),
        }
    }

    /// The field as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The field as an `f64` (integers widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::U64(v) => Some(*v as f64),
            FieldValue::I64(v) => Some(*v as f64),
            FieldValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The field as a string slice, if it is text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The field as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            FieldValue::Bool(v) => Some(*v),
            _ => None,
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(i64::from(v))
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured telemetry record: a point event, or a closed span (same
/// shape, with [`Event::duration_us`] set).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Severity.
    pub level: Level,
    /// Emitting subsystem, e.g. `"wmp_serve::engine"`.
    pub target: &'static str,
    /// Event name, e.g. `"window_scored"`.
    pub name: &'static str,
    /// Typed fields, in call-site order.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// `Some(elapsed µs)` when this record is a closing span.
    pub duration_us: Option<u64>,
}

impl Event {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v)
    }

    /// Renders the event as one JSON object (the JSON-lines shape).
    pub fn to_json_line(&self) -> String {
        let mut fields = vec![
            ("level".to_string(), JsonValue::String(self.level.as_str().to_string())),
            ("target".to_string(), JsonValue::String(self.target.to_string())),
            ("event".to_string(), JsonValue::String(self.name.to_string())),
        ];
        if let Some(us) = self.duration_us {
            fields.push(("duration_us".to_string(), JsonValue::Number(us as f64)));
        }
        for (k, v) in &self.fields {
            fields.push((k.to_string(), v.to_json()));
        }
        JsonValue::Object(fields).render()
    }
}

/// Receives every dispatched [`Event`]. Implementations must be cheap and
/// must never panic: they run inline on serving threads.
pub trait Subscriber: Send + Sync {
    /// Level filter; called before fields are materialized, so returning
    /// `false` keeps disabled call sites allocation-free.
    fn enabled(&self, _level: Level) -> bool {
        true
    }

    /// Handles one event (or closed span).
    fn record(&self, event: &Event);
}

/// The default subscriber: drops everything (and reports all levels
/// disabled, so call sites skip field construction entirely).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSubscriber;

impl Subscriber for NoopSubscriber {
    fn enabled(&self, _level: Level) -> bool {
        false
    }

    fn record(&self, _event: &Event) {}
}

/// Keeps the most recent `capacity` events in memory — the test and
/// post-mortem subscriber.
#[derive(Debug)]
pub struct RingBufferRecorder {
    capacity: usize,
    min_level: Level,
    events: Mutex<VecDeque<Event>>,
}

impl RingBufferRecorder {
    /// A recorder retaining at most `capacity` events, all levels.
    pub fn with_capacity(capacity: usize) -> Self {
        RingBufferRecorder {
            capacity: capacity.max(1),
            min_level: Level::Trace,
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// Restricts recording to `min_level` and above.
    pub fn min_level(mut self, min_level: Level) -> Self {
        self.min_level = min_level;
        self
    }

    /// A copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Drains and returns the retained events, oldest first.
    pub fn take(&self) -> Vec<Event> {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).drain(..).collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Subscriber for RingBufferRecorder {
    fn enabled(&self, level: Level) -> bool {
        level >= self.min_level
    }

    fn record(&self, event: &Event) {
        let mut events = self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(event.clone());
    }
}

/// Writes each event as one JSON line on stderr — the "just give me logs"
/// subscriber for examples and operational debugging.
#[derive(Debug, Clone, Copy)]
pub struct StderrJsonWriter {
    min_level: Level,
}

impl StderrJsonWriter {
    /// A writer emitting `min_level` and above.
    pub fn new(min_level: Level) -> Self {
        StderrJsonWriter { min_level }
    }
}

impl Default for StderrJsonWriter {
    fn default() -> Self {
        StderrJsonWriter::new(Level::Info)
    }
}

impl Subscriber for StderrJsonWriter {
    fn enabled(&self, level: Level) -> bool {
        level >= self.min_level
    }

    fn record(&self, event: &Event) {
        let mut line = event.to_json_line();
        line.push('\n');
        // A full/broken stderr must never take the serving path down.
        let _ = std::io::stderr().write_all(line.as_bytes());
    }
}

/// Fast "anything installed?" flag checked before the subscriber lock.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static SUBSCRIBER: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);

/// Installs `subscriber` as the process-global event sink (replacing any
/// previous one). Events dispatched concurrently with the swap go to either
/// the old or the new subscriber.
pub fn set_subscriber(subscriber: Arc<dyn Subscriber>) {
    *SUBSCRIBER.write().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(subscriber);
    // ordering: Release pairs with no Acquire on purpose — the flag is a
    // hint; readers that see it set re-check under the SUBSCRIBER lock,
    // whose own synchronization publishes the subscriber itself.
    ACTIVE.store(true, Ordering::Release);
}

/// Removes the global subscriber, restoring the free-when-off fast path.
pub fn clear_subscriber() {
    // ordering: Release — clear the hint before tearing down the
    // subscriber; stragglers that still see `true` take the lock and find
    // `None`, which dispatch handles.
    ACTIVE.store(false, Ordering::Release);
    *SUBSCRIBER.write().unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

/// True when a subscriber is installed and accepts `level` — the macro
/// fast-path check. One relaxed load when tracing is off.
pub fn tracing_enabled(level: Level) -> bool {
    // ordering: Relaxed — missing a just-installed subscriber for a few
    // events is acceptable; a true reading is confirmed under the lock.
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    SUBSCRIBER
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .as_ref()
        .is_some_and(|s| s.enabled(level))
}

/// Sends `event` to the installed subscriber, if any. Prefer the
/// [`crate::event!`] macro, which guards with [`tracing_enabled`] first.
pub fn dispatch(event: &Event) {
    // ordering: Relaxed — same hint-then-lock protocol as tracing_enabled.
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    if let Some(subscriber) =
        SUBSCRIBER.read().unwrap_or_else(std::sync::PoisonError::into_inner).as_ref()
    {
        if subscriber.enabled(event.level) {
            subscriber.record(event);
        }
    }
}

/// An in-flight span created by [`crate::span!`]. Dropping the guard
/// dispatches the span-close event with its measured `duration_us`.
#[must_use = "a span measures the scope it is bound to; dropping it immediately closes the span"]
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    level: Level,
    target: &'static str,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
    started: Instant,
}

impl SpanGuard {
    /// An armed span; emitted on drop. Used by the `span!` macro.
    pub fn new(
        level: Level,
        target: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
    ) -> Self {
        SpanGuard {
            inner: Some(SpanInner { level, target, name, fields, started: Instant::now() }),
        }
    }

    /// A disarmed span (tracing was off at entry); drop is free.
    pub fn disabled() -> Self {
        SpanGuard { inner: None }
    }

    /// True when this span will emit on drop.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let elapsed = inner.started.elapsed();
            dispatch(&Event {
                level: inner.level,
                target: inner.target,
                name: inner.name,
                fields: inner.fields,
                duration_us: Some(elapsed.as_micros().min(u128::from(u64::MAX)) as u64),
            });
        }
    }
}

/// Emits a structured event to the global subscriber.
///
/// ```
/// use wmp_obs::Level;
/// wmp_obs::event!(Level::Info, target: "doc", "model_swap", version = 3u64, ok = true);
/// ```
#[macro_export]
macro_rules! event {
    ($level:expr, target: $target:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        let level = $level;
        if $crate::trace::tracing_enabled(level) {
            $crate::trace::dispatch(&$crate::trace::Event {
                level,
                target: $target,
                name: $name,
                fields: vec![$((stringify!($key), $crate::trace::FieldValue::from($value))),*],
                duration_us: None,
            });
        }
    }};
}

/// Opens a timed span; the returned [`SpanGuard`] emits a span-close event
/// (with `duration_us`) when dropped.
///
/// ```
/// use wmp_obs::Level;
/// let _span = wmp_obs::span!(Level::Debug, target: "doc", "score_window", window_id = 7u64);
/// // ... timed work ...
/// ```
#[macro_export]
macro_rules! span {
    ($level:expr, target: $target:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        let level = $level;
        if $crate::trace::tracing_enabled(level) {
            $crate::trace::SpanGuard::new(
                level,
                $target,
                $name,
                vec![$((stringify!($key), $crate::trace::FieldValue::from($value))),*],
            )
        } else {
            $crate::trace::SpanGuard::disabled()
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global subscriber is process-wide; tests that install one hold
    // this lock so they never observe each other's events.
    static GLOBAL_GUARD: Mutex<()> = Mutex::new(());

    fn with_recorder(min_level: Level, f: impl FnOnce(&Arc<RingBufferRecorder>)) {
        let _guard = GLOBAL_GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let recorder = Arc::new(RingBufferRecorder::with_capacity(64).min_level(min_level));
        set_subscriber(Arc::clone(&recorder) as Arc<dyn Subscriber>);
        f(&recorder);
        clear_subscriber();
    }

    #[test]
    fn events_carry_typed_fields() {
        with_recorder(Level::Trace, |recorder| {
            crate::event!(
                Level::Info,
                target: "test",
                "window_scored",
                window_id = 4u64,
                predicted_mb = 12.5,
                model = "ridge",
                ok = true,
            );
            let events = recorder.events();
            assert_eq!(events.len(), 1);
            let e = &events[0];
            assert_eq!(e.name, "window_scored");
            assert_eq!(e.field("window_id").unwrap().as_u64(), Some(4));
            assert_eq!(e.field("predicted_mb").unwrap().as_f64(), Some(12.5));
            assert_eq!(e.field("model").unwrap().as_str(), Some("ridge"));
            assert_eq!(e.field("ok"), Some(&FieldValue::Bool(true)));
            assert_eq!(e.duration_us, None);
        });
    }

    #[test]
    fn spans_emit_on_drop_with_duration() {
        with_recorder(Level::Trace, |recorder| {
            {
                let span = crate::span!(Level::Debug, target: "test", "score", window = 1u64);
                assert!(span.is_armed());
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let events = recorder.events();
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].name, "score");
            assert!(events[0].duration_us.unwrap() >= 1_000, "slept ≥ 2 ms");
        });
    }

    #[test]
    fn level_filter_suppresses_below_min() {
        with_recorder(Level::Warn, |recorder| {
            crate::event!(Level::Debug, target: "test", "quiet");
            crate::event!(Level::Error, target: "test", "loud");
            let events = recorder.events();
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].name, "loud");
        });
    }

    #[test]
    fn no_subscriber_means_disabled_and_free() {
        let _guard = GLOBAL_GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        clear_subscriber();
        assert!(!tracing_enabled(Level::Error));
        // Macros are safe to call with nothing installed.
        crate::event!(Level::Error, target: "test", "dropped");
        let span = crate::span!(Level::Error, target: "test", "dropped");
        assert!(!span.is_armed());
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let recorder = RingBufferRecorder::with_capacity(2);
        for i in 0..4u64 {
            recorder.record(&Event {
                level: Level::Info,
                target: "test",
                name: "tick",
                fields: vec![("i", FieldValue::U64(i))],
                duration_us: None,
            });
        }
        let events = recorder.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].field("i").unwrap().as_u64(), Some(2));
        assert_eq!(events[1].field("i").unwrap().as_u64(), Some(3));
        assert!(recorder.is_empty());
    }

    #[test]
    fn json_lines_are_valid_json() {
        let event = Event {
            level: Level::Warn,
            target: "wmp_serve::engine",
            name: "retrain_failed",
            fields: vec![
                ("pass", FieldValue::U64(3)),
                ("error", FieldValue::Str("bad \"quote\"".to_string())),
            ],
            duration_us: Some(1500),
        };
        let line = event.to_json_line();
        let doc = JsonValue::parse(&line).expect("JSON line parses");
        assert_eq!(doc.get("level").unwrap().as_str(), Some("warn"));
        assert_eq!(doc.get("event").unwrap().as_str(), Some("retrain_failed"));
        assert_eq!(doc.get("duration_us").unwrap().as_f64(), Some(1500.0));
        assert_eq!(doc.get("error").unwrap().as_str(), Some("bad \"quote\""));
    }

    #[test]
    fn noop_subscriber_reports_disabled() {
        assert!(!NoopSubscriber.enabled(Level::Error));
    }
}
