//! Prediction-quality and workload-drift monitors.
//!
//! The LinkedIn evaluation study's core operational lesson is that a
//! learned predictor's error drifts silently as the workload evolves; the
//! monitors here turn the serving engine's feedback stream into two live
//! signals:
//!
//! - [`QualityMonitor`] — a rolling window of `(predicted, actual)`
//!   workload-memory pairs, exposing the mean absolute error and the
//!   paper's within-one-bucket accuracy notion (§IV evaluates predictions
//!   bucketed into fixed-width memory bins; a prediction "hits" when its
//!   bin is within one of the actual bin).
//! - [`DriftMonitor`] — a rolling histogram of live template assignments
//!   compared (total-variation distance) against the training-time template
//!   distribution. LearnedWMP predicts from the workload's template
//!   histogram, so a shift in this distribution is *the* leading indicator
//!   that retraining is needed (the Sibyl direction's trigger signal).

use std::collections::VecDeque;
use std::sync::Mutex;

/// Rolling prediction-quality tracker over the last `capacity`
/// `(predicted_mb, actual_mb)` workload pairs. All methods are `&self` and
/// internally synchronized; one instance is shared by the serving path and
/// the metrics renderer.
#[derive(Debug)]
pub struct QualityMonitor {
    capacity: usize,
    bucket_mb: f64,
    samples: Mutex<VecDeque<(f64, f64)>>,
}

impl QualityMonitor {
    /// A monitor keeping the last `capacity` pairs, bucketing memory into
    /// `bucket_mb`-wide bins for the within-one-bucket accuracy.
    pub fn new(capacity: usize, bucket_mb: f64) -> Self {
        QualityMonitor {
            capacity: capacity.max(1),
            bucket_mb: if bucket_mb > 0.0 { bucket_mb } else { 1.0 },
            samples: Mutex::new(VecDeque::new()),
        }
    }

    /// Records one scored-then-executed workload.
    pub fn record(&self, predicted_mb: f64, actual_mb: f64) {
        let mut samples = self.samples.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if samples.len() == self.capacity {
            samples.pop_front();
        }
        samples.push_back((predicted_mb, actual_mb));
    }

    /// Pairs currently in the window.
    pub fn len(&self) -> usize {
        self.samples.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// True when no pair has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mean absolute error (MB) over the window; `None` while empty.
    pub fn mae(&self) -> Option<f64> {
        let samples = self.samples.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if samples.is_empty() {
            return None;
        }
        let sum: f64 = samples.iter().map(|(p, a)| (p - a).abs()).sum();
        Some(sum / samples.len() as f64)
    }

    /// Fraction of window pairs whose predicted memory bin is within one
    /// bin of the actual bin (the paper's accuracy notion); `None` while
    /// empty.
    pub fn within_one_bucket(&self) -> Option<f64> {
        let samples = self.samples.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if samples.is_empty() {
            return None;
        }
        let hits = samples
            .iter()
            .filter(|(p, a)| {
                let bp = (p / self.bucket_mb).floor() as i64;
                let ba = (a / self.bucket_mb).floor() as i64;
                (bp - ba).abs() <= 1
            })
            .count();
        Some(hits as f64 / samples.len() as f64)
    }
}

/// Total-variation distance between two distributions over the same
/// support: `0.5 * Σ |p_i - q_i|`, in `[0, 1]`. Inputs are normalized
/// internally, so raw counts are fine; mismatched lengths compare over the
/// longer support with missing entries as zero.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    let sum_p: f64 = p.iter().sum();
    let sum_q: f64 = q.iter().sum();
    if sum_p <= 0.0 || sum_q <= 0.0 {
        return if sum_p == sum_q { 0.0 } else { 1.0 };
    }
    let len = p.len().max(q.len());
    let mut distance = 0.0;
    for i in 0..len {
        let pi = p.get(i).copied().unwrap_or(0.0) / sum_p;
        let qi = q.get(i).copied().unwrap_or(0.0) / sum_q;
        distance += (pi - qi).abs();
    }
    (distance / 2.0).clamp(0.0, 1.0)
}

struct DriftWindow {
    ring: VecDeque<usize>,
    counts: Vec<f64>,
}

/// Rolling template-distribution drift score.
///
/// Holds the training-time template distribution (the reference) and a
/// sliding window of live template assignments; [`DriftMonitor::score`] is
/// the total-variation distance between the two — `0.0` when serving
/// traffic matches training, approaching `1.0` when the workload has moved
/// to templates the model never trained on.
pub struct DriftMonitor {
    reference: Vec<f64>,
    capacity: usize,
    min_samples: usize,
    window: Mutex<DriftWindow>,
}

impl DriftMonitor {
    /// A monitor comparing against `reference` (raw counts or normalized
    /// frequencies over the template ids; normalized internally), keeping
    /// the last `capacity` live assignments. The score stays `None` until
    /// `min(capacity, 20)` assignments have been observed, so a handful of
    /// early queries cannot raise a spurious alarm.
    pub fn new(reference: Vec<f64>, capacity: usize) -> Self {
        let k = reference.len();
        let capacity = capacity.max(1);
        DriftMonitor {
            reference,
            capacity,
            min_samples: capacity.min(20),
            window: Mutex::new(DriftWindow { ring: VecDeque::new(), counts: vec![0.0; k] }),
        }
    }

    /// Number of templates in the reference distribution.
    pub fn n_templates(&self) -> usize {
        self.reference.len()
    }

    /// Records one live template assignment. Assignments at or beyond the
    /// reference support (a template id the training distribution never
    /// saw) still enter the window and count as pure drift mass.
    pub fn observe(&self, template: usize) {
        let mut window = self.window.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if window.ring.len() == self.capacity {
            if let Some(old) = window.ring.pop_front() {
                if old < window.counts.len() {
                    window.counts[old] -= 1.0;
                }
            }
        }
        window.ring.push_back(template);
        if template >= window.counts.len() {
            window.counts.resize(template + 1, 0.0);
        }
        window.counts[template] += 1.0;
    }

    /// Live assignments currently in the window.
    pub fn len(&self) -> usize {
        self.window.lock().unwrap_or_else(std::sync::PoisonError::into_inner).ring.len()
    }

    /// True when no assignment has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The drift score (total-variation distance in `[0, 1]`), or `None`
    /// until enough live assignments have accumulated.
    pub fn score(&self) -> Option<f64> {
        let window = self.window.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if window.ring.len() < self.min_samples {
            return None;
        }
        Some(total_variation(&self.reference, &window.counts))
    }
}

impl std::fmt::Debug for DriftMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriftMonitor")
            .field("n_templates", &self.reference.len())
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_and_bucket_accuracy_track_the_window() {
        let m = QualityMonitor::new(4, 10.0);
        assert!(m.mae().is_none());
        assert!(m.within_one_bucket().is_none());
        m.record(100.0, 110.0); // |err| 10, buckets 10 vs 11 → hit
        m.record(100.0, 90.0); // |err| 10, buckets 10 vs 9 → hit
        m.record(50.0, 90.0); // |err| 40, buckets 5 vs 9 → miss
        assert!((m.mae().unwrap() - 20.0).abs() < 1e-9);
        assert!((m.within_one_bucket().unwrap() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn quality_window_evicts_oldest() {
        let m = QualityMonitor::new(2, 1.0);
        m.record(0.0, 100.0); // error 100 — about to age out
        m.record(10.0, 10.0);
        m.record(20.0, 20.0);
        assert_eq!(m.len(), 2);
        assert_eq!(m.mae().unwrap(), 0.0, "the bad old sample aged out");
    }

    #[test]
    fn identical_distributions_score_zero() {
        assert_eq!(total_variation(&[1.0, 1.0, 2.0], &[2.0, 2.0, 4.0]), 0.0);
    }

    #[test]
    fn disjoint_distributions_score_one() {
        assert!((total_variation(&[1.0, 0.0], &[0.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_shift_scores_in_between() {
        // Reference uniform over 4 templates; live mass half-shifted onto
        // template 0: TV = 0.5 * (|0.25-0.625|*1 + |0.25-0.125|*3) = 0.375.
        let tv = total_variation(&[1.0, 1.0, 1.0, 1.0], &[5.0, 1.0, 1.0, 1.0]);
        assert!((tv - 0.375).abs() < 1e-12);
    }

    #[test]
    fn mismatched_supports_count_missing_mass_as_drift() {
        // All live mass on a template the reference never saw.
        assert!((total_variation(&[1.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(total_variation(&[], &[]), 0.0);
    }

    #[test]
    fn drift_monitor_warms_up_then_tracks_a_shift() {
        // Training distribution: uniform over templates 0..4.
        let monitor = DriftMonitor::new(vec![1.0; 4], 40);
        assert!(monitor.score().is_none(), "no samples yet");
        // Phase 1: live traffic matches training.
        for i in 0..40 {
            monitor.observe(i % 4);
        }
        let matched = monitor.score().unwrap();
        assert!(matched < 0.05, "matched traffic scores ~0, got {matched}");
        // Phase 2: traffic collapses onto template 3 and a brand-new
        // template 5; the rolling window replaces the old mass.
        for i in 0..40 {
            monitor.observe(if i % 2 == 0 { 3 } else { 5 });
        }
        let shifted = monitor.score().unwrap();
        assert!(shifted > 0.6, "shifted traffic must score high, got {shifted}");
        assert_eq!(monitor.len(), 40);
    }

    #[test]
    fn drift_score_waits_for_min_samples() {
        let monitor = DriftMonitor::new(vec![1.0; 4], 100);
        for i in 0..19 {
            monitor.observe(i % 4);
        }
        assert!(monitor.score().is_none(), "below the 20-sample warmup");
        monitor.observe(3);
        assert!(monitor.score().is_some());
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let m = std::sync::Arc::new(QualityMonitor::new(1000, 10.0));
        let d = std::sync::Arc::new(DriftMonitor::new(vec![1.0; 8], 1000));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let m = std::sync::Arc::clone(&m);
                let d = std::sync::Arc::clone(&d);
                scope.spawn(move || {
                    for i in 0..500 {
                        m.record(i as f64, (i + t) as f64);
                        d.observe((i + t) % 8);
                        let _ = m.mae();
                        let _ = d.score();
                    }
                });
            }
        });
        assert_eq!(m.len(), 1000);
        assert_eq!(d.len(), 1000);
    }
}
