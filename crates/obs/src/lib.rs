//! # wmp-obs — the observability substrate
//!
//! A dependency-free telemetry layer for the LearnedWMP serving stack (the
//! build environment has no registry access, so — like the vendored
//! `rand`/`proptest`/`criterion` shims — everything here is hand-rolled
//! rather than pulled from the `tracing`/`metrics` ecosystems). Three
//! pillars:
//!
//! 1. **Metrics** ([`metrics`]) — a [`Registry`] of named, labeled,
//!    lock-free [`Counter`]s, [`Gauge`]s, and log-bucketed [`Histogram`]s.
//!    Instrument handles are `Arc`s; updates are single relaxed atomic
//!    operations, so the hot serving path never serializes on telemetry.
//!    [`Registry::snapshot`] materializes a sorted, point-in-time
//!    [`Snapshot`] with Prometheus-text ([`Snapshot::to_prometheus`]) and
//!    JSON ([`Snapshot::to_json`]) renderers.
//! 2. **Tracing** ([`trace`]) — cheap [`event!`]/[`span!`] macros that
//!    dispatch structured [`Event`]s to a process-global, pluggable
//!    [`Subscriber`]: the no-op default costs one relaxed atomic load per
//!    call site, [`RingBufferRecorder`] keeps the last N events for tests
//!    and post-mortems, and [`StderrJsonWriter`] emits JSON lines.
//! 3. **Monitors** ([`monitor`]) — rolling prediction-quality tracking
//!    ([`QualityMonitor`]: windowed MAE and within-one-bucket accuracy,
//!    the paper's §IV accuracy notion) and template-distribution drift
//!    scoring ([`DriftMonitor`]: total-variation distance between the live
//!    assignment window and the training distribution — the retraining
//!    trigger signal the Sibyl direction needs).
//!
//! A minimal JSON [`json`] module (writer **and** parser) backs the JSON
//! renderer, the stderr subscriber, and the persisted `BENCH_*.json`
//! perf-trajectory files emitted by `wmp_bench`.
//!
//! ## Example
//!
//! ```
//! use wmp_obs::{Level, Registry};
//!
//! let registry = Registry::new();
//! let served = registry.counter("wmp_queries_served_total", "Queries served", &[]);
//! let latency = registry.histogram("wmp_latency_us", "Scoring latency (µs)", &[]);
//! served.add(10);
//! latency.record(250);
//! wmp_obs::event!(Level::Info, target: "example", "window_scored", window_len = 10u64);
//!
//! let snapshot = registry.snapshot();
//! assert!(snapshot.to_prometheus().contains("wmp_queries_served_total 10"));
//! assert!(snapshot.to_json().contains("\"wmp_latency_us\""));
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod monitor;
pub mod trace;

pub use json::JsonValue;
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricSnapshot, MetricValue, Registry, Snapshot,
};
pub use monitor::{total_variation, DriftMonitor, QualityMonitor};
pub use trace::{
    clear_subscriber, set_subscriber, tracing_enabled, Event, FieldValue, Level, NoopSubscriber,
    RingBufferRecorder, SpanGuard, StderrJsonWriter, Subscriber,
};
