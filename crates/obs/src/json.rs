//! Minimal JSON support: a [`JsonValue`] tree with a renderer and a strict
//! recursive-descent parser. This backs the metrics JSON renderer, the
//! stderr JSON-lines subscriber, and the `BENCH_*.json` perf-trajectory
//! files — all without external dependencies.
//!
//! The subset is deliberately small but complete for round-tripping the
//! documents this workspace produces: objects, arrays, strings (with
//! `\uXXXX` escapes), finite numbers, booleans, and `null`. Non-finite
//! numbers render as `null` (JSON has no NaN/Inf).

use std::fmt::Write as _;

/// A parsed or constructed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved by the renderer.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object node.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The node as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The node as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The node as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the tree as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if n.is_finite() {
                    // Integers render without a trailing ".0" so counters
                    // stay readable; everything else uses the shortest
                    // round-trippable float formatting.
                    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing content is an error).
    ///
    /// # Errors
    /// Returns a message naming the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing content at byte {}", parser.pos));
        }
        Ok(value)
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs are not produced by our own
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_reparses_a_nested_document() {
        let doc = JsonValue::Object(vec![
            ("bench".to_string(), JsonValue::String("serving".to_string())),
            ("qps".to_string(), JsonValue::Number(4_000_000.5)),
            ("ok".to_string(), JsonValue::Bool(true)),
            ("none".to_string(), JsonValue::Null),
            (
                "results".to_string(),
                JsonValue::Array(vec![JsonValue::Number(1.0), JsonValue::Number(-2.5)]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(JsonValue::parse(&text).unwrap(), doc);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(JsonValue::Number(42.0).render(), "42");
        assert_eq!(JsonValue::Number(42.5).render(), "42.5");
        assert_eq!(JsonValue::Number(f64::NAN).render(), "null");
    }

    #[test]
    fn escapes_round_trip() {
        let original = JsonValue::String("line\nquote\" tab\t back\\ unicode\u{1}".to_string());
        let text = original.render();
        assert_eq!(JsonValue::parse(&text).unwrap(), original);
        assert!(text.contains("\\u0001"));
    }

    #[test]
    fn parses_whitespace_and_unicode_escapes() {
        let v = JsonValue::parse(" { \"k\" : [ 1 , \"\\u00e9\" ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_array().unwrap()[1].as_str().unwrap(), "é");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"open", "{\"a\" 1}"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        let v = JsonValue::parse("{\"n\": 3}").unwrap();
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert!(v.get("n").unwrap().as_str().is_none());
        assert!(v.get("missing").is_none());
        assert!(JsonValue::Null.get("x").is_none());
    }
}
