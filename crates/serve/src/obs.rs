//! Registry-backed observability for the serving engine: metric publication,
//! rolling prediction-quality tracking, and template-distribution drift.
//!
//! [`crate::Engine::with_observability`] attaches an [`ObsConfig`] to an
//! engine; from then on every submit/score/observe/install publishes into
//! the configured [`wmp_obs::Registry`] under the `wmp_*` metric names (see
//! the README's metrics catalog). The engine works identically without this
//! — [`crate::EngineStats`] keeps its lock-free counters either way; the
//! registry adds the exportable (Prometheus/JSON) view plus the two derived
//! signals a dashboard actually alarms on:
//!
//! - **Prediction quality** — [`Engine::observe`](crate::Engine::observe)d
//!   queries are grouped into evaluation batches of
//!   [`ObsConfig::quality_batch`]; each batch is re-predicted through the
//!   current model and compared against the summed measured resources,
//!   feeding one rolling [`wmp_obs::QualityMonitor`] per resource axis,
//!   published as `wmp_prediction_mae_mb` / `wmp_prediction_mae_cpu_ms` /
//!   `wmp_prediction_mae_io_pages` plus
//!   `wmp_prediction_within_one_bucket_ratio` (memory axis).
//! - **Template drift** — when [`ObsConfig::drift_reference`] supplies the
//!   training-time template distribution (see
//!   [`learnedwmp_core::LearnedWmp::template_distribution`]), each observed
//!   query is assigned to its template and fed to a rolling
//!   [`wmp_obs::DriftMonitor`]; the total-variation score is published as
//!   `wmp_template_drift_score`.

use std::sync::{Arc, Mutex};

use learnedwmp_core::WorkloadPredictor;
use wmp_obs::{Counter, DriftMonitor, Gauge, Histogram, QualityMonitor, Registry};
use wmp_workloads::QueryRecord;

/// Configuration for [`crate::Engine::with_observability`].
pub struct ObsConfig {
    /// Registry the engine publishes into. Defaults to a fresh registry;
    /// use [`wmp_obs::Registry::global`] (via [`ObsConfig::global`]) to
    /// share one process-wide exposition surface.
    pub registry: Arc<Registry>,
    /// Evaluation-batch size for prediction quality: every `quality_batch`
    /// observed queries are re-predicted as one workload and compared to
    /// their summed true memory. Match the model's training batch size
    /// (the paper's `s = 10`) so the predictor is evaluated in-regime.
    pub quality_batch: usize,
    /// Rolling window (in evaluation batches) for MAE / accuracy.
    pub quality_capacity: usize,
    /// Memory-bin width (MB) for the within-one-bucket accuracy.
    pub quality_bucket_mb: f64,
    /// CPU-bin width (ms) for the per-resource within-one-bucket accuracy.
    pub quality_bucket_cpu_ms: f64,
    /// IO-bin width (pages) for the per-resource within-one-bucket accuracy.
    pub quality_bucket_io_pages: f64,
    /// Training-time template distribution for drift scoring; `None`
    /// disables the drift monitor (the gauge is never published).
    pub drift_reference: Option<Vec<f64>>,
    /// Rolling window (in queries) for the live template distribution.
    pub drift_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            registry: Arc::new(Registry::new()),
            quality_batch: 10,
            quality_capacity: 256,
            quality_bucket_mb: 100.0,
            quality_bucket_cpu_ms: 100.0,
            quality_bucket_io_pages: 10_000.0,
            drift_reference: None,
            drift_capacity: 512,
        }
    }
}

impl ObsConfig {
    /// Default configuration publishing into the process-wide
    /// [`wmp_obs::Registry::global`] registry.
    pub fn global() -> Self {
        ObsConfig { registry: Registry::global_shared(), ..Default::default() }
    }

    /// Publishes into `registry` instead of a fresh private one.
    pub fn with_registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = registry;
        self
    }

    /// Sets the drift reference distribution (normalized template
    /// frequencies from training; see
    /// [`learnedwmp_core::LearnedWmp::template_distribution`]).
    pub fn with_drift_reference(mut self, reference: Vec<f64>) -> Self {
        self.drift_reference = Some(reference);
        self
    }
}

/// The engine's registered instruments plus the two rolling monitors. One
/// instance is shared (via `Arc`) by the submit path, the scoring path, and
/// the background retrainer thread.
pub(crate) struct EngineObs {
    pub(crate) registry: Arc<Registry>,
    pub(crate) submitted: Arc<Counter>,
    pub(crate) served: Arc<Counter>,
    pub(crate) failed: Arc<Counter>,
    pub(crate) windows: Arc<Counter>,
    pub(crate) swaps: Arc<Counter>,
    pub(crate) observed: Arc<Counter>,
    pub(crate) retrains: Arc<Counter>,
    pub(crate) retrain_failures: Arc<Counter>,
    pub(crate) sql_parse_ok: Arc<Counter>,
    pub(crate) sql_parse_errors: Arc<Counter>,
    pub(crate) quality_windows: Arc<Counter>,
    pub(crate) score_latency: Arc<Histogram>,
    pub(crate) pending: Arc<Gauge>,
    pub(crate) model_version: Arc<Gauge>,
    pub(crate) model_age_seconds: Arc<Gauge>,
    pub(crate) mae_mb: Arc<Gauge>,
    pub(crate) mae_cpu_ms: Arc<Gauge>,
    pub(crate) mae_io_pages: Arc<Gauge>,
    pub(crate) within_one_bucket: Arc<Gauge>,
    pub(crate) drift_score: Arc<Gauge>,
    quality: QualityMonitor,
    quality_cpu: QualityMonitor,
    quality_io: QualityMonitor,
    quality_batch: usize,
    eval_buffer: Mutex<Vec<QueryRecord>>,
    drift: Option<DriftMonitor>,
}

impl EngineObs {
    pub(crate) fn new(config: ObsConfig) -> Self {
        let r = &config.registry;
        EngineObs {
            submitted: r.counter(
                "wmp_queries_submitted_total",
                "Queries submitted to the serving engine",
                &[],
            ),
            served: r.counter(
                "wmp_queries_served_total",
                "Tickets resolved with a successful prediction",
                &[],
            ),
            failed: r.counter("wmp_queries_failed_total", "Tickets resolved with an error", &[]),
            windows: r.counter("wmp_windows_scored_total", "Workload windows scored", &[]),
            swaps: r.counter(
                "wmp_model_swaps_total",
                "Models installed into the serving handle (reloads + published retrains)",
                &[],
            ),
            observed: r.counter(
                "wmp_queries_observed_total",
                "Executed queries fed back via Engine::observe",
                &[],
            ),
            retrains: r.counter(
                "wmp_retrains_total",
                "Background retraining passes that published a new model",
                &[],
            ),
            retrain_failures: r.counter(
                "wmp_retrain_failures_total",
                "Background retraining passes that failed (previous model kept serving)",
                &[],
            ),
            sql_parse_ok: r.counter(
                "wmp_sql_parse_ok_total",
                "SQL statements accepted by Engine::submit_sql",
                &[],
            ),
            sql_parse_errors: r.counter(
                "wmp_sql_parse_errors_total",
                "SQL statements rejected by Engine::submit_sql with a parse error",
                &[],
            ),
            quality_windows: r.counter(
                "wmp_quality_windows_total",
                "Evaluation batches scored by the prediction-quality monitor",
                &[],
            ),
            score_latency: r.histogram(
                "wmp_window_score_latency_us",
                "Window-scoring latency in microseconds",
                &[],
            ),
            pending: r.gauge(
                "wmp_pending_queries",
                "Queries waiting for their window to close",
                &[],
            ),
            model_version: r.gauge(
                "wmp_model_version",
                "Version of the model that scored the most recent window",
                &[],
            ),
            model_age_seconds: r.gauge(
                "wmp_model_age_seconds",
                "Seconds since the currently serving model was installed",
                &[],
            ),
            mae_mb: r.gauge(
                "wmp_prediction_mae_mb",
                "Rolling mean absolute prediction error (MB) over recent evaluation batches",
                &[],
            ),
            mae_cpu_ms: r.gauge(
                "wmp_prediction_mae_cpu_ms",
                "Rolling mean absolute CPU prediction error (ms) over recent evaluation batches",
                &[],
            ),
            mae_io_pages: r.gauge(
                "wmp_prediction_mae_io_pages",
                "Rolling mean absolute IO prediction error (pages) over recent evaluation batches",
                &[],
            ),
            within_one_bucket: r.gauge(
                "wmp_prediction_within_one_bucket_ratio",
                "Rolling fraction of evaluation batches predicted within one memory bucket",
                &[],
            ),
            drift_score: r.gauge(
                "wmp_template_drift_score",
                "Total-variation distance between live and training template distributions",
                &[],
            ),
            quality: QualityMonitor::new(config.quality_capacity, config.quality_bucket_mb),
            quality_cpu: QualityMonitor::new(config.quality_capacity, config.quality_bucket_cpu_ms),
            quality_io: QualityMonitor::new(
                config.quality_capacity,
                config.quality_bucket_io_pages,
            ),
            quality_batch: config.quality_batch.max(1),
            eval_buffer: Mutex::new(Vec::new()),
            drift: config
                .drift_reference
                .map(|reference| DriftMonitor::new(reference, config.drift_capacity)),
            registry: Arc::clone(&config.registry),
        }
    }

    /// Accounts one observed (executed) query: feeds the drift monitor with
    /// its template assignment and, once a full evaluation batch has
    /// accumulated, re-predicts the batch through `model` and scores it
    /// against the measured memory. Runs on the observer's thread — cheap
    /// except once per `quality_batch`, when it costs one prediction.
    pub(crate) fn account_observation(&self, model: &dyn WorkloadPredictor, record: &QueryRecord) {
        if let Some(drift) = &self.drift {
            if let Ok(Some(template)) = model.assign_template(record) {
                drift.observe(template);
                if let Some(score) = drift.score() {
                    self.drift_score.set(score);
                }
            }
        }
        let batch = {
            let mut buffer =
                self.eval_buffer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            buffer.push(record.clone());
            if buffer.len() >= self.quality_batch {
                Some(std::mem::take(&mut *buffer))
            } else {
                None
            }
        };
        if let Some(batch) = batch {
            let refs: Vec<&QueryRecord> = batch.iter().collect();
            if let Ok(predicted) = model.predict_resources(&refs) {
                let actual: wmp_plan::ResourceVector = batch.iter().map(|r| r.resources).sum();
                self.quality.record(predicted.memory_mb, actual.memory_mb);
                self.quality_cpu.record(predicted.cpu_ms, actual.cpu_ms);
                self.quality_io.record(predicted.io_pages, actual.io_pages);
                self.quality_windows.inc();
                if let Some(mae) = self.quality.mae() {
                    self.mae_mb.set(mae);
                }
                if let Some(mae) = self.quality_cpu.mae() {
                    self.mae_cpu_ms.set(mae);
                }
                if let Some(mae) = self.quality_io.mae() {
                    self.mae_io_pages.set(mae);
                }
                if let Some(ratio) = self.quality.within_one_bucket() {
                    self.within_one_bucket.set(ratio);
                }
            }
        }
    }
}
