//! SQL text ingestion for the serving engine: parse under a dialect, lower
//! against the catalog, plan/featurize, and hand the result to
//! [`Engine::submit`](crate::Engine::submit).
//!
//! A production predictor sits in front of a DBMS that speaks SQL, not
//! [`wmp_plan::query::QuerySpec`]s. [`SqlFrontend`] owns everything needed to turn one
//! statement of log text into a [`QueryRecord`] — the catalog, the dialect,
//! and the pricing pipeline — and keeps lock-free parse success/failure
//! counters so a long-running engine can report its rejection rate.

use std::sync::atomic::{AtomicU64, Ordering};

use wmp_plan::error::PlanError;
use wmp_plan::planner::Planner;
use wmp_plan::Catalog;
use wmp_sim::{DbmsHeuristicEstimator, ExecutorSimulator};
use wmp_sql::{Dialect, ParseError, Span, SqlResult};
use wmp_workloads::{build_record, QueryRecord, NO_TEMPLATE_HINT};

/// Builds [`QueryRecord`]s from SQL text. Attach to an engine with
/// [`Engine::with_sql_frontend`](crate::Engine::with_sql_frontend); all
/// methods take `&self` and are thread-safe.
pub struct SqlFrontend {
    catalog: Catalog,
    dialect: Box<dyn Dialect>,
    simulator: ExecutorSimulator,
    heuristic: DbmsHeuristicEstimator,
    next_id: AtomicU64,
    parse_ok: AtomicU64,
    parse_errors: AtomicU64,
}

impl SqlFrontend {
    /// Creates a front-end resolving statements against `catalog` under
    /// `dialect`'s lexical rules.
    pub fn new(catalog: Catalog, dialect: Box<dyn Dialect>) -> Self {
        SqlFrontend {
            catalog,
            dialect,
            simulator: ExecutorSimulator::new(),
            heuristic: DbmsHeuristicEstimator::new(),
            next_id: AtomicU64::new(0),
            parse_ok: AtomicU64::new(0),
            parse_errors: AtomicU64::new(0),
        }
    }

    /// The dialect statements are parsed under.
    pub fn dialect(&self) -> &dyn Dialect {
        self.dialect.as_ref()
    }

    /// Statements successfully parsed, lowered, and planned.
    pub fn parse_ok(&self) -> u64 {
        // ordering: Relaxed — advisory statistic.
        self.parse_ok.load(Ordering::Relaxed)
    }

    /// Statements rejected (with a typed [`ParseError`]).
    pub fn parse_errors(&self) -> u64 {
        // ordering: Relaxed — advisory statistic.
        self.parse_errors.load(Ordering::Relaxed)
    }

    /// Parses one SQL statement into a fully-priced [`QueryRecord`] with a
    /// sequential id and [`NO_TEMPLATE_HINT`].
    ///
    /// # Errors
    /// A span-carrying [`ParseError`] from any stage (tokenize / parse /
    /// lower); counters are updated either way.
    pub fn record(&self, sql: &str) -> SqlResult<QueryRecord> {
        let result = self.record_inner(sql);
        // ordering: Relaxed — independent counters; no reader correlates
        // them with the returned record.
        match &result {
            Ok(_) => self.parse_ok.fetch_add(1, Ordering::Relaxed), // ordering: see above
            Err(_) => self.parse_errors.fetch_add(1, Ordering::Relaxed), // ordering: see above
        };
        result
    }

    fn record_inner(&self, sql: &str) -> SqlResult<QueryRecord> {
        let mut spec = wmp_sql::parse_to_spec(sql, self.dialect.as_ref(), &self.catalog)?;
        // ordering: Relaxed — ids need uniqueness only.
        spec.id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let planner = Planner::new(&self.catalog);
        build_record(
            &self.catalog,
            &planner,
            &self.simulator,
            &self.heuristic,
            spec,
            NO_TEMPLATE_HINT,
        )
        .map_err(plan_to_parse_error)
    }
}

/// Lowering already resolved every identifier, so a planner error here is a
/// catalog inconsistency — still surfaced as a typed (zero-span) parse error
/// rather than a panic, because a resident engine must never die on input.
fn plan_to_parse_error(e: PlanError) -> ParseError {
    let span = Span::at(0);
    match e {
        PlanError::UnknownTable(name) => ParseError::UnknownTable { name, span },
        PlanError::UnknownColumn { table, column } => {
            ParseError::UnknownColumn { table, column, span }
        }
        PlanError::UnknownAlias(alias) => ParseError::UnknownAlias { alias, span },
        PlanError::NoTables => ParseError::Unsupported { what: "query without tables", span },
        // PlanError is #[non_exhaustive]; render future variants through
        // their Display rather than failing to compile against wmp_plan.
        other => ParseError::Planner { message: other.to_string(), span },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmp_sql::{Ansi, Postgres};

    #[test]
    fn builds_priced_records_from_text() {
        let front = SqlFrontend::new(wmp_workloads::tpch::catalog(), Box::new(Ansi));
        let r = front
            .record("SELECT COUNT(*) FROM lineitem l WHERE l.l_quantity > 30")
            .expect("valid SQL");
        assert_eq!(r.id, 0);
        assert_eq!(r.template_hint, NO_TEMPLATE_HINT);
        assert!(r.true_memory_mb() > 0.0);
        assert!(r.dbms_estimate_mb() > 0.0);
        assert!(!r.features.is_empty());
        let r2 = front.record("SELECT l.* FROM lineitem l WHERE l.l_quantity > 10").unwrap();
        assert_eq!(r2.id, 1, "ids are sequential");
        assert_eq!(front.parse_ok(), 2);
        assert_eq!(front.parse_errors(), 0);
    }

    #[test]
    fn rejections_count_and_carry_spans() {
        let front = SqlFrontend::new(wmp_workloads::tpch::catalog(), Box::new(Postgres));
        let e = front.record("SELECT l.* FROM lineitem l WHERE l.l_quantity > $1 OR 1 = 1");
        let e = e.unwrap_err();
        assert_eq!(e.kind(), "unsupported");
        assert!(e.span().end > e.span().start);
        assert_eq!(front.parse_errors(), 1);
        assert_eq!(front.parse_ok(), 0);
        // Valid Postgres still goes through on the same front-end.
        assert!(front.record("SELECT l.* FROM lineitem l WHERE l.l_quantity > $1 LIMIT 5").is_ok());
        assert_eq!(front.parse_ok(), 1);
    }

    #[test]
    fn dialect_is_exposed() {
        let front = SqlFrontend::new(Catalog::new(), Box::new(Postgres));
        assert_eq!(front.dialect().name(), "postgres");
    }
}
