//! Lock-free serving counters: everything increments atomically on the hot
//! path, and [`EngineStats::snapshot`] materializes a coherent point-in-time
//! view for dashboards and tests.
//!
//! Latency is tracked with the shared [`wmp_obs::Histogram`] (log-bucketed,
//! lock-free); the snapshot reports quantiles with the histogram's
//! conservative [`wmp_obs::Histogram::quantile_upper_bound`] so a latency is
//! never under-reported. Interpolated quantiles are available through the
//! engine's observability registry (`wmp_window_score_latency_us`).
//!
//! # Snapshot coherence contract
//!
//! Counters are incremented by concurrent submitters, the scoring path, and
//! the background retrainer, so a snapshot is not a single atomic cut of all
//! fields. What *is* guaranteed, by construction, is the reconciliation
//! invariant
//!
//! ```text
//! submitted >= served + failed + pending
//! ```
//!
//! for every snapshot taken through [`crate::Engine::stats`], even while
//! submissions and window scoring race with the reader. Three rules make it
//! hold:
//!
//! 1. A submission increments `submitted` **before** its query enters the
//!    pending window (and the scoring path removes the window from pending
//!    **before** incrementing `served`/`failed`), so a query is never
//!    visible as resolved or pending without its submission being visible.
//! 2. The scoring path increments `served`/`failed` with `Release`, and the
//!    snapshot loads them **first** with `Acquire` — every submission that
//!    produced a counted resolution is therefore visible by the time
//!    `submitted` is read.
//! 3. The snapshot reads `pending` under the same lock the scoring path
//!    holds to remove a window, then reads `submitted` **last** — so a
//!    query can never be double-counted as both resolved and pending, and
//!    every pending query's submission is visible.
//!
//! The engine asserts the invariant (in debug builds) on every
//! [`crate::Engine::stats`] call, and a concurrent stress test hammers it
//! from racing threads.

use std::sync::atomic::{AtomicU64, Ordering};

use wmp_obs::Histogram;

/// Shared serving telemetry. One instance lives behind the engine (and its
/// background retrainer); every field is an atomic, so request threads never
/// serialize on stats.
#[derive(Default)]
pub struct EngineStats {
    pub(crate) submitted: AtomicU64,
    pub(crate) served: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) windows: AtomicU64,
    pub(crate) swaps: AtomicU64,
    pub(crate) observed: AtomicU64,
    pub(crate) retrains: AtomicU64,
    pub(crate) retrain_failures: AtomicU64,
    pub(crate) latency: Histogram,
}

impl EngineStats {
    /// Materializes a point-in-time view of every counter. `pending` is 0
    /// here; [`crate::Engine::stats`] fills it from the engine's window
    /// buffer via `EngineStats::snapshot_with_pending`, which is what
    /// upholds the [module-level coherence contract](self).
    pub fn snapshot(&self) -> StatsSnapshot {
        self.snapshot_with_pending(|| 0)
    }

    /// Snapshot with the resolution counters loaded first (`Acquire`),
    /// `pending` sampled in between, and `submitted` loaded last — the load
    /// order that makes `submitted >= served + failed + pending` hold under
    /// concurrency (see the [module docs](self)).
    pub(crate) fn snapshot_with_pending(&self, pending: impl FnOnce() -> u64) -> StatsSnapshot {
        // ordering: Acquire on served/failed pairs with the engine's
        // Release increments — everything the scorer did before resolving
        // (including removing the window from pending) is visible before
        // `pending` is sampled below.
        let served = self.served.load(Ordering::Acquire);
        let failed = self.failed.load(Ordering::Acquire); // ordering: same pairing
        let pending = pending();
        // ordering: Relaxed for the rest — advisory counters with no
        // inequality contract tied to them.
        let windows = self.windows.load(Ordering::Relaxed);
        let swaps = self.swaps.load(Ordering::Relaxed); // ordering: advisory
        let observed = self.observed.load(Ordering::Relaxed); // ordering: advisory
        let retrains = self.retrains.load(Ordering::Relaxed); // ordering: advisory
        let retrain_failures = self.retrain_failures.load(Ordering::Relaxed); // ordering: advisory
        let p50_latency_us = self.latency.quantile_upper_bound(0.50);
        let p99_latency_us = self.latency.quantile_upper_bound(0.99);
        // ordering: Relaxed — sampled last so the submitted >= served +
        // failed + pending inequality can only over-count, never under.
        let submitted = self.submitted.load(Ordering::Relaxed);
        StatsSnapshot {
            submitted,
            served,
            failed,
            pending,
            windows,
            swaps,
            observed,
            retrains,
            retrain_failures,
            p50_latency_us,
            p99_latency_us,
        }
    }
}

/// Point-in-time engine telemetry (all counters cumulative since startup,
/// except `pending` which is a live level).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Queries submitted via `Engine::submit`.
    pub submitted: u64,
    /// Tickets resolved with a successful prediction.
    pub served: u64,
    /// Tickets resolved with an error.
    pub failed: u64,
    /// Queries waiting for their window to close at snapshot time (level,
    /// not cumulative). Populated by `Engine::stats`; 0 from a raw
    /// `EngineStats::snapshot`.
    pub pending: u64,
    /// Workload windows scored (each resolves `window_len` tickets).
    pub windows: u64,
    /// Models the engine installed into its handle (reloads + published
    /// retrains).
    pub swaps: u64,
    /// Executed-query observations forwarded to the background retrainer.
    pub observed: u64,
    /// Background retraining passes that published a new model.
    pub retrains: u64,
    /// Background retraining passes that failed (model kept serving).
    pub retrain_failures: u64,
    /// Median window-scoring latency (µs, bucket upper bound).
    pub p50_latency_us: u64,
    /// 99th-percentile window-scoring latency (µs, bucket upper bound).
    pub p99_latency_us: u64,
}

impl StatsSnapshot {
    /// Tickets resolved either way; equals `submitted` once every window is
    /// flushed — the reconciliation invariant the stress test asserts.
    pub fn resolved(&self) -> u64 {
        self.served + self.failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn latency_quantiles_keep_the_conservative_upper_bound_contract() {
        // Regression: the pre-wmp_obs LatencyHistogram reported the bucket
        // upper bound; the absorbed histogram must preserve that behavior
        // for StatsSnapshot's p50/p99 fields.
        let stats = EngineStats::default();
        for _ in 0..99 {
            stats.latency.record_duration(Duration::from_micros(100));
        }
        stats.latency.record_duration(Duration::from_millis(50));
        let snap = stats.snapshot();
        // p50 lands in the bucket covering 100 µs: [64, 128).
        assert_eq!(snap.p50_latency_us, 127);
        assert_eq!(snap.p99_latency_us, 127);
        assert!(stats.latency.quantile_upper_bound(1.0) >= 50_000 - 1);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let stats = EngineStats::default();
        let snap = stats.snapshot();
        assert_eq!(snap.p50_latency_us, 0);
        assert_eq!(snap.p99_latency_us, 0);
    }

    #[test]
    fn sub_microsecond_records_hit_bucket_zero() {
        let h = Histogram::default();
        h.record_duration(Duration::from_nanos(10));
        assert_eq!(h.quantile_upper_bound(1.0), 0);
    }

    #[test]
    fn snapshot_reconciles() {
        let stats = EngineStats::default();
        stats.submitted.fetch_add(10, Ordering::Relaxed);
        stats.served.fetch_add(8, Ordering::Relaxed);
        stats.failed.fetch_add(2, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert_eq!(snap.resolved(), snap.submitted);
        assert_eq!(snap.pending, 0);
    }

    #[test]
    fn snapshot_with_pending_reports_the_live_level() {
        let stats = EngineStats::default();
        stats.submitted.fetch_add(10, Ordering::Relaxed);
        stats.served.fetch_add(4, Ordering::Release);
        let snap = stats.snapshot_with_pending(|| 6);
        assert_eq!(snap.pending, 6);
        assert!(snap.submitted >= snap.resolved() + snap.pending);
    }
}
