//! Lock-free serving counters: everything increments with relaxed atomics on
//! the hot path, and [`EngineStats::snapshot`] materializes a coherent-enough
//! point-in-time view for dashboards and tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Power-of-two-bucketed latency histogram (microseconds). Bucket `i` holds
/// durations in `[2^(i-1), 2^i)` µs (bucket 0 holds sub-microsecond calls);
/// quantiles report the bucket's upper bound, so a value is never
/// under-reported and over-reported by at most 2× — order-of-magnitude
/// p50/p99 telemetry at the recording cost of one relaxed `fetch_add`.
const LATENCY_BUCKETS: usize = 40;

pub(crate) struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl LatencyHistogram {
    pub(crate) fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = if us == 0 { 0 } else { (64 - us.leading_zeros()) as usize };
        let bucket = bucket.min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Upper bound (µs) of the bucket containing the `q`-quantile sample,
    /// or 0 when nothing has been recorded.
    pub(crate) fn quantile_us(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        (1u64 << (LATENCY_BUCKETS - 1)) - 1
    }
}

/// Shared serving telemetry. One instance lives behind the engine (and its
/// background retrainer); every field is an atomic, so request threads never
/// serialize on stats.
#[derive(Default)]
pub struct EngineStats {
    pub(crate) submitted: AtomicU64,
    pub(crate) served: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) windows: AtomicU64,
    pub(crate) swaps: AtomicU64,
    pub(crate) observed: AtomicU64,
    pub(crate) retrains: AtomicU64,
    pub(crate) retrain_failures: AtomicU64,
    pub(crate) latency: LatencyHistogram,
}

impl EngineStats {
    /// Materializes a point-in-time view of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            windows: self.windows.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            observed: self.observed.load(Ordering::Relaxed),
            retrains: self.retrains.load(Ordering::Relaxed),
            retrain_failures: self.retrain_failures.load(Ordering::Relaxed),
            p50_latency_us: self.latency.quantile_us(0.50),
            p99_latency_us: self.latency.quantile_us(0.99),
        }
    }
}

/// Point-in-time engine telemetry (all counters cumulative since startup).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Queries submitted via `Engine::submit`.
    pub submitted: u64,
    /// Tickets resolved with a successful prediction.
    pub served: u64,
    /// Tickets resolved with an error.
    pub failed: u64,
    /// Workload windows scored (each resolves `window_len` tickets).
    pub windows: u64,
    /// Models the engine installed into its handle (reloads + published
    /// retrains).
    pub swaps: u64,
    /// Executed-query observations forwarded to the background retrainer.
    pub observed: u64,
    /// Background retraining passes that published a new model.
    pub retrains: u64,
    /// Background retraining passes that failed (model kept serving).
    pub retrain_failures: u64,
    /// Median window-scoring latency (µs, bucket upper bound).
    pub p50_latency_us: u64,
    /// 99th-percentile window-scoring latency (µs, bucket upper bound).
    pub p99_latency_us: u64,
}

impl StatsSnapshot {
    /// Tickets resolved either way; equals `submitted` once every window is
    /// flushed — the reconciliation invariant the stress test asserts.
    pub fn resolved(&self) -> u64 {
        self.served + self.failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_quantiles_track_recorded_durations() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(50));
        // p50 lands in the bucket covering 100 µs: [64, 128).
        assert_eq!(h.quantile_us(0.50), 127);
        // p99 still in the fast bucket; p100 reaches the slow outlier.
        assert_eq!(h.quantile_us(0.99), 127);
        assert!(h.quantile_us(1.0) >= 50_000 - 1);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.quantile_us(0.99), 0);
    }

    #[test]
    fn sub_microsecond_records_hit_bucket_zero() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_nanos(10));
        assert_eq!(h.quantile_us(1.0), 0);
    }

    #[test]
    fn snapshot_reconciles() {
        let stats = EngineStats::default();
        stats.submitted.fetch_add(10, Ordering::Relaxed);
        stats.served.fetch_add(8, Ordering::Relaxed);
        stats.failed.fetch_add(2, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert_eq!(snap.resolved(), snap.submitted);
    }
}
