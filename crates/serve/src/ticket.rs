//! Per-query tickets: `Engine::submit` returns immediately with a
//! [`QueryTicket`]; the ticket resolves when the query's window fills (or is
//! drained) and the window's collective memory prediction is known.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use wmp_mlkit::{MlError, MlResult};
use wmp_plan::ResourceVector;

/// The serving verdict for one workload window, delivered to every member
/// query's ticket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadDecision {
    /// Sequence number of the window this query was batched into.
    pub window_id: u64,
    /// Predicted collective resource demand of the window (memory MB /
    /// CPU ms / IO pages). Models persisted before multi-resource targets
    /// report zero on the CPU and IO axes.
    pub predicted: ResourceVector,
    /// Number of queries in the window.
    pub window_len: usize,
    /// Version of the model snapshot that scored the window (see
    /// [`learnedwmp_core::handle::ModelSnapshot::version`]) — every member
    /// of one window is scored by the same snapshot.
    pub model_version: u64,
}

impl WorkloadDecision {
    /// Predicted collective working memory of the window (MB) — the memory
    /// projection of [`WorkloadDecision::predicted`], bit-identical to the
    /// scalar prediction path.
    pub fn predicted_mb(&self) -> f64 {
        self.predicted.memory_mb
    }
}

pub(crate) struct TicketState {
    slot: Mutex<Option<MlResult<WorkloadDecision>>>,
    ready: Condvar,
}

impl TicketState {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(TicketState { slot: Mutex::new(None), ready: Condvar::new() })
    }

    pub(crate) fn resolve(&self, result: MlResult<WorkloadDecision>) {
        let mut slot = self.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(result);
        }
        drop(slot);
        self.ready.notify_all();
    }
}

/// A pending prediction for one submitted query. Cheap to move across
/// threads; `wait` blocks until the query's window has been scored.
#[must_use = "dropping a ticket loses the only way to read this query's prediction"]
pub struct QueryTicket {
    pub(crate) seq: u64,
    pub(crate) state: Arc<TicketState>,
}

impl QueryTicket {
    /// Engine-assigned submission sequence number of this query.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// True once the window has been scored (or failed).
    pub fn is_resolved(&self) -> bool {
        self.state.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner).is_some()
    }

    /// Non-blocking read of the decision, if the window has been scored.
    pub fn try_get(&self) -> Option<MlResult<WorkloadDecision>> {
        self.state.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Blocks until the window is scored and returns the decision.
    ///
    /// # Errors
    /// Propagates the window's prediction error; every ticket of a failed
    /// window receives the same error.
    pub fn wait(&self) -> MlResult<WorkloadDecision> {
        let mut slot = self.state.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(result) = slot.clone() {
                return result;
            }
            slot = self.state.ready.wait(slot).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// [`QueryTicket::wait`] with a timeout.
    ///
    /// # Errors
    /// Returns [`MlError::NotFitted`] if the window was not scored within
    /// `timeout` (the window has not filled; `Engine::drain` flushes it).
    pub fn wait_timeout(&self, timeout: Duration) -> MlResult<WorkloadDecision> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = self.state.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(result) = slot.clone() {
                return result;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(MlError::NotFitted("QueryTicket (window not yet scored)"));
            }
            let (guard, _) = self
                .state
                .ready
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            slot = guard;
        }
    }
}

impl std::fmt::Debug for QueryTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryTicket")
            .field("seq", &self.seq)
            .field("resolved", &self.is_resolved())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision() -> WorkloadDecision {
        WorkloadDecision {
            window_id: 3,
            predicted: ResourceVector::new(123.0, 4.5, 900.0),
            window_len: 10,
            model_version: 1,
        }
    }

    #[test]
    fn resolve_wakes_waiters_and_is_idempotent() {
        let state = TicketState::new();
        let ticket = QueryTicket { seq: 7, state: Arc::clone(&state) };
        assert!(!ticket.is_resolved());
        assert!(ticket.try_get().is_none());

        let waiter = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || QueryTicket { seq: 7, state }.wait())
        };
        state.resolve(Ok(decision()));
        // A second resolution must not overwrite the first.
        state.resolve(Err(MlError::SingularMatrix));
        assert_eq!(waiter.join().unwrap().unwrap(), decision());
        assert_eq!(ticket.wait().unwrap(), decision());
        assert_eq!(ticket.seq(), 7);
    }

    #[test]
    fn wait_timeout_reports_unscored_windows() {
        let state = TicketState::new();
        let ticket = QueryTicket { seq: 0, state };
        let err = ticket.wait_timeout(Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, MlError::NotFitted(_)));
    }

    #[test]
    fn failed_windows_deliver_the_error() {
        let state = TicketState::new();
        let ticket = QueryTicket { seq: 0, state: Arc::clone(&state) };
        state.resolve(Err(MlError::SingularMatrix));
        assert_eq!(ticket.wait().unwrap_err(), MlError::SingularMatrix);
        assert!(ticket.is_resolved());
    }
}
