//! # wmp-serve — the thread-safe serving engine
//!
//! The paper deploys LearnedWMP as a *resident* predictor inside the DBMS
//! (§I "DBMS Integration"): every arriving workload gets a memory estimate
//! from the current model, executed queries flow back as training data, and
//! the model is periodically retrained without taking the service down.
//! This crate is that serving surface, built on three pieces:
//!
//! - [`Engine`] — the facade: [`Engine::submit`] turns an unbounded query
//!   stream into workload windows and resolves per-query [`QueryTicket`]s
//!   with each window's predicted memory; [`Engine::observe`] streams
//!   executed queries to a background retrainer; [`Engine::reload`]
//!   installs a persisted artifact.
//! - [`PredictorHandle`] (from `learnedwmp_core`) — the shared,
//!   hot-swappable model handle: N request threads read coherent snapshots
//!   while a writer installs a replacement without blocking them.
//! - [`EngineStats`] — lock-free serving telemetry (counters plus p50/p99
//!   window-scoring latency).
//! - [`ObsConfig`] / [`Engine::with_observability`] — registry-backed
//!   observability: the same counters published as exportable `wmp_*`
//!   metrics (Prometheus/JSON via [`wmp_obs`]), plus rolling prediction
//!   quality (MAE, within-one-bucket accuracy) and a template-distribution
//!   drift score fed by [`Engine::observe`].
//! - [`SqlFrontend`] / [`Engine::submit_sql`] — SQL text ingestion: parse
//!   under a [`wmp_sql::Dialect`], lower against the catalog, price, and
//!   enqueue — with typed, span-carrying rejections and
//!   `wmp_sql_parse_ok_total` / `wmp_sql_parse_errors_total` counters.
//!
//! ## Windowing policies and the paper's workload definition
//!
//! The paper (§II) defines a *workload* as a **set of `s` queries executed
//! as a batch**, and its model consumes the workload's template histogram
//! (Algorithm 2) — predictions are inherently per-window, not per-query.
//! A serving engine therefore has to decide where one workload ends and the
//! next begins on a stream that never ends:
//!
//! - [`WindowPolicy::Count`]`(s)` reproduces the paper's fixed-size
//!   workloads at serving time: every `s` submissions close a window, which
//!   is exactly the regime the model was trained in (TR4 batches the
//!   training log into workloads of the same `s`; the evaluation fixes
//!   `s = 10`). Matching the training batch size at serving time keeps the
//!   histogram scale (`Σ H = s`, eq. 8) consistent between training and
//!   inference.
//! - [`WindowPolicy::Drain`] leaves the boundary to the caller
//!   ([`Engine::drain`]), supporting the variable-length-workload extension
//!   the paper sketches in §I — e.g. an admission controller that flushes
//!   whatever arrived in a scheduling tick. Use it with a model trained on
//!   [`HistogramMode::Frequencies`](learnedwmp_core::HistogramMode) or
//!   variable-length batches so window size is not baked into the features.
//!
//! Every query of a window receives the *same* [`WorkloadDecision`] — the
//! window's collective prediction — because the paper's model prices the
//! batch, not its members.
//!
//! ## Example
//!
//! ```
//! use learnedwmp_core::{LearnedWmp, ModelKind, PredictorHandle, TemplateSpec};
//! use wmp_serve::{Engine, WindowPolicy};
//!
//! let log = wmp_workloads::tpcc::generate(300, 7).unwrap();
//! let model = LearnedWmp::builder()
//!     .model(ModelKind::Ridge)
//!     .templates(TemplateSpec::PlanKMeans { k: 6, seed: 7 })
//!     .fit(&log)
//!     .unwrap();
//!
//! let engine = Engine::new(PredictorHandle::new(model), WindowPolicy::Count(10));
//! let tickets: Vec<_> =
//!     log.records.iter().take(10).map(|r| engine.submit(r.clone())).collect();
//! // The 10th submission closed the window: every ticket carries the
//! // window's collective prediction.
//! let decision = tickets[0].wait().unwrap();
//! assert_eq!(decision.window_len, 10);
//! assert!(decision.predicted_mb() > 0.0);
//! assert!(tickets.iter().all(|t| t.is_resolved()));
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod obs;
pub mod sqlfront;
pub mod stats;
pub mod ticket;

pub use engine::{Engine, WindowPolicy};
pub use learnedwmp_core::handle::{ModelSnapshot, PredictorHandle};
pub use obs::ObsConfig;
pub use sqlfront::SqlFrontend;
pub use stats::{EngineStats, StatsSnapshot};
pub use ticket::{QueryTicket, WorkloadDecision};

#[cfg(test)]
mod tests {
    use super::*;
    use learnedwmp_core::{
        LearnedWmp, LearnedWmpConfig, ModelKind, OnlinePolicy, OnlineWmp, TemplateSpec,
    };
    use wmp_workloads::{QueryLog, QueryRecord};

    fn trained_on(log: &QueryLog, kind: ModelKind, seed: u64) -> LearnedWmp {
        LearnedWmp::builder()
            .model(kind)
            .templates(TemplateSpec::PlanKMeans { k: 6, seed })
            .fit(log)
            .unwrap()
    }

    #[test]
    fn count_windows_resolve_with_the_windows_prediction() {
        let log = wmp_workloads::tpcc::generate(200, 1).unwrap();
        let model = trained_on(&log, ModelKind::Ridge, 1);
        let probe: Vec<&QueryRecord> = log.records[..10].iter().collect();
        let expected = model.predict_workload(&probe).unwrap();

        let engine = Engine::new(PredictorHandle::new(model), WindowPolicy::Count(10));
        let tickets: Vec<QueryTicket> =
            log.records[..25].iter().map(|r| engine.submit(r.clone())).collect();

        // 25 submissions at s=10: two full windows scored, 5 queries pending.
        let d0 = tickets[0].wait().unwrap();
        assert_eq!(d0.window_id, 0);
        assert_eq!(d0.window_len, 10);
        assert_eq!(d0.predicted_mb().to_bits(), expected.to_bits());
        for t in &tickets[..10] {
            assert_eq!(t.wait().unwrap(), d0, "one decision per window");
        }
        assert_eq!(tickets[10].wait().unwrap().window_id, 1);
        assert!(!tickets[20].is_resolved());
        assert_eq!(engine.pending_len(), 5);

        // Drain flushes the partial window.
        assert_eq!(engine.drain(), 5);
        assert_eq!(tickets[20].wait().unwrap().window_len, 5);
        assert_eq!(engine.drain(), 0, "nothing left to flush");

        let stats = engine.stats();
        assert_eq!(stats.submitted, 25);
        assert_eq!(stats.served, 25);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.windows, 3);
        assert_eq!(stats.resolved(), stats.submitted);
    }

    #[test]
    fn drain_policy_accumulates_until_flushed() {
        let log = wmp_workloads::tpcc::generate(120, 2).unwrap();
        let model = trained_on(&log, ModelKind::Ridge, 2);
        let engine = Engine::new(PredictorHandle::new(model), WindowPolicy::Drain);
        let tickets: Vec<QueryTicket> =
            log.records[..37].iter().map(|r| engine.submit(r.clone())).collect();
        assert!(tickets.iter().all(|t| !t.is_resolved()), "Drain never auto-closes");
        assert_eq!(engine.pending_len(), 37);
        assert_eq!(engine.drain(), 37);
        let d = tickets[36].wait().unwrap();
        assert_eq!(d.window_len, 37);
        assert_eq!(engine.stats().windows, 1);
    }

    #[test]
    fn replayed_stream_feeds_the_engine() {
        let log = wmp_workloads::tpcc::generate(200, 3).unwrap();
        let model = trained_on(&log, ModelKind::Ridge, 3);
        let engine = Engine::new(PredictorHandle::new(model), WindowPolicy::Count(10));
        let mut tickets = Vec::new();
        for chunk in log.replay(64) {
            for record in chunk {
                tickets.push(engine.submit(record.clone()));
            }
        }
        engine.drain();
        assert_eq!(tickets.len(), 200);
        assert!(tickets.iter().all(|t| t.wait().is_ok()));
        assert_eq!(engine.stats().windows, 20);
    }

    #[test]
    fn install_and_reload_swap_the_serving_model() {
        let log = wmp_workloads::tpcc::generate(250, 4).unwrap();
        let a = trained_on(&log, ModelKind::Ridge, 4);
        let b = trained_on(&log, ModelKind::Xgb, 5);
        let probe: Vec<&QueryRecord> = log.records[..10].iter().collect();
        let pa = a.predict_workload(&probe).unwrap();
        let pb = b.predict_workload(&probe).unwrap();
        assert_ne!(pa.to_bits(), pb.to_bits());

        let dir = std::env::temp_dir().join("wmp-serve-reload-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model-b.lwmp");
        b.save_to(&path).unwrap();

        let engine = Engine::new(PredictorHandle::new(a), WindowPolicy::Count(10));
        let first: Vec<QueryTicket> =
            log.records[..10].iter().map(|r| engine.submit(r.clone())).collect();
        assert_eq!(first[0].wait().unwrap().predicted_mb().to_bits(), pa.to_bits());
        assert_eq!(first[0].wait().unwrap().model_version, 0);

        let version = engine.reload(&path).unwrap();
        assert_eq!(version, 1);
        let second: Vec<QueryTicket> =
            log.records[..10].iter().map(|r| engine.submit(r.clone())).collect();
        let d = second[0].wait().unwrap();
        assert_eq!(d.predicted_mb().to_bits(), pb.to_bits(), "reload serves the artifact");
        assert_eq!(d.model_version, 1);
        assert_eq!(engine.stats().swaps, 1);

        assert!(engine.reload(dir.join("missing.lwmp")).is_err());
        assert_eq!(engine.handle().version(), 1, "failed reload keeps the current model serving");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn observe_retrains_in_the_background_and_hot_swaps() {
        let log = wmp_workloads::tpcc::generate(400, 6).unwrap();
        // Seed from a *different* log so the retrained model (trained on
        // `log`'s observations) cannot coincide with the seed bit-for-bit.
        let seed_log = wmp_workloads::tpcc::generate(300, 77).unwrap();
        let seed_model = trained_on(&seed_log, ModelKind::Ridge, 6);
        let probe: Vec<&QueryRecord> = log.records[..10].iter().collect();
        let seeded = seed_model.predict_workload(&probe).unwrap();

        let config = LearnedWmpConfig { model: ModelKind::Ridge, ..Default::default() };
        let policy = OnlinePolicy { retrain_every: 200, window: 1_000, k_templates: 6 };
        let online = OnlineWmp::new(config, policy);
        let engine = Engine::new(PredictorHandle::new(seed_model), WindowPolicy::Count(10))
            .with_retraining(online, log.catalog.clone());

        for r in &log.records {
            assert!(engine.observe(r.clone()));
        }
        // The retrainer runs on its own thread; wait for both passes
        // (400 observations / retrain_every 200) to publish.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        while engine.stats().retrains < 2 {
            assert!(std::time::Instant::now() < deadline, "retraining never published");
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let stats = engine.stats();
        assert_eq!(stats.observed, 400);
        assert_eq!(stats.retrain_failures, 0);
        assert!(engine.handle().version() >= 2);

        // Predictions now come from a retrained model, not the seed.
        let tickets: Vec<QueryTicket> =
            log.records[..10].iter().map(|r| engine.submit(r.clone())).collect();
        let d = tickets[9].wait().unwrap();
        assert!(d.model_version >= 2);
        assert_ne!(d.predicted_mb().to_bits(), seeded.to_bits());
    }

    #[test]
    fn observe_without_a_retrainer_reports_false() {
        let log = wmp_workloads::tpcc::generate(60, 8).unwrap();
        let model = trained_on(&log, ModelKind::Ridge, 8);
        let engine = Engine::new(PredictorHandle::new(model), WindowPolicy::Count(10));
        assert!(!engine.observe(log.records[0].clone()));
        assert_eq!(engine.stats().observed, 0);
    }

    #[test]
    fn dropping_the_engine_resolves_stranded_tickets_with_an_error() {
        let log = wmp_workloads::tpcc::generate(60, 9).unwrap();
        let model = trained_on(&log, ModelKind::Ridge, 9);
        let engine = Engine::new(PredictorHandle::new(model), WindowPolicy::Count(10));
        let ticket = engine.submit(log.records[0].clone());
        drop(engine);
        assert!(ticket.wait().is_err(), "no waiter blocks forever on shutdown");
    }

    #[test]
    fn observability_publishes_serving_metrics_and_quality() {
        let log = wmp_workloads::tpcc::generate(300, 11).unwrap();
        let model = trained_on(&log, ModelKind::Ridge, 11);
        let refs: Vec<&QueryRecord> = log.records.iter().collect();
        let reference = model.template_distribution(&refs).unwrap();

        let config = ObsConfig::default().with_drift_reference(reference);
        let registry = std::sync::Arc::clone(&config.registry);
        let engine = Engine::new(PredictorHandle::new(model), WindowPolicy::Count(10))
            .with_observability(config);

        for r in &log.records[..40] {
            let _ = engine.submit(r.clone());
        }
        // No retrainer attached: observe still feeds quality + drift.
        for r in &log.records[..40] {
            assert!(!engine.observe(r.clone()));
        }

        let snap = registry.snapshot();
        let get = |name: &str| snap.get(name, &[]).cloned().unwrap_or_else(|| panic!("{name}"));
        assert!(matches!(get("wmp_queries_submitted_total"), wmp_obs::MetricValue::Counter(40)));
        assert!(matches!(get("wmp_queries_served_total"), wmp_obs::MetricValue::Counter(40)));
        assert!(matches!(get("wmp_windows_scored_total"), wmp_obs::MetricValue::Counter(4)));
        assert!(matches!(get("wmp_queries_observed_total"), wmp_obs::MetricValue::Counter(40)));
        assert!(
            matches!(get("wmp_quality_windows_total"), wmp_obs::MetricValue::Counter(4)),
            "40 observations / quality_batch 10"
        );
        match get("wmp_window_score_latency_us") {
            wmp_obs::MetricValue::Histogram(h) => assert_eq!(h.count, 4),
            other => panic!("latency should be a histogram, got {other:?}"),
        }
        match get("wmp_prediction_mae_mb") {
            wmp_obs::MetricValue::Gauge(mae) => assert!(mae.is_finite() && mae >= 0.0),
            other => panic!("mae should be a gauge, got {other:?}"),
        }
        match get("wmp_template_drift_score") {
            // 40 live assignments from the training log itself: low drift.
            wmp_obs::MetricValue::Gauge(score) => {
                assert!((0.0..=1.0).contains(&score), "drift in [0,1], got {score}")
            }
            other => panic!("drift should be a gauge, got {other:?}"),
        }
        let text = snap.to_prometheus();
        assert!(text.contains("wmp_queries_submitted_total 40"));
        assert!(text.contains("wmp_window_score_latency_us_count 4"));
    }

    #[test]
    fn stats_stay_coherent_under_concurrent_load() {
        let log = wmp_workloads::tpcc::generate(400, 13).unwrap();
        let model = trained_on(&log, ModelKind::Ridge, 13);
        let engine = Engine::new(PredictorHandle::new(model), WindowPolicy::Count(7));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let engine = &engine;
                let records = &log.records;
                scope.spawn(move || {
                    for r in records[t * 100..(t + 1) * 100].iter() {
                        let _ = engine.submit(r.clone());
                    }
                });
            }
            // Reader thread: the invariant must hold mid-flight, on every
            // single snapshot, while submissions and scoring race.
            let engine = &engine;
            scope.spawn(move || {
                for _ in 0..2_000 {
                    let snap = engine.stats();
                    assert!(
                        snap.submitted >= snap.resolved() + snap.pending,
                        "coherence violated mid-flight: {snap:?}"
                    );
                }
            });
        });
        engine.drain();
        let snap = engine.stats();
        assert_eq!(snap.submitted, 400);
        assert_eq!(snap.resolved(), 400);
        assert_eq!(snap.pending, 0);
    }

    #[test]
    fn window_policy_count_zero_degrades_to_one() {
        let log = wmp_workloads::tpcc::generate(60, 10).unwrap();
        let model = trained_on(&log, ModelKind::Ridge, 10);
        let engine = Engine::new(PredictorHandle::new(model), WindowPolicy::Count(0));
        let t = engine.submit(log.records[0].clone());
        assert_eq!(t.wait().unwrap().window_len, 1);
    }

    #[test]
    fn submit_sql_serves_a_text_log_end_to_end() {
        let log = wmp_workloads::tpch::generate(220, 5).unwrap();
        let model = trained_on(&log, ModelKind::Ridge, 5);
        let catalog = wmp_workloads::tpch::catalog();
        let engine = Engine::new(PredictorHandle::new(model), WindowPolicy::Count(5))
            .with_observability(ObsConfig::default())
            .with_sql_frontend(SqlFrontend::new(catalog, Box::new(wmp_sql::Ansi)));

        // Replay the first window's queries as rendered SQL text.
        let mut tickets = Vec::new();
        for record in log.records.iter().take(5) {
            tickets.push(engine.submit_sql(&record.sql()).expect("generated SQL re-parses"));
        }
        let decision = tickets[0].wait().unwrap();
        assert_eq!(decision.window_len, 5);
        assert!(decision.predicted_mb() > 0.0);
        assert!(tickets.iter().all(|t| t.is_resolved()));

        // A malformed statement is rejected with a typed error, not a panic,
        // and does not enter the pending window.
        let err = engine.submit_sql("DELETE FROM lineitem").unwrap_err();
        assert_eq!(err.kind(), "unexpected_token");
        assert_eq!(engine.pending_len(), 0);

        let front = engine.sql_frontend().expect("front-end attached");
        assert_eq!(front.parse_ok(), 5);
        assert_eq!(front.parse_errors(), 1);
        let snap = engine.obs_registry().unwrap().snapshot();
        let text = snap.to_prometheus();
        assert!(text.contains("wmp_sql_parse_ok_total 5"));
        assert!(text.contains("wmp_sql_parse_errors_total 1"));
    }

    #[test]
    fn submit_sql_without_a_frontend_is_a_typed_error() {
        let log = wmp_workloads::tpcc::generate(60, 11).unwrap();
        let model = trained_on(&log, ModelKind::Ridge, 11);
        let engine = Engine::new(PredictorHandle::new(model), WindowPolicy::Count(5));
        let err = engine.submit_sql("SELECT l.* FROM lineitem l").unwrap_err();
        assert_eq!(err.kind(), "unsupported");
        assert_eq!(engine.stats().submitted, 0, "nothing was enqueued");
    }
}
