//! The [`Engine`] facade: an always-on serving loop that turns an unbounded
//! query stream into fixed-size workload windows, scores each window through
//! a hot-swappable [`PredictorHandle`], and retrains in the background.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use learnedwmp_core::handle::PredictorHandle;
use learnedwmp_core::{LearnedWmp, OnlineWmp, WorkloadPredictor};
use wmp_mlkit::{MlError, MlResult};
use wmp_obs::Level;
use wmp_plan::Catalog;
use wmp_workloads::QueryRecord;

use crate::obs::{EngineObs, ObsConfig};
use crate::sqlfront::SqlFrontend;
use crate::stats::{EngineStats, StatsSnapshot};
use crate::ticket::{QueryTicket, TicketState, WorkloadDecision};

/// How the engine slices the submission stream into workloads (the paper's
/// §II workload definition, applied at serving time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowPolicy {
    /// Score a window as soon as `s` queries have accumulated — the serving
    /// mirror of the paper's fixed-size workloads (TR4/IN1, `s = 10` in the
    /// evaluation). A value of 0 is treated as 1.
    Count(usize),
    /// Accumulate indefinitely; windows are scored only by explicit
    /// [`Engine::drain`] calls — the variable-length-workload extension
    /// (§I), where the caller decides the window boundary (e.g. an
    /// admission tick).
    Drain,
}

struct Pending {
    records: Vec<QueryRecord>,
    tickets: Vec<Arc<TicketState>>,
}

impl Pending {
    fn new() -> Self {
        Pending { records: Vec::new(), tickets: Vec::new() }
    }

    fn take(&mut self) -> Pending {
        std::mem::replace(self, Pending::new())
    }
}

struct Retrainer {
    tx: Option<mpsc::Sender<QueryRecord>>,
    join: Option<JoinHandle<()>>,
}

impl Drop for Retrainer {
    fn drop(&mut self) {
        // Closing the channel ends the background loop; join so no
        // retraining outlives the engine.
        self.tx.take();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// A thread-safe serving engine.
///
/// Lifecycle: **submit → window → predict → observe → swap**.
///
/// - [`Engine::submit`] enqueues an arriving query and returns a
///   [`QueryTicket`] immediately.
/// - Once the [`WindowPolicy`] closes a window, the engine pins the current
///   model ([`PredictorHandle::snapshot`]), predicts the window's collective
///   memory, and resolves every member ticket with the same
///   [`WorkloadDecision`].
/// - [`Engine::observe`] feeds executed queries (with their measured true
///   memory) to a background [`OnlineWmp`] retrainer; when a retraining
///   pass completes, the new model is published through the handle without
///   blocking in-flight predictions.
/// - [`Engine::reload`] installs a persisted artifact the same way.
///
/// All methods take `&self`: one `Engine` (or one `Arc<Engine>`) is shared
/// across every request thread.
pub struct Engine {
    handle: PredictorHandle,
    policy: WindowPolicy,
    pending: Mutex<Pending>,
    window_seq: AtomicU64,
    query_seq: AtomicU64,
    stats: Arc<EngineStats>,
    obs: Option<Arc<EngineObs>>,
    sql: Option<SqlFrontend>,
    retrainer: Option<Retrainer>,
}

impl Engine {
    /// Creates an engine serving through `handle` (no background
    /// retraining; attach it with [`Engine::with_retraining`]).
    pub fn new(handle: PredictorHandle, policy: WindowPolicy) -> Self {
        Engine {
            handle,
            policy,
            pending: Mutex::new(Pending::new()),
            window_seq: AtomicU64::new(0),
            query_seq: AtomicU64::new(0),
            stats: Arc::new(EngineStats::default()),
            obs: None,
            sql: None,
            retrainer: None,
        }
    }

    /// Attaches a SQL ingestion front-end so queries can arrive as text via
    /// [`Engine::submit_sql`] instead of pre-built [`QueryRecord`]s.
    pub fn with_sql_frontend(mut self, frontend: SqlFrontend) -> Self {
        self.sql = Some(frontend);
        self
    }

    /// Attaches registry-backed observability (see [`ObsConfig`]): serving
    /// counters, the window-scoring latency histogram, model version/age
    /// gauges, rolling prediction quality, and (when a drift reference is
    /// configured) the template-drift score all publish into
    /// `config.registry` from this call on.
    ///
    /// Call this **before** [`Engine::with_retraining`] — the retraining
    /// thread captures the observability handles when it starts, so a later
    /// attachment is invisible to it.
    pub fn with_observability(mut self, config: ObsConfig) -> Self {
        self.obs = Some(Arc::new(EngineObs::new(config)));
        self
    }

    /// Attaches a background retraining loop: records passed to
    /// [`Engine::observe`] stream into `online` on a dedicated thread, and
    /// every completed retraining pass publishes the new model through this
    /// engine's handle (a codec round-trip snapshot, so the published model
    /// predicts bit-identically to the retrainer's). Warm-start `online`
    /// first if predictions should flow before the first pass.
    pub fn with_retraining(mut self, online: OnlineWmp, catalog: Catalog) -> Self {
        let (tx, rx) = mpsc::channel::<QueryRecord>();
        let handle = self.handle.clone();
        let stats = Arc::clone(&self.stats);
        let obs = self.obs.clone();
        let join = std::thread::spawn(move || {
            let mut online = online;
            while let Ok(record) = rx.recv() {
                match online.observe(record, &catalog) {
                    Ok(outcome) if outcome.retrained() => {
                        // The codec round trip is bit-exact, so the
                        // published copy predicts identically to the
                        // retrainer's private model while sharing no
                        // mutable state with readers.
                        let published = online
                            .model()
                            .ok_or(MlError::NotFitted("OnlineWmp after retrain"))
                            .and_then(LearnedWmp::codec_clone);
                        match published {
                            Ok(model) => {
                                let outcome = handle.swap(model);
                                // ordering: Relaxed — advisory counters; the
                                // model swap itself synchronizes via the
                                // handle's lock.
                                stats.swaps.fetch_add(1, Ordering::Relaxed);
                                // ordering: Relaxed — advisory counter.
                                stats.retrains.fetch_add(1, Ordering::Relaxed);
                                if let Some(obs) = &obs {
                                    obs.swaps.inc();
                                    obs.retrains.inc();
                                }
                                wmp_obs::event!(
                                    Level::Info,
                                    target: "wmp_serve::engine",
                                    "retrain_published",
                                    version = outcome.version,
                                    passes = online.retrain_count(),
                                );
                            }
                            Err(e) => {
                                // ordering: Relaxed — advisory failure count.
                                stats.retrain_failures.fetch_add(1, Ordering::Relaxed);
                                if let Some(obs) = &obs {
                                    obs.retrain_failures.inc();
                                }
                                wmp_obs::event!(
                                    Level::Warn,
                                    target: "wmp_serve::engine",
                                    "retrain_publish_failed",
                                    error = e.to_string(),
                                );
                            }
                        }
                    }
                    Ok(_) => {}
                    Err(e) => {
                        // ordering: Relaxed — advisory failure count.
                        stats.retrain_failures.fetch_add(1, Ordering::Relaxed);
                        if let Some(obs) = &obs {
                            obs.retrain_failures.inc();
                        }
                        wmp_obs::event!(
                            Level::Warn,
                            target: "wmp_serve::engine",
                            "retrain_failed",
                            error = e.to_string(),
                        );
                    }
                }
            }
        });
        self.retrainer = Some(Retrainer { tx: Some(tx), join: Some(join) });
        self
    }

    /// Submits one arriving query. Returns immediately with a ticket that
    /// resolves when the query's window is scored. If this submission closes
    /// a [`WindowPolicy::Count`] window, the window is scored on the calling
    /// thread before returning (so the returned ticket is already resolved).
    pub fn submit(&self, record: QueryRecord) -> QueryTicket {
        // ordering: Relaxed — ticket sequence numbers only need uniqueness,
        // not ordering against any other memory.
        let seq = self.query_seq.fetch_add(1, Ordering::Relaxed);
        // `submitted` increments before the query enters the pending window
        // — rule 1 of the stats coherence contract (see `crate::stats`).
        // ordering: Relaxed — the Acquire snapshot reads pair with the
        // Release resolution counters; `submitted` only has to be counted
        // before the pending-lock release orders it for window scorers.
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.submitted.inc();
        }
        let state = TicketState::new();
        let ticket = QueryTicket { seq, state: Arc::clone(&state) };

        let (closed, pending_len) = {
            let mut pending =
                self.pending.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            pending.records.push(record);
            pending.tickets.push(state);
            match self.policy {
                WindowPolicy::Count(s) if pending.records.len() >= s.max(1) => {
                    (Some(pending.take()), 0)
                }
                _ => (None, pending.records.len()),
            }
        };
        if let Some(obs) = &self.obs {
            obs.pending.set(pending_len as f64);
        }
        if let Some(window) = closed {
            self.score_window(window);
        }
        ticket
    }

    /// Submits one query as SQL text: parses it under the attached
    /// front-end's dialect, lowers it against the catalog, prices it, and
    /// enqueues the result exactly like [`Engine::submit`].
    ///
    /// # Errors
    /// A span-carrying [`wmp_sql::ParseError`] when the statement is
    /// rejected (malformed, unsupported construct, unknown identifier), or
    /// a zero-span `Unsupported` error when no front-end is attached (see
    /// [`Engine::with_sql_frontend`]). Rejected statements never panic and
    /// never enter a window; parse outcomes are counted on the front-end
    /// and, when observability is attached, as `wmp_sql_parse_ok_total` /
    /// `wmp_sql_parse_errors_total`.
    pub fn submit_sql(&self, sql: &str) -> Result<QueryTicket, wmp_sql::ParseError> {
        let Some(frontend) = &self.sql else {
            return Err(wmp_sql::ParseError::Unsupported {
                what: "submit_sql without a SQL front-end (attach with with_sql_frontend)",
                span: wmp_sql::Span::at(0),
            });
        };
        let span = wmp_obs::span!(
            Level::Debug,
            target: "wmp_serve::sql",
            "sql_parse",
            dialect = frontend.dialect().name(),
            bytes = sql.len(),
        );
        let record = frontend.record(sql);
        drop(span);
        match record {
            Ok(record) => {
                if let Some(obs) = &self.obs {
                    obs.sql_parse_ok.inc();
                }
                Ok(self.submit(record))
            }
            Err(e) => {
                if let Some(obs) = &self.obs {
                    obs.sql_parse_errors.inc();
                }
                wmp_obs::event!(
                    Level::Warn,
                    target: "wmp_serve::sql",
                    "sql_parse_rejected",
                    kind = e.kind(),
                    error = e.to_string(),
                );
                Err(e)
            }
        }
    }

    /// The attached SQL front-end (for its parse counters), or `None` when
    /// the engine only accepts pre-built records.
    pub fn sql_frontend(&self) -> Option<&SqlFrontend> {
        self.sql.as_ref()
    }

    /// Flushes the current partial window (any policy), scoring whatever has
    /// accumulated. Returns the number of tickets resolved (0 when nothing
    /// was pending).
    pub fn drain(&self) -> usize {
        let window = self.pending.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
        if let Some(obs) = &self.obs {
            obs.pending.set(0.0);
        }
        let n = window.records.len();
        if n > 0 {
            self.score_window(window);
        }
        n
    }

    /// Queries waiting for their window to close.
    pub fn pending_len(&self) -> usize {
        self.pending.lock().unwrap_or_else(std::sync::PoisonError::into_inner).records.len()
    }

    fn score_window(&self, window: Pending) {
        debug_assert_eq!(window.records.len(), window.tickets.len());
        // ordering: Relaxed — window ids need uniqueness only.
        let window_id = self.window_seq.fetch_add(1, Ordering::Relaxed);
        let span = wmp_obs::span!(
            Level::Debug,
            target: "wmp_serve::engine",
            "score_window",
            window_id = window_id,
            window_len = window.records.len(),
        );
        let t0 = Instant::now();
        let snapshot = self.handle.snapshot();
        let refs: Vec<&QueryRecord> = window.records.iter().collect();
        let result = snapshot.predict_resources(&refs);
        let elapsed = t0.elapsed();
        self.stats.latency.record_duration(elapsed);
        // ordering: Relaxed — advisory window count.
        self.stats.windows.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.score_latency.record_duration(elapsed);
            obs.windows.inc();
            obs.model_version.set(snapshot.version() as f64);
            obs.model_age_seconds.set(snapshot.age().as_secs_f64());
        }
        let n = window.tickets.len() as u64;
        // `Release` on the resolution counters pairs with the snapshot's
        // `Acquire` loads — rule 2 of the stats coherence contract: the
        // window left `pending` (the caller took it under the lock) before
        // these increments become visible.
        let resolution = match result {
            Ok(predicted) => {
                // ordering: Release — pairs with EngineStats::snapshot's
                // Acquire loads (rule 2, see the comment block above).
                self.stats.served.fetch_add(n, Ordering::Release);
                if let Some(obs) = &self.obs {
                    obs.served.add(n);
                }
                Ok(WorkloadDecision {
                    window_id,
                    predicted,
                    window_len: window.records.len(),
                    model_version: snapshot.version(),
                })
            }
            Err(e) => {
                // ordering: Release — same pairing as `served` above.
                self.stats.failed.fetch_add(n, Ordering::Release);
                if let Some(obs) = &self.obs {
                    obs.failed.add(n);
                }
                wmp_obs::event!(
                    Level::Warn,
                    target: "wmp_serve::engine",
                    "window_score_failed",
                    window_id = window_id,
                    error = e.to_string(),
                );
                Err(e)
            }
        };
        for ticket in &window.tickets {
            ticket.resolve(resolution.clone());
        }
        drop(span);
    }

    /// Streams one executed query (with its measured memory) to the
    /// background retrainer, and feeds the observability monitors
    /// (prediction quality, template drift) when attached. Returns `false`
    /// — and drops the record for retraining purposes — when no retrainer
    /// is attached or its thread has stopped; quality/drift accounting
    /// still happens in that case, so monitoring works on engines that
    /// retrain by explicit [`Engine::reload`]/[`Engine::install`] instead.
    pub fn observe(&self, record: QueryRecord) -> bool {
        // Account before forwarding: the record is moved into the channel.
        if let Some(obs) = &self.obs {
            obs.observed.inc();
            obs.account_observation(self.handle.snapshot().model(), &record);
        }
        let Some(retrainer) = &self.retrainer else { return false };
        let Some(tx) = &retrainer.tx else { return false };
        if tx.send(record).is_ok() {
            // ordering: Relaxed — advisory count; the channel send is the
            // synchronizing operation.
            self.stats.observed.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Loads a persisted model artifact (see [`LearnedWmp::load_from`]) and
    /// installs it as the serving model; readers switch on their next
    /// snapshot without ever blocking. Returns the new model version.
    ///
    /// # Errors
    /// Propagates artifact open/validation errors; on error the previous
    /// model keeps serving.
    pub fn reload(&self, path: impl AsRef<std::path::Path>) -> MlResult<u64> {
        let model = LearnedWmp::load_from(path)?;
        Ok(self.install(model))
    }

    /// Installs an in-process model as the serving model (the non-file
    /// counterpart of [`Engine::reload`]). Returns the version this
    /// installation published (race-free even if a background retrain
    /// swaps concurrently).
    pub fn install(&self, model: impl WorkloadPredictor + 'static) -> u64 {
        let outcome = self.handle.swap(model);
        // ordering: Relaxed — advisory counter; the swap's lock publishes
        // the model itself.
        self.stats.swaps.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.swaps.inc();
        }
        wmp_obs::event!(
            Level::Info,
            target: "wmp_serve::engine",
            "model_install",
            version = outcome.version,
        );
        outcome.version
    }

    /// The shared predictor handle (clone it to serve the same model
    /// elsewhere, or to swap models from outside the engine).
    pub fn handle(&self) -> &PredictorHandle {
        &self.handle
    }

    /// Predicts the joint resource demand of `queries` through the
    /// currently serving model, synchronously. A side-channel read for
    /// consumers that already hold a whole workload — e.g. a scheduler
    /// replaying arrival chunks — so it bypasses the window machinery
    /// entirely: nothing enters a pending window, no ticket is issued, and
    /// the engine's submit/serve counters are untouched. The model version
    /// used is whatever [`Engine::handle`] serves at call time.
    ///
    /// # Errors
    /// Propagates the model's prediction error (e.g. feature-arity
    /// mismatch); the serving state is unaffected either way.
    pub fn predict_now(&self, queries: &[&QueryRecord]) -> MlResult<wmp_plan::ResourceVector> {
        self.handle.snapshot().model().predict_resources(queries)
    }

    /// Point-in-time serving telemetry. The snapshot satisfies
    /// `submitted >= served + failed + pending` even while submissions and
    /// scoring race with this call — see the coherence contract in
    /// [`crate::stats`].
    pub fn stats(&self) -> StatsSnapshot {
        let snap = self.stats.snapshot_with_pending(|| self.pending_len() as u64);
        debug_assert!(
            snap.submitted >= snap.resolved() + snap.pending,
            "stats coherence violated: submitted {} < resolved {} + pending {}",
            snap.submitted,
            snap.resolved(),
            snap.pending,
        );
        snap
    }

    /// The observability registry attached via [`Engine::with_observability`]
    /// (`None` when observability is not attached) — the handle to render
    /// [`wmp_obs::Snapshot::to_prometheus`] /
    /// [`wmp_obs::Snapshot::to_json`] expositions from.
    pub fn obs_registry(&self) -> Option<&Arc<wmp_obs::Registry>> {
        self.obs.as_ref().map(|obs| &obs.registry)
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Never strand a waiter: resolve any un-scored tickets with a typed
        // error instead of leaving them blocked forever.
        let window = self.pending.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
        for ticket in &window.tickets {
            ticket.resolve(Err(MlError::EmptyInput(
                "Engine dropped with a partial window (call drain() before shutdown)",
            )));
        }
    }
}
