//! Executor working-memory simulator — the source of the ground-truth label
//! `m` (per-query peak working memory) of the paper's query triple
//! `q = (e, p, m)`.
//!
//! The model walks the physical plan bottom-up computing, for every operator,
//! how much working memory it needs based on **true** cardinalities and row
//! widths (hash-join build tables, sort heaps with spill caps, aggregation
//! hash tables), then performs a pipeline-phase analysis to find the peak
//! *concurrent* footprint: a blocking operator's memory coexists with its
//! streaming child's resident memory, a hash join's table lives through both
//! the build and probe phases, and so on.

use wmp_plan::plan::{Operator, PlanNode};
use wmp_plan::{CostModel, ResourceVector};

use crate::noise::lognormal_factor;

/// Bytes per mebibyte.
pub const MB: f64 = 1024.0 * 1024.0;

/// Executor memory-model constants.
#[derive(Debug, Clone)]
pub struct MemoryConfig {
    /// Table-scan I/O buffer (bytes).
    pub scan_buffer: f64,
    /// Index-scan buffer (bytes).
    pub index_buffer: f64,
    /// Sort heap cap per sort (bytes); larger inputs spill and hold the cap
    /// plus merge buffers.
    pub sort_heap_cap: f64,
    /// Extra merge buffers held by a spilling sort (bytes).
    pub spill_merge_buffers: f64,
    /// Per-entry overhead of a hash-join table (pointers, hashes, alignment).
    pub hash_entry_overhead: f64,
    /// Per-group overhead of a hash-aggregate state entry.
    pub agg_entry_overhead: f64,
    /// Per-entry overhead of hash DISTINCT.
    pub distinct_entry_overhead: f64,
    /// Bucket-array bytes per entry (hash tables size their directory
    /// proportionally to the entry count).
    pub bucket_bytes_per_entry: f64,
    /// Streaming-operator scratch (merge join, stream agg, NL join) in bytes.
    pub stream_scratch: f64,
    /// Log-normal noise sigma applied to the final peak (0 disables noise).
    pub noise_sigma: f64,
    /// Seed for the noise.
    pub noise_seed: u64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            scan_buffer: 0.25 * MB,
            index_buffer: 0.0625 * MB,
            sort_heap_cap: 192.0 * MB,
            spill_merge_buffers: 4.0 * MB,
            hash_entry_overhead: 48.0,
            agg_entry_overhead: 64.0,
            distinct_entry_overhead: 48.0,
            bucket_bytes_per_entry: 8.0,
            stream_scratch: 0.0625 * MB,
            noise_sigma: 0.05,
            noise_seed: 0xC0FFEE,
        }
    }
}

/// Memory demand of one plan fragment during pipeline analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemProfile {
    /// Highest concurrent footprint observed while the fragment executes.
    pub peak: f64,
    /// Memory still held while the fragment streams rows to its parent.
    pub resident: f64,
}

/// The executor simulator.
#[derive(Debug, Clone, Default)]
pub struct ExecutorSimulator {
    config: MemoryConfig,
    cost: CostModel,
}

impl ExecutorSimulator {
    /// Simulator with default constants.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulator with explicit constants.
    pub fn with_config(config: MemoryConfig) -> Self {
        ExecutorSimulator { config, cost: CostModel::default() }
    }

    /// The configured constants.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// The CPU/IO cost model used for the non-memory label components.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Peak working memory of a query in megabytes, including per-query noise
    /// (`query_id` seeds the noise deterministically).
    pub fn peak_memory_mb(&self, plan: &PlanNode, query_id: u64) -> f64 {
        let profile = self.profile(plan);
        let noise = if self.config.noise_sigma > 0.0 {
            lognormal_factor(self.config.noise_seed, query_id, self.config.noise_sigma)
        } else {
            1.0
        };
        profile.peak * noise / MB
    }

    /// Ground-truth resource label of a query: peak working memory from the
    /// pipeline analysis plus CPU time and I/O volume from the cost model,
    /// all under **true** cardinalities. Each component draws its own
    /// deterministic log-normal run noise from the same `(seed, query_id)`
    /// stream, so the three labels stay correlated through the shared plan
    /// while still varying independently run-to-run like real measurements.
    pub fn true_resources(&self, plan: &PlanNode, query_id: u64) -> ResourceVector {
        let cost = self.cost.true_cost(plan);
        let noise = |salt: u64| {
            if self.config.noise_sigma > 0.0 {
                lognormal_factor(self.config.noise_seed ^ salt, query_id, self.config.noise_sigma)
            } else {
                1.0
            }
        };
        ResourceVector {
            memory_mb: self.peak_memory_mb(plan, query_id),
            cpu_ms: cost.cpu_ms * noise(0x5EED_0001),
            io_pages: (cost.io_pages * noise(0x5EED_0002)).round(),
        }
    }

    /// Noise-free pipeline analysis of a plan fragment (uses true rows).
    pub fn profile(&self, node: &PlanNode) -> MemProfile {
        let c = &self.config;
        match &node.op {
            Operator::TableScan { .. } => {
                MemProfile { peak: c.scan_buffer, resident: c.scan_buffer }
            }
            Operator::IndexScan { .. } => {
                MemProfile { peak: c.index_buffer, resident: c.index_buffer }
            }
            Operator::HashJoin => {
                let probe = self.profile(&node.children[0]);
                let build = self.profile(&node.children[1]);
                let b = &node.children[1];
                let table = b.true_rows
                    * (b.row_width as f64 + c.hash_entry_overhead + c.bucket_bytes_per_entry);
                // Build phase: table grows while the build child streams;
                // probe phase: full table coexists with the probe subtree.
                let peak = (build.peak).max(table + build.resident).max(table + probe.peak);
                MemProfile { peak, resident: table + probe.resident }
            }
            Operator::NestedLoopJoin => {
                let outer = self.profile(&node.children[0]);
                let inner = self.profile(&node.children[1]);
                // The inner side is re-evaluated per outer row; both sides'
                // working sets coexist.
                let peak = outer.peak.max(outer.resident + inner.peak) + c.stream_scratch;
                MemProfile { peak, resident: outer.resident + inner.resident + c.stream_scratch }
            }
            Operator::MergeJoin => {
                let l = self.profile(&node.children[0]);
                let r = self.profile(&node.children[1]);
                let peak = (l.peak + r.resident).max(r.peak + l.resident) + c.stream_scratch;
                MemProfile { peak, resident: l.resident + r.resident + c.stream_scratch }
            }
            Operator::Sort { .. } => {
                let child = self.profile(&node.children[0]);
                let input = &node.children[0];
                let data = input.true_rows * input.row_width as f64;
                let heap = if data <= c.sort_heap_cap {
                    data
                } else {
                    c.sort_heap_cap + c.spill_merge_buffers
                };
                let peak = child.peak.max(heap + child.resident);
                MemProfile { peak, resident: heap }
            }
            Operator::HashAggregate { .. } => {
                let child = self.profile(&node.children[0]);
                let table = node.true_rows
                    * (node.row_width as f64 + c.agg_entry_overhead + c.bucket_bytes_per_entry);
                let peak = child.peak.max(table + child.resident);
                MemProfile { peak, resident: table }
            }
            Operator::StreamAggregate { .. } => {
                let child = self.profile(&node.children[0]);
                let peak = child.peak.max(child.resident + c.stream_scratch);
                MemProfile { peak, resident: c.stream_scratch }
            }
            Operator::HashDistinct => {
                let child = self.profile(&node.children[0]);
                let table = node.true_rows
                    * (node.row_width as f64
                        + c.distinct_entry_overhead
                        + c.bucket_bytes_per_entry);
                let peak = child.peak.max(table + child.resident);
                MemProfile { peak, resident: table }
            }
            Operator::Limit { .. } => self.profile(&node.children[0]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmp_plan::plan::{Operator, PlanNode};

    fn scan(rows: f64, width: u32) -> PlanNode {
        PlanNode::leaf(
            Operator::TableScan { table: "t".into(), alias: "t".into() },
            rows,
            rows,
            width,
        )
    }

    fn sim() -> ExecutorSimulator {
        ExecutorSimulator::with_config(MemoryConfig { noise_sigma: 0.0, ..MemoryConfig::default() })
    }

    #[test]
    fn scan_memory_is_just_the_buffer() {
        let s = sim();
        let p = s.profile(&scan(1e6, 100));
        assert_eq!(p.peak, s.config().scan_buffer);
        assert_eq!(p.resident, s.config().scan_buffer);
    }

    #[test]
    fn hash_join_memory_tracks_build_side() {
        let s = sim();
        let probe = scan(1_000_000.0, 100);
        let build = scan(10_000.0, 80);
        let join = PlanNode {
            op: Operator::HashJoin,
            children: vec![probe, build],
            est_rows: 1e6,
            true_rows: 1e6,
            row_width: 180,
        };
        let p = s.profile(&join);
        let table = 10_000.0 * (80.0 + 48.0 + 8.0);
        assert!(p.peak >= table, "peak covers the build table");
        assert!(p.peak <= table + 3.0 * s.config().scan_buffer, "but not much more");
        assert!(p.resident >= table, "table persists through probing");
    }

    #[test]
    fn bigger_build_side_means_more_memory() {
        let s = sim();
        let mk = |build_rows: f64| {
            let join = PlanNode {
                op: Operator::HashJoin,
                children: vec![scan(1e6, 100), scan(build_rows, 80)],
                est_rows: 1e6,
                true_rows: 1e6,
                row_width: 180,
            };
            s.profile(&join).peak
        };
        assert!(mk(100_000.0) > mk(1_000.0));
    }

    #[test]
    fn sort_holds_data_until_the_cap_then_spills() {
        let s = sim();
        let small_input = scan(1000.0, 100); // 100 KB sorts in memory
        let small_sort = PlanNode::unary(
            Operator::Sort { keys: vec!["t.a".into()] },
            small_input,
            1000.0,
            1000.0,
            100,
        );
        let p = s.profile(&small_sort);
        assert!((p.resident - 1000.0 * 100.0).abs() < 1.0);

        let huge_input = scan(1e8, 100); // 10 GB spills
        let huge_sort =
            PlanNode::unary(Operator::Sort { keys: vec!["t.a".into()] }, huge_input, 1e8, 1e8, 100);
        let p = s.profile(&huge_sort);
        let expected = s.config().sort_heap_cap + s.config().spill_merge_buffers;
        assert!((p.resident - expected).abs() < 1.0, "spilling sort holds the cap");
    }

    #[test]
    fn hash_aggregate_scales_with_group_count() {
        let s = sim();
        let mk = |groups: f64| {
            let agg = PlanNode::unary(
                Operator::HashAggregate { n_group_cols: 1, n_aggs: 2 },
                scan(1e6, 100),
                groups,
                groups,
                64,
            );
            s.profile(&agg).peak
        };
        assert!(mk(1e6) > mk(100.0) * 100.0);
    }

    #[test]
    fn pipeline_analysis_stacks_blocking_operators() {
        // sort(hash_join(scan, scan)): the sort heap coexists with the join's
        // hash table (the join streams into the sort).
        let s = sim();
        let join = PlanNode {
            op: Operator::HashJoin,
            children: vec![scan(1e6, 100), scan(100_000.0, 80)],
            est_rows: 1e6,
            true_rows: 1e6,
            row_width: 180,
        };
        let table = 100_000.0 * (80.0 + 48.0 + 8.0);
        let sort =
            PlanNode::unary(Operator::Sort { keys: vec!["t.a".into()] }, join, 1e6, 1e6, 180);
        let sort_heap = 1e6 * 180.0; // 180 MB of data, below the 192 MB cap
        let p = s.profile(&sort);
        assert!(
            p.peak >= table + sort_heap,
            "join table ({table}) and sort heap ({sort_heap}) coexist; peak = {}",
            p.peak
        );
    }

    #[test]
    fn stream_aggregate_is_cheap() {
        let s = sim();
        let agg =
            PlanNode::unary(Operator::StreamAggregate { n_aggs: 1 }, scan(1e6, 100), 1.0, 1.0, 32);
        let p = s.profile(&agg);
        assert!(p.peak < 1.0 * MB);
    }

    #[test]
    fn limit_is_transparent() {
        let s = sim();
        let inner = scan(1e6, 100);
        let expected = s.profile(&inner);
        let limited = PlanNode::unary(Operator::Limit { n: 10 }, inner, 10.0, 10.0, 100);
        assert_eq!(s.profile(&limited), expected);
    }

    #[test]
    fn memory_uses_true_rows_not_estimates() {
        let s = sim();
        // Same estimates, different truths: the truth must win.
        let mk = |true_rows: f64| {
            let mut build = scan(10_000.0, 80);
            build.true_rows = true_rows;
            let join = PlanNode {
                op: Operator::HashJoin,
                children: vec![scan(1e6, 100), build],
                est_rows: 1e6,
                true_rows: 1e6,
                row_width: 180,
            };
            s.profile(&join).peak
        };
        assert!(mk(100_000.0) > mk(10_000.0));
    }

    #[test]
    fn noise_is_small_and_deterministic() {
        let noisy = ExecutorSimulator::new();
        let plan = PlanNode::unary(
            Operator::Sort { keys: vec!["t.a".into()] },
            scan(100_000.0, 100),
            100_000.0,
            100_000.0,
            100,
        );
        let a = noisy.peak_memory_mb(&plan, 7);
        let b = noisy.peak_memory_mb(&plan, 7);
        assert_eq!(a, b);
        let base = sim().peak_memory_mb(&plan, 7);
        assert!((a / base - 1.0).abs() < 0.3, "noise stays within ~30%");
        // Different query ids draw different noise.
        assert_ne!(noisy.peak_memory_mb(&plan, 7), noisy.peak_memory_mb(&plan, 8));
    }

    #[test]
    fn true_resources_are_deterministic_and_correlated_with_plan_size() {
        let s = ExecutorSimulator::new();
        let small = PlanNode::unary(
            Operator::Sort { keys: vec!["t.a".into()] },
            scan(10_000.0, 100),
            10_000.0,
            10_000.0,
            100,
        );
        let large = PlanNode::unary(
            Operator::Sort { keys: vec!["t.a".into()] },
            scan(5_000_000.0, 100),
            5_000_000.0,
            5_000_000.0,
            100,
        );
        let a = s.true_resources(&small, 3);
        assert_eq!(a, s.true_resources(&small, 3), "deterministic per (plan, id)");
        let b = s.true_resources(&large, 3);
        assert!(b.memory_mb > a.memory_mb);
        assert!(b.cpu_ms > a.cpu_ms);
        assert!(b.io_pages > a.io_pages);
        assert!(a.is_finite() && b.is_finite());
        // Memory matches the scalar path exactly.
        assert_eq!(a.memory_mb, s.peak_memory_mb(&small, 3));
    }

    #[test]
    fn nested_loop_join_is_cheap() {
        let s = sim();
        let nl = PlanNode {
            op: Operator::NestedLoopJoin,
            children: vec![scan(100.0, 100), scan(1e6, 100)],
            est_rows: 1000.0,
            true_rows: 1000.0,
            row_width: 200,
        };
        let p = s.profile(&nl);
        assert!(p.peak < 2.0 * MB, "index NL join needs no big structures");
    }
}
