//! The DBMS optimizer's heuristic memory estimator — the paper's
//! **SingleWMP-DBMS** baseline ("the current state of practice in commercial
//! database management systems", §IV).
//!
//! It mirrors how real engines reserve working memory: a rule per operator,
//! written by experts, driven by **estimated** cardinalities and conservative
//! fudge factors, with *no* pipeline analysis (each operator's reservation is
//! simply summed). Its errors therefore combine
//!
//! 1. cardinality-estimation error (independence/uniformity assumptions),
//! 2. rule bias (reserve-the-whole-sort-heap style conservatism, understated
//!    per-entry hash overheads),
//! 3. structural error (summing reservations over-counts operators that never
//!    hold memory at the same time).
//!
//! These are exactly the skewed, wide error distributions the paper's violin
//! plots show for the DBMS baseline.

use wmp_plan::plan::{Operator, PlanNode};
use wmp_plan::{CostModel, ResourceVector};

use crate::executor::MB;

/// Tunables of the rule-based estimator.
#[derive(Debug, Clone)]
pub struct HeuristicConfig {
    /// Sort-heap cap the rules reserve against (bytes).
    pub sort_heap_cap: f64,
    /// Reserve the full cap once the estimated sort input exceeds this
    /// fraction of it.
    pub full_reservation_fraction: f64,
    /// Safety multiplier for in-memory sorts.
    pub sort_safety_factor: f64,
    /// Assumed per-entry hash-join overhead (the rules understate the real
    /// cost — pointer chains, alignment, bucket directories).
    pub hash_entry_overhead: f64,
    /// Assumed per-group aggregation overhead (also understated).
    pub agg_entry_overhead: f64,
    /// Fixed reservation for scans/streaming operators (bytes).
    pub base_reservation: f64,
}

impl Default for HeuristicConfig {
    fn default() -> Self {
        HeuristicConfig {
            sort_heap_cap: 192.0 * MB,
            full_reservation_fraction: 0.25,
            sort_safety_factor: 1.5,
            hash_entry_overhead: 16.0,
            agg_entry_overhead: 24.0,
            base_reservation: 0.25 * MB,
        }
    }
}

/// Rule-based memory estimator.
#[derive(Debug, Clone, Default)]
pub struct DbmsHeuristicEstimator {
    config: HeuristicConfig,
}

impl DbmsHeuristicEstimator {
    /// Estimator with default rules.
    pub fn new() -> Self {
        Self::default()
    }

    /// Estimator with explicit rules.
    pub fn with_config(config: HeuristicConfig) -> Self {
        DbmsHeuristicEstimator { config }
    }

    /// Estimated working memory of the whole query in megabytes: the sum of
    /// per-operator reservations (no pipeline analysis).
    pub fn estimate_mb(&self, plan: &PlanNode) -> f64 {
        plan.iter().map(|n| self.operator_reservation(n)).sum::<f64>() / MB
    }

    /// Full DBMS-style resource estimate: the memory reservation plus the
    /// cost model's CPU/IO projection — all driven by **estimated**
    /// cardinalities, like a real optimizer's costing.
    pub fn estimate_resources(&self, plan: &PlanNode) -> ResourceVector {
        let cost = CostModel::default().estimated_cost(plan);
        CostModel::with_memory(cost, self.estimate_mb(plan))
    }

    /// The reservation one operator's rule produces, in bytes.
    pub fn operator_reservation(&self, node: &PlanNode) -> f64 {
        let c = &self.config;
        match &node.op {
            Operator::TableScan { .. } | Operator::IndexScan { .. } => c.base_reservation,
            Operator::NestedLoopJoin | Operator::MergeJoin | Operator::StreamAggregate { .. } => {
                c.base_reservation
            }
            Operator::Limit { .. } => 0.0,
            Operator::HashJoin => {
                let build = &node.children[1];
                build.est_rows * (build.row_width as f64 + c.hash_entry_overhead)
                    + c.base_reservation
            }
            Operator::Sort { .. } => {
                let input = &node.children[0];
                let data = input.est_rows * input.row_width as f64;
                if data > c.sort_heap_cap * c.full_reservation_fraction {
                    // "Big sort: grab the whole heap" — expert conservatism.
                    c.sort_heap_cap
                } else {
                    data * c.sort_safety_factor
                }
            }
            Operator::HashAggregate { .. } | Operator::HashDistinct => {
                node.est_rows * (node.row_width as f64 + c.agg_entry_overhead) + c.base_reservation
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{ExecutorSimulator, MemoryConfig};
    use wmp_plan::plan::{Operator, PlanNode};

    fn scan(est: f64, truth: f64, width: u32) -> PlanNode {
        PlanNode::leaf(
            Operator::TableScan { table: "t".into(), alias: "t".into() },
            est,
            truth,
            width,
        )
    }

    #[test]
    fn small_sort_reserves_with_safety_factor() {
        let h = DbmsHeuristicEstimator::new();
        let sort = PlanNode::unary(
            Operator::Sort { keys: vec!["t.a".into()] },
            scan(1000.0, 1000.0, 100),
            1000.0,
            1000.0,
            100,
        );
        let est = h.estimate_mb(&sort) * MB;
        let expected = 1000.0 * 100.0 * 1.5 + 0.25 * MB; // sort rule + scan base
        assert!((est - expected).abs() < 1.0);
    }

    #[test]
    fn big_sort_reserves_the_entire_heap() {
        let h = DbmsHeuristicEstimator::new();
        let sort = PlanNode::unary(
            Operator::Sort { keys: vec!["t.a".into()] },
            scan(1e7, 1e7, 100), // 1 GB estimated input
            1e7,
            1e7,
            100,
        );
        let est = h.estimate_mb(&sort) * MB;
        assert!((est - (192.0 * MB + 0.25 * MB)).abs() < 1.0);
    }

    #[test]
    fn reservations_are_summed_without_pipeline_awareness() {
        let h = DbmsHeuristicEstimator::new();
        let join = PlanNode {
            op: Operator::HashJoin,
            children: vec![scan(1e6, 1e6, 100), scan(10_000.0, 10_000.0, 80)],
            est_rows: 1e6,
            true_rows: 1e6,
            row_width: 180,
        };
        let single = h.estimate_mb(&join);
        let stacked =
            PlanNode::unary(Operator::Sort { keys: vec!["x".into()] }, join, 1e6, 1e6, 180);
        let both = h.estimate_mb(&stacked);
        assert!(both > single, "the sort reservation simply adds on top");
    }

    #[test]
    fn underestimates_when_cardinality_estimates_are_low() {
        // True build side is 20x the estimate (correlated predicates): the
        // heuristic, driven by estimates, lands far below the simulator.
        let h = DbmsHeuristicEstimator::new();
        let sim = ExecutorSimulator::with_config(MemoryConfig {
            noise_sigma: 0.0,
            ..MemoryConfig::default()
        });
        let join = PlanNode {
            op: Operator::HashJoin,
            children: vec![scan(1e6, 1e6, 100), scan(10_000.0, 200_000.0, 80)],
            est_rows: 1e6,
            true_rows: 2e7,
            row_width: 180,
        };
        let est = h.estimate_mb(&join);
        let truth = sim.peak_memory_mb(&join, 0);
        assert!(est < truth * 0.2, "est {est} MB vs truth {truth} MB");
    }

    #[test]
    fn overestimates_moderate_sorts() {
        // A 10 MB accurate sort: rule reserves 1.5x, plus understating nothing
        // else — the heuristic overshoots the simulator's tight number.
        let h = DbmsHeuristicEstimator::new();
        let sim = ExecutorSimulator::with_config(MemoryConfig {
            noise_sigma: 0.0,
            ..MemoryConfig::default()
        });
        let sort = PlanNode::unary(
            Operator::Sort { keys: vec!["t.a".into()] },
            scan(100_000.0, 100_000.0, 100),
            100_000.0,
            100_000.0,
            100,
        );
        let est = h.estimate_mb(&sort);
        let truth = sim.peak_memory_mb(&sort, 0);
        assert!(est > truth * 1.3, "est {est} MB vs truth {truth} MB");
    }

    #[test]
    fn hash_overheads_are_understated_relative_to_executor() {
        let h = HeuristicConfig::default();
        let e = MemoryConfig::default();
        assert!(h.hash_entry_overhead < e.hash_entry_overhead + e.bucket_bytes_per_entry);
        assert!(h.agg_entry_overhead < e.agg_entry_overhead + e.bucket_bytes_per_entry);
    }

    #[test]
    fn limit_reserves_nothing() {
        let h = DbmsHeuristicEstimator::new();
        let plan = PlanNode::unary(Operator::Limit { n: 5 }, scan(10.0, 10.0, 50), 5.0, 5.0, 50);
        let base_only = h.estimate_mb(&plan) * MB;
        assert!((base_only - 0.25 * MB).abs() < 1.0);
    }
}
