//! # wmp-sim — working-memory ground truth and the state-of-practice baseline
//!
//! The paper measures each query's actual peak working memory on a commercial
//! DBMS and compares learned predictors against the optimizer's own heuristic
//! memory estimate. This crate substitutes both:
//!
//! - [`executor::ExecutorSimulator`] — a per-operator working-memory model
//!   with pipeline-phase analysis, driven by **true** cardinalities, producing
//!   the label `m` for every query (plus deterministic log-normal run noise);
//! - [`heuristic::DbmsHeuristicEstimator`] — an expert-rule estimator driven
//!   by **estimated** cardinalities (the paper's SingleWMP-DBMS baseline).

#![warn(missing_docs)]

pub mod executor;
pub mod heuristic;
pub mod noise;

pub use executor::{ExecutorSimulator, MemProfile, MemoryConfig, MB};
pub use heuristic::{DbmsHeuristicEstimator, HeuristicConfig};
