//! # wmp-sim — working-memory ground truth and the state-of-practice baseline
//!
//! The paper measures each query's actual peak working memory on a commercial
//! DBMS and compares learned predictors against the optimizer's own heuristic
//! memory estimate. This crate substitutes both:
//!
//! - [`executor::ExecutorSimulator`] — a per-operator working-memory model
//!   with pipeline-phase analysis, driven by **true** cardinalities, producing
//!   the label `m` for every query (plus deterministic log-normal run noise);
//! - [`heuristic::DbmsHeuristicEstimator`] — an expert-rule estimator driven
//!   by **estimated** cardinalities (the paper's SingleWMP-DBMS baseline);
//! - [`admission::AdmissionController`] — a closed-loop admission-control
//!   scenario: a budgeted gate admits workloads on *predicted* memory while
//!   admitted batches occupy their *actual* memory, so prediction error
//!   surfaces as overflow events or stranded capacity;
//! - [`cluster::Executor`] / [`cluster::Cluster`] — the capacity-accounting
//!   substrate under admission control: per-executor reserved-vs-actual
//!   occupancy over a [`wmp_plan::ResourceVector`] capacity, the model the
//!   multi-tenant scheduler (`wmp_sched`) scales to N executors.

#![warn(missing_docs)]

pub mod admission;
pub mod cluster;
pub mod executor;
pub mod heuristic;
pub mod noise;

pub use admission::{Admission, AdmissionController, AdmissionStats};
pub use cluster::{ActualOverruns, CapacityExceeded, Cluster, Executor, PlacedWorkload};
pub use executor::{ExecutorSimulator, MemProfile, MemoryConfig, MB};
pub use heuristic::{DbmsHeuristicEstimator, HeuristicConfig};
