//! Deterministic per-query noise. Real working-memory measurements vary a
//! little from run to run (allocator granularity, partition counts, timing of
//! spills); we model that with a multiplicative log-normal factor seeded by
//! the query id so the whole corpus is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Splitmix64 — a tiny, well-distributed hash used to derive per-query seeds.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Multiplicative log-normal noise factor `exp(N(0, sigma))`, deterministic in
/// `(seed, query_id)`.
pub fn lognormal_factor(seed: u64, query_id: u64, sigma: f64) -> f64 {
    let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ splitmix64(query_id)));
    // Box-Muller from two uniforms.
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_query() {
        assert_eq!(lognormal_factor(1, 42, 0.1), lognormal_factor(1, 42, 0.1));
        assert_ne!(lognormal_factor(1, 42, 0.1), lognormal_factor(1, 43, 0.1));
        assert_ne!(lognormal_factor(2, 42, 0.1), lognormal_factor(1, 42, 0.1));
    }

    #[test]
    fn zero_sigma_gives_unit_factor() {
        assert_eq!(lognormal_factor(7, 9, 0.0), 1.0);
    }

    #[test]
    fn factors_center_around_one() {
        let n = 2000;
        let mean: f64 = (0..n).map(|i| lognormal_factor(3, i, 0.05)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean factor = {mean}");
        // All factors positive and bounded for small sigma.
        for i in 0..n {
            let f = lognormal_factor(3, i, 0.05);
            assert!(f > 0.7 && f < 1.4);
        }
    }

    #[test]
    fn splitmix_spreads_bits() {
        // Adjacent inputs should produce very different outputs.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 10);
    }
}
