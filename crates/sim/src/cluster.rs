//! The executor/cluster capacity model: [`Executor`]s with a
//! [`ResourceVector`] capacity and a running set of admitted workloads,
//! grouped into a [`Cluster`].
//!
//! This is the accounting substrate both admission control and scheduling
//! stand on. An executor tracks two occupancy views of the same running set:
//!
//! - the **reserved** view — what the decision maker *believed* each
//!   workload needs (a prediction, a heuristic guess, or the truth for an
//!   oracle). Admission is gated on this view: [`Executor::try_admit`]
//!   refuses any workload whose reservation would push a gated resource past
//!   capacity, so the reserved view **never** exceeds capacity — the
//!   invariant every placement policy inherits for free.
//! - the **actual** view — what the hardware experiences. It is *not*
//!   gated (reality cannot be refused); under-predictions surface as
//!   [`Executor::actual_overruns`], the overflow signal (spills, thrashing)
//!   that admission control and scheduling exist to prevent.
//!
//! Capacity components set to `f64::INFINITY` are not gated, so a
//! memory-only budget (the paper's scenario) and a joint memory+CPU budget
//! (the WiSeDB-style scheduling regime) are the same code path — this is
//! the deduplicated decision path `AdmissionController` and `wmp_sched`
//! both delegate to.

use wmp_plan::{ResourceKind, ResourceVector, N_RESOURCES};

/// One admitted workload as the executor sees it: the reservation the
/// decision was made on next to the demand reality imposes.
#[derive(Debug, Clone, Copy)]
pub struct PlacedWorkload {
    /// Caller-assigned workload id (unique within its executor).
    pub id: u64,
    /// The demand the decision maker reserved capacity for.
    pub reserved: ResourceVector,
    /// The demand the hardware experiences while the workload runs.
    pub actual: ResourceVector,
}

/// Why [`Executor::try_admit`] refused a workload: the first gated resource
/// (in [`ResourceKind::ALL`] order) whose reservation would exceed capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityExceeded(pub ResourceKind);

/// One memory/CPU/IO-bounded executor with a running set of admitted
/// workloads. See the module docs for the reserved-vs-actual contract.
#[derive(Debug, Clone)]
pub struct Executor {
    capacity: ResourceVector,
    running: Vec<PlacedWorkload>,
}

impl Executor {
    /// An empty executor with the given per-resource capacity (infinite
    /// components are not gated).
    pub fn new(capacity: ResourceVector) -> Self {
        Executor { capacity, running: Vec::new() }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> ResourceVector {
        self.capacity
    }

    /// Number of workloads currently running.
    pub fn running(&self) -> usize {
        self.running.len()
    }

    /// The running set (decision order).
    pub fn workloads(&self) -> &[PlacedWorkload] {
        &self.running
    }

    /// Sum of running reservations — the decision maker's occupancy view.
    pub fn reserved(&self) -> ResourceVector {
        self.running.iter().map(|w| w.reserved).sum()
    }

    /// Sum of running actual demands — the hardware's occupancy view.
    pub fn actual(&self) -> ResourceVector {
        self.running.iter().map(|w| w.actual).sum()
    }

    /// First gated resource on which `reserved() + demand` would exceed
    /// capacity, in [`ResourceKind::ALL`] order (`None` when the demand
    /// fits). One headroom comparison shared by every gated resource —
    /// single-resource and joint budgets take the same path.
    pub fn first_overrun(&self, demand: ResourceVector) -> Option<ResourceKind> {
        let occupancy = self.reserved();
        ResourceKind::ALL.into_iter().find(|&kind| {
            self.capacity.get(kind).is_finite()
                && occupancy.get(kind) + demand.get(kind) > self.capacity.get(kind)
        })
    }

    /// Whether a reservation of `demand` fits next to the current
    /// reservations on every gated resource.
    pub fn fits(&self, demand: ResourceVector) -> bool {
        self.first_overrun(demand).is_none()
    }

    /// Whether `demand` would fit next to the current **actual** occupancy
    /// on every gated resource — the hindsight check behind
    /// stranded-capacity accounting (a rejection was wasteful iff the
    /// workload's true demand would have fit the true headroom).
    pub fn actual_fits(&self, demand: ResourceVector) -> bool {
        let occupancy = self.actual();
        ResourceKind::ALL.into_iter().all(|kind| {
            !self.capacity.get(kind).is_finite()
                || occupancy.get(kind) + demand.get(kind) <= self.capacity.get(kind)
        })
    }

    /// Replaces the capacity. Existing admissions are never evicted — the
    /// capacity invariant is enforced at admission time — so lowering the
    /// capacity below the current reservation only affects future admits.
    pub fn set_capacity(&mut self, capacity: ResourceVector) {
        self.capacity = capacity;
    }

    /// Whether `demand` could ever be reserved on this executor, i.e. fits
    /// an *empty* executor's capacity. Workloads failing this can never be
    /// placed and must be rejected rather than deferred.
    pub fn could_ever_fit(&self, demand: ResourceVector) -> bool {
        ResourceKind::ALL.into_iter().all(|kind| {
            !self.capacity.get(kind).is_finite() || demand.get(kind) <= self.capacity.get(kind)
        })
    }

    /// Admits a workload iff its reservation fits ([`Executor::fits`]);
    /// refusal names the first over-budget resource. The reserved view can
    /// therefore never exceed capacity; the *actual* view can — check
    /// [`Executor::actual_overruns`] after admission.
    ///
    /// # Errors
    /// [`CapacityExceeded`] with the first gated resource that would overrun.
    pub fn try_admit(
        &mut self,
        id: u64,
        reserved: ResourceVector,
        actual: ResourceVector,
    ) -> Result<(), CapacityExceeded> {
        if let Some(kind) = self.first_overrun(reserved) {
            return Err(CapacityExceeded(kind));
        }
        self.running.push(PlacedWorkload { id, reserved, actual });
        Ok(())
    }

    /// Releases workload `id`, returning it. Unknown ids return `None`
    /// (idempotent completion).
    pub fn release(&mut self, id: u64) -> Option<PlacedWorkload> {
        let at = self.running.iter().position(|w| w.id == id)?;
        Some(self.running.remove(at))
    }

    /// Releases the oldest running workload, if any.
    pub fn release_oldest(&mut self) -> Option<PlacedWorkload> {
        if self.running.is_empty() {
            return None;
        }
        Some(self.running.remove(0))
    }

    /// Every gated resource whose *actual* occupancy currently exceeds
    /// capacity — the overflow signal. Each over-budget resource is reported
    /// once per call (one overflow episode, possibly multiple resources),
    /// never once per workload.
    pub fn actual_overruns(&self) -> ActualOverruns {
        let occupancy = self.actual();
        let mut over = [false; N_RESOURCES];
        for kind in ResourceKind::ALL {
            over[kind.index()] = self.capacity.get(kind).is_finite()
                && occupancy.get(kind) > self.capacity.get(kind);
        }
        ActualOverruns { over }
    }
}

/// Which resources an executor's actual occupancy currently overruns (see
/// [`Executor::actual_overruns`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActualOverruns {
    over: [bool; N_RESOURCES],
}

impl ActualOverruns {
    /// True when at least one gated resource is over capacity.
    pub fn any(&self) -> bool {
        self.over.iter().any(|&b| b)
    }

    /// True when `kind`'s actual occupancy exceeds capacity.
    pub fn on(&self, kind: ResourceKind) -> bool {
        self.over[kind.index()]
    }

    /// The first overrun resource in [`ResourceKind::ALL`] order.
    pub fn first(&self) -> Option<ResourceKind> {
        ResourceKind::ALL.into_iter().find(|&k| self.on(k))
    }

    /// Iterates the overrun resources in [`ResourceKind::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = ResourceKind> + '_ {
        ResourceKind::ALL.into_iter().filter(|&k| self.on(k))
    }
}

/// N executors under one roof: the multi-tenant capacity model a placement
/// policy chooses from. Executors are addressed by index.
#[derive(Debug, Clone)]
pub struct Cluster {
    executors: Vec<Executor>,
}

impl Cluster {
    /// `n` executors, each with the same capacity.
    pub fn uniform(n: usize, capacity: ResourceVector) -> Self {
        Cluster { executors: (0..n).map(|_| Executor::new(capacity)).collect() }
    }

    /// Heterogeneous executors from explicit capacities.
    pub fn from_capacities(capacities: Vec<ResourceVector>) -> Self {
        Cluster { executors: capacities.into_iter().map(Executor::new).collect() }
    }

    /// Number of executors.
    pub fn len(&self) -> usize {
        self.executors.len()
    }

    /// True when the cluster has no executors.
    pub fn is_empty(&self) -> bool {
        self.executors.is_empty()
    }

    /// The executors, in index order.
    pub fn executors(&self) -> &[Executor] {
        &self.executors
    }

    /// One executor by index.
    pub fn executor(&self, index: usize) -> &Executor {
        &self.executors[index]
    }

    /// Mutable access to one executor by index.
    pub fn executor_mut(&mut self, index: usize) -> &mut Executor {
        &mut self.executors[index]
    }

    /// Whether `demand` could ever be reserved on at least one executor
    /// (the rejection test: a workload failing this can never be placed).
    pub fn could_ever_fit(&self, demand: ResourceVector) -> bool {
        self.executors.iter().any(|e| e.could_ever_fit(demand))
    }

    /// Sum of all executors' capacities.
    pub fn total_capacity(&self) -> ResourceVector {
        self.executors.iter().map(Executor::capacity).sum()
    }

    /// Sum of all executors' reserved occupancy.
    pub fn total_reserved(&self) -> ResourceVector {
        self.executors.iter().map(Executor::reserved).sum()
    }

    /// Sum of all executors' actual occupancy.
    pub fn total_actual(&self) -> ResourceVector {
        self.executors.iter().map(Executor::actual).sum()
    }

    /// Total workloads currently running across all executors.
    pub fn total_running(&self) -> usize {
        self.executors.iter().map(Executor::running).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(mem: f64, cpu: f64) -> ResourceVector {
        ResourceVector::new(mem, cpu, f64::INFINITY)
    }

    #[test]
    fn try_admit_gates_the_reserved_view() {
        let mut exec = Executor::new(cap(100.0, 1_000.0));
        assert!(exec
            .try_admit(0, ResourceVector::new(60.0, 400.0, 0.0), ResourceVector::ZERO)
            .is_ok());
        // Memory fits but CPU would overrun.
        assert_eq!(
            exec.try_admit(1, ResourceVector::new(10.0, 700.0, 0.0), ResourceVector::ZERO),
            Err(CapacityExceeded(ResourceKind::Cpu)),
        );
        // Both memory and CPU would overrun: one refusal, first axis named.
        assert_eq!(
            exec.try_admit(2, ResourceVector::new(70.0, 700.0, 0.0), ResourceVector::ZERO),
            Err(CapacityExceeded(ResourceKind::Memory)),
        );
        assert_eq!(exec.running(), 1);
        assert!(exec.reserved().memory_mb <= exec.capacity().memory_mb);
    }

    #[test]
    fn actual_view_is_not_gated_and_reports_every_overrun_once() {
        let mut exec = Executor::new(cap(100.0, 100.0));
        // Reservation fits; reality overruns memory AND cpu.
        exec.try_admit(
            0,
            ResourceVector::new(50.0, 50.0, 0.0),
            ResourceVector::new(90.0, 90.0, 0.0),
        )
        .unwrap();
        exec.try_admit(
            1,
            ResourceVector::new(40.0, 40.0, 0.0),
            ResourceVector::new(80.0, 70.0, 0.0),
        )
        .unwrap();
        let overruns = exec.actual_overruns();
        assert!(overruns.any());
        assert!(overruns.on(ResourceKind::Memory) && overruns.on(ResourceKind::Cpu));
        assert!(!overruns.on(ResourceKind::Io), "IO is not gated");
        assert_eq!(overruns.first(), Some(ResourceKind::Memory));
        assert_eq!(overruns.iter().count(), 2, "one episode, two resources — not four events");
    }

    #[test]
    fn release_is_idempotent_and_restores_headroom() {
        let mut exec = Executor::new(cap(100.0, f64::INFINITY));
        exec.try_admit(7, ResourceVector::memory_only(90.0), ResourceVector::memory_only(85.0))
            .unwrap();
        assert!(!exec.fits(ResourceVector::memory_only(20.0)));
        let released = exec.release(7).unwrap();
        assert_eq!(released.id, 7);
        assert!(exec.release(7).is_none(), "double completion is a no-op");
        assert!(exec.fits(ResourceVector::memory_only(20.0)));
        assert!(exec.release_oldest().is_none());
    }

    #[test]
    fn could_ever_fit_is_the_rejection_test() {
        let cluster = Cluster::from_capacities(vec![cap(50.0, 100.0), cap(100.0, 100.0)]);
        assert!(cluster.could_ever_fit(ResourceVector::new(80.0, 50.0, 1e12)));
        assert!(!cluster.could_ever_fit(ResourceVector::new(101.0, 0.0, 0.0)));
        assert!(!cluster.could_ever_fit(ResourceVector::new(10.0, 101.0, 0.0)));
    }

    #[test]
    fn cluster_totals_aggregate_executors() {
        let mut cluster = Cluster::uniform(2, cap(100.0, 100.0));
        assert_eq!(cluster.len(), 2);
        assert!(!cluster.is_empty());
        cluster
            .executor_mut(0)
            .try_admit(0, ResourceVector::memory_only(40.0), ResourceVector::memory_only(30.0))
            .unwrap();
        cluster
            .executor_mut(1)
            .try_admit(1, ResourceVector::memory_only(50.0), ResourceVector::memory_only(60.0))
            .unwrap();
        assert_eq!(cluster.total_running(), 2);
        assert!((cluster.total_capacity().memory_mb - 200.0).abs() < 1e-12);
        assert!((cluster.total_reserved().memory_mb - 90.0).abs() < 1e-12);
        assert!((cluster.total_actual().memory_mb - 90.0).abs() < 1e-12);
    }
}
