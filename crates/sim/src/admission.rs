//! Closed-loop admission control (the paper's §I motivation): a DBMS holds a
//! fixed working-memory budget and must decide, per arriving workload,
//! whether the batch's *predicted* collective memory still fits next to the
//! batches already executing. The loop is closed because every decision
//! feeds back into the next one: an admitted batch occupies its **actual**
//! memory until it completes, so optimistic predictions push the system into
//! overflow (spills, thrashing) while pessimistic ones strand headroom.
//!
//! With multi-resource predictions the gate generalizes to **joint
//! budgets**: [`AdmissionController::with_cpu_budget`] adds a concurrent
//! CPU-work ceiling, and [`AdmissionController::offer_resources`] admits
//! only when *every* gated resource fits — a workload that passes on memory
//! can still be deferred because the box is CPU-saturated (the WiSeDB-style
//! scheduling regime).
//!
//! The controller is a single-[`Executor`] front over the cluster capacity
//! model in [`crate::cluster`] — the same accounting `wmp_sched` scales to N
//! executors. Delegating to [`Executor::try_admit`] gives the gate **one**
//! headroom comparison shared by all gated resources: a workload over budget
//! on memory *and* CPU in the same window produces exactly one rejection
//! (attributed to the first overrun axis), and an overflow episode spanning
//! several resources counts one event with per-resource attribution —
//! the previous per-resource decision paths double-counted neither view but
//! could not express joint attribution at all.
//!
//! The controller is predictor-agnostic — it consumes plain
//! `(predicted, actual)` pairs — so the serving engine (`wmp_serve`), the
//! examples, and tests can drive the same scenario with LearnedWMP, the
//! DBMS heuristic, or an oracle, and compare [`AdmissionStats`].

use wmp_plan::{ResourceKind, ResourceVector, N_RESOURCES};

use crate::cluster::{CapacityExceeded, Executor};

/// The controller's verdict for one offered workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admitted: the batch now executes and occupies its resources until
    /// [`AdmissionController::complete`] is called with this id.
    Admitted(u64),
    /// Rejected: predicted demand exceeded the available headroom on at
    /// least one gated resource (see
    /// [`AdmissionController::last_rejected_on`]).
    Rejected,
}

impl Admission {
    /// True for [`Admission::Admitted`].
    pub fn admitted(&self) -> bool {
        matches!(self, Admission::Admitted(_))
    }
}

/// Outcome tallies of a finished (or running) admission scenario.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdmissionStats {
    /// Batches admitted.
    pub admitted: usize,
    /// Batches rejected.
    pub rejected: usize,
    /// Rejections per resource dimension (in [`ResourceKind::ALL`] order):
    /// how often each gated resource was the *first* to run out. A memory
    /// rejection and a CPU rejection call for different remedies (more RAM
    /// vs. more cores / deferral), so the split is tracked. Each rejection
    /// is attributed to exactly one axis, so these sum to `rejected`.
    pub rejected_on: [usize; N_RESOURCES],
    /// Rejections that were wasteful: the batch's *actual* demand would have
    /// fit in the actual headroom at decision time (stranded capacity).
    pub rejected_would_fit: usize,
    /// Decisions after which the actual in-flight demand exceeded the
    /// budget on some gated resource — the failure mode admission control
    /// exists to prevent. A decision that overruns several resources at
    /// once still counts **one** event here (see
    /// [`AdmissionStats::overflow_on`] for the per-resource split).
    pub overflow_events: usize,
    /// Per-resource overflow attribution (in [`ResourceKind::ALL`] order):
    /// how often each gated resource was over budget after a decision. A
    /// joint memory+CPU overflow increments both axes but only one
    /// [`AdmissionStats::overflow_events`].
    pub overflow_on: [usize; N_RESOURCES],
    /// Worst actual in-flight memory observed (MB).
    pub peak_actual_mb: f64,
    /// Worst actual in-flight demand observed, per resource.
    pub peak_actual: ResourceVector,
    /// Sum of admitted batches' actual memory (MB) — throughput proxy.
    pub admitted_actual_mb: f64,
}

impl AdmissionStats {
    /// Wrong decisions: admissions that overflowed plus wasteful rejections.
    pub fn wrong_decisions(&self) -> usize {
        self.overflow_events + self.rejected_would_fit
    }
}

/// A budgeted admission gate over a stream of predicted workloads.
///
/// Decisions are made against *predicted* occupancy (the controller only
/// ever sees predictions at decision time, like a real DBMS); overflow is
/// detected against *actual* occupancy (what the hardware experiences).
/// Budget components set to `f64::INFINITY` are not gated — the default
/// constructor gates memory only, preserving the paper's scenario.
///
/// Internally this is one [`Executor`] of the [`crate::cluster`] capacity
/// model; multi-executor placement with SLAs and deferral lives in
/// `wmp_sched`.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    executor: Executor,
    next_id: u64,
    stats: AdmissionStats,
    last_rejected_on: Option<ResourceKind>,
}

impl AdmissionController {
    /// Creates a memory-only gate with a working-memory budget in MB
    /// (CPU and I/O are not gated).
    pub fn new(budget_mb: f64) -> Self {
        Self::with_budget(ResourceVector::new(budget_mb, f64::INFINITY, f64::INFINITY))
    }

    /// Creates a gate over an arbitrary per-resource budget; components set
    /// to `f64::INFINITY` are not gated.
    pub fn with_budget(budget: ResourceVector) -> Self {
        AdmissionController {
            executor: Executor::new(budget),
            next_id: 0,
            stats: AdmissionStats::default(),
            last_rejected_on: None,
        }
    }

    /// Adds a concurrent-CPU-work ceiling (in milliseconds of in-flight CPU
    /// demand) next to the existing budget components.
    pub fn with_cpu_budget(mut self, cpu_ms: f64) -> Self {
        let mut budget = self.executor.capacity();
        budget.cpu_ms = cpu_ms;
        self.executor.set_capacity(budget);
        self
    }

    /// The configured memory budget (MB).
    pub fn budget_mb(&self) -> f64 {
        self.executor.capacity().memory_mb
    }

    /// The full per-resource budget (ungated components are infinite).
    pub fn budget(&self) -> ResourceVector {
        self.executor.capacity()
    }

    /// The underlying single-executor capacity model (running set,
    /// reserved/actual occupancy views).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Predicted memory currently admitted (MB) — the gate's world view.
    pub fn predicted_in_flight_mb(&self) -> f64 {
        self.predicted_in_flight().memory_mb
    }

    /// Actual memory currently admitted (MB) — the hardware's view.
    pub fn actual_in_flight_mb(&self) -> f64 {
        self.actual_in_flight().memory_mb
    }

    /// Predicted per-resource demand currently admitted.
    pub fn predicted_in_flight(&self) -> ResourceVector {
        self.executor.reserved()
    }

    /// Actual per-resource demand currently admitted.
    pub fn actual_in_flight(&self) -> ResourceVector {
        self.executor.actual()
    }

    /// The resource that caused the most recent rejection, if the last
    /// offer was rejected.
    pub fn last_rejected_on(&self) -> Option<ResourceKind> {
        self.last_rejected_on
    }

    /// Offers one memory-only workload (CPU/IO demand zero) — the paper's
    /// original scenario; see [`AdmissionController::offer_resources`].
    pub fn offer(&mut self, predicted_mb: f64, actual_mb: f64) -> Admission {
        self.offer_resources(
            ResourceVector::memory_only(predicted_mb),
            ResourceVector::memory_only(actual_mb),
        )
    }

    /// Offers one workload: admit iff its predicted demand fits the
    /// predicted headroom on **every** gated resource. `actual` is the
    /// ground truth used for overflow/waste accounting — a real gate never
    /// sees it at decision time, and neither does the admit/reject choice
    /// here. The admit/reject choice is one [`Executor::try_admit`] call,
    /// so joint budgets cannot diverge from the single-resource path.
    pub fn offer_resources(
        &mut self,
        predicted: ResourceVector,
        actual: ResourceVector,
    ) -> Admission {
        let predicted_occupancy = self.executor.reserved();
        let id = self.next_id;
        match self.executor.try_admit(id, predicted, actual) {
            Err(CapacityExceeded(kind)) => {
                self.stats.rejected += 1;
                self.stats.rejected_on[kind.index()] += 1;
                self.last_rejected_on = Some(kind);
                let would_fit = self.executor.actual_fits(actual);
                if would_fit {
                    self.stats.rejected_would_fit += 1;
                }
                wmp_obs::event!(
                    wmp_obs::Level::Debug,
                    target: "wmp_sim::admission",
                    "admission_decision",
                    admitted = false,
                    rejected_on = kind.label(),
                    predicted_mb = predicted.memory_mb,
                    predicted_cpu_ms = predicted.cpu_ms,
                    predicted_occupancy_mb = predicted_occupancy.memory_mb,
                    budget_mb = self.executor.capacity().memory_mb,
                    would_fit = would_fit,
                );
                Admission::Rejected
            }
            Ok(()) => {
                self.last_rejected_on = None;
                self.next_id += 1;
                self.stats.admitted += 1;
                self.stats.admitted_actual_mb += actual.memory_mb;
                let occupied = self.executor.actual();
                self.stats.peak_actual = self.stats.peak_actual.component_max(occupied);
                self.stats.peak_actual_mb = self.stats.peak_actual.memory_mb;
                wmp_obs::event!(
                    wmp_obs::Level::Debug,
                    target: "wmp_sim::admission",
                    "admission_decision",
                    admitted = true,
                    predicted_mb = predicted.memory_mb,
                    predicted_cpu_ms = predicted.cpu_ms,
                    predicted_occupancy_mb = predicted_occupancy.memory_mb,
                    budget_mb = self.executor.capacity().memory_mb,
                );
                let overruns = self.executor.actual_overruns();
                if let Some(first_overrun) = overruns.first() {
                    // One episode per decision, attributed to every
                    // over-budget axis — the deduplicated counting the old
                    // per-resource loop could not express.
                    self.stats.overflow_events += 1;
                    for kind in overruns.iter() {
                        self.stats.overflow_on[kind.index()] += 1;
                    }
                    wmp_obs::event!(
                        wmp_obs::Level::Warn,
                        target: "wmp_sim::admission",
                        "budget_overflow",
                        resource = first_overrun.label(),
                        actual_occupancy_mb = occupied.memory_mb,
                        budget_mb = self.executor.capacity().memory_mb,
                        in_flight = self.executor.running(),
                    );
                }
                Admission::Admitted(id)
            }
        }
    }

    /// Completes an admitted batch, releasing its resources. Unknown ids
    /// are ignored (idempotent completion).
    pub fn complete(&mut self, id: u64) {
        self.executor.release(id);
    }

    /// Completes the oldest admitted batch, if any, and returns its id —
    /// convenience for fixed-concurrency replay loops.
    pub fn complete_oldest(&mut self) -> Option<u64> {
        self.executor.release_oldest().map(|w| w.id)
    }

    /// Batches currently executing.
    pub fn in_flight(&self) -> usize {
        self.executor.running()
    }

    /// Tallies so far.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_until_predicted_budget_is_full() {
        let mut gate = AdmissionController::new(100.0);
        assert!(gate.offer(40.0, 40.0).admitted());
        assert!(gate.offer(40.0, 40.0).admitted());
        assert_eq!(gate.offer(40.0, 10.0), Admission::Rejected);
        assert_eq!(gate.in_flight(), 2);
        let stats = gate.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.rejected_on[ResourceKind::Memory.index()], 1);
        assert_eq!(gate.last_rejected_on(), Some(ResourceKind::Memory));
        // The rejected batch actually needed only 10 MB next to 80 MB real
        // occupancy — a wasteful rejection caused by over-prediction.
        assert_eq!(stats.rejected_would_fit, 1);
        assert_eq!(stats.overflow_events, 0);
    }

    #[test]
    fn under_prediction_overflows_the_budget() {
        let mut gate = AdmissionController::new(100.0);
        // The gate believes 30 MB each; reality is 70 MB each.
        assert!(gate.offer(30.0, 70.0).admitted());
        assert!(gate.offer(30.0, 70.0).admitted());
        let stats = gate.stats();
        assert_eq!(stats.overflow_events, 1, "140 MB actual > 100 MB budget");
        assert_eq!(stats.overflow_on[ResourceKind::Memory.index()], 1);
        assert!((stats.peak_actual_mb - 140.0).abs() < 1e-9);
        assert_eq!(stats.wrong_decisions(), 1);
    }

    #[test]
    fn completion_closes_the_loop() {
        let mut gate = AdmissionController::new(100.0);
        let Admission::Admitted(id) = gate.offer(90.0, 85.0) else { panic!("admit") };
        assert_eq!(gate.offer(20.0, 5.0), Admission::Rejected);
        gate.complete(id);
        assert_eq!(gate.in_flight(), 0);
        assert!(gate.offer(20.0, 5.0).admitted(), "headroom returns after completion");
        // Unknown/duplicate completion is a no-op.
        gate.complete(id);
        gate.complete(999);
        assert_eq!(gate.in_flight(), 1);
    }

    #[test]
    fn fixed_concurrency_replay_with_complete_oldest() {
        let mut gate = AdmissionController::new(50.0);
        for _ in 0..10 {
            if gate.in_flight() >= 2 {
                gate.complete_oldest();
            }
            gate.offer(20.0, 18.0);
        }
        assert!(gate.stats().admitted >= 8);
        assert_eq!(gate.stats().overflow_events, 0);
        assert!(gate.stats().peak_actual_mb <= 50.0);
        assert!(gate.complete_oldest().is_some());
    }

    #[test]
    fn cpu_budget_defers_what_memory_alone_would_admit() {
        // 1000 MB of memory headroom but only 200 ms of concurrent CPU.
        let mut gate = AdmissionController::new(1000.0).with_cpu_budget(200.0);
        let hog = ResourceVector::new(50.0, 150.0, 0.0);
        assert!(gate.offer_resources(hog, hog).admitted());
        // Memory view: 100 of 1000 MB — plenty. CPU view: 300 of 200 ms.
        assert_eq!(gate.offer_resources(hog, hog), Admission::Rejected);
        assert_eq!(gate.last_rejected_on(), Some(ResourceKind::Cpu));
        assert_eq!(gate.stats().rejected_on[ResourceKind::Cpu.index()], 1);
        assert_eq!(gate.stats().rejected_on[ResourceKind::Memory.index()], 0);
        // A memory-only gate with the same memory budget admits it.
        let mut memory_gate = AdmissionController::new(1000.0);
        assert!(memory_gate.offer_resources(hog, hog).admitted());
        assert!(memory_gate.offer_resources(hog, hog).admitted());
    }

    #[test]
    fn joint_overflow_is_detected_per_resource() {
        let mut gate = AdmissionController::new(1000.0).with_cpu_budget(100.0);
        // Predicted CPU fits; actual CPU blows the ceiling.
        let predicted = ResourceVector::new(10.0, 40.0, 0.0);
        let actual = ResourceVector::new(10.0, 90.0, 0.0);
        assert!(gate.offer_resources(predicted, actual).admitted());
        assert!(gate.offer_resources(predicted, actual).admitted());
        let stats = gate.stats();
        assert_eq!(stats.overflow_events, 1, "180 ms actual CPU > 100 ms budget");
        assert_eq!(stats.overflow_on[ResourceKind::Cpu.index()], 1);
        assert_eq!(stats.overflow_on[ResourceKind::Memory.index()], 0);
        assert!((stats.peak_actual.cpu_ms - 180.0).abs() < 1e-9);
        assert!(stats.peak_actual_mb <= 1000.0);
    }

    #[test]
    fn joint_over_budget_rejection_is_counted_exactly_once() {
        // Regression: a workload over budget on memory AND CPU in the same
        // window must produce one rejection attributed to one axis — the
        // decision path is a single Executor::try_admit, not one check per
        // resource.
        let mut gate = AdmissionController::new(100.0).with_cpu_budget(100.0);
        let both_over = ResourceVector::new(150.0, 150.0, 0.0);
        assert_eq!(gate.offer_resources(both_over, both_over), Admission::Rejected);
        let stats = gate.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(
            stats.rejected_on.iter().sum::<usize>(),
            1,
            "one rejection, one attributed axis: {:?}",
            stats.rejected_on
        );
        assert_eq!(gate.last_rejected_on(), Some(ResourceKind::Memory));
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn joint_overflow_episode_counts_one_event_with_both_axes_attributed() {
        // Regression companion: an admission whose reality overruns memory
        // AND CPU at once is one overflow episode (one event) attributed to
        // both axes — not two events.
        let mut gate = AdmissionController::new(100.0).with_cpu_budget(100.0);
        let predicted = ResourceVector::new(40.0, 40.0, 0.0);
        let actual = ResourceVector::new(120.0, 130.0, 0.0);
        assert!(gate.offer_resources(predicted, actual).admitted());
        let stats = gate.stats();
        assert_eq!(stats.overflow_events, 1, "one episode");
        assert_eq!(stats.overflow_on[ResourceKind::Memory.index()], 1);
        assert_eq!(stats.overflow_on[ResourceKind::Cpu.index()], 1);
        assert_eq!(stats.overflow_on[ResourceKind::Io.index()], 0);
    }

    #[test]
    fn decisions_emit_structured_events() {
        let recorder = std::sync::Arc::new(wmp_obs::RingBufferRecorder::with_capacity(64));
        wmp_obs::set_subscriber(recorder.clone());
        let mut gate = AdmissionController::new(100.0);
        let Admission::Admitted(first) = gate.offer(60.0, 90.0) else { panic!("admit") };
        assert!(gate.offer(30.0, 40.0).admitted()); // actual 130 > 100: overflow
        gate.complete(first); // actual occupancy back to 40
                              // Over-prediction: 30 + 80 predicted > 100 rejects, but 40 + 10
                              // actual would have fit — a wasteful rejection.
        assert_eq!(gate.offer(80.0, 10.0), Admission::Rejected);
        wmp_obs::clear_subscriber();

        let events = recorder.take();
        let decisions: Vec<_> = events.iter().filter(|e| e.name == "admission_decision").collect();
        assert_eq!(decisions.len(), 3);
        assert_eq!(decisions[0].field("admitted").and_then(|f| f.as_bool()), Some(true));
        assert_eq!(decisions[2].field("admitted").and_then(|f| f.as_bool()), Some(false));
        assert_eq!(
            decisions[2].field("would_fit").and_then(|f| f.as_bool()),
            Some(true),
            "a wasteful rejection is visible in the event"
        );
        let overflow: Vec<_> = events.iter().filter(|e| e.name == "budget_overflow").collect();
        assert_eq!(overflow.len(), 1);
        assert_eq!(overflow[0].level, wmp_obs::Level::Warn);
        assert_eq!(overflow[0].field("actual_occupancy_mb").and_then(|f| f.as_f64()), Some(130.0));
    }

    #[test]
    fn perfect_predictions_make_no_wrong_decisions() {
        let mut gate = AdmissionController::new(64.0);
        for i in 0..20 {
            let mb = 10.0 + (i % 5) as f64 * 8.0;
            if gate.in_flight() >= 3 {
                gate.complete_oldest();
            }
            gate.offer(mb, mb);
        }
        assert_eq!(gate.stats().wrong_decisions(), 0, "oracle gate is never wrong");
    }
}
