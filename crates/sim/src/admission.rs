//! Closed-loop admission control (the paper's §I motivation): a DBMS holds a
//! fixed working-memory budget and must decide, per arriving workload,
//! whether the batch's *predicted* collective memory still fits next to the
//! batches already executing. The loop is closed because every decision
//! feeds back into the next one: an admitted batch occupies its **actual**
//! memory until it completes, so optimistic predictions push the system into
//! overflow (spills, thrashing) while pessimistic ones strand headroom.
//!
//! The controller is predictor-agnostic — it consumes plain
//! `(predicted_mb, actual_mb)` pairs — so the serving engine (`wmp_serve`),
//! the examples, and tests can drive the same scenario with LearnedWMP, the
//! DBMS heuristic, or an oracle, and compare [`AdmissionStats`].

/// The controller's verdict for one offered workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admitted: the batch now executes and occupies memory until
    /// [`AdmissionController::complete`] is called with this id.
    Admitted(u64),
    /// Rejected: predicted demand exceeded the available headroom.
    Rejected,
}

impl Admission {
    /// True for [`Admission::Admitted`].
    pub fn admitted(&self) -> bool {
        matches!(self, Admission::Admitted(_))
    }
}

/// Outcome tallies of a finished (or running) admission scenario.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdmissionStats {
    /// Batches admitted.
    pub admitted: usize,
    /// Batches rejected.
    pub rejected: usize,
    /// Rejections that were wasteful: the batch's *actual* demand would have
    /// fit in the actual headroom at decision time (stranded capacity).
    pub rejected_would_fit: usize,
    /// Decisions after which the actual in-flight memory exceeded the
    /// budget — the failure mode admission control exists to prevent.
    pub overflow_events: usize,
    /// Worst actual in-flight memory observed (MB).
    pub peak_actual_mb: f64,
    /// Sum of admitted batches' actual memory (MB) — throughput proxy.
    pub admitted_actual_mb: f64,
}

impl AdmissionStats {
    /// Wrong decisions: admissions that overflowed plus wasteful rejections.
    pub fn wrong_decisions(&self) -> usize {
        self.overflow_events + self.rejected_would_fit
    }
}

/// One executing batch.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    id: u64,
    predicted_mb: f64,
    actual_mb: f64,
}

/// A budgeted admission gate over a stream of predicted workloads.
///
/// Decisions are made against *predicted* occupancy (the controller only
/// ever sees predictions at decision time, like a real DBMS); overflow is
/// detected against *actual* occupancy (what the hardware experiences).
#[derive(Debug, Clone)]
pub struct AdmissionController {
    budget_mb: f64,
    in_flight: Vec<InFlight>,
    next_id: u64,
    stats: AdmissionStats,
}

impl AdmissionController {
    /// Creates a controller with a working-memory budget in MB.
    pub fn new(budget_mb: f64) -> Self {
        AdmissionController {
            budget_mb,
            in_flight: Vec::new(),
            next_id: 0,
            stats: AdmissionStats::default(),
        }
    }

    /// The configured budget (MB).
    pub fn budget_mb(&self) -> f64 {
        self.budget_mb
    }

    /// Predicted memory currently admitted (MB) — the gate's world view.
    pub fn predicted_in_flight_mb(&self) -> f64 {
        self.in_flight.iter().map(|b| b.predicted_mb).sum()
    }

    /// Actual memory currently admitted (MB) — the hardware's view.
    pub fn actual_in_flight_mb(&self) -> f64 {
        self.in_flight.iter().map(|b| b.actual_mb).sum()
    }

    /// Offers one workload: admit iff its predicted demand fits the
    /// predicted headroom. `actual_mb` is the ground truth used for
    /// overflow/waste accounting — a real gate never sees it at decision
    /// time, and neither does the admit/reject choice here.
    pub fn offer(&mut self, predicted_mb: f64, actual_mb: f64) -> Admission {
        let predicted_occupancy = self.predicted_in_flight_mb();
        let fits = predicted_occupancy + predicted_mb <= self.budget_mb;
        if !fits {
            self.stats.rejected += 1;
            let would_fit = self.actual_in_flight_mb() + actual_mb <= self.budget_mb;
            if would_fit {
                self.stats.rejected_would_fit += 1;
            }
            wmp_obs::event!(
                wmp_obs::Level::Debug,
                target: "wmp_sim::admission",
                "admission_decision",
                admitted = false,
                predicted_mb = predicted_mb,
                predicted_occupancy_mb = predicted_occupancy,
                budget_mb = self.budget_mb,
                would_fit = would_fit,
            );
            return Admission::Rejected;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.in_flight.push(InFlight { id, predicted_mb, actual_mb });
        self.stats.admitted += 1;
        self.stats.admitted_actual_mb += actual_mb;
        let occupied = self.actual_in_flight_mb();
        if occupied > self.stats.peak_actual_mb {
            self.stats.peak_actual_mb = occupied;
        }
        wmp_obs::event!(
            wmp_obs::Level::Debug,
            target: "wmp_sim::admission",
            "admission_decision",
            admitted = true,
            predicted_mb = predicted_mb,
            predicted_occupancy_mb = predicted_occupancy,
            budget_mb = self.budget_mb,
        );
        if occupied > self.budget_mb {
            self.stats.overflow_events += 1;
            wmp_obs::event!(
                wmp_obs::Level::Warn,
                target: "wmp_sim::admission",
                "budget_overflow",
                actual_occupancy_mb = occupied,
                budget_mb = self.budget_mb,
                in_flight = self.in_flight.len(),
            );
        }
        Admission::Admitted(id)
    }

    /// Completes an admitted batch, releasing its memory. Unknown ids are
    /// ignored (idempotent completion).
    pub fn complete(&mut self, id: u64) {
        self.in_flight.retain(|b| b.id != id);
    }

    /// Completes the oldest admitted batch, if any, and returns its id —
    /// convenience for fixed-concurrency replay loops.
    pub fn complete_oldest(&mut self) -> Option<u64> {
        if self.in_flight.is_empty() {
            return None;
        }
        let id = self.in_flight.remove(0).id;
        Some(id)
    }

    /// Batches currently executing.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Tallies so far.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_until_predicted_budget_is_full() {
        let mut gate = AdmissionController::new(100.0);
        assert!(gate.offer(40.0, 40.0).admitted());
        assert!(gate.offer(40.0, 40.0).admitted());
        assert_eq!(gate.offer(40.0, 10.0), Admission::Rejected);
        assert_eq!(gate.in_flight(), 2);
        let stats = gate.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.rejected, 1);
        // The rejected batch actually needed only 10 MB next to 80 MB real
        // occupancy — a wasteful rejection caused by over-prediction.
        assert_eq!(stats.rejected_would_fit, 1);
        assert_eq!(stats.overflow_events, 0);
    }

    #[test]
    fn under_prediction_overflows_the_budget() {
        let mut gate = AdmissionController::new(100.0);
        // The gate believes 30 MB each; reality is 70 MB each.
        assert!(gate.offer(30.0, 70.0).admitted());
        assert!(gate.offer(30.0, 70.0).admitted());
        let stats = gate.stats();
        assert_eq!(stats.overflow_events, 1, "140 MB actual > 100 MB budget");
        assert!((stats.peak_actual_mb - 140.0).abs() < 1e-9);
        assert_eq!(stats.wrong_decisions(), 1);
    }

    #[test]
    fn completion_closes_the_loop() {
        let mut gate = AdmissionController::new(100.0);
        let Admission::Admitted(id) = gate.offer(90.0, 85.0) else { panic!("admit") };
        assert_eq!(gate.offer(20.0, 5.0), Admission::Rejected);
        gate.complete(id);
        assert_eq!(gate.in_flight(), 0);
        assert!(gate.offer(20.0, 5.0).admitted(), "headroom returns after completion");
        // Unknown/duplicate completion is a no-op.
        gate.complete(id);
        gate.complete(999);
        assert_eq!(gate.in_flight(), 1);
    }

    #[test]
    fn fixed_concurrency_replay_with_complete_oldest() {
        let mut gate = AdmissionController::new(50.0);
        for _ in 0..10 {
            if gate.in_flight() >= 2 {
                gate.complete_oldest();
            }
            gate.offer(20.0, 18.0);
        }
        assert!(gate.stats().admitted >= 8);
        assert_eq!(gate.stats().overflow_events, 0);
        assert!(gate.stats().peak_actual_mb <= 50.0);
        assert!(gate.complete_oldest().is_some());
    }

    #[test]
    fn decisions_emit_structured_events() {
        let recorder = std::sync::Arc::new(wmp_obs::RingBufferRecorder::with_capacity(64));
        wmp_obs::set_subscriber(recorder.clone());
        let mut gate = AdmissionController::new(100.0);
        let Admission::Admitted(first) = gate.offer(60.0, 90.0) else { panic!("admit") };
        assert!(gate.offer(30.0, 40.0).admitted()); // actual 130 > 100: overflow
        gate.complete(first); // actual occupancy back to 40
                              // Over-prediction: 30 + 80 predicted > 100 rejects, but 40 + 10
                              // actual would have fit — a wasteful rejection.
        assert_eq!(gate.offer(80.0, 10.0), Admission::Rejected);
        wmp_obs::clear_subscriber();

        let events = recorder.take();
        let decisions: Vec<_> = events.iter().filter(|e| e.name == "admission_decision").collect();
        assert_eq!(decisions.len(), 3);
        assert_eq!(decisions[0].field("admitted").and_then(|f| f.as_bool()), Some(true));
        assert_eq!(decisions[2].field("admitted").and_then(|f| f.as_bool()), Some(false));
        assert_eq!(
            decisions[2].field("would_fit").and_then(|f| f.as_bool()),
            Some(true),
            "a wasteful rejection is visible in the event"
        );
        let overflow: Vec<_> = events.iter().filter(|e| e.name == "budget_overflow").collect();
        assert_eq!(overflow.len(), 1);
        assert_eq!(overflow[0].level, wmp_obs::Level::Warn);
        assert_eq!(overflow[0].field("actual_occupancy_mb").and_then(|f| f.as_f64()), Some(130.0));
    }

    #[test]
    fn perfect_predictions_make_no_wrong_decisions() {
        let mut gate = AdmissionController::new(64.0);
        for i in 0..20 {
            let mb = 10.0 + (i % 5) as f64 * 8.0;
            if gate.in_flight() >= 3 {
                gate.complete_oldest();
            }
            gate.offer(mb, mb);
        }
        assert_eq!(gate.stats().wrong_decisions(), 0, "oracle gate is never wrong");
    }
}
