//! Closed-loop admission control (the paper's §I motivation): a DBMS holds a
//! fixed working-memory budget and must decide, per arriving workload,
//! whether the batch's *predicted* collective memory still fits next to the
//! batches already executing. The loop is closed because every decision
//! feeds back into the next one: an admitted batch occupies its **actual**
//! memory until it completes, so optimistic predictions push the system into
//! overflow (spills, thrashing) while pessimistic ones strand headroom.
//!
//! With multi-resource predictions the gate generalizes to **joint
//! budgets**: [`AdmissionController::with_cpu_budget`] adds a concurrent
//! CPU-work ceiling, and [`AdmissionController::offer_resources`] admits
//! only when *every* gated resource fits — a workload that passes on memory
//! can still be deferred because the box is CPU-saturated (the WiSeDB-style
//! scheduling regime).
//!
//! The controller is predictor-agnostic — it consumes plain
//! `(predicted, actual)` pairs — so the serving engine (`wmp_serve`), the
//! examples, and tests can drive the same scenario with LearnedWMP, the
//! DBMS heuristic, or an oracle, and compare [`AdmissionStats`].

use wmp_plan::{ResourceKind, ResourceVector, N_RESOURCES};

/// The controller's verdict for one offered workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admitted: the batch now executes and occupies its resources until
    /// [`AdmissionController::complete`] is called with this id.
    Admitted(u64),
    /// Rejected: predicted demand exceeded the available headroom on at
    /// least one gated resource (see
    /// [`AdmissionController::last_rejected_on`]).
    Rejected,
}

impl Admission {
    /// True for [`Admission::Admitted`].
    pub fn admitted(&self) -> bool {
        matches!(self, Admission::Admitted(_))
    }
}

/// Outcome tallies of a finished (or running) admission scenario.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdmissionStats {
    /// Batches admitted.
    pub admitted: usize,
    /// Batches rejected.
    pub rejected: usize,
    /// Rejections per resource dimension (in [`ResourceKind::ALL`] order):
    /// how often each gated resource was the *first* to run out. A memory
    /// rejection and a CPU rejection call for different remedies (more RAM
    /// vs. more cores / deferral), so the split is tracked.
    pub rejected_on: [usize; N_RESOURCES],
    /// Rejections that were wasteful: the batch's *actual* demand would have
    /// fit in the actual headroom at decision time (stranded capacity).
    pub rejected_would_fit: usize,
    /// Decisions after which the actual in-flight demand exceeded the
    /// budget on some gated resource — the failure mode admission control
    /// exists to prevent.
    pub overflow_events: usize,
    /// Worst actual in-flight memory observed (MB).
    pub peak_actual_mb: f64,
    /// Worst actual in-flight demand observed, per resource.
    pub peak_actual: ResourceVector,
    /// Sum of admitted batches' actual memory (MB) — throughput proxy.
    pub admitted_actual_mb: f64,
}

impl AdmissionStats {
    /// Wrong decisions: admissions that overflowed plus wasteful rejections.
    pub fn wrong_decisions(&self) -> usize {
        self.overflow_events + self.rejected_would_fit
    }
}

/// One executing batch.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    id: u64,
    predicted: ResourceVector,
    actual: ResourceVector,
}

/// A budgeted admission gate over a stream of predicted workloads.
///
/// Decisions are made against *predicted* occupancy (the controller only
/// ever sees predictions at decision time, like a real DBMS); overflow is
/// detected against *actual* occupancy (what the hardware experiences).
/// Budget components set to `f64::INFINITY` are not gated — the default
/// constructor gates memory only, preserving the paper's scenario.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    budget: ResourceVector,
    in_flight: Vec<InFlight>,
    next_id: u64,
    stats: AdmissionStats,
    last_rejected_on: Option<ResourceKind>,
}

impl AdmissionController {
    /// Creates a memory-only gate with a working-memory budget in MB
    /// (CPU and I/O are not gated).
    pub fn new(budget_mb: f64) -> Self {
        Self::with_budget(ResourceVector::new(budget_mb, f64::INFINITY, f64::INFINITY))
    }

    /// Creates a gate over an arbitrary per-resource budget; components set
    /// to `f64::INFINITY` are not gated.
    pub fn with_budget(budget: ResourceVector) -> Self {
        AdmissionController {
            budget,
            in_flight: Vec::new(),
            next_id: 0,
            stats: AdmissionStats::default(),
            last_rejected_on: None,
        }
    }

    /// Adds a concurrent-CPU-work ceiling (in milliseconds of in-flight CPU
    /// demand) next to the existing budget components.
    pub fn with_cpu_budget(mut self, cpu_ms: f64) -> Self {
        self.budget.cpu_ms = cpu_ms;
        self
    }

    /// The configured memory budget (MB).
    pub fn budget_mb(&self) -> f64 {
        self.budget.memory_mb
    }

    /// The full per-resource budget (ungated components are infinite).
    pub fn budget(&self) -> ResourceVector {
        self.budget
    }

    /// Predicted memory currently admitted (MB) — the gate's world view.
    pub fn predicted_in_flight_mb(&self) -> f64 {
        self.predicted_in_flight().memory_mb
    }

    /// Actual memory currently admitted (MB) — the hardware's view.
    pub fn actual_in_flight_mb(&self) -> f64 {
        self.actual_in_flight().memory_mb
    }

    /// Predicted per-resource demand currently admitted.
    pub fn predicted_in_flight(&self) -> ResourceVector {
        self.in_flight.iter().map(|b| b.predicted).sum()
    }

    /// Actual per-resource demand currently admitted.
    pub fn actual_in_flight(&self) -> ResourceVector {
        self.in_flight.iter().map(|b| b.actual).sum()
    }

    /// The resource that caused the most recent rejection, if the last
    /// offer was rejected.
    pub fn last_rejected_on(&self) -> Option<ResourceKind> {
        self.last_rejected_on
    }

    /// First gated resource on which `occupancy + demand` exceeds the
    /// budget, in [`ResourceKind::ALL`] order.
    fn first_overrun(
        &self,
        occupancy: ResourceVector,
        demand: ResourceVector,
    ) -> Option<ResourceKind> {
        ResourceKind::ALL.into_iter().find(|&kind| {
            self.budget.get(kind).is_finite()
                && occupancy.get(kind) + demand.get(kind) > self.budget.get(kind)
        })
    }

    /// Offers one memory-only workload (CPU/IO demand zero) — the paper's
    /// original scenario; see [`AdmissionController::offer_resources`].
    pub fn offer(&mut self, predicted_mb: f64, actual_mb: f64) -> Admission {
        self.offer_resources(
            ResourceVector::memory_only(predicted_mb),
            ResourceVector::memory_only(actual_mb),
        )
    }

    /// Offers one workload: admit iff its predicted demand fits the
    /// predicted headroom on **every** gated resource. `actual` is the
    /// ground truth used for overflow/waste accounting — a real gate never
    /// sees it at decision time, and neither does the admit/reject choice
    /// here.
    pub fn offer_resources(
        &mut self,
        predicted: ResourceVector,
        actual: ResourceVector,
    ) -> Admission {
        let predicted_occupancy = self.predicted_in_flight();
        if let Some(kind) = self.first_overrun(predicted_occupancy, predicted) {
            self.stats.rejected += 1;
            self.stats.rejected_on[kind.index()] += 1;
            self.last_rejected_on = Some(kind);
            let would_fit = self.first_overrun(self.actual_in_flight(), actual).is_none();
            if would_fit {
                self.stats.rejected_would_fit += 1;
            }
            wmp_obs::event!(
                wmp_obs::Level::Debug,
                target: "wmp_sim::admission",
                "admission_decision",
                admitted = false,
                rejected_on = kind.label(),
                predicted_mb = predicted.memory_mb,
                predicted_cpu_ms = predicted.cpu_ms,
                predicted_occupancy_mb = predicted_occupancy.memory_mb,
                budget_mb = self.budget.memory_mb,
                would_fit = would_fit,
            );
            return Admission::Rejected;
        }
        self.last_rejected_on = None;
        let id = self.next_id;
        self.next_id += 1;
        self.in_flight.push(InFlight { id, predicted, actual });
        self.stats.admitted += 1;
        self.stats.admitted_actual_mb += actual.memory_mb;
        let occupied = self.actual_in_flight();
        self.stats.peak_actual = self.stats.peak_actual.component_max(occupied);
        self.stats.peak_actual_mb = self.stats.peak_actual.memory_mb;
        wmp_obs::event!(
            wmp_obs::Level::Debug,
            target: "wmp_sim::admission",
            "admission_decision",
            admitted = true,
            predicted_mb = predicted.memory_mb,
            predicted_cpu_ms = predicted.cpu_ms,
            predicted_occupancy_mb = predicted_occupancy.memory_mb,
            budget_mb = self.budget.memory_mb,
        );
        if let Some(kind) = self.first_overrun(occupied, ResourceVector::ZERO) {
            self.stats.overflow_events += 1;
            wmp_obs::event!(
                wmp_obs::Level::Warn,
                target: "wmp_sim::admission",
                "budget_overflow",
                resource = kind.label(),
                actual_occupancy_mb = occupied.memory_mb,
                budget_mb = self.budget.memory_mb,
                in_flight = self.in_flight.len(),
            );
        }
        Admission::Admitted(id)
    }

    /// Completes an admitted batch, releasing its resources. Unknown ids
    /// are ignored (idempotent completion).
    pub fn complete(&mut self, id: u64) {
        self.in_flight.retain(|b| b.id != id);
    }

    /// Completes the oldest admitted batch, if any, and returns its id —
    /// convenience for fixed-concurrency replay loops.
    pub fn complete_oldest(&mut self) -> Option<u64> {
        if self.in_flight.is_empty() {
            return None;
        }
        let id = self.in_flight.remove(0).id;
        Some(id)
    }

    /// Batches currently executing.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Tallies so far.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_until_predicted_budget_is_full() {
        let mut gate = AdmissionController::new(100.0);
        assert!(gate.offer(40.0, 40.0).admitted());
        assert!(gate.offer(40.0, 40.0).admitted());
        assert_eq!(gate.offer(40.0, 10.0), Admission::Rejected);
        assert_eq!(gate.in_flight(), 2);
        let stats = gate.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.rejected_on[ResourceKind::Memory.index()], 1);
        assert_eq!(gate.last_rejected_on(), Some(ResourceKind::Memory));
        // The rejected batch actually needed only 10 MB next to 80 MB real
        // occupancy — a wasteful rejection caused by over-prediction.
        assert_eq!(stats.rejected_would_fit, 1);
        assert_eq!(stats.overflow_events, 0);
    }

    #[test]
    fn under_prediction_overflows_the_budget() {
        let mut gate = AdmissionController::new(100.0);
        // The gate believes 30 MB each; reality is 70 MB each.
        assert!(gate.offer(30.0, 70.0).admitted());
        assert!(gate.offer(30.0, 70.0).admitted());
        let stats = gate.stats();
        assert_eq!(stats.overflow_events, 1, "140 MB actual > 100 MB budget");
        assert!((stats.peak_actual_mb - 140.0).abs() < 1e-9);
        assert_eq!(stats.wrong_decisions(), 1);
    }

    #[test]
    fn completion_closes_the_loop() {
        let mut gate = AdmissionController::new(100.0);
        let Admission::Admitted(id) = gate.offer(90.0, 85.0) else { panic!("admit") };
        assert_eq!(gate.offer(20.0, 5.0), Admission::Rejected);
        gate.complete(id);
        assert_eq!(gate.in_flight(), 0);
        assert!(gate.offer(20.0, 5.0).admitted(), "headroom returns after completion");
        // Unknown/duplicate completion is a no-op.
        gate.complete(id);
        gate.complete(999);
        assert_eq!(gate.in_flight(), 1);
    }

    #[test]
    fn fixed_concurrency_replay_with_complete_oldest() {
        let mut gate = AdmissionController::new(50.0);
        for _ in 0..10 {
            if gate.in_flight() >= 2 {
                gate.complete_oldest();
            }
            gate.offer(20.0, 18.0);
        }
        assert!(gate.stats().admitted >= 8);
        assert_eq!(gate.stats().overflow_events, 0);
        assert!(gate.stats().peak_actual_mb <= 50.0);
        assert!(gate.complete_oldest().is_some());
    }

    #[test]
    fn cpu_budget_defers_what_memory_alone_would_admit() {
        // 1000 MB of memory headroom but only 200 ms of concurrent CPU.
        let mut gate = AdmissionController::new(1000.0).with_cpu_budget(200.0);
        let hog = ResourceVector::new(50.0, 150.0, 0.0);
        assert!(gate.offer_resources(hog, hog).admitted());
        // Memory view: 100 of 1000 MB — plenty. CPU view: 300 of 200 ms.
        assert_eq!(gate.offer_resources(hog, hog), Admission::Rejected);
        assert_eq!(gate.last_rejected_on(), Some(ResourceKind::Cpu));
        assert_eq!(gate.stats().rejected_on[ResourceKind::Cpu.index()], 1);
        assert_eq!(gate.stats().rejected_on[ResourceKind::Memory.index()], 0);
        // A memory-only gate with the same memory budget admits it.
        let mut memory_gate = AdmissionController::new(1000.0);
        assert!(memory_gate.offer_resources(hog, hog).admitted());
        assert!(memory_gate.offer_resources(hog, hog).admitted());
    }

    #[test]
    fn joint_overflow_is_detected_per_resource() {
        let mut gate = AdmissionController::new(1000.0).with_cpu_budget(100.0);
        // Predicted CPU fits; actual CPU blows the ceiling.
        let predicted = ResourceVector::new(10.0, 40.0, 0.0);
        let actual = ResourceVector::new(10.0, 90.0, 0.0);
        assert!(gate.offer_resources(predicted, actual).admitted());
        assert!(gate.offer_resources(predicted, actual).admitted());
        let stats = gate.stats();
        assert_eq!(stats.overflow_events, 1, "180 ms actual CPU > 100 ms budget");
        assert!((stats.peak_actual.cpu_ms - 180.0).abs() < 1e-9);
        assert!(stats.peak_actual_mb <= 1000.0);
    }

    #[test]
    fn decisions_emit_structured_events() {
        let recorder = std::sync::Arc::new(wmp_obs::RingBufferRecorder::with_capacity(64));
        wmp_obs::set_subscriber(recorder.clone());
        let mut gate = AdmissionController::new(100.0);
        let Admission::Admitted(first) = gate.offer(60.0, 90.0) else { panic!("admit") };
        assert!(gate.offer(30.0, 40.0).admitted()); // actual 130 > 100: overflow
        gate.complete(first); // actual occupancy back to 40
                              // Over-prediction: 30 + 80 predicted > 100 rejects, but 40 + 10
                              // actual would have fit — a wasteful rejection.
        assert_eq!(gate.offer(80.0, 10.0), Admission::Rejected);
        wmp_obs::clear_subscriber();

        let events = recorder.take();
        let decisions: Vec<_> = events.iter().filter(|e| e.name == "admission_decision").collect();
        assert_eq!(decisions.len(), 3);
        assert_eq!(decisions[0].field("admitted").and_then(|f| f.as_bool()), Some(true));
        assert_eq!(decisions[2].field("admitted").and_then(|f| f.as_bool()), Some(false));
        assert_eq!(
            decisions[2].field("would_fit").and_then(|f| f.as_bool()),
            Some(true),
            "a wasteful rejection is visible in the event"
        );
        let overflow: Vec<_> = events.iter().filter(|e| e.name == "budget_overflow").collect();
        assert_eq!(overflow.len(), 1);
        assert_eq!(overflow[0].level, wmp_obs::Level::Warn);
        assert_eq!(overflow[0].field("actual_occupancy_mb").and_then(|f| f.as_f64()), Some(130.0));
    }

    #[test]
    fn perfect_predictions_make_no_wrong_decisions() {
        let mut gate = AdmissionController::new(64.0);
        for i in 0..20 {
            let mb = 10.0 + (i % 5) as f64 * 8.0;
            if gate.in_flight() >= 3 {
                gate.complete_oldest();
            }
            gate.offer(mb, mb);
        }
        assert_eq!(gate.stats().wrong_decisions(), 0, "oracle gate is never wrong");
    }
}
