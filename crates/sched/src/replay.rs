//! The replay driver: streams a [`QueryLog`] through window → predict →
//! place → complete in virtual time, closing the loop from the paper's
//! predictor to scheduling outcomes.
//!
//! Each [`QueryLog::replay`] chunk becomes one [`WorkloadRequest`]: its
//! *actual* demand is the summed measured resources of the chunk's queries;
//! its *decision* demand is whatever the configured [`DemandSource`]
//! believes — a nominal constant (the no-prediction baseline), a live
//! predictor, a serving [`Engine`]'s current model, or the truth itself
//! (the oracle upper bound). Arrival ticks come from a seeded
//! [`ArrivalProcess`], so a replay is a pure function of
//! `(log, source, scheduler config, replay config)` — the determinism the
//! replay tests rely on.

use learnedwmp_core::WorkloadPredictor;
use wmp_mlkit::MlResult;
use wmp_plan::ResourceVector;
use wmp_serve::Engine;
use wmp_workloads::{ArrivalProcess, QueryLog, QueryRecord};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::ScheduleReport;
use crate::scheduler::{Scheduler, WorkloadRequest};

/// Where the placement decision's demand estimate comes from.
pub enum DemandSource<'a> {
    /// A fixed per-window reservation — the no-prediction state of
    /// practice (provision every window identically).
    Nominal(ResourceVector),
    /// A predictor consulted per window via
    /// [`WorkloadPredictor::predict_resources`].
    Predictor(&'a dyn WorkloadPredictor),
    /// A serving engine's hot-swappable current model, consulted via
    /// [`Engine::predict_now`] — predictions track mid-replay model swaps.
    Engine(&'a Engine),
    /// The true summed demand (perfect-information upper bound).
    Oracle,
}

impl DemandSource<'_> {
    /// Stable label recorded in [`ScheduleReport::demand_source`].
    pub fn label(&self) -> &'static str {
        match self {
            DemandSource::Nominal(_) => "nominal",
            DemandSource::Predictor(_) => "predicted",
            DemandSource::Engine(_) => "engine",
            DemandSource::Oracle => "oracle",
        }
    }

    /// The decision-view demand for one window with true demand `actual`.
    fn decide(&self, queries: &[&QueryRecord], actual: ResourceVector) -> MlResult<ResourceVector> {
        match self {
            DemandSource::Nominal(v) => Ok(*v),
            DemandSource::Predictor(p) => p.predict_resources(queries),
            DemandSource::Engine(e) => e.predict_now(queries),
            DemandSource::Oracle => Ok(actual),
        }
    }
}

/// Replay knobs: windowing, arrival spacing, and the arrival seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    /// Queries per workload window (the paper's `s`; clamped to ≥ 1).
    pub window: usize,
    /// Inter-arrival process for window arrival ticks.
    pub arrivals: ArrivalProcess,
    /// Seed for the arrival process's RNG.
    pub seed: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            window: 10,
            arrivals: ArrivalProcess::Poisson { mean_gap_ticks: 200.0 },
            seed: 0,
        }
    }
}

/// Streams `log` through `scheduler` (already configured with its cluster,
/// policy, SLA classes, and cost model), deciding each window's reservation
/// via `source`, and returns the completed run's report.
///
/// A window's service duration is its true summed CPU time in ticks
/// (1 tick = 1 ms of CPU), modeling serial execution of the window on its
/// executor; tenants rotate per window (`tenant = window index`), which the
/// scheduler folds onto its SLA classes.
///
/// # Errors
/// Propagates the demand source's prediction error; scheduling itself
/// cannot fail.
pub fn replay(
    log: &QueryLog,
    source: DemandSource<'_>,
    mut scheduler: Scheduler,
    config: &ReplayConfig,
) -> MlResult<ScheduleReport> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut arrival: u64 = 0;
    for (i, chunk) in log.replay(config.window.max(1)).enumerate() {
        arrival += config.arrivals.next_gap(&mut rng);
        let refs: Vec<&QueryRecord> = chunk.iter().collect();
        let actual: ResourceVector = chunk.iter().map(|r| r.resources).sum();
        let decision = source.decide(&refs, actual)?;
        scheduler.submit(WorkloadRequest {
            id: i as u64,
            tenant: i,
            arrival,
            duration: (actual.cpu_ms.ceil() as u64).max(1),
            decision,
            actual,
            queries: chunk.len(),
        });
    }
    let mut report = scheduler.run_to_completion();
    report.demand_source = source.label().to_string();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BestFit, FirstFit, PredictionAware};
    use crate::report::CostModel;
    use crate::sla::SlaClass;
    use wmp_sim::Cluster;

    fn small_log() -> QueryLog {
        wmp_workloads::tpch::generate(400, 7).expect("tpch generation")
    }

    fn scheduler(policy: Box<dyn crate::PlacementPolicy>) -> Scheduler {
        Scheduler::new(
            Cluster::uniform(3, ResourceVector::new(192.0, f64::INFINITY, f64::INFINITY)),
            policy,
        )
        .with_sla_classes(vec![SlaClass::new(500, 10.0), SlaClass::new(2_000, 2.0)])
        .with_cost_model(CostModel { stranded_per_mb_tick: 1e-5 })
    }

    #[test]
    fn oracle_replay_accounts_every_window() {
        let log = small_log();
        let config = ReplayConfig::default();
        let report =
            replay(&log, DemandSource::Oracle, scheduler(Box::new(BestFit)), &config).unwrap();
        assert_eq!(report.queries, log.len());
        assert_eq!(report.workloads, log.len().div_ceil(config.window));
        assert_eq!(report.placed() + report.rejected, report.workloads, "conservation");
        assert_eq!(report.demand_source, "oracle");
        assert!(report.makespan_ticks > 0);
    }

    #[test]
    fn nominal_and_predicted_sources_are_labeled() {
        let log = small_log();
        let config = ReplayConfig { seed: 9, ..Default::default() };
        let nominal = replay(
            &log,
            DemandSource::Nominal(ResourceVector::memory_only(120.0)),
            scheduler(Box::new(FirstFit)),
            &config,
        )
        .unwrap();
        assert_eq!(nominal.demand_source, "nominal");
        let oracle_aware = replay(
            &log,
            DemandSource::Oracle,
            scheduler(Box::new(PredictionAware::new(1.2))),
            &config,
        )
        .unwrap();
        assert_eq!(oracle_aware.policy, "prediction-aware");
    }

    #[test]
    fn same_seed_same_report_different_seed_different_arrivals() {
        let log = small_log();
        let config = ReplayConfig { seed: 11, ..Default::default() };
        let run =
            || replay(&log, DemandSource::Oracle, scheduler(Box::new(BestFit)), &config).unwrap();
        assert_eq!(run(), run(), "bit-identical reports for identical inputs");
        let other = replay(
            &log,
            DemandSource::Oracle,
            scheduler(Box::new(BestFit)),
            &ReplayConfig { seed: 12, ..config },
        )
        .unwrap();
        assert_ne!(run().makespan_ticks, 0);
        assert!(other == other.clone());
    }
}
