//! Registry-backed observability for the scheduler: the `wmp_sched_*`
//! metric family (see the README metrics catalog). Attached via
//! [`crate::Scheduler::with_observability`]; the scheduler works identically
//! without it — the registry adds the exportable (Prometheus/JSON) view.

use std::sync::Arc;

use wmp_obs::{Counter, Gauge, Histogram, Registry};

/// The scheduler's registered instruments. Publication points:
/// counters on every placement decision, gauges + the wait histogram as
/// outcomes land, all idempotently re-registered on a shared registry.
pub(crate) struct SchedObs {
    pub(crate) placed: Arc<Counter>,
    pub(crate) deferred: Arc<Counter>,
    pub(crate) rejected: Arc<Counter>,
    pub(crate) sla_violations: Arc<Counter>,
    pub(crate) overflows: Arc<Counter>,
    pub(crate) sla_penalty: Arc<Gauge>,
    pub(crate) stranded_cost: Arc<Gauge>,
    pub(crate) queue_depth: Arc<Gauge>,
    pub(crate) util_memory: Arc<Gauge>,
    pub(crate) util_cpu: Arc<Gauge>,
    pub(crate) deferral_latency: Arc<Histogram>,
}

impl SchedObs {
    pub(crate) fn new(registry: &Arc<Registry>) -> Self {
        let r = registry;
        SchedObs {
            placed: r.counter(
                "wmp_sched_placed_total",
                "Workloads admitted onto an executor (direct + after deferral)",
                &[],
            ),
            deferred: r.counter(
                "wmp_sched_deferred_total",
                "Workloads sent to the deferral queue at least once",
                &[],
            ),
            rejected: r.counter(
                "wmp_sched_rejected_total",
                "Workloads whose reservation can never fit any executor",
                &[],
            ),
            sla_violations: r.counter(
                "wmp_sched_sla_violations_total",
                "Workloads that started after their SLA deadline",
                &[],
            ),
            overflows: r.counter(
                "wmp_sched_overflow_total",
                "Placements after which an executor's actual occupancy exceeded capacity",
                &[],
            ),
            sla_penalty: r.gauge("wmp_sched_sla_penalty", "Accumulated SLA violation penalty", &[]),
            stranded_cost: r.gauge(
                "wmp_sched_stranded_cost",
                "Accumulated stranded-capacity cost (priced MB·ticks)",
                &[],
            ),
            queue_depth: r.gauge(
                "wmp_sched_queue_depth",
                "Workloads currently waiting in the deferral queue",
                &[],
            ),
            util_memory: r.gauge(
                "wmp_sched_utilization_memory",
                "Time-averaged actual memory occupancy / cluster capacity",
                &[],
            ),
            util_cpu: r.gauge(
                "wmp_sched_utilization_cpu",
                "Time-averaged actual CPU occupancy / cluster capacity",
                &[],
            ),
            deferral_latency: r.histogram(
                "wmp_sched_deferral_latency_ticks",
                "Queueing delay (virtual ticks) of workloads placed after deferral",
                &[],
            ),
        }
    }
}
