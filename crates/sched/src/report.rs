//! Cost accounting and the final [`ScheduleReport`]: the measuring stick
//! that turns prediction quality into scheduling outcomes (SLA penalty vs.
//! stranded capacity vs. utilization).

use std::fmt;

use wmp_plan::{ResourceKind, ResourceVector};

/// Prices for the two capacity sins. SLA penalties are priced by each
/// workload's [`crate::SlaClass`]; this model prices the *stranded* side:
/// capacity a decision reserved but reality never used.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost per MB·tick of reserved-but-unused working memory. Stranding is
    /// integrated over virtual time: an over-reservation held twice as long
    /// costs twice as much.
    pub stranded_per_mb_tick: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // 1 unit per GB·kilotick: keeps penalty and stranding costs on
        // comparable scales for the shipped workloads.
        CostModel { stranded_per_mb_tick: 1e-6 }
    }
}

/// Everything a finished (or in-progress) scheduling run is judged on.
/// `PartialEq` compares every field including the `f64` accumulators, so
/// two runs with identical inputs must produce *identical* reports — the
/// determinism contract the replay tests pin down.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "a schedule report is the outcome of the run — inspect or persist it"]
pub struct ScheduleReport {
    /// Placement policy name.
    pub policy: String,
    /// Demand-signal label ("nominal", "predicted", "oracle", "direct").
    pub demand_source: String,
    /// Executors in the cluster.
    pub executors: usize,
    /// Workloads submitted.
    pub workloads: usize,
    /// Queries aggregated into those workloads.
    pub queries: usize,
    /// Workloads placed at arrival (no queueing).
    pub placed_direct: usize,
    /// Workloads placed after waiting in the deferral queue.
    pub placed_deferred: usize,
    /// Workloads rejected because their reservation can never fit any
    /// executor.
    pub rejected: usize,
    /// Workloads that started after their SLA deadline.
    pub sla_violations: usize,
    /// Summed violation penalties.
    pub sla_penalty: f64,
    /// Integral of reserved-but-unused memory over virtual time (MB·ticks).
    pub stranded_mb_ticks: f64,
    /// `stranded_mb_ticks` priced by [`CostModel::stranded_per_mb_tick`].
    pub stranded_cost: f64,
    /// Placements after which some executor's *actual* occupancy exceeded
    /// its capacity (under-provisioning episodes).
    pub overflow_events: usize,
    /// Summed queueing delay over deferred workloads (ticks).
    pub total_deferral_ticks: u64,
    /// Worst single queueing delay (ticks).
    pub max_deferral_ticks: u64,
    /// Virtual time at which the last workload completed.
    pub makespan_ticks: u64,
    /// Time-averaged actual occupancy as a fraction of cluster capacity,
    /// per resource (0 on ungated axes).
    pub mean_utilization: ResourceVector,
}

impl ScheduleReport {
    /// Workloads that eventually ran (directly or after deferral).
    pub fn placed(&self) -> usize {
        self.placed_direct + self.placed_deferred
    }

    /// The scalar objective: SLA penalty + stranded-capacity cost. Lower is
    /// better; this is the number the policy comparison ranks on.
    pub fn total_cost(&self) -> f64 {
        self.sla_penalty + self.stranded_cost
    }

    /// Mean queueing delay across deferred workloads (0 when none).
    pub fn mean_deferral_ticks(&self) -> f64 {
        if self.placed_deferred == 0 {
            0.0
        } else {
            self.total_deferral_ticks as f64 / self.placed_deferred as f64
        }
    }
}

impl fmt::Display for ScheduleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} / {} demand: {} workloads ({} queries) on {} executors",
            self.policy, self.demand_source, self.workloads, self.queries, self.executors
        )?;
        writeln!(
            f,
            "  placed {} ({} deferred, mean wait {:.0} ticks, max {}), rejected {}",
            self.placed(),
            self.placed_deferred,
            self.mean_deferral_ticks(),
            self.max_deferral_ticks,
            self.rejected
        )?;
        writeln!(
            f,
            "  SLA: {} violations, penalty {:.2}; stranded {:.0} MB·ticks ({:.2}); overflows {}",
            self.sla_violations,
            self.sla_penalty,
            self.stranded_mb_ticks,
            self.stranded_cost,
            self.overflow_events
        )?;
        write!(
            f,
            "  total cost {:.2}; makespan {} ticks; utilization mem {:.0}% cpu {:.0}%",
            self.total_cost(),
            self.makespan_ticks,
            self.mean_utilization.memory_mb * 100.0,
            self.mean_utilization.cpu_ms * 100.0
        )
    }
}

/// Time-integrated occupancy accounting. Advanced to every event tick by
/// the scheduler; all integrals are exact sums of per-interval products, so
/// identical event sequences produce bit-identical integrals.
#[derive(Debug, Clone, Default)]
pub(crate) struct Integrals {
    last_tick: u64,
    /// Σ actual occupancy × Δticks, per resource.
    pub(crate) actual: ResourceVector,
    /// Σ max(0, reserved − actual) memory × Δticks.
    pub(crate) stranded_mb_ticks: f64,
}

impl Integrals {
    /// Accumulates occupancy over `[last_tick, tick)` and moves the cursor.
    pub(crate) fn advance(&mut self, cluster: &wmp_sim::Cluster, tick: u64) {
        if tick <= self.last_tick {
            return;
        }
        let dt = (tick - self.last_tick) as f64;
        self.last_tick = tick;
        let actual = cluster.total_actual();
        self.actual += actual.scale(dt);
        let stranded = (cluster.total_reserved().memory_mb - actual.memory_mb).max(0.0);
        self.stranded_mb_ticks += stranded * dt;
    }

    /// Mean utilization over `[0, makespan]` against `capacity` (0 on
    /// infinite/zero axes and for an empty timeline).
    pub(crate) fn mean_utilization(
        &self,
        capacity: ResourceVector,
        makespan: u64,
    ) -> ResourceVector {
        if makespan == 0 {
            return ResourceVector::ZERO;
        }
        let mut out = [0.0; wmp_plan::N_RESOURCES];
        for kind in ResourceKind::ALL {
            let cap = capacity.get(kind);
            if cap.is_finite() && cap > 0.0 {
                out[kind.index()] = self.actual.get(kind) / (cap * makespan as f64);
            }
        }
        ResourceVector::from_array(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmp_sim::Cluster;

    #[test]
    fn integrals_accumulate_occupancy_over_time() {
        let mut cluster = Cluster::uniform(1, ResourceVector::new(100.0, 100.0, f64::INFINITY));
        let mut integrals = Integrals::default();
        cluster
            .executor_mut(0)
            .try_admit(0, ResourceVector::memory_only(60.0), ResourceVector::memory_only(40.0))
            .unwrap();
        integrals.advance(&cluster, 10); // 10 ticks at 40 MB actual, 20 MB stranded
        cluster.executor_mut(0).release(0);
        integrals.advance(&cluster, 20); // 10 idle ticks
        assert!((integrals.actual.memory_mb - 400.0).abs() < 1e-9);
        assert!((integrals.stranded_mb_ticks - 200.0).abs() < 1e-9);
        let util = integrals.mean_utilization(cluster.total_capacity(), 20);
        assert!((util.memory_mb - 0.2).abs() < 1e-9, "400 MB·ticks / (100 MB × 20 ticks)");
        assert_eq!(util.io_pages, 0.0, "ungated axes report zero");
        // Re-advancing to the past is a no-op.
        integrals.advance(&cluster, 5);
        assert!((integrals.actual.memory_mb - 400.0).abs() < 1e-9);
    }

    #[test]
    fn report_cost_and_means() {
        let report = ScheduleReport {
            policy: "best-fit".into(),
            demand_source: "oracle".into(),
            executors: 2,
            workloads: 10,
            queries: 100,
            placed_direct: 6,
            placed_deferred: 3,
            rejected: 1,
            sla_violations: 2,
            sla_penalty: 50.0,
            stranded_mb_ticks: 2_000_000.0,
            stranded_cost: 2.0,
            overflow_events: 1,
            total_deferral_ticks: 300,
            max_deferral_ticks: 200,
            makespan_ticks: 5_000,
            mean_utilization: ResourceVector::new(0.7, 0.5, 0.0),
        };
        assert_eq!(report.placed(), 9);
        assert!((report.total_cost() - 52.0).abs() < 1e-12);
        assert!((report.mean_deferral_ticks() - 100.0).abs() < 1e-12);
        let text = report.to_string();
        assert!(text.contains("total cost 52.00"), "{text}");
        assert!(text.contains("best-fit / oracle"), "{text}");
    }
}
