//! SLA classes: the per-tenant latency contract a scheduler is judged
//! against. The WiSeDB framing (PAPERS.md): placement/provisioning decisions
//! only matter through the cost function of missed deadlines vs. wasted
//! capacity, so the deadline and its violation price are first-class inputs.

/// One service-level class: a start deadline (ticks of allowed queueing
/// after arrival) and the penalty charged when a workload misses it.
///
/// The deadline gates **start** latency, not completion: the scheduler
/// controls when a workload begins executing, while its service duration is
/// the workload's own. A workload that starts more than `deadline_ticks`
/// after its arrival incurs `violation_penalty` exactly once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaClass {
    /// Maximum queueing delay (virtual ticks) before the workload must
    /// start.
    pub deadline_ticks: u64,
    /// Cost charged per violated deadline.
    pub violation_penalty: f64,
}

impl SlaClass {
    /// A class allowing `deadline_ticks` of queueing at `violation_penalty`
    /// per miss.
    pub fn new(deadline_ticks: u64, violation_penalty: f64) -> Self {
        SlaClass { deadline_ticks, violation_penalty }
    }

    /// Whether starting `wait_ticks` after arrival violates this class.
    pub fn violated_by(&self, wait_ticks: u64) -> bool {
        wait_ticks > self.deadline_ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_is_inclusive() {
        let gold = SlaClass::new(100, 25.0);
        assert!(!gold.violated_by(0));
        assert!(!gold.violated_by(100), "starting exactly at the deadline is on time");
        assert!(gold.violated_by(101));
        assert_eq!(gold.violation_penalty, 25.0);
    }
}
