//! # wmp-sched — closed-loop multi-tenant capacity scheduling
//!
//! The paper's pitch is that workload memory prediction enables better
//! scheduling and admission decisions; this crate is where that claim is
//! cashed out. A discrete-event simulator replays a query log as workload
//! windows arriving at N capacity-bounded executors and measures — in one
//! [`ScheduleReport`] — what a placement policy's demand estimates cost:
//!
//! - **SLA penalties** when queueing pushes a window past its tenant's
//!   start deadline ([`SlaClass`]);
//! - **stranded capacity** when reservations exceed what workloads really
//!   use (over-prediction priced by [`CostModel`]);
//! - **overflow episodes** when reality exceeds what was reserved
//!   (under-prediction, the spills/thrashing signal);
//! - **utilization / deferral latency** as the operational health view.
//!
//! The pieces compose orthogonally: a [`wmp_sim::Cluster`] capacity model,
//! a [`PlacementPolicy`] (first-fit / best-fit / prediction-aware with
//! headroom), a [`DemandSource`] (nominal constant, live predictor,
//! serving [`wmp_serve::Engine`], or oracle), and the [`replay()`] driver
//! that streams [`wmp_workloads::QueryLog`] chunks through
//! window → predict → place → complete in virtual time. Everything is
//! deterministic in its seeds: same inputs, bit-identical report.

#![warn(missing_docs)]

mod obs;
pub mod policy;
pub mod replay;
pub mod report;
pub mod scheduler;
pub mod sla;

pub use policy::{BestFit, FirstFit, PlacementPolicy, PredictionAware};
pub use replay::{replay, DemandSource, ReplayConfig};
pub use report::{CostModel, ScheduleReport};
pub use scheduler::{Scheduler, Submitted, WorkloadRequest};
pub use sla::SlaClass;
