//! Placement policies: given one workload's believed demand and the current
//! cluster occupancy, pick an executor — or decline, sending the workload to
//! the scheduler's deferral queue.
//!
//! Policies never mutate the cluster; the [`crate::Scheduler`] performs the
//! actual admission through [`wmp_sim::Executor::try_admit`], which refuses
//! over-capacity reservations. A policy therefore *cannot* push an executor
//! past its [`wmp_plan::ResourceVector`] capacity even if it returns a bad
//! index — the scheduler treats a refused admission as a deferral.
//!
//! What distinguishes the shipped policies:
//!
//! - [`FirstFit`] — lowest-index executor with headroom; fast, fragmenting.
//! - [`BestFit`] — the fitting executor left with the least normalized
//!   slack, i.e. the choice that strands the least capacity.
//! - [`PredictionAware`] — [`BestFit`] placement over an inflated
//!   reservation: believed demand × a configurable headroom factor, so a
//!   calibrated-but-noisy predictor under-provisions less often. Workloads
//!   it cannot place wait in the scheduler's deferral queue rather than
//!   being force-placed.
//!
//! What the policy *sees* (nominal constant, model prediction, or true
//! cost) is the replay driver's [`crate::DemandSource`]; keeping the two
//! axes orthogonal lets the bench compare policy × demand-source cells.

use wmp_plan::{ResourceKind, ResourceVector};
use wmp_sim::Cluster;

/// A placement decision rule. See the module docs for the contract.
pub trait PlacementPolicy: Send + Sync {
    /// Stable display name (used in reports and bench trajectories).
    fn name(&self) -> &'static str;

    /// The reservation to request for a workload whose believed demand is
    /// `demand` — the hook where headroom factors inflate predictions. The
    /// default reserves exactly the believed demand.
    fn reserve_demand(&self, demand: ResourceVector) -> ResourceVector {
        demand
    }

    /// The executor to place a `reserve`-sized reservation on, or `None`
    /// to defer. Implementations must only return executors where the
    /// reservation [`wmp_sim::Executor::fits`]; the scheduler re-checks via
    /// [`wmp_sim::Executor::try_admit`] either way.
    fn place(&self, reserve: ResourceVector, cluster: &Cluster) -> Option<usize>;
}

/// Lowest-index executor with room — the classic baseline bin-packing rule.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstFit;

impl PlacementPolicy for FirstFit {
    fn name(&self) -> &'static str {
        "first-fit"
    }

    fn place(&self, reserve: ResourceVector, cluster: &Cluster) -> Option<usize> {
        cluster.executors().iter().position(|e| e.fits(reserve))
    }
}

/// Normalized slack left on `executor` after reserving `reserve`: the mean
/// over gated axes of `(capacity - reserved - reserve) / capacity`. Lower
/// means a tighter (less stranding) fit.
fn slack_after(executor: &wmp_sim::Executor, reserve: ResourceVector) -> f64 {
    let capacity = executor.capacity();
    let occupied = executor.reserved();
    let mut total = 0.0;
    let mut axes = 0;
    for kind in ResourceKind::ALL {
        let cap = capacity.get(kind);
        if cap.is_finite() && cap > 0.0 {
            total += (cap - occupied.get(kind) - reserve.get(kind)) / cap;
            axes += 1;
        }
    }
    if axes == 0 {
        0.0
    } else {
        total / axes as f64
    }
}

/// The fitting executor left with the least normalized slack — the
/// stranded-capacity-minimizing greedy rule.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFit;

impl PlacementPolicy for BestFit {
    fn name(&self) -> &'static str {
        "best-fit"
    }

    fn place(&self, reserve: ResourceVector, cluster: &Cluster) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, executor) in cluster.executors().iter().enumerate() {
            if !executor.fits(reserve) {
                continue;
            }
            let slack = slack_after(executor, reserve);
            // Strict < keeps ties on the lowest index — deterministic.
            if best.is_none_or(|(_, s)| slack < s) {
                best = Some((i, slack));
            }
        }
        best.map(|(i, _)| i)
    }
}

/// Best-fit placement over a headroom-inflated reservation: believed demand
/// × `headroom`. With `headroom > 1` a calibrated predictor's residual
/// under-predictions are absorbed by the slack instead of overflowing the
/// executor; workloads that do not fit anywhere wait in the scheduler's
/// deferral queue.
#[derive(Debug, Clone, Copy)]
pub struct PredictionAware {
    headroom: f64,
}

impl PredictionAware {
    /// A prediction-aware policy reserving `headroom` × the believed
    /// demand (values < 1 are clamped to 1 — reserving less than the
    /// prediction is indistinguishable from mis-calibrating the model).
    pub fn new(headroom: f64) -> Self {
        PredictionAware { headroom: headroom.max(1.0) }
    }

    /// The configured headroom factor.
    pub fn headroom(&self) -> f64 {
        self.headroom
    }
}

impl Default for PredictionAware {
    fn default() -> Self {
        PredictionAware::new(1.1)
    }
}

impl PlacementPolicy for PredictionAware {
    fn name(&self) -> &'static str {
        "prediction-aware"
    }

    fn reserve_demand(&self, demand: ResourceVector) -> ResourceVector {
        demand.scale(self.headroom)
    }

    fn place(&self, reserve: ResourceVector, cluster: &Cluster) -> Option<usize> {
        BestFit.place(reserve, cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        // exec 0: roomy, exec 1: tight.
        let mut cluster = Cluster::from_capacities(vec![
            ResourceVector::new(100.0, f64::INFINITY, f64::INFINITY),
            ResourceVector::new(100.0, f64::INFINITY, f64::INFINITY),
        ]);
        cluster
            .executor_mut(1)
            .try_admit(0, ResourceVector::memory_only(70.0), ResourceVector::memory_only(70.0))
            .unwrap();
        cluster
    }

    #[test]
    fn first_fit_takes_the_lowest_index() {
        let cluster = cluster();
        assert_eq!(FirstFit.place(ResourceVector::memory_only(20.0), &cluster), Some(0));
        assert_eq!(FirstFit.name(), "first-fit");
    }

    #[test]
    fn best_fit_takes_the_tightest_executor() {
        let cluster = cluster();
        // 20 MB leaves 80 MB slack on exec 0 but only 10 MB on exec 1.
        assert_eq!(BestFit.place(ResourceVector::memory_only(20.0), &cluster), Some(1));
        // 40 MB no longer fits exec 1 (70 + 40 > 100): falls to exec 0.
        assert_eq!(BestFit.place(ResourceVector::memory_only(40.0), &cluster), Some(0));
        // Nothing fits 200 MB.
        assert_eq!(BestFit.place(ResourceVector::memory_only(200.0), &cluster), None);
    }

    #[test]
    fn best_fit_breaks_ties_on_the_lowest_index() {
        let cluster = Cluster::uniform(3, ResourceVector::memory_only(100.0));
        assert_eq!(BestFit.place(ResourceVector::memory_only(10.0), &cluster), Some(0));
    }

    #[test]
    fn prediction_aware_inflates_the_reservation() {
        let policy = PredictionAware::new(1.5);
        let reserve = policy.reserve_demand(ResourceVector::new(10.0, 100.0, 1000.0));
        assert_eq!(reserve, ResourceVector::new(15.0, 150.0, 1500.0));
        // Headroom below 1 is clamped.
        assert_eq!(PredictionAware::new(0.5).headroom(), 1.0);
        assert_eq!(PredictionAware::default().headroom(), 1.1);
        assert_eq!(policy.name(), "prediction-aware");
    }

    #[test]
    fn policies_never_pick_a_full_executor() {
        let mut cluster = Cluster::uniform(2, ResourceVector::memory_only(50.0));
        for i in 0..2 {
            cluster
                .executor_mut(i)
                .try_admit(i as u64, ResourceVector::memory_only(45.0), ResourceVector::ZERO)
                .unwrap();
        }
        let demand = ResourceVector::memory_only(10.0);
        assert_eq!(FirstFit.place(demand, &cluster), None);
        assert_eq!(BestFit.place(demand, &cluster), None);
        assert_eq!(PredictionAware::default().place(demand, &cluster), None);
    }
}
