//! The discrete-event scheduler core: virtual-time submission, completion,
//! deferral retry, and cost accounting over a [`wmp_sim::Cluster`].
//!
//! Everything runs in **virtual ticks** — no wall clock anywhere — so a run
//! is a pure function of (cluster, policy, SLA classes, cost model, request
//! sequence): the determinism contract the replay tests pin to bit-identical
//! [`ScheduleReport`]s.
//!
//! Event semantics, in order, for `submit(request)`:
//!
//! 1. the clock advances to `request.arrival`, processing every completion
//!    due on the way (occupancy integrals are accumulated *before* each
//!    release, so integrals see the workload up to its finish tick);
//! 2. each completion retries the deferral queue in FIFO order (one pass);
//! 3. the request itself is placed if the policy finds a fitting executor,
//!    **deferred** if not, and **rejected** only when its reservation could
//!    never fit even an empty executor — so every submitted workload ends in
//!    exactly one of placed / deferred-then-placed / rejected (the
//!    conservation invariant the property tests check).
//!
//! Placement is re-checked through [`wmp_sim::Executor::try_admit`], which
//! refuses over-capacity reservations: a buggy policy cannot violate the
//! capacity invariant, it only causes deferrals.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

use wmp_plan::ResourceVector;
use wmp_sim::Cluster;

use crate::obs::SchedObs;
use crate::policy::PlacementPolicy;
use crate::report::{CostModel, Integrals, ScheduleReport};
use crate::sla::SlaClass;

/// One unit of schedulable work: a predicted workload window with its
/// decision-view demand (what the scheduler believes) and actual demand
/// (what the hardware will experience).
#[derive(Debug, Clone, Copy)]
pub struct WorkloadRequest {
    /// Caller-assigned id, unique per run.
    pub id: u64,
    /// Tenant index; maps to an SLA class via `tenant % n_classes`.
    pub tenant: usize,
    /// Arrival tick. Submissions must be in non-decreasing arrival order;
    /// an arrival before the current clock is clamped to "now".
    pub arrival: u64,
    /// Service duration in ticks once started (clamped to ≥ 1).
    pub duration: u64,
    /// The demand the placement decision is made on (prediction, nominal
    /// constant, or the truth for an oracle).
    pub decision: ResourceVector,
    /// The demand the workload actually imposes while running.
    pub actual: ResourceVector,
    /// Queries aggregated into this workload (report bookkeeping only).
    pub queries: usize,
}

/// The outcome `submit` reports for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submitted {
    /// Placed immediately on the given executor.
    Placed(usize),
    /// Queued; will be placed when capacity frees up.
    Deferred,
    /// Reservation can never fit any executor — dropped permanently.
    Rejected,
}

/// A deferred request plus the bookkeeping to price its wait when placed.
#[derive(Debug, Clone, Copy)]
struct Waiting {
    request: WorkloadRequest,
    reserve: ResourceVector,
}

/// The discrete-event multi-tenant scheduler. See the module docs for the
/// event semantics and [`crate::PlacementPolicy`] for the decision rules.
pub struct Scheduler {
    cluster: Cluster,
    policy: Box<dyn PlacementPolicy>,
    sla: Vec<SlaClass>,
    cost: CostModel,
    clock: u64,
    /// Min-heap of (finish_tick, workload id, executor index). The id in
    /// the key makes pop order total, hence deterministic.
    completions: BinaryHeap<Reverse<(u64, u64, usize)>>,
    waiting: VecDeque<Waiting>,
    integrals: Integrals,
    obs: Option<SchedObs>,
    // Outcome counters (mirrored into the report).
    workloads: usize,
    queries: usize,
    placed_direct: usize,
    placed_deferred: usize,
    rejected: usize,
    sla_violations: usize,
    sla_penalty: f64,
    overflow_events: usize,
    total_deferral_ticks: u64,
    max_deferral_ticks: u64,
    makespan: u64,
}

impl Scheduler {
    /// A scheduler over `cluster` deciding placements with `policy`. No SLA
    /// classes (no penalties) and the default [`CostModel`] until configured
    /// via [`Scheduler::with_sla_classes`] / [`Scheduler::with_cost_model`].
    pub fn new(cluster: Cluster, policy: Box<dyn PlacementPolicy>) -> Self {
        Scheduler {
            cluster,
            policy,
            sla: Vec::new(),
            cost: CostModel::default(),
            clock: 0,
            completions: BinaryHeap::new(),
            waiting: VecDeque::new(),
            integrals: Integrals::default(),
            obs: None,
            workloads: 0,
            queries: 0,
            placed_direct: 0,
            placed_deferred: 0,
            rejected: 0,
            sla_violations: 0,
            sla_penalty: 0.0,
            overflow_events: 0,
            total_deferral_ticks: 0,
            max_deferral_ticks: 0,
            makespan: 0,
        }
    }

    /// Sets the SLA classes; a request's class is `tenant % classes.len()`.
    pub fn with_sla_classes(mut self, classes: Vec<SlaClass>) -> Self {
        self.sla = classes;
        self
    }

    /// Sets the stranded-capacity pricing.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Publishes `wmp_sched_*` metrics into `registry` from now on.
    pub fn with_observability(mut self, registry: Arc<wmp_obs::Registry>) -> Self {
        self.obs = Some(SchedObs::new(&registry));
        self
    }

    /// The cluster (current occupancy included) — the surface the property
    /// tests assert the capacity invariant on.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Current virtual time.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Workloads currently waiting in the deferral queue.
    pub fn queue_depth(&self) -> usize {
        self.waiting.len()
    }

    /// The SLA class governing `tenant` (`None` when no classes are set).
    fn sla_for(&self, tenant: usize) -> Option<SlaClass> {
        if self.sla.is_empty() {
            None
        } else {
            Some(self.sla[tenant % self.sla.len()])
        }
    }

    /// Submits one request, advancing virtual time to its arrival (events
    /// due on the way are processed first). Requests must arrive in
    /// non-decreasing `arrival` order; earlier arrivals are clamped to the
    /// current clock.
    pub fn submit(&mut self, request: WorkloadRequest) -> Submitted {
        let arrival = request.arrival.max(self.clock);
        self.advance_to(arrival);
        self.workloads += 1;
        self.queries += request.queries;
        let reserve = self.policy.reserve_demand(request.decision);
        if !self.cluster.could_ever_fit(reserve) {
            self.rejected += 1;
            if let Some(obs) = &self.obs {
                obs.rejected.inc();
            }
            wmp_obs::event!(
                wmp_obs::Level::Warn,
                target: "wmp_sched",
                "workload_rejected",
                id = request.id,
                reserve_mb = reserve.memory_mb,
                reserve_cpu_ms = reserve.cpu_ms,
            );
            return Submitted::Rejected;
        }
        let waiting = Waiting { request: WorkloadRequest { arrival, ..request }, reserve };
        if let Some(executor) = self.try_place(waiting) {
            self.placed_direct += 1;
            Submitted::Placed(executor)
        } else {
            self.waiting.push_back(waiting);
            if let Some(obs) = &self.obs {
                obs.deferred.inc();
                obs.queue_depth.set(self.waiting.len() as f64);
            }
            Submitted::Deferred
        }
    }

    /// Runs the event loop dry: processes every pending completion and
    /// drains the deferral queue, then returns the final report. Guaranteed
    /// to terminate: every deferred reservation fits an empty executor (the
    /// rejection test), and once the in-flight set drains the cluster *is*
    /// empty, at which point the queue head is force-placed on the first
    /// executor that accepts it even if the policy keeps declining.
    pub fn run_to_completion(&mut self) -> ScheduleReport {
        loop {
            if let Some(&Reverse((finish, _, _))) = self.completions.peek() {
                self.advance_to(finish);
                continue;
            }
            // No in-flight work: the cluster is empty. Place the queue head
            // directly so arbitrary policies cannot stall the drain.
            let Some(waiting) = self.waiting.pop_front() else { break };
            if self.try_place(waiting).is_some() {
                self.placed_deferred_accounting(waiting);
            } else {
                let placed = (0..self.cluster.len()).any(|i| {
                    self.cluster
                        .executor_mut(i)
                        .try_admit(waiting.request.id, waiting.reserve, waiting.request.actual)
                        .is_ok()
                });
                debug_assert!(placed, "queue head must fit an empty cluster");
                if placed {
                    // try_place covers accounting on the policy path; this
                    // fallback path repeats it for the forced placement.
                    self.account_start(&waiting, self.clock);
                    self.push_completion(&waiting.request);
                    self.placed_deferred_accounting(waiting);
                } else {
                    self.rejected += 1;
                    if let Some(obs) = &self.obs {
                        obs.rejected.inc();
                    }
                }
            }
            if let Some(obs) = &self.obs {
                obs.queue_depth.set(self.waiting.len() as f64);
            }
        }
        self.report()
    }

    /// The report as of the current virtual time (typically called via
    /// [`Scheduler::run_to_completion`]).
    pub fn report(&self) -> ScheduleReport {
        let stranded_cost = self.integrals.stranded_mb_ticks * self.cost.stranded_per_mb_tick;
        let mean_utilization =
            self.integrals.mean_utilization(self.cluster.total_capacity(), self.makespan);
        if let Some(obs) = &self.obs {
            obs.stranded_cost.set(stranded_cost);
            obs.util_memory.set(mean_utilization.memory_mb);
            obs.util_cpu.set(mean_utilization.cpu_ms);
        }
        ScheduleReport {
            policy: self.policy.name().to_string(),
            demand_source: "direct".to_string(),
            executors: self.cluster.len(),
            workloads: self.workloads,
            queries: self.queries,
            placed_direct: self.placed_direct,
            placed_deferred: self.placed_deferred,
            rejected: self.rejected,
            sla_violations: self.sla_violations,
            sla_penalty: self.sla_penalty,
            stranded_mb_ticks: self.integrals.stranded_mb_ticks,
            stranded_cost,
            overflow_events: self.overflow_events,
            total_deferral_ticks: self.total_deferral_ticks,
            max_deferral_ticks: self.max_deferral_ticks,
            makespan_ticks: self.makespan,
            mean_utilization,
        }
    }

    /// Advances the clock to `tick`, processing every completion due on the
    /// way and retrying the deferral queue after each release.
    fn advance_to(&mut self, tick: u64) {
        while let Some(&Reverse((finish, id, executor))) = self.completions.peek() {
            if finish > tick {
                break;
            }
            self.completions.pop();
            // Integrate occupancy up to the finish tick *including* the
            // completing workload, then release it.
            self.integrals.advance(&self.cluster, finish);
            self.clock = finish;
            self.cluster.executor_mut(executor).release(id);
            self.makespan = finish;
            self.retry_waiting();
        }
        self.integrals.advance(&self.cluster, tick);
        self.clock = tick;
    }

    /// One FIFO pass over the deferral queue: placeable workloads start now,
    /// the rest keep their order.
    fn retry_waiting(&mut self) {
        let mut still_waiting = VecDeque::with_capacity(self.waiting.len());
        while let Some(waiting) = self.waiting.pop_front() {
            if self.try_place(waiting).is_some() {
                self.placed_deferred_accounting(waiting);
            } else {
                still_waiting.push_back(waiting);
            }
        }
        self.waiting = still_waiting;
        if let Some(obs) = &self.obs {
            obs.queue_depth.set(self.waiting.len() as f64);
        }
    }

    /// Asks the policy for an executor and admits the workload there. The
    /// admission is re-checked by the capacity model: a policy pointing at a
    /// full executor yields `None` (deferral), never an overrun reservation.
    fn try_place(&mut self, waiting: Waiting) -> Option<usize> {
        let executor = self.policy.place(waiting.reserve, &self.cluster)?;
        self.cluster
            .executor_mut(executor)
            .try_admit(waiting.request.id, waiting.reserve, waiting.request.actual)
            .ok()?;
        self.account_start(&waiting, self.clock);
        self.push_completion(&waiting.request);
        Some(executor)
    }

    /// Charges SLA penalties and counts overflow episodes for a workload
    /// that starts at `now`.
    fn account_start(&mut self, waiting: &Waiting, now: u64) {
        let wait = now - waiting.request.arrival;
        if let Some(class) = self.sla_for(waiting.request.tenant) {
            if class.violated_by(wait) {
                self.sla_violations += 1;
                self.sla_penalty += class.violation_penalty;
                if let Some(obs) = &self.obs {
                    obs.sla_violations.inc();
                    obs.sla_penalty.set(self.sla_penalty);
                }
            }
        }
        if let Some(obs) = &self.obs {
            obs.placed.inc();
        }
        // One overflow episode per placement decision whose aftermath has
        // actual occupancy over capacity somewhere in the cluster's
        // touched executor — mirrors AdmissionController::offer counting.
        let overrun = self.cluster.executors().iter().find_map(|e| e.actual_overruns().first());
        if let Some(overrun) = overrun {
            self.overflow_events += 1;
            if let Some(obs) = &self.obs {
                obs.overflows.inc();
            }
            wmp_obs::event!(
                wmp_obs::Level::Warn,
                target: "wmp_sched",
                "capacity_overflow",
                id = waiting.request.id,
                resource = overrun.label(),
                tick = now,
            );
        }
    }

    /// Wait-time accounting for a workload placed from the deferral queue.
    fn placed_deferred_accounting(&mut self, waiting: Waiting) {
        self.placed_deferred += 1;
        let wait = self.clock - waiting.request.arrival;
        self.total_deferral_ticks += wait;
        self.max_deferral_ticks = self.max_deferral_ticks.max(wait);
        if let Some(obs) = &self.obs {
            obs.deferral_latency.record(wait);
        }
    }

    /// Schedules the completion event for a workload starting now.
    fn push_completion(&mut self, request: &WorkloadRequest) {
        let finish = self.clock + request.duration.max(1);
        self.completions.push(Reverse((finish, request.id, {
            // The executor index in the heap key is informational; release
            // is by id, so an unfindable workload (which would mean admit
            // and push_completion disagree) degrades to a sentinel key
            // rather than unwinding the scheduling loop.
            self.cluster
                .executors()
                .iter()
                .position(|e| e.workloads().iter().any(|w| w.id == request.id))
                .unwrap_or(usize::MAX)
        })));
        self.makespan = self.makespan.max(finish);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BestFit, FirstFit};

    fn request(id: u64, arrival: u64, duration: u64, mb: f64) -> WorkloadRequest {
        WorkloadRequest {
            id,
            tenant: id as usize,
            arrival,
            duration,
            decision: ResourceVector::memory_only(mb),
            actual: ResourceVector::memory_only(mb),
            queries: 1,
        }
    }

    fn scheduler(executors: usize, capacity_mb: f64) -> Scheduler {
        Scheduler::new(
            Cluster::uniform(executors, ResourceVector::memory_only(capacity_mb)),
            Box::new(FirstFit),
        )
    }

    #[test]
    fn places_defers_and_drains_in_fifo_order() {
        let mut sched = scheduler(1, 100.0);
        assert_eq!(sched.submit(request(0, 0, 50, 80.0)), Submitted::Placed(0));
        // No headroom left: both defer.
        assert_eq!(sched.submit(request(1, 10, 20, 60.0)), Submitted::Deferred);
        assert_eq!(sched.submit(request(2, 10, 20, 60.0)), Submitted::Deferred);
        assert_eq!(sched.queue_depth(), 2);
        let report = sched.run_to_completion();
        assert_eq!(report.placed_direct, 1);
        assert_eq!(report.placed_deferred, 2);
        assert_eq!(report.rejected, 0);
        // id 1 starts at 50 (wait 40), id 2 at 70 (wait 60).
        assert_eq!(report.total_deferral_ticks, 100);
        assert_eq!(report.max_deferral_ticks, 60);
        assert_eq!(report.makespan_ticks, 90);
    }

    #[test]
    fn impossible_reservations_are_rejected_not_queued() {
        let mut sched = scheduler(2, 100.0);
        assert_eq!(sched.submit(request(0, 0, 10, 150.0)), Submitted::Rejected);
        assert_eq!(sched.submit(request(1, 0, 10, 90.0)), Submitted::Placed(0));
        let report = sched.run_to_completion();
        assert_eq!(report.rejected, 1);
        assert_eq!(report.placed(), 1);
        assert_eq!(report.workloads, 2);
    }

    #[test]
    fn sla_penalties_charge_only_late_starts() {
        let mut sched = scheduler(1, 100.0).with_sla_classes(vec![SlaClass::new(5, 10.0)]);
        sched.submit(request(0, 0, 100, 100.0));
        sched.submit(request(1, 10, 10, 100.0)); // starts at 100, wait 90 > 5
        let report = sched.run_to_completion();
        assert_eq!(report.sla_violations, 1);
        assert!((report.sla_penalty - 10.0).abs() < 1e-12);
        assert!((report.total_cost() - report.sla_penalty - report.stranded_cost).abs() < 1e-12);
    }

    #[test]
    fn under_predictions_surface_as_overflow_episodes() {
        let mut sched = scheduler(1, 100.0);
        let mut bad = request(0, 0, 10, 60.0);
        bad.actual = ResourceVector::memory_only(120.0); // reality overruns
        sched.submit(bad);
        let report = sched.run_to_completion();
        assert_eq!(report.overflow_events, 1);
    }

    #[test]
    fn over_reservation_strands_capacity() {
        let mut sched = scheduler(1, 100.0);
        let mut padded = request(0, 0, 10, 80.0);
        padded.actual = ResourceVector::memory_only(30.0); // 50 MB stranded × 10 ticks
        sched.submit(padded);
        let report = sched.run_to_completion();
        assert!((report.stranded_mb_ticks - 500.0).abs() < 1e-9);
        assert!(report.stranded_cost > 0.0);
    }

    #[test]
    fn capacity_invariant_holds_mid_run() {
        let mut sched = Scheduler::new(
            Cluster::uniform(2, ResourceVector::new(100.0, 1_000.0, f64::INFINITY)),
            Box::new(BestFit),
        );
        for id in 0..20 {
            sched.submit(WorkloadRequest {
                id,
                tenant: 0,
                arrival: id * 3,
                duration: 17,
                decision: ResourceVector::new(40.0, 300.0, 0.0),
                actual: ResourceVector::new(35.0, 280.0, 0.0),
                queries: 1,
            });
            for executor in sched.cluster().executors() {
                let reserved = executor.reserved();
                assert!(reserved.memory_mb <= executor.capacity().memory_mb + 1e-9);
                assert!(reserved.cpu_ms <= executor.capacity().cpu_ms + 1e-9);
            }
        }
        let report = sched.run_to_completion();
        assert_eq!(report.placed() + report.rejected, 20);
    }

    #[test]
    fn identical_runs_produce_identical_reports() {
        let run = || {
            let mut sched = scheduler(2, 100.0).with_sla_classes(vec![SlaClass::new(10, 5.0)]);
            for id in 0..50 {
                let mut r = request(id, id * 2, 9, 30.0 + (id % 5) as f64 * 10.0);
                r.actual = ResourceVector::memory_only(25.0 + (id % 7) as f64 * 9.0);
                sched.submit(r);
            }
            sched.run_to_completion()
        };
        assert_eq!(run(), run());
    }
}
