//! Principal component analysis via subspace (orthogonal) iteration — used to
//! visualize/compress plan-feature spaces and as the dimensionality-reduction
//! building block behind the word-embedding pipeline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{dim_mismatch, MlError, MlResult};
use crate::linalg::Matrix;

/// Fitted PCA: mean vector + principal axes (rows) + explained variances.
#[derive(Debug, Clone)]
pub struct Pca {
    n_components: usize,
    mean: Vec<f64>,
    /// `n_components × d`, orthonormal rows.
    components: Matrix,
    explained_variance: Vec<f64>,
    iterations: usize,
    seed: u64,
}

impl Pca {
    /// Creates an unfitted PCA keeping `n_components` axes.
    pub fn new(n_components: usize) -> Self {
        Pca {
            n_components,
            mean: Vec::new(),
            components: Matrix::zeros(0, 0),
            explained_variance: Vec::new(),
            iterations: 64,
            seed: 42,
        }
    }

    /// Builder-style override of the iteration budget/seed.
    pub fn with_iterations(mut self, iterations: usize, seed: u64) -> Self {
        self.iterations = iterations;
        self.seed = seed;
        self
    }

    /// Fits the principal axes of `x` by subspace iteration on the covariance
    /// matrix (never materializing it: each step computes `Xᵀ(X·V)/n`).
    ///
    /// # Errors
    /// Returns [`MlError::EmptyInput`] for an empty matrix and
    /// [`MlError::InvalidHyperparameter`] when `n_components` is 0 or exceeds
    /// the feature count.
    pub fn fit(&mut self, x: &Matrix) -> MlResult<()> {
        let n = x.rows();
        let d = x.cols();
        if n == 0 || d == 0 {
            return Err(MlError::EmptyInput("Pca::fit"));
        }
        if self.n_components == 0 || self.n_components > d {
            return Err(MlError::InvalidHyperparameter(format!(
                "n_components = {} must be in 1..={d}",
                self.n_components
            )));
        }
        // Center.
        let mut mean = vec![0.0; d];
        for row in x.row_iter() {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut xc = x.clone();
        for r in 0..n {
            for (v, m) in xc.row_mut(r).iter_mut().zip(&mean) {
                *v -= m;
            }
        }
        // Subspace iteration on C = XᵀX / n, as V ← orth(Xᵀ(X·V)/n).
        let k = self.n_components;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut v = Matrix::zeros(d, k);
        for val in v.as_mut_slice() {
            *val = rng.gen::<f64>() - 0.5;
        }
        orthonormalize_columns(&mut v);
        for _ in 0..self.iterations {
            let xv = xc.matmul(&v)?; // n × k
            let mut xtxv = Matrix::zeros(d, k);
            for (row, proj) in xc.row_iter().zip(xv.row_iter()) {
                for (j, &p) in proj.iter().enumerate() {
                    if p == 0.0 {
                        continue;
                    }
                    for (i, &rv) in row.iter().enumerate() {
                        xtxv.set(i, j, xtxv.get(i, j) + rv * p);
                    }
                }
            }
            xtxv.scale(1.0 / n as f64);
            v = xtxv;
            orthonormalize_columns(&mut v);
        }
        // Explained variance per axis: var(X·v_j).
        let mut variances = Vec::with_capacity(k);
        let xv = xc.matmul(&v)?;
        for j in 0..k {
            let col = xv.column(j);
            variances.push(col.iter().map(|c| c * c).sum::<f64>() / n as f64);
        }
        // Sort axes by decreasing variance for a canonical order.
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&a, &b| variances[b].partial_cmp(&variances[a]).expect("finite"));
        let mut components = Matrix::zeros(k, d);
        let mut explained = Vec::with_capacity(k);
        for (out_row, &j) in order.iter().enumerate() {
            for i in 0..d {
                components.set(out_row, i, v.get(i, j));
            }
            explained.push(variances[j]);
        }
        self.mean = mean;
        self.components = components;
        self.explained_variance = explained;
        Ok(())
    }

    /// Projects rows of `x` onto the principal axes.
    ///
    /// # Errors
    /// Returns [`MlError::NotFitted`] before `fit` or a dimension error.
    pub fn transform(&self, x: &Matrix) -> MlResult<Matrix> {
        if self.mean.is_empty() {
            return Err(MlError::NotFitted("Pca"));
        }
        if x.cols() != self.mean.len() {
            return Err(dim_mismatch(
                format!("x.cols == {}", self.mean.len()),
                format!("x.cols == {}", x.cols()),
            ));
        }
        let mut out = Matrix::zeros(x.rows(), self.n_components);
        for (r, row) in x.row_iter().enumerate() {
            for c in 0..self.n_components {
                let axis = self.components.row(c);
                let mut dot = 0.0;
                for ((v, m), a) in row.iter().zip(&self.mean).zip(axis) {
                    dot += (v - m) * a;
                }
                out.set(r, c, dot);
            }
        }
        Ok(out)
    }

    /// Convenience: fit then transform.
    ///
    /// # Errors
    /// Propagates `fit`/`transform` errors.
    pub fn fit_transform(&mut self, x: &Matrix) -> MlResult<Matrix> {
        self.fit(x)?;
        self.transform(x)
    }

    /// Principal axes as rows (`None` before fit).
    pub fn components(&self) -> Option<&Matrix> {
        if self.mean.is_empty() {
            None
        } else {
            Some(&self.components)
        }
    }

    /// Variance captured by each axis, in decreasing order.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }
}

/// Modified Gram-Schmidt over the columns of `m`, in place.
pub fn orthonormalize_columns(m: &mut Matrix) {
    let (n, d) = (m.rows(), m.cols());
    for c in 0..d {
        for prev in 0..c {
            let mut proj = 0.0;
            for r in 0..n {
                proj += m.get(r, c) * m.get(r, prev);
            }
            for r in 0..n {
                let v = m.get(r, c) - proj * m.get(r, prev);
                m.set(r, c, v);
            }
        }
        let mut norm = 0.0;
        for r in 0..n {
            norm += m.get(r, c) * m.get(r, c);
        }
        let norm = norm.sqrt();
        if norm > 1e-12 {
            for r in 0..n {
                m.set(r, c, m.get(r, c) / norm);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Data stretched along the (1, 1) diagonal with small orthogonal noise.
    fn diagonal_cloud(n: usize) -> Matrix {
        let mut rng = StdRng::seed_from_u64(9);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let t = rng.gen::<f64>() * 20.0 - 10.0;
                let noise = rng.gen::<f64>() * 0.2 - 0.1;
                vec![t + noise, t - noise]
            })
            .collect();
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn first_axis_aligns_with_dominant_direction() {
        let x = diagonal_cloud(400);
        let mut pca = Pca::new(2);
        pca.fit(&x).unwrap();
        let axis = pca.components().unwrap().row(0);
        // (±1/√2, ±1/√2) with equal signs.
        assert!((axis[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.05);
        assert!((axis[0] - axis[1]).abs() < 0.1, "components share sign on the diagonal");
        let ev = pca.explained_variance();
        assert!(ev[0] > ev[1] * 100.0, "diagonal variance dominates: {ev:?}");
    }

    #[test]
    fn axes_are_orthonormal() {
        let x = diagonal_cloud(200);
        let mut pca = Pca::new(2);
        pca.fit(&x).unwrap();
        let c = pca.components().unwrap();
        let dot = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();
        assert!((dot(c.row(0), c.row(0)) - 1.0).abs() < 1e-9);
        assert!((dot(c.row(1), c.row(1)) - 1.0).abs() < 1e-9);
        assert!(dot(c.row(0), c.row(1)).abs() < 1e-9);
    }

    #[test]
    fn transform_centers_and_projects() {
        let x = diagonal_cloud(300);
        let mut pca = Pca::new(1);
        let t = pca.fit_transform(&x).unwrap();
        assert_eq!(t.rows(), 300);
        assert_eq!(t.cols(), 1);
        let mean = t.column(0).iter().sum::<f64>() / 300.0;
        assert!(mean.abs() < 1e-9, "projections are centered");
        // The projection spans roughly the diagonal extent (±10·√2).
        let max = t.column(0).iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max > 10.0);
    }

    #[test]
    fn validates_inputs() {
        let x = diagonal_cloud(10);
        assert!(Pca::new(0).fit(&x).is_err());
        assert!(Pca::new(3).fit(&x).is_err());
        assert!(Pca::new(1).fit(&Matrix::zeros(0, 2)).is_err());
        assert!(matches!(Pca::new(1).transform(&x), Err(MlError::NotFitted(_))));
        let mut pca = Pca::new(1);
        pca.fit(&x).unwrap();
        assert!(pca.transform(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let x = diagonal_cloud(100);
        let mut a = Pca::new(2);
        let mut b = Pca::new(2);
        a.fit(&x).unwrap();
        b.fit(&x).unwrap();
        assert_eq!(a.components().unwrap(), b.components().unwrap());
    }
}
