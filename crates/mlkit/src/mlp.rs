//! Multilayer perceptron regressor — the paper's "DNN" learner (§III-B3).
//!
//! Matches the paper's design choices: ReLU or linear (identity) hidden
//! activations, mean-squared-error loss with an L2 penalty (eq. 9), and a
//! choice of SGD (eq. 10), Adam, or L-BFGS optimizers (the paper found L-BFGS
//! better on small datasets and Adam better on large ones, consistent with
//! scikit-learn's `MLPRegressor`).
//!
//! Inputs and targets are standardized internally so the same learning rates
//! work across datasets whose memory labels span different magnitudes.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::error::{dim_mismatch, MlError, MlResult};
use crate::linalg::Matrix;
use crate::scaler::StandardScaler;
use crate::traits::{Footprint, Regressor};

/// Hidden-layer activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit (the paper's choice for complex datasets).
    Relu,
    /// Identity / linear activation (the paper's choice for simple datasets).
    Identity,
}

impl Activation {
    #[inline]
    fn apply(self, v: f64) -> f64 {
        match self {
            Activation::Relu => v.max(0.0),
            Activation::Identity => v,
        }
    }

    /// Derivative expressed in terms of the *post*-activation value.
    #[inline]
    fn derivative_from_output(self, a: f64) -> f64 {
        match self {
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }
}

/// Optimizer selection (§III-B3 "Optimizer").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Mini-batch stochastic gradient descent with momentum (paper eq. 10).
    Sgd {
        /// Learning rate ε.
        lr: f64,
        /// Classical momentum coefficient.
        momentum: f64,
    },
    /// Adam (Kingma & Ba), the paper's pick for large datasets.
    Adam {
        /// Step size.
        lr: f64,
    },
    /// Limited-memory BFGS with Armijo backtracking, the paper's pick for
    /// small datasets. Runs full-batch.
    Lbfgs {
        /// Number of curvature pairs kept.
        history: usize,
    },
}

/// Hyper-parameters for [`Mlp`].
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Hidden layer widths; the paper's tuned architecture is
    /// `[48, 39, 27, 16, 7, 5]` (six hidden layers).
    pub hidden_layers: Vec<usize>,
    /// Hidden activation.
    pub activation: Activation,
    /// Optimizer.
    pub optimizer: OptimizerKind,
    /// L2 penalty α of eq. 9.
    pub alpha: f64,
    /// Epochs (SGD/Adam) or iterations (L-BFGS).
    pub max_iter: usize,
    /// Mini-batch size for SGD/Adam.
    pub batch_size: usize,
    /// Stop when the epoch loss improves by less than this.
    pub tol: f64,
    /// RNG seed (weight init + shuffling).
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden_layers: vec![48, 39, 27, 16, 7, 5],
            activation: Activation::Relu,
            optimizer: OptimizerKind::Adam { lr: 1e-3 },
            alpha: 1e-4,
            max_iter: 200,
            batch_size: 64,
            tol: 1e-7,
            seed: 42,
        }
    }
}

/// One dense layer: `out = act(in · w + b)`, weights stored input-major
/// (`w[in][out]`) so the forward pass streams rows.
#[derive(Debug, Clone)]
struct Layer {
    w: Matrix, // (fan_in × fan_out)
    b: Vec<f64>,
}

/// Feed-forward MLP regressor with a single linear output unit.
#[derive(Debug, Clone)]
pub struct Mlp {
    config: MlpConfig,
    layers: Vec<Layer>,
    x_scaler: StandardScaler,
    y_mean: f64,
    y_std: f64,
    n_features: usize,
    final_loss: f64,
    epochs_run: usize,
}

impl Mlp {
    /// Creates an unfitted network.
    pub fn new(config: MlpConfig) -> Self {
        Mlp {
            config,
            layers: Vec::new(),
            x_scaler: StandardScaler::new(),
            y_mean: 0.0,
            y_std: 1.0,
            n_features: 0,
            final_loss: f64::INFINITY,
            epochs_run: 0,
        }
    }

    /// Unfitted network with the paper's tuned architecture.
    pub fn default_config() -> Self {
        Mlp::new(MlpConfig::default())
    }

    /// Final training loss (eq. 9) after fit.
    pub fn final_loss(&self) -> f64 {
        self.final_loss
    }

    /// Number of epochs/iterations actually run.
    pub fn epochs_run(&self) -> usize {
        self.epochs_run
    }

    /// Deserializes a network written by [`Regressor::save_params`].
    ///
    /// # Errors
    /// Returns [`MlError::Codec`] on I/O failure, truncation, or invalid
    /// activation/optimizer tags.
    pub fn read_params(r: &mut dyn std::io::Read) -> MlResult<Mlp> {
        use crate::codec as c;
        let hidden_layers = c::read_usize_seq(r)?;
        let activation = match c::read_u8(r)? {
            0 => Activation::Relu,
            1 => Activation::Identity,
            other => return Err(c::codec_err(format!("invalid activation tag {other}"))),
        };
        let optimizer = match c::read_u8(r)? {
            0 => OptimizerKind::Sgd { lr: c::read_f64(r)?, momentum: c::read_f64(r)? },
            1 => OptimizerKind::Adam { lr: c::read_f64(r)? },
            2 => OptimizerKind::Lbfgs { history: c::read_usize(r)? },
            other => return Err(c::codec_err(format!("invalid optimizer tag {other}"))),
        };
        let config = MlpConfig {
            hidden_layers,
            activation,
            optimizer,
            alpha: c::read_f64(r)?,
            max_iter: c::read_usize(r)?,
            batch_size: c::read_usize(r)?,
            tol: c::read_f64(r)?,
            seed: c::read_u64(r)?,
        };
        let n_features = c::read_usize(r)?;
        let y_mean = c::read_f64(r)?;
        let y_std = c::read_f64(r)?;
        let final_loss = c::read_f64(r)?;
        let epochs_run = c::read_usize(r)?;
        let x_scaler = StandardScaler::read_params(r)?;
        let n_layers = c::read_len(r, "mlp layers")?;
        let mut layers = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            let w = c::read_matrix(r)?;
            let b = c::read_f64_seq(r)?;
            if b.len() != w.cols() {
                return Err(c::codec_err(format!(
                    "mlp layer bias length {} does not match weight cols {}",
                    b.len(),
                    w.cols()
                )));
            }
            layers.push(Layer { w, b });
        }
        Ok(Mlp { config, layers, x_scaler, y_mean, y_std, n_features, final_loss, epochs_run })
    }

    /// Layer widths including input and output, e.g. `[k, 48, ..., 1]`.
    pub fn layer_widths(&self) -> Vec<usize> {
        let mut widths = vec![self.n_features];
        for l in &self.layers {
            widths.push(l.w.cols());
        }
        widths
    }

    fn init_layers(&mut self, n_features: usize, rng: &mut StdRng) {
        let mut widths = vec![n_features];
        widths.extend_from_slice(&self.config.hidden_layers);
        widths.push(1);
        self.layers = widths
            .windows(2)
            .map(|w| {
                let (fan_in, fan_out) = (w[0], w[1]);
                // Glorot-uniform initialization.
                let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
                let mut m = Matrix::zeros(fan_in, fan_out);
                for v in m.as_mut_slice() {
                    *v = rng.gen_range(-limit..limit);
                }
                Layer { w: m, b: vec![0.0; fan_out] }
            })
            .collect();
    }

    /// Forward pass over a batch; returns per-layer post-activations
    /// (`acts[0]` is the input batch, `acts.last()` the raw output).
    fn forward(&self, x: &Matrix) -> Vec<Matrix> {
        let n_layers = self.layers.len();
        let mut acts = Vec::with_capacity(n_layers + 1);
        acts.push(x.clone());
        for (li, layer) in self.layers.iter().enumerate() {
            let mut z = acts[li].matmul(&layer.w).expect("layer widths consistent");
            let cols = z.cols();
            let is_output = li == n_layers - 1;
            for r in 0..z.rows() {
                let row = z.row_mut(r);
                for (c, v) in row.iter_mut().enumerate().take(cols) {
                    *v += layer.b[c];
                    if !is_output {
                        *v = self.config.activation.apply(*v);
                    }
                }
            }
            acts.push(z);
        }
        acts
    }

    /// Loss (eq. 9) and parameter gradients for a batch, in layer order.
    fn loss_and_grads(&self, x: &Matrix, y: &[f64]) -> (f64, Vec<(Matrix, Vec<f64>)>) {
        let n = x.rows() as f64;
        let acts = self.forward(x);
        let output = acts.last().expect("forward produced activations");
        // delta at the output: (ŷ − y) / n.
        let mut delta = Matrix::zeros(x.rows(), 1);
        let mut data_loss = 0.0;
        #[allow(clippy::needless_range_loop)] // r indexes the output matrix and y together
        for r in 0..x.rows() {
            let err = output.get(r, 0) - y[r];
            data_loss += err * err;
            delta.set(r, 0, err / n);
        }
        let mut reg_loss = 0.0;
        for l in &self.layers {
            let fn2 = l.w.frobenius_norm();
            reg_loss += fn2 * fn2;
        }
        let alpha = self.config.alpha;
        let loss = data_loss / (2.0 * n) + alpha * reg_loss / (2.0 * n);

        let mut grads: Vec<(Matrix, Vec<f64>)> = Vec::with_capacity(self.layers.len());
        for li in (0..self.layers.len()).rev() {
            let a_prev = &acts[li];
            // grad_w = a_prevᵀ · delta + (α/n) w.
            let mut gw = a_prev.transpose().matmul(&delta).expect("shapes agree");
            for (g, w) in gw.as_mut_slice().iter_mut().zip(self.layers[li].w.as_slice()) {
                *g += alpha / n * w;
            }
            let mut gb = vec![0.0; delta.cols()];
            for r in 0..delta.rows() {
                for (g, v) in gb.iter_mut().zip(delta.row(r)) {
                    *g += v;
                }
            }
            if li > 0 {
                // delta_prev = (delta · wᵀ) ⊙ act'(a_prev).
                let mut d_prev =
                    delta.matmul(&self.layers[li].w.transpose()).expect("shapes agree");
                for r in 0..d_prev.rows() {
                    let a_row = acts[li].row(r);
                    for (dv, &av) in d_prev.row_mut(r).iter_mut().zip(a_row) {
                        *dv *= self.config.activation.derivative_from_output(av);
                    }
                }
                delta = d_prev;
            }
            grads.push((gw, gb));
        }
        grads.reverse();
        (loss, grads)
    }

    fn fit_minibatch(&mut self, x: &Matrix, y: &[f64], rng: &mut StdRng) -> MlResult<()> {
        let n = x.rows();
        let bs = self.config.batch_size.clamp(1, n);
        let mut order: Vec<usize> = (0..n).collect();
        // Optimizer state per layer: (velocity/moment1, moment2) for w and b.
        let mut state: Vec<OptState> =
            self.layers.iter().map(|l| OptState::new(l.w.rows(), l.w.cols())).collect();
        let mut t = 0usize; // Adam time step
        let mut prev_loss = f64::INFINITY;
        for epoch in 0..self.config.max_iter {
            self.epochs_run = epoch + 1;
            order.shuffle(rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(bs) {
                let xb = Matrix::from_rows(
                    &chunk.iter().map(|&i| x.row(i).to_vec()).collect::<Vec<_>>(),
                )?;
                let yb: Vec<f64> = chunk.iter().map(|&i| y[i]).collect();
                let (loss, grads) = self.loss_and_grads(&xb, &yb);
                if !loss.is_finite() {
                    return Err(MlError::NumericalFailure(format!(
                        "non-finite loss at epoch {epoch}"
                    )));
                }
                epoch_loss += loss;
                batches += 1;
                t += 1;
                for ((layer, st), (gw, gb)) in self.layers.iter_mut().zip(&mut state).zip(&grads) {
                    apply_update(&self.config.optimizer, layer, st, gw, gb, t);
                }
            }
            let mean_loss = epoch_loss / batches.max(1) as f64;
            self.final_loss = mean_loss;
            if (prev_loss - mean_loss).abs() < self.config.tol {
                break;
            }
            prev_loss = mean_loss;
        }
        Ok(())
    }

    fn fit_lbfgs(&mut self, x: &Matrix, y: &[f64], history: usize) -> MlResult<()> {
        let mut theta = self.flatten();
        let dim = theta.len();
        let mut s_hist: Vec<Vec<f64>> = Vec::new();
        let mut y_hist: Vec<Vec<f64>> = Vec::new();
        let mut rho_hist: Vec<f64> = Vec::new();

        let eval = |model: &mut Mlp, params: &[f64]| -> (f64, Vec<f64>) {
            model.unflatten(params);
            let (loss, grads) = model.loss_and_grads(x, y);
            let mut flat = Vec::with_capacity(dim);
            for (gw, gb) in &grads {
                flat.extend_from_slice(gw.as_slice());
                flat.extend_from_slice(gb);
            }
            (loss, flat)
        };

        let (mut loss, mut grad) = eval(self, &theta);
        for iter in 0..self.config.max_iter {
            self.epochs_run = iter + 1;
            // Two-loop recursion to get the search direction.
            let mut q = grad.clone();
            let mut alphas = Vec::with_capacity(s_hist.len());
            for i in (0..s_hist.len()).rev() {
                let a = rho_hist[i] * crate::linalg::dot(&s_hist[i], &q);
                for (qv, yv) in q.iter_mut().zip(&y_hist[i]) {
                    *qv -= a * yv;
                }
                alphas.push(a);
            }
            alphas.reverse();
            // Initial Hessian scaling γ = sᵀy / yᵀy.
            if let (Some(s_last), Some(y_last)) = (s_hist.last(), y_hist.last()) {
                let sy = crate::linalg::dot(s_last, y_last);
                let yy = crate::linalg::dot(y_last, y_last);
                if yy > 0.0 && sy > 0.0 {
                    let gamma = sy / yy;
                    for qv in &mut q {
                        *qv *= gamma;
                    }
                }
            }
            for i in 0..s_hist.len() {
                let beta = rho_hist[i] * crate::linalg::dot(&y_hist[i], &q);
                let corr = alphas[i] - beta;
                for (qv, sv) in q.iter_mut().zip(&s_hist[i]) {
                    *qv += corr * sv;
                }
            }
            let direction: Vec<f64> = q.iter().map(|v| -v).collect();
            let dir_dot_grad = crate::linalg::dot(&direction, &grad);
            if dir_dot_grad >= 0.0 {
                break; // not a descent direction; converged or numerical trouble
            }
            // Armijo backtracking line search.
            let mut step = 1.0;
            let c1 = 1e-4;
            let mut accepted = false;
            for _ in 0..30 {
                let candidate: Vec<f64> =
                    theta.iter().zip(&direction).map(|(t, d)| t + step * d).collect();
                let (new_loss, new_grad) = eval(self, &candidate);
                if new_loss <= loss + c1 * step * dir_dot_grad {
                    // Curvature update.
                    let s_vec: Vec<f64> =
                        candidate.iter().zip(&theta).map(|(a, b)| a - b).collect();
                    let y_vec: Vec<f64> = new_grad.iter().zip(&grad).map(|(a, b)| a - b).collect();
                    let sy = crate::linalg::dot(&s_vec, &y_vec);
                    if sy > 1e-12 {
                        if s_hist.len() == history {
                            s_hist.remove(0);
                            y_hist.remove(0);
                            rho_hist.remove(0);
                        }
                        rho_hist.push(1.0 / sy);
                        s_hist.push(s_vec);
                        y_hist.push(y_vec);
                    }
                    let improvement = loss - new_loss;
                    theta = candidate;
                    loss = new_loss;
                    grad = new_grad;
                    accepted = true;
                    if improvement < self.config.tol {
                        self.unflatten(&theta);
                        self.final_loss = loss;
                        return Ok(());
                    }
                    break;
                }
                step *= 0.5;
            }
            if !accepted {
                break;
            }
        }
        self.unflatten(&theta);
        self.final_loss = loss;
        Ok(())
    }

    fn flatten(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for l in &self.layers {
            out.extend_from_slice(l.w.as_slice());
            out.extend_from_slice(&l.b);
        }
        out
    }

    fn unflatten(&mut self, theta: &[f64]) {
        let mut pos = 0;
        for l in &mut self.layers {
            let wn = l.w.rows() * l.w.cols();
            l.w.as_mut_slice().copy_from_slice(&theta[pos..pos + wn]);
            pos += wn;
            let bn = l.b.len();
            l.b.copy_from_slice(&theta[pos..pos + bn]);
            pos += bn;
        }
        debug_assert_eq!(pos, theta.len());
    }
}

/// Per-layer optimizer state (first/second moments for w and b).
struct OptState {
    m_w: Vec<f64>,
    v_w: Vec<f64>,
    m_b: Vec<f64>,
    v_b: Vec<f64>,
}

impl OptState {
    fn new(fan_in: usize, fan_out: usize) -> Self {
        OptState {
            m_w: vec![0.0; fan_in * fan_out],
            v_w: vec![0.0; fan_in * fan_out],
            m_b: vec![0.0; fan_out],
            v_b: vec![0.0; fan_out],
        }
    }
}

fn apply_update(
    opt: &OptimizerKind,
    layer: &mut Layer,
    st: &mut OptState,
    gw: &Matrix,
    gb: &[f64],
    t: usize,
) {
    match *opt {
        OptimizerKind::Sgd { lr, momentum } => {
            for ((w, m), g) in layer.w.as_mut_slice().iter_mut().zip(&mut st.m_w).zip(gw.as_slice())
            {
                *m = momentum * *m - lr * g;
                *w += *m;
            }
            for ((b, m), g) in layer.b.iter_mut().zip(&mut st.m_b).zip(gb) {
                *m = momentum * *m - lr * g;
                *b += *m;
            }
        }
        OptimizerKind::Adam { lr } => {
            const B1: f64 = 0.9;
            const B2: f64 = 0.999;
            const EPS: f64 = 1e-8;
            let bc1 = 1.0 - B1.powi(t as i32);
            let bc2 = 1.0 - B2.powi(t as i32);
            for (((w, m), v), g) in layer
                .w
                .as_mut_slice()
                .iter_mut()
                .zip(&mut st.m_w)
                .zip(&mut st.v_w)
                .zip(gw.as_slice())
            {
                *m = B1 * *m + (1.0 - B1) * g;
                *v = B2 * *v + (1.0 - B2) * g * g;
                *w -= lr * (*m / bc1) / ((*v / bc2).sqrt() + EPS);
            }
            for (((b, m), v), g) in layer.b.iter_mut().zip(&mut st.m_b).zip(&mut st.v_b).zip(gb) {
                *m = B1 * *m + (1.0 - B1) * g;
                *v = B2 * *v + (1.0 - B2) * g * g;
                *b -= lr * (*m / bc1) / ((*v / bc2).sqrt() + EPS);
            }
        }
        OptimizerKind::Lbfgs { .. } => unreachable!("L-BFGS does not use per-batch updates"),
    }
}

impl Footprint for Mlp {
    fn num_parameters(&self) -> usize {
        self.layers.iter().map(|l| l.w.rows() * l.w.cols() + l.b.len()).sum()
    }
}

impl Regressor for Mlp {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> MlResult<()> {
        let n = x.rows();
        if n == 0 || x.cols() == 0 {
            return Err(MlError::EmptyInput("Mlp::fit"));
        }
        if y.len() != n {
            return Err(dim_mismatch(format!("y.len() == {n}"), format!("y.len() == {}", y.len())));
        }
        if self.config.max_iter == 0 {
            return Err(MlError::InvalidHyperparameter("max_iter must be >= 1".into()));
        }
        if self.config.alpha < 0.0 {
            return Err(MlError::InvalidHyperparameter("alpha must be >= 0".into()));
        }
        // Standardize inputs and target.
        let xs = self.x_scaler.fit_transform(x)?;
        self.y_mean = y.iter().sum::<f64>() / n as f64;
        let var = y.iter().map(|v| (v - self.y_mean) * (v - self.y_mean)).sum::<f64>() / n as f64;
        self.y_std = if var > 0.0 { var.sqrt() } else { 1.0 };
        let ys: Vec<f64> = y.iter().map(|v| (v - self.y_mean) / self.y_std).collect();

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.n_features = x.cols();
        self.init_layers(x.cols(), &mut rng);
        match self.config.optimizer {
            OptimizerKind::Lbfgs { history } => self.fit_lbfgs(&xs, &ys, history.max(1)),
            _ => self.fit_minibatch(&xs, &ys, &mut rng),
        }
    }

    fn predict_row(&self, row: &[f64]) -> MlResult<f64> {
        if self.layers.is_empty() {
            return Err(MlError::NotFitted("Mlp"));
        }
        if row.len() != self.n_features {
            return Err(dim_mismatch(
                format!("row.len() == {}", self.n_features),
                format!("row.len() == {}", row.len()),
            ));
        }
        let mut a = row.to_vec();
        self.x_scaler.transform_row(&mut a)?;
        let n_layers = self.layers.len();
        for (li, layer) in self.layers.iter().enumerate() {
            let mut next = layer.b.clone();
            for (i, &av) in a.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let wrow = layer.w.row(i);
                for (nv, &wv) in next.iter_mut().zip(wrow) {
                    *nv += av * wv;
                }
            }
            if li != n_layers - 1 {
                for v in &mut next {
                    *v = self.config.activation.apply(*v);
                }
            }
            a = next;
        }
        Ok(a[0] * self.y_std + self.y_mean)
    }

    fn name(&self) -> &'static str {
        "dnn"
    }

    fn save_params(&self, w: &mut dyn std::io::Write) -> MlResult<()> {
        use crate::codec as c;
        c::write_usize_seq(w, &self.config.hidden_layers)?;
        c::write_u8(
            w,
            match self.config.activation {
                Activation::Relu => 0,
                Activation::Identity => 1,
            },
        )?;
        match self.config.optimizer {
            OptimizerKind::Sgd { lr, momentum } => {
                c::write_u8(w, 0)?;
                c::write_f64(w, lr)?;
                c::write_f64(w, momentum)?;
            }
            OptimizerKind::Adam { lr } => {
                c::write_u8(w, 1)?;
                c::write_f64(w, lr)?;
            }
            OptimizerKind::Lbfgs { history } => {
                c::write_u8(w, 2)?;
                c::write_usize(w, history)?;
            }
        }
        c::write_f64(w, self.config.alpha)?;
        c::write_usize(w, self.config.max_iter)?;
        c::write_usize(w, self.config.batch_size)?;
        c::write_f64(w, self.config.tol)?;
        c::write_u64(w, self.config.seed)?;
        c::write_usize(w, self.n_features)?;
        c::write_f64(w, self.y_mean)?;
        c::write_f64(w, self.y_std)?;
        c::write_f64(w, self.final_loss)?;
        c::write_usize(w, self.epochs_run)?;
        self.x_scaler.write_params(w)?;
        c::write_usize(w, self.layers.len())?;
        for layer in &self.layers {
            c::write_matrix(w, &layer.w)?;
            c::write_f64_seq(w, &layer.b)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{r2, rmse};

    fn linear_data(n: usize) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(17);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen::<f64>() * 2.0 - 1.0, rng.gen::<f64>() * 2.0 - 1.0])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 1.0).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    fn quadratic_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.gen::<f64>() * 2.0 - 1.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * r[0] * 10.0).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn adam_learns_linear_function() {
        let (x, y) = linear_data(300);
        let mut mlp = Mlp::new(MlpConfig {
            hidden_layers: vec![16],
            optimizer: OptimizerKind::Adam { lr: 5e-3 },
            max_iter: 300,
            ..Default::default()
        });
        mlp.fit(&x, &y).unwrap();
        let pred = mlp.predict(&x).unwrap();
        assert!(r2(&y, &pred).unwrap() > 0.98, "r2 = {}", r2(&y, &pred).unwrap());
    }

    #[test]
    fn sgd_learns_linear_function() {
        let (x, y) = linear_data(300);
        let mut mlp = Mlp::new(MlpConfig {
            hidden_layers: vec![8],
            optimizer: OptimizerKind::Sgd { lr: 0.01, momentum: 0.9 },
            max_iter: 400,
            ..Default::default()
        });
        mlp.fit(&x, &y).unwrap();
        assert!(r2(&y, &mlp.predict(&x).unwrap()).unwrap() > 0.95);
    }

    #[test]
    fn lbfgs_learns_quadratic_on_small_data() {
        let (x, y) = quadratic_data(120, 5);
        let mut mlp = Mlp::new(MlpConfig {
            hidden_layers: vec![16, 8],
            optimizer: OptimizerKind::Lbfgs { history: 10 },
            max_iter: 200,
            alpha: 1e-6,
            ..Default::default()
        });
        mlp.fit(&x, &y).unwrap();
        let pred = mlp.predict(&x).unwrap();
        assert!(r2(&y, &pred).unwrap() > 0.95, "r2 = {}", r2(&y, &pred).unwrap());
    }

    #[test]
    fn relu_beats_identity_on_nonlinear_target() {
        let (x, y) = quadratic_data(200, 6);
        let fit = |act: Activation| {
            let mut mlp = Mlp::new(MlpConfig {
                hidden_layers: vec![16, 8],
                activation: act,
                optimizer: OptimizerKind::Adam { lr: 5e-3 },
                max_iter: 300,
                ..Default::default()
            });
            mlp.fit(&x, &y).unwrap();
            rmse(&y, &mlp.predict(&x).unwrap()).unwrap()
        };
        let relu_err = fit(Activation::Relu);
        let lin_err = fit(Activation::Identity);
        // A purely linear net cannot represent x²; ReLU can approximate it.
        assert!(relu_err < lin_err * 0.7, "relu {relu_err} vs identity {lin_err}");
    }

    #[test]
    fn identity_activation_suffices_for_linear_target() {
        let (x, y) = linear_data(200);
        let mut mlp = Mlp::new(MlpConfig {
            hidden_layers: vec![4],
            activation: Activation::Identity,
            optimizer: OptimizerKind::Adam { lr: 1e-2 },
            max_iter: 300,
            ..Default::default()
        });
        mlp.fit(&x, &y).unwrap();
        assert!(r2(&y, &mlp.predict(&x).unwrap()).unwrap() > 0.99);
    }

    #[test]
    fn no_hidden_layers_degenerates_to_linear_model() {
        let (x, y) = linear_data(200);
        let mut mlp = Mlp::new(MlpConfig {
            hidden_layers: vec![],
            optimizer: OptimizerKind::Lbfgs { history: 10 },
            max_iter: 100,
            alpha: 0.0,
            ..Default::default()
        });
        mlp.fit(&x, &y).unwrap();
        assert!(r2(&y, &mlp.predict(&x).unwrap()).unwrap() > 0.999);
        assert_eq!(mlp.layer_widths(), vec![2, 1]);
    }

    #[test]
    fn footprint_matches_architecture() {
        let (x, y) = linear_data(50);
        let mut mlp =
            Mlp::new(MlpConfig { hidden_layers: vec![5, 3], max_iter: 1, ..Default::default() });
        mlp.fit(&x, &y).unwrap();
        // (2*5 + 5) + (5*3 + 3) + (3*1 + 1) = 15 + 18 + 4 = 37.
        assert_eq!(mlp.num_parameters(), 37);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (x, y) = linear_data(100);
        let cfg = MlpConfig { hidden_layers: vec![8], max_iter: 20, ..Default::default() };
        let mut a = Mlp::new(cfg.clone());
        let mut b = Mlp::new(cfg);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
    }

    #[test]
    fn validates_inputs() {
        let (x, y) = linear_data(10);
        let mut mlp = Mlp::default_config();
        assert!(mlp.fit(&x, &y[..5]).is_err());
        assert!(mlp.fit(&Matrix::zeros(0, 2), &[]).is_err());
        let mut bad = Mlp::new(MlpConfig { max_iter: 0, ..Default::default() });
        assert!(bad.fit(&x, &y).is_err());
        let mut bad = Mlp::new(MlpConfig { alpha: -1.0, ..Default::default() });
        assert!(bad.fit(&x, &y).is_err());
        assert!(matches!(Mlp::default_config().predict_row(&[0.0]), Err(MlError::NotFitted(_))));
        mlp.fit(&x, &y).unwrap();
        assert!(mlp.predict_row(&[0.0]).is_err());
    }

    #[test]
    fn early_stopping_on_tol() {
        let (x, y) = linear_data(100);
        let mut mlp = Mlp::new(MlpConfig {
            hidden_layers: vec![4],
            optimizer: OptimizerKind::Adam { lr: 1e-2 },
            max_iter: 5000,
            tol: 1e-3,
            ..Default::default()
        });
        mlp.fit(&x, &y).unwrap();
        assert!(mlp.epochs_run() < 5000);
    }
}
