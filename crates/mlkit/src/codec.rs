//! Dependency-free binary codec primitives shared by every persistable
//! estimator in the workspace.
//!
//! All integers are little-endian; `f64` values are stored as their IEEE-754
//! bit patterns (`to_bits`/`from_bits`), so a round trip through the codec is
//! **bit-exact** — a reloaded model produces bit-identical predictions.
//! Sequences are length-prefixed with a `u64`; decoded lengths are capped at
//! [`MAX_SEQ_LEN`] so a corrupted prefix cannot trigger a pathological
//! allocation.
//!
//! The format of each *model* (which fields, in which order) lives next to
//! the model itself (`Ridge::write_params`, `Tree::write_to`, ...); this
//! module only fixes how scalars, strings, vectors, and matrices are laid
//! out. The container format (magic, versioning, checksums) is defined by
//! `learnedwmp_core::codec`.

use std::io::{Read, Write};

use crate::error::{MlError, MlResult};
use crate::linalg::Matrix;

/// Upper bound on any decoded sequence length (elements, not bytes). Corrupt
/// length prefixes beyond this are rejected instead of allocated.
pub const MAX_SEQ_LEN: usize = 1 << 28;

fn io_err(ctx: &str, e: std::io::Error) -> MlError {
    MlError::Codec(format!("{ctx}: {e}"))
}

/// Builds a [`MlError::Codec`] with a formatted message.
pub fn codec_err(msg: impl Into<String>) -> MlError {
    MlError::Codec(msg.into())
}

/// Writes a single byte.
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure.
pub fn write_u8(w: &mut dyn Write, v: u8) -> MlResult<()> {
    w.write_all(&[v]).map_err(|e| io_err("write u8", e))
}

/// Reads a single byte.
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure or truncation.
pub fn read_u8(r: &mut dyn Read) -> MlResult<u8> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf).map_err(|e| io_err("read u8", e))?;
    Ok(buf[0])
}

/// Writes a little-endian `u16`.
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure.
pub fn write_u16(w: &mut dyn Write, v: u16) -> MlResult<()> {
    w.write_all(&v.to_le_bytes()).map_err(|e| io_err("write u16", e))
}

/// Reads a little-endian `u16`.
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure or truncation.
pub fn read_u16(r: &mut dyn Read) -> MlResult<u16> {
    let mut buf = [0u8; 2];
    r.read_exact(&mut buf).map_err(|e| io_err("read u16", e))?;
    Ok(u16::from_le_bytes(buf))
}

/// Writes a little-endian `u32`.
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure.
pub fn write_u32(w: &mut dyn Write, v: u32) -> MlResult<()> {
    w.write_all(&v.to_le_bytes()).map_err(|e| io_err("write u32", e))
}

/// Reads a little-endian `u32`.
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure or truncation.
pub fn read_u32(r: &mut dyn Read) -> MlResult<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf).map_err(|e| io_err("read u32", e))?;
    Ok(u32::from_le_bytes(buf))
}

/// Writes a little-endian `u64`.
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure.
pub fn write_u64(w: &mut dyn Write, v: u64) -> MlResult<()> {
    w.write_all(&v.to_le_bytes()).map_err(|e| io_err("write u64", e))
}

/// Reads a little-endian `u64`.
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure or truncation.
pub fn read_u64(r: &mut dyn Read) -> MlResult<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).map_err(|e| io_err("read u64", e))?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes a `usize` as a `u64`.
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure.
pub fn write_usize(w: &mut dyn Write, v: usize) -> MlResult<()> {
    write_u64(w, v as u64)
}

/// Reads a `usize` stored as a `u64`, rejecting values that overflow the
/// platform `usize`.
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure, truncation, or overflow.
pub fn read_usize(r: &mut dyn Read) -> MlResult<usize> {
    let v = read_u64(r)?;
    usize::try_from(v).map_err(|_| codec_err(format!("length {v} overflows usize")))
}

/// Reads a sequence length and validates it against [`MAX_SEQ_LEN`].
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure, truncation, or an implausible
/// length (likely corruption).
pub fn read_len(r: &mut dyn Read, what: &str) -> MlResult<usize> {
    let n = read_usize(r)?;
    if n > MAX_SEQ_LEN {
        return Err(codec_err(format!("implausible {what} length {n} (corrupt input?)")));
    }
    Ok(n)
}

/// Writes a bool as one byte.
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure.
pub fn write_bool(w: &mut dyn Write, v: bool) -> MlResult<()> {
    write_u8(w, u8::from(v))
}

/// Reads a bool, rejecting anything other than 0 or 1.
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure, truncation, or an invalid byte.
pub fn read_bool(r: &mut dyn Read) -> MlResult<bool> {
    match read_u8(r)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(codec_err(format!("invalid bool byte {other}"))),
    }
}

/// Writes an `f64` as its IEEE-754 bit pattern (bit-exact round trip).
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure.
pub fn write_f64(w: &mut dyn Write, v: f64) -> MlResult<()> {
    write_u64(w, v.to_bits())
}

/// Reads an `f64` from its IEEE-754 bit pattern.
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure or truncation.
pub fn read_f64(r: &mut dyn Read) -> MlResult<f64> {
    Ok(f64::from_bits(read_u64(r)?))
}

/// Writes a length-prefixed `f64` slice.
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure.
pub fn write_f64_seq(w: &mut dyn Write, vs: &[f64]) -> MlResult<()> {
    write_usize(w, vs.len())?;
    for &v in vs {
        write_f64(w, v)?;
    }
    Ok(())
}

/// Reads a length-prefixed `f64` vector.
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure, truncation, or an implausible
/// length.
pub fn read_f64_seq(r: &mut dyn Read) -> MlResult<Vec<f64>> {
    let n = read_len(r, "f64 sequence")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_f64(r)?);
    }
    Ok(out)
}

/// Writes a length-prefixed `usize` slice (each element as `u64`).
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure.
pub fn write_usize_seq(w: &mut dyn Write, vs: &[usize]) -> MlResult<()> {
    write_usize(w, vs.len())?;
    for &v in vs {
        write_usize(w, v)?;
    }
    Ok(())
}

/// Reads a length-prefixed `usize` vector.
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure, truncation, or an implausible
/// length.
pub fn read_usize_seq(r: &mut dyn Read) -> MlResult<Vec<usize>> {
    let n = read_len(r, "usize sequence")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_usize(r)?);
    }
    Ok(out)
}

/// Writes a length-prefixed UTF-8 string.
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure.
pub fn write_string(w: &mut dyn Write, s: &str) -> MlResult<()> {
    write_usize(w, s.len())?;
    w.write_all(s.as_bytes()).map_err(|e| io_err("write string", e))
}

/// Reads a length-prefixed UTF-8 string.
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure, truncation, an implausible
/// length, or invalid UTF-8.
pub fn read_string(r: &mut dyn Read) -> MlResult<String> {
    let n = read_len(r, "string")?;
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf).map_err(|e| io_err("read string", e))?;
    String::from_utf8(buf).map_err(|e| codec_err(format!("invalid utf-8 in string: {e}")))
}

/// Writes a matrix as `(rows, cols, row-major data)`.
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure.
pub fn write_matrix(w: &mut dyn Write, m: &Matrix) -> MlResult<()> {
    write_usize(w, m.rows())?;
    write_usize(w, m.cols())?;
    for &v in m.as_slice() {
        write_f64(w, v)?;
    }
    Ok(())
}

/// Reads a matrix written by [`write_matrix`].
///
/// # Errors
/// Returns [`MlError::Codec`] on I/O failure, truncation, or implausible
/// dimensions.
pub fn read_matrix(r: &mut dyn Read) -> MlResult<Matrix> {
    let rows = read_len(r, "matrix rows")?;
    let cols = read_len(r, "matrix cols")?;
    let n = rows
        .checked_mul(cols)
        .filter(|&n| n <= MAX_SEQ_LEN)
        .ok_or_else(|| codec_err(format!("implausible matrix shape {rows}x{cols}")))?;
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(read_f64(r)?);
    }
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips_are_bit_exact() {
        let mut buf = Vec::new();
        write_u8(&mut buf, 7).unwrap();
        write_u16(&mut buf, 65_535).unwrap();
        write_u32(&mut buf, 123_456).unwrap();
        write_u64(&mut buf, u64::MAX).unwrap();
        write_bool(&mut buf, true).unwrap();
        write_f64(&mut buf, -0.0).unwrap();
        write_f64(&mut buf, f64::NAN).unwrap();
        let mut r = buf.as_slice();
        let r = &mut r as &mut dyn Read;
        assert_eq!(read_u8(r).unwrap(), 7);
        assert_eq!(read_u16(r).unwrap(), 65_535);
        assert_eq!(read_u32(r).unwrap(), 123_456);
        assert_eq!(read_u64(r).unwrap(), u64::MAX);
        assert!(read_bool(r).unwrap());
        assert_eq!(read_f64(r).unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(read_f64(r).unwrap().is_nan());
    }

    #[test]
    fn sequences_strings_and_matrices_round_trip() {
        let m = Matrix::from_rows(&[vec![1.5, -2.5], vec![0.0, 1e300]]).unwrap();
        let mut buf = Vec::new();
        write_f64_seq(&mut buf, &[1.0, 2.0, 3.0]).unwrap();
        write_usize_seq(&mut buf, &[9, 0, 42]).unwrap();
        write_string(&mut buf, "query_plan").unwrap();
        write_matrix(&mut buf, &m).unwrap();
        let mut r = buf.as_slice();
        let r = &mut r as &mut dyn Read;
        assert_eq!(read_f64_seq(r).unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(read_usize_seq(r).unwrap(), vec![9, 0, 42]);
        assert_eq!(read_string(r).unwrap(), "query_plan");
        let m2 = read_matrix(r).unwrap();
        assert_eq!(m2.rows(), 2);
        assert_eq!(m2.as_slice(), m.as_slice());
    }

    #[test]
    fn every_regressor_round_trips_bit_exact() {
        use crate::traits::Regressor;
        let rows: Vec<Vec<f64>> =
            (0..60).map(|i| vec![i as f64, (i % 7) as f64, (i * i % 13) as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..60).map(|i| (i * 3 % 17) as f64 + i as f64 * 0.5).collect();
        let probe = vec![4.5, 3.0, 8.0];

        let mut models: Vec<Box<dyn Regressor>> = vec![
            Box::new(crate::ridge::Ridge::new(0.5)),
            Box::new(crate::tree::DecisionTree::default_config()),
            Box::new(crate::forest::RandomForest::new(crate::forest::RandomForestConfig {
                n_trees: 8,
                ..Default::default()
            })),
            Box::new(crate::gbdt::GradientBoosting::new(crate::gbdt::GradientBoostingConfig {
                n_estimators: 12,
                ..Default::default()
            })),
            Box::new(crate::mlp::Mlp::new(crate::mlp::MlpConfig {
                hidden_layers: vec![8, 4],
                max_iter: 20,
                ..Default::default()
            })),
        ];
        for model in &mut models {
            model.fit(&x, &y).unwrap();
            let mut buf = Vec::new();
            model.save_params(&mut buf).unwrap();
            let mut r: &[u8] = &buf;
            let reloaded: Box<dyn Regressor> = match model.name() {
                "ridge" => Box::new(crate::ridge::Ridge::read_params(&mut r).unwrap()),
                "dt" => Box::new(crate::tree::DecisionTree::read_params(&mut r).unwrap()),
                "rf" => Box::new(crate::forest::RandomForest::read_params(&mut r).unwrap()),
                "xgb" => Box::new(crate::gbdt::GradientBoosting::read_params(&mut r).unwrap()),
                "dnn" => Box::new(crate::mlp::Mlp::read_params(&mut r).unwrap()),
                other => panic!("unknown model {other}"),
            };
            assert!(r.is_empty(), "{}: trailing bytes after read_params", model.name());
            assert_eq!(
                model.predict_row(&probe).unwrap().to_bits(),
                reloaded.predict_row(&probe).unwrap().to_bits(),
                "{}: reloaded prediction must be bit-identical",
                model.name()
            );
            assert_eq!(model.footprint_bytes(), reloaded.footprint_bytes());
        }
    }

    #[test]
    fn truncation_and_corruption_are_codec_errors() {
        // Truncated scalar.
        let mut r: &[u8] = &[1, 2];
        assert!(matches!(read_u64(&mut r), Err(MlError::Codec(_))));
        // Implausible sequence length.
        let mut buf = Vec::new();
        write_u64(&mut buf, (MAX_SEQ_LEN as u64) + 1).unwrap();
        let mut r = buf.as_slice();
        assert!(matches!(read_f64_seq(&mut (&mut r as &mut dyn Read)), Err(MlError::Codec(_))));
        // Invalid bool.
        let mut r: &[u8] = &[3];
        assert!(matches!(read_bool(&mut r), Err(MlError::Codec(_))));
    }
}
