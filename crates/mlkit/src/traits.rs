//! Core estimator traits: [`Regressor`] (shared fit/predict contract) and
//! [`Footprint`] (structural model-size accounting used by the paper's
//! "model size" comparison, Fig. 8).

use crate::error::{dim_mismatch, MlResult};
use crate::linalg::Matrix;
use crate::multi::MultiHead;

/// Structural size accounting for a trained model.
///
/// The paper compares serialized model sizes in kilobytes; we account for the
/// in-memory size of learned parameters instead (a deterministic equivalent
/// that does not require a serialization dependency).
pub trait Footprint {
    /// Number of learned scalar parameters (weights, thresholds, leaf values,
    /// centroid coordinates, ...).
    fn num_parameters(&self) -> usize;

    /// Estimated size of the persisted model in bytes.
    ///
    /// The default assumes 8 bytes per learned parameter plus a small fixed
    /// header; structured models (trees) override this to account for their
    /// topology (child pointers, feature ids).
    fn footprint_bytes(&self) -> usize {
        self.num_parameters() * 8 + 64
    }

    /// Footprint in kilobytes, the unit used in the paper's Fig. 8.
    fn footprint_kb(&self) -> f64 {
        self.footprint_bytes() as f64 / 1024.0
    }
}

/// A supervised regressor mapping feature rows to a scalar target.
///
/// All models in this crate implement this trait so the LearnedWMP and
/// SingleWMP pipelines can swap learners (DNN / Ridge / DT / RF / XGB) behind
/// one interface, as the paper does in §III-B4.
///
/// The trait is `Send + Sync`: a fitted regressor is immutable state, so a
/// serving engine may share one trained model across concurrent request
/// threads (`&self` prediction from many threads at once). Implementations
/// must not introduce un-synchronized interior mutability — prediction-time
/// caches belong behind a lock or atomics.
pub trait Regressor: Footprint + Send + Sync {
    /// Fits the model on `x` (one row per example) and targets `y`.
    ///
    /// # Errors
    /// Implementations return dimension/emptiness/numerical errors from
    /// [`crate::error::MlError`].
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> MlResult<()>;

    /// Predicts the target for one feature row.
    ///
    /// # Errors
    /// Returns [`crate::error::MlError::NotFitted`] before `fit`, or a
    /// dimension error if the row width disagrees with the training data.
    fn predict_row(&self, row: &[f64]) -> MlResult<f64>;

    /// Predicts targets for every row of `x`.
    ///
    /// # Errors
    /// Same conditions as [`Regressor::predict_row`].
    fn predict(&self, x: &Matrix) -> MlResult<Vec<f64>> {
        x.row_iter().map(|r| self.predict_row(r)).collect()
    }

    /// Number of target outputs this regressor predicts per row.
    ///
    /// Scalar models report `1` (the default). Multi-output models — native
    /// ([`crate::ridge::Ridge`] after [`Regressor::fit_multi`]) or composite
    /// ([`crate::multi::MultiHead`]) — report the number of fitted heads.
    fn n_outputs(&self) -> usize {
        1
    }

    /// Fits the model on `x` against several target columns at once.
    ///
    /// `targets[t]` is the full column for output `t`; every column must have
    /// one entry per row of `x`. The default implementation only accepts a
    /// single column (delegating to [`Regressor::fit`]); models with genuine
    /// multi-output support override it.
    ///
    /// # Errors
    /// Returns a dimension error when the implementation cannot represent
    /// `targets.len()` outputs, plus any error `fit` itself can produce.
    fn fit_multi(&mut self, x: &Matrix, targets: &[Vec<f64>]) -> MlResult<()> {
        match targets {
            [y] => self.fit(x, y),
            _ => Err(dim_mismatch(
                format!(
                    "1 target column (regressor '{}' is scalar; wrap it in MultiHead for \
                     multi-output training)",
                    self.name()
                ),
                format!("{} target columns", targets.len()),
            )),
        }
    }

    /// Predicts all [`Regressor::n_outputs`] targets for one feature row.
    ///
    /// The first element always corresponds to the target passed to scalar
    /// [`Regressor::fit`], so `predict_row_multi(r)?[0] == predict_row(r)?`
    /// for every model in this crate.
    ///
    /// # Errors
    /// Same conditions as [`Regressor::predict_row`].
    fn predict_row_multi(&self, row: &[f64]) -> MlResult<Vec<f64>> {
        Ok(vec![self.predict_row(row)?])
    }

    /// Downcast hook: returns the composite per-target wrapper if this
    /// regressor is a [`MultiHead`], letting persistence layers tag composite
    /// payloads without `Any`-based downcasting.
    fn as_multi_head(&self) -> Option<&MultiHead> {
        None
    }

    /// Short stable name used in reports ("ridge", "xgb", ...).
    fn name(&self) -> &'static str;

    /// Serializes the fitted parameters with the [`crate::codec`] primitives
    /// so a trained model can be persisted behind the trait object.
    ///
    /// The payload is *parameters only* — no magic or versioning; container
    /// concerns belong to the caller's format. Loading is intentionally not
    /// on the trait: deserialization needs the concrete type, so each model
    /// exposes an inherent `read_params` constructor instead.
    ///
    /// # Errors
    /// Returns [`crate::error::MlError::Codec`] on I/O failure or for models
    /// that do not support persistence (the default).
    fn save_params(&self, _w: &mut dyn std::io::Write) -> MlResult<()> {
        Err(crate::error::MlError::Codec(format!(
            "regressor '{}' does not support persistence",
            self.name()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f64);

    impl Footprint for Fixed {
        fn num_parameters(&self) -> usize {
            1
        }
    }

    impl Regressor for Fixed {
        fn fit(&mut self, _x: &Matrix, _y: &[f64]) -> MlResult<()> {
            Ok(())
        }
        fn predict_row(&self, _row: &[f64]) -> MlResult<f64> {
            Ok(self.0)
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    #[test]
    fn default_predict_maps_rows() {
        let m = Fixed(7.0);
        let x = Matrix::zeros(3, 2);
        assert_eq!(m.predict(&x).unwrap(), vec![7.0, 7.0, 7.0]);
    }

    #[test]
    fn default_footprint_accounting() {
        let m = Fixed(0.0);
        assert_eq!(m.footprint_bytes(), 8 + 64);
        assert!((m.footprint_kb() - 72.0 / 1024.0).abs() < 1e-12);
    }
}
