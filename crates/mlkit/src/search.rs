//! K-fold cross-validation and randomized hyper-parameter search — the tuning
//! machinery the paper uses ("randomized search using scikit-learn", §III-B3).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::{MlError, MlResult};
use crate::linalg::Matrix;
use crate::metrics::rmse;
use crate::traits::Regressor;

/// Shuffled k-fold split: returns `(train_indices, test_indices)` per fold.
///
/// # Errors
/// Returns [`MlError::InvalidHyperparameter`] unless `2 <= k <= n`.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> MlResult<Vec<(Vec<usize>, Vec<usize>)>> {
    if k < 2 || k > n {
        return Err(MlError::InvalidHyperparameter(format!("k = {k} must be in 2..={n}")));
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut folds = Vec::with_capacity(k);
    let base = n / k;
    let extra = n % k;
    let mut start = 0;
    for f in 0..k {
        let len = base + usize::from(f < extra);
        let test: Vec<usize> = order[start..start + len].to_vec();
        let train: Vec<usize> =
            order[..start].iter().chain(&order[start + len..]).copied().collect();
        folds.push((train, test));
        start += len;
    }
    Ok(folds)
}

fn take_rows(x: &Matrix, idx: &[usize]) -> MlResult<Matrix> {
    Matrix::from_rows(&idx.iter().map(|&i| x.row(i).to_vec()).collect::<Vec<_>>())
}

/// Cross-validated RMSE of a model family over `n_folds` shuffled folds.
///
/// `build` constructs a fresh unfitted model per fold.
///
/// # Errors
/// Propagates fold-construction and fit/predict errors.
pub fn cross_val_rmse(
    x: &Matrix,
    y: &[f64],
    n_folds: usize,
    seed: u64,
    build: &dyn Fn() -> Box<dyn Regressor>,
) -> MlResult<f64> {
    let folds = kfold_indices(x.rows(), n_folds, seed)?;
    let mut total = 0.0;
    for (train_idx, test_idx) in &folds {
        let x_tr = take_rows(x, train_idx)?;
        let y_tr: Vec<f64> = train_idx.iter().map(|&i| y[i]).collect();
        let x_te = take_rows(x, test_idx)?;
        let y_te: Vec<f64> = test_idx.iter().map(|&i| y[i]).collect();
        let mut model = build();
        model.fit(&x_tr, &y_tr)?;
        let pred = model.predict(&x_te)?;
        total += rmse(&y_te, &pred)?;
    }
    Ok(total / folds.len() as f64)
}

/// Result of a randomized search: the winning candidate and its CV score.
#[derive(Debug, Clone)]
pub struct SearchOutcome<C> {
    /// The best candidate configuration.
    pub best: C,
    /// Its cross-validated RMSE.
    pub cv_rmse: f64,
    /// Every evaluated `(candidate, score)` pair, in evaluation order.
    pub trials: Vec<(C, f64)>,
}

/// Randomized hyper-parameter search: samples `n_candidates` configurations,
/// scores each with `n_folds`-fold CV, and returns the best.
///
/// # Errors
/// Returns [`MlError::InvalidHyperparameter`] for zero candidates and
/// propagates CV errors.
pub fn randomized_search<C: Clone>(
    x: &Matrix,
    y: &[f64],
    n_candidates: usize,
    n_folds: usize,
    seed: u64,
    sample: &dyn Fn(&mut StdRng) -> C,
    build: &dyn Fn(&C) -> Box<dyn Regressor>,
) -> MlResult<SearchOutcome<C>> {
    if n_candidates == 0 {
        return Err(MlError::InvalidHyperparameter("n_candidates must be >= 1".into()));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trials: Vec<(C, f64)> = Vec::with_capacity(n_candidates);
    for trial in 0..n_candidates {
        let candidate = sample(&mut rng);
        let score =
            cross_val_rmse(x, y, n_folds, seed.wrapping_add(trial as u64), &|| build(&candidate))?;
        trials.push((candidate, score));
    }
    let (best, cv_rmse) = trials
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite CV scores"))
        .map(|(c, s)| (c.clone(), *s))
        .expect("at least one trial");
    Ok(SearchOutcome { best, cv_rmse, trials })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ridge::Ridge;
    use rand::Rng;

    #[test]
    fn kfold_partitions_everything_exactly_once() {
        let folds = kfold_indices(10, 3, 1).unwrap();
        assert_eq!(folds.len(), 3);
        let mut seen: Vec<usize> = folds.iter().flat_map(|(_, te)| te.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        for (tr, te) in &folds {
            assert_eq!(tr.len() + te.len(), 10);
            assert!(te.iter().all(|i| !tr.contains(i)));
        }
    }

    #[test]
    fn kfold_validates_k() {
        assert!(kfold_indices(5, 1, 0).is_err());
        assert!(kfold_indices(5, 6, 0).is_err());
        assert!(kfold_indices(5, 5, 0).is_ok());
    }

    fn noisy_linear(n: usize) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(2);
        let rows: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.gen::<f64>()]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + rng.gen::<f64>() * 0.01).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn cross_val_rmse_is_small_for_good_model() {
        let (x, y) = noisy_linear(60);
        let score =
            cross_val_rmse(&x, &y, 4, 0, &|| Box::new(Ridge::new(1e-6)) as Box<dyn Regressor>)
                .unwrap();
        assert!(score < 0.05, "score = {score}");
    }

    #[test]
    fn randomized_search_prefers_small_alpha_on_clean_data() {
        let (x, y) = noisy_linear(60);
        let outcome = randomized_search(
            &x,
            &y,
            8,
            3,
            0,
            &|rng: &mut StdRng| 10f64.powf(rng.gen_range(-6.0..4.0)),
            &|alpha: &f64| Box::new(Ridge::new(*alpha)) as Box<dyn Regressor>,
        )
        .unwrap();
        assert_eq!(outcome.trials.len(), 8);
        // On clean linear data less regularization is better; the winner must
        // beat heavy shrinkage candidates.
        assert!(outcome.best < 100.0);
        let worst = outcome.trials.iter().map(|(_, s)| *s).fold(f64::NEG_INFINITY, f64::max);
        assert!(outcome.cv_rmse <= worst);
    }

    #[test]
    fn randomized_search_rejects_zero_candidates() {
        let (x, y) = noisy_linear(20);
        let r = randomized_search(&x, &y, 0, 3, 0, &|_rng: &mut StdRng| 1.0, &|a: &f64| {
            Box::new(Ridge::new(*a)) as Box<dyn Regressor>
        });
        assert!(r.is_err());
    }
}
