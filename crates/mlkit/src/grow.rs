//! Shared histogram-based regression-tree grower.
//!
//! One grower serves all three tree learners: CART uses `lambda == 0` (leaf =
//! mean, gain = SSE reduction up to a constant factor), the GBDT passes the
//! XGBoost-style regularized gain (`lambda`, `gamma`), and the Random Forest
//! adds per-node feature subsampling. With squared loss the Hessian of every
//! example is 1, so node statistics reduce to `(count, target sum)`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::binned::BinnedMatrix;

/// A node of a grown tree, stored in a flat arena.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeNode {
    /// Internal split: go left iff `value[feature] <= threshold`.
    Split {
        /// Feature index the split tests.
        feature: u32,
        /// Raw-value threshold ("left iff <=").
        threshold: f64,
        /// Arena index of the left child.
        left: u32,
        /// Arena index of the right child.
        right: u32,
    },
    /// Terminal node carrying the prediction contribution.
    Leaf {
        /// Predicted value (mean for CART, regularized weight for GBDT).
        value: f64,
    },
}

/// A grown regression tree (flat arena, root at index 0).
#[derive(Debug, Clone, Default)]
pub struct Tree {
    nodes: Vec<TreeNode>,
}

impl Tree {
    /// Walks the tree for one raw (un-binned) feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                TreeNode::Leaf { value } => return *value,
                TreeNode::Split { feature, threshold, left, right } => {
                    idx = if row[*feature as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Total node count (splits + leaves).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, TreeNode::Leaf { .. })).count()
    }

    /// Serializes the node arena (tag byte per node: 0 = leaf, 1 = split).
    ///
    /// # Errors
    /// Returns [`crate::error::MlError::Codec`] on I/O failure.
    pub fn write_to(&self, w: &mut dyn std::io::Write) -> crate::error::MlResult<()> {
        use crate::codec as c;
        c::write_usize(w, self.nodes.len())?;
        for node in &self.nodes {
            match node {
                TreeNode::Leaf { value } => {
                    c::write_u8(w, 0)?;
                    c::write_f64(w, *value)?;
                }
                TreeNode::Split { feature, threshold, left, right } => {
                    c::write_u8(w, 1)?;
                    c::write_u32(w, *feature)?;
                    c::write_f64(w, *threshold)?;
                    c::write_u32(w, *left)?;
                    c::write_u32(w, *right)?;
                }
            }
        }
        Ok(())
    }

    /// Deserializes a tree written by [`Tree::write_to`], validating that
    /// every split's children point strictly forward in the arena (the
    /// invariant the grower maintains), so a corrupted file cannot produce a
    /// tree whose traversal loops forever.
    ///
    /// # Errors
    /// Returns [`crate::error::MlError::Codec`] on I/O failure, truncation,
    /// or a malformed arena.
    pub fn read_from(r: &mut dyn std::io::Read) -> crate::error::MlResult<Tree> {
        use crate::codec as c;
        let n = c::read_len(r, "tree nodes")?;
        if n == 0 {
            return Err(c::codec_err("tree must have at least one node"));
        }
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            match c::read_u8(r)? {
                0 => nodes.push(TreeNode::Leaf { value: c::read_f64(r)? }),
                1 => {
                    let feature = c::read_u32(r)?;
                    let threshold = c::read_f64(r)?;
                    let left = c::read_u32(r)?;
                    let right = c::read_u32(r)?;
                    let (lo, hi) = (i as u32, n as u32);
                    if left <= lo || left >= hi || right <= lo || right >= hi {
                        return Err(c::codec_err(format!(
                            "tree node {i}: children ({left}, {right}) must lie in ({lo}, {hi})"
                        )));
                    }
                    nodes.push(TreeNode::Split { feature, threshold, left, right });
                }
                other => return Err(c::codec_err(format!("invalid tree node tag {other}"))),
            }
        }
        Ok(Tree { nodes })
    }

    /// Maximum depth (root = depth 0); useful in tests.
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[TreeNode], idx: usize) -> usize {
            match &nodes[idx] {
                TreeNode::Leaf { .. } => 0,
                TreeNode::Split { left, right, .. } => {
                    1 + rec(nodes, *left as usize).max(rec(nodes, *right as usize))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }
}

/// Growth hyper-parameters shared by the tree learners.
#[derive(Debug, Clone)]
pub struct GrowParams {
    /// Maximum tree depth (root at depth 0).
    pub max_depth: usize,
    /// Minimum examples required to consider splitting a node.
    pub min_samples_split: usize,
    /// Minimum examples each child must keep.
    pub min_samples_leaf: usize,
    /// L2 regularization on leaf values (XGBoost `lambda`; 0 for CART).
    pub lambda: f64,
    /// Minimum gain required to accept a split (XGBoost `gamma`).
    pub gamma: f64,
    /// If set, the number of features sampled per node (Random Forest `mtry`).
    pub feature_subsample: Option<usize>,
}

impl Default for GrowParams {
    fn default() -> Self {
        GrowParams {
            max_depth: 6,
            min_samples_split: 2,
            min_samples_leaf: 1,
            lambda: 0.0,
            gamma: 1e-12,
            feature_subsample: None,
        }
    }
}

struct Grower<'a> {
    binned: &'a BinnedMatrix,
    targets: &'a [f64],
    params: &'a GrowParams,
    nodes: Vec<TreeNode>,
    features: Vec<usize>,
    rng: StdRng,
}

/// Score of a node under the regularized objective: `s² / (n + λ)`.
#[inline]
fn node_score(sum: f64, count: f64, lambda: f64) -> f64 {
    sum * sum / (count + lambda)
}

impl<'a> Grower<'a> {
    fn leaf(&mut self, count: f64, sum: f64) -> u32 {
        let value =
            if count + self.params.lambda > 0.0 { sum / (count + self.params.lambda) } else { 0.0 };
        self.nodes.push(TreeNode::Leaf { value });
        (self.nodes.len() - 1) as u32
    }

    fn grow(&mut self, rows: &mut [u32], depth: usize) -> u32 {
        let n = rows.len();
        let sum: f64 = rows.iter().map(|&r| self.targets[r as usize]).sum();
        if depth >= self.params.max_depth || n < self.params.min_samples_split || n < 2 {
            return self.leaf(n as f64, sum);
        }

        // Feature subset for this node (Random Forest style) or all features.
        // Like scikit-learn, the search does not stop at `mtry` features if
        // none of them admits a valid partition: the remaining features are
        // inspected one by one until a split is found or all are exhausted.
        let best = match self.params.feature_subsample {
            Some(m) if m < self.features.len() => {
                let mut fs = self.features.clone();
                fs.shuffle(&mut self.rng);
                let mut best = self.best_split(rows, &fs[..m], sum);
                let mut next = m;
                while best.is_none() && next < fs.len() {
                    best = self.best_split(rows, &fs[next..next + 1], sum);
                    next += 1;
                }
                best
            }
            _ => self.best_split(rows, &self.features, sum),
        };

        let Some((_, feature, bin)) = best else {
            return self.leaf(n as f64, sum);
        };

        // Partition rows in place: codes <= bin go left.
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            if self.binned.row_codes(rows[lo] as usize)[feature] as usize <= bin {
                lo += 1;
            } else {
                hi -= 1;
                rows.swap(lo, hi);
            }
        }
        debug_assert!(lo > 0 && lo < n, "split must separate rows");

        let threshold = self.binned.threshold(feature, bin);
        // Reserve the split slot before recursing so the root lands at index 0.
        self.nodes.push(TreeNode::Leaf { value: 0.0 });
        let me = (self.nodes.len() - 1) as u32;
        let (left_rows, right_rows) = rows.split_at_mut(lo);
        let left = self.grow(left_rows, depth + 1);
        let right = self.grow(right_rows, depth + 1);
        self.nodes[me as usize] =
            TreeNode::Split { feature: feature as u32, threshold, left, right };
        me
    }

    /// Best `(gain, feature, bin)` split over `feats`, or `None` when no
    /// split satisfies the leaf-size and `gamma` constraints.
    fn best_split(&self, rows: &[u32], feats: &[usize], sum: f64) -> Option<(f64, usize, usize)> {
        let n = rows.len();
        // Histogram accumulation: (count, target sum) per bin per feature.
        let offsets: Vec<usize> = {
            let mut off = Vec::with_capacity(feats.len());
            let mut acc = 0usize;
            for &f in feats {
                off.push(acc);
                acc += self.binned.n_bins(f);
            }
            off.push(acc);
            off
        };
        let total_bins = *offsets.last().expect("offsets non-empty");
        let mut hist_cnt = vec![0u32; total_bins];
        let mut hist_sum = vec![0.0f64; total_bins];
        for &r in rows.iter() {
            let codes = self.binned.row_codes(r as usize);
            let t = self.targets[r as usize];
            for (fi, &f) in feats.iter().enumerate() {
                let slot = offsets[fi] + codes[f] as usize;
                hist_cnt[slot] += 1;
                hist_sum[slot] += t;
            }
        }

        // Best split search: prefix scan per feature over bin boundaries.
        let lambda = self.params.lambda;
        let parent_score = node_score(sum, n as f64, lambda);
        let min_leaf = self.params.min_samples_leaf as u32;
        let mut best: Option<(f64, usize, usize)> = None; // (gain, feature, bin)
        for (fi, &f) in feats.iter().enumerate() {
            let nbins = self.binned.n_bins(f);
            if nbins < 2 {
                continue;
            }
            let base = offsets[fi];
            let mut left_cnt = 0u32;
            let mut left_sum = 0.0f64;
            for b in 0..nbins - 1 {
                left_cnt += hist_cnt[base + b];
                left_sum += hist_sum[base + b];
                let right_cnt = n as u32 - left_cnt;
                if left_cnt < min_leaf || right_cnt < min_leaf {
                    continue;
                }
                let right_sum = sum - left_sum;
                let gain = 0.5
                    * (node_score(left_sum, left_cnt as f64, lambda)
                        + node_score(right_sum, right_cnt as f64, lambda)
                        - parent_score);
                if gain > self.params.gamma && best.is_none_or(|(bg, _, _)| gain > bg) {
                    best = Some((gain, f, b));
                }
            }
        }
        best
    }
}

/// Grows one tree over `rows` (indices into `binned`/`targets`).
///
/// `seed` controls feature subsampling only; growth is otherwise
/// deterministic.
pub fn grow_tree(
    binned: &BinnedMatrix,
    targets: &[f64],
    rows: &mut [u32],
    params: &GrowParams,
    seed: u64,
) -> Tree {
    use rand::SeedableRng;
    let mut grower = Grower {
        binned,
        targets,
        params,
        nodes: Vec::new(),
        features: (0..binned.cols()).collect(),
        rng: StdRng::seed_from_u64(seed),
    };
    if rows.is_empty() {
        grower.nodes.push(TreeNode::Leaf { value: 0.0 });
    } else {
        grower.grow(rows, 0);
    }
    Tree { nodes: grower.nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Matrix;

    fn step_data() -> (Matrix, Vec<f64>) {
        // y = 10 for x < 5, else 20 — one split suffices.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 5 { 10.0 } else { 20.0 }).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn learns_a_step_function_with_one_split() {
        let (x, y) = step_data();
        let binned = BinnedMatrix::from_matrix(&x, 32).unwrap();
        let mut rows: Vec<u32> = (0..20).collect();
        let tree = grow_tree(&binned, &y, &mut rows, &GrowParams::default(), 0);
        assert!((tree.predict_row(&[2.0]) - 10.0).abs() < 1e-9);
        assert!((tree.predict_row(&[10.0]) - 20.0).abs() < 1e-9);
        assert_eq!(tree.n_leaves(), 2, "pure children should not split further");
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let (x, _) = step_data();
        let y = vec![5.0; 20];
        let binned = BinnedMatrix::from_matrix(&x, 32).unwrap();
        let mut rows: Vec<u32> = (0..20).collect();
        let tree = grow_tree(&binned, &y, &mut rows, &GrowParams::default(), 0);
        assert_eq!(tree.n_nodes(), 1);
        assert!((tree.predict_row(&[0.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn respects_max_depth() {
        let rows_data: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let x = Matrix::from_rows(&rows_data).unwrap();
        let binned = BinnedMatrix::from_matrix(&x, 64).unwrap();
        let mut rows: Vec<u32> = (0..64).collect();
        let params = GrowParams { max_depth: 2, ..GrowParams::default() };
        let tree = grow_tree(&binned, &y, &mut rows, &params, 0);
        assert!(tree.depth() <= 2);
        assert!(tree.n_leaves() <= 4);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let (x, y) = step_data();
        let binned = BinnedMatrix::from_matrix(&x, 32).unwrap();
        let mut rows: Vec<u32> = (0..20).collect();
        // min leaf of 8 forbids the natural 5/15 split.
        let params = GrowParams { min_samples_leaf: 8, ..GrowParams::default() };
        let tree = grow_tree(&binned, &y, &mut rows, &params, 0);
        fn check(nodes_depth: &Tree, x: &Matrix, rows: &[u32]) {
            // Every leaf region must contain >= 8 training rows.
            let mut counts = std::collections::HashMap::new();
            for &r in rows {
                let mut idx = 0usize;
                loop {
                    match &nodes_depth.nodes[idx] {
                        TreeNode::Leaf { .. } => break,
                        TreeNode::Split { feature, threshold, left, right } => {
                            idx = if x.get(r as usize, *feature as usize) <= *threshold {
                                *left as usize
                            } else {
                                *right as usize
                            };
                        }
                    }
                }
                *counts.entry(idx).or_insert(0usize) += 1;
            }
            for (_, c) in counts {
                assert!(c >= 8);
            }
        }
        let all: Vec<u32> = (0..20).collect();
        check(&tree, &x, &all);
    }

    #[test]
    fn lambda_shrinks_leaf_values() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let y = vec![10.0, 10.0];
        let binned = BinnedMatrix::from_matrix(&x, 8).unwrap();
        let mut rows: Vec<u32> = vec![0, 1];
        let params = GrowParams { lambda: 2.0, max_depth: 0, ..GrowParams::default() };
        let tree = grow_tree(&binned, &y, &mut rows, &params, 0);
        // leaf = sum / (n + lambda) = 20 / 4 = 5.
        assert!((tree.predict_row(&[0.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn gamma_blocks_weak_splits() {
        let (x, y) = step_data();
        let binned = BinnedMatrix::from_matrix(&x, 32).unwrap();
        let mut rows: Vec<u32> = (0..20).collect();
        let params = GrowParams { gamma: 1e9, ..GrowParams::default() };
        let tree = grow_tree(&binned, &y, &mut rows, &params, 0);
        assert_eq!(tree.n_nodes(), 1, "huge gamma must forbid all splits");
    }

    #[test]
    fn empty_rows_give_zero_leaf() {
        let x = Matrix::from_rows(&[vec![0.0]]).unwrap();
        let binned = BinnedMatrix::from_matrix(&x, 8).unwrap();
        let mut rows: Vec<u32> = vec![];
        let tree = grow_tree(&binned, &[0.0], &mut rows, &GrowParams::default(), 0);
        assert_eq!(tree.predict_row(&[1.0]), 0.0);
    }

    #[test]
    fn feature_subsampling_still_learns() {
        // Two features; only feature 1 is informative. With mtry = 1 some nodes
        // see only feature 0, but depth lets the tree recover.
        let rows_data: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 3) as f64, i as f64]).collect();
        let y: Vec<f64> = (0..40).map(|i| if i < 20 { 0.0 } else { 100.0 }).collect();
        let x = Matrix::from_rows(&rows_data).unwrap();
        let binned = BinnedMatrix::from_matrix(&x, 32).unwrap();
        let mut rows: Vec<u32> = (0..40).collect();
        let params =
            GrowParams { feature_subsample: Some(1), max_depth: 8, ..GrowParams::default() };
        let tree = grow_tree(&binned, &y, &mut rows, &params, 7);
        let pred_low = tree.predict_row(&[0.0, 5.0]);
        let pred_high = tree.predict_row(&[0.0, 35.0]);
        assert!(pred_low < 50.0 && pred_high > 50.0);
    }
}
