//! CART-style regression decision tree — the paper's "DT" learner (§III-B4).

use crate::binned::BinnedMatrix;
use crate::error::{dim_mismatch, MlError, MlResult};
use crate::grow::{grow_tree, GrowParams, Tree};
use crate::linalg::Matrix;
use crate::traits::{Footprint, Regressor};

/// Hyper-parameters for [`DecisionTree`].
#[derive(Debug, Clone)]
pub struct DecisionTreeConfig {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Number of quantile bins used for split finding.
    pub max_bins: usize,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        DecisionTreeConfig { max_depth: 8, min_samples_split: 4, min_samples_leaf: 2, max_bins: 64 }
    }
}

/// A single regression tree trained with variance-reduction splits.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    config: DecisionTreeConfig,
    tree: Option<Tree>,
    n_features: usize,
}

impl DecisionTree {
    /// Creates an unfitted tree.
    pub fn new(config: DecisionTreeConfig) -> Self {
        DecisionTree { config, tree: None, n_features: 0 }
    }

    /// Unfitted tree with default hyper-parameters.
    pub fn default_config() -> Self {
        DecisionTree::new(DecisionTreeConfig::default())
    }

    /// Node count of the fitted tree (0 before fit); drives the footprint.
    pub fn n_nodes(&self) -> usize {
        self.tree.as_ref().map_or(0, Tree::n_nodes)
    }

    /// Leaf count of the fitted tree (0 before fit).
    pub fn n_leaves(&self) -> usize {
        self.tree.as_ref().map_or(0, Tree::n_leaves)
    }

    /// Deserializes a model written by [`Regressor::save_params`].
    ///
    /// # Errors
    /// Returns [`MlError::Codec`] on I/O failure, truncation, or a malformed
    /// tree arena.
    pub fn read_params(r: &mut dyn std::io::Read) -> MlResult<DecisionTree> {
        use crate::codec as c;
        let config = DecisionTreeConfig {
            max_depth: c::read_usize(r)?,
            min_samples_split: c::read_usize(r)?,
            min_samples_leaf: c::read_usize(r)?,
            max_bins: c::read_usize(r)?,
        };
        let n_features = c::read_usize(r)?;
        let tree = if c::read_bool(r)? { Some(Tree::read_from(r)?) } else { None };
        Ok(DecisionTree { config, tree, n_features })
    }
}

impl Footprint for DecisionTree {
    fn num_parameters(&self) -> usize {
        // Each node carries (feature, threshold, children) or a value; count
        // one scalar parameter per node plus one per split for the threshold.
        self.n_nodes()
    }

    fn footprint_bytes(&self) -> usize {
        // feature(4) + threshold(8) + 2 child indices(8) ≈ 24 bytes per node.
        self.n_nodes() * 24 + 64
    }
}

impl Regressor for DecisionTree {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> MlResult<()> {
        if x.rows() == 0 || x.cols() == 0 {
            return Err(MlError::EmptyInput("DecisionTree::fit"));
        }
        if y.len() != x.rows() {
            return Err(dim_mismatch(
                format!("y.len() == {}", x.rows()),
                format!("y.len() == {}", y.len()),
            ));
        }
        if self.config.max_depth == 0 && x.rows() > 1 {
            // Allowed: the tree degenerates to the target mean.
        }
        let binned = BinnedMatrix::from_matrix(x, self.config.max_bins)?;
        let params = GrowParams {
            max_depth: self.config.max_depth,
            min_samples_split: self.config.min_samples_split,
            min_samples_leaf: self.config.min_samples_leaf,
            lambda: 0.0,
            gamma: 1e-12,
            feature_subsample: None,
        };
        let mut rows: Vec<u32> = (0..x.rows() as u32).collect();
        self.tree = Some(grow_tree(&binned, y, &mut rows, &params, 0));
        self.n_features = x.cols();
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> MlResult<f64> {
        let tree = self.tree.as_ref().ok_or(MlError::NotFitted("DecisionTree"))?;
        if row.len() != self.n_features {
            return Err(dim_mismatch(
                format!("row.len() == {}", self.n_features),
                format!("row.len() == {}", row.len()),
            ));
        }
        Ok(tree.predict_row(row))
    }

    fn name(&self) -> &'static str {
        "dt"
    }

    fn save_params(&self, w: &mut dyn std::io::Write) -> MlResult<()> {
        use crate::codec as c;
        c::write_usize(w, self.config.max_depth)?;
        c::write_usize(w, self.config.min_samples_split)?;
        c::write_usize(w, self.config.min_samples_leaf)?;
        c::write_usize(w, self.config.max_bins)?;
        c::write_usize(w, self.n_features)?;
        c::write_bool(w, self.tree.is_some())?;
        if let Some(tree) = &self.tree {
            tree.write_to(w)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fits_piecewise_constant_target_exactly() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..30)
            .map(|i| {
                if i < 10 {
                    1.0
                } else if i < 20 {
                    5.0
                } else {
                    -2.0
                }
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut dt = DecisionTree::default_config();
        dt.fit(&x, &y).unwrap();
        let pred = dt.predict(&x).unwrap();
        assert!(rmse(&y, &pred).unwrap() < 1e-9);
    }

    #[test]
    fn approximates_smooth_function() {
        let mut rng = StdRng::seed_from_u64(3);
        let rows: Vec<Vec<f64>> = (0..400).map(|_| vec![rng.gen::<f64>() * 6.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0].sin() * 10.0).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut dt = DecisionTree::new(DecisionTreeConfig { max_depth: 10, ..Default::default() });
        dt.fit(&x, &y).unwrap();
        let pred = dt.predict(&x).unwrap();
        assert!(rmse(&y, &pred).unwrap() < 1.0, "deep tree should fit sin well in-sample");
    }

    #[test]
    fn depth_zero_predicts_the_mean() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut dt = DecisionTree::new(DecisionTreeConfig { max_depth: 0, ..Default::default() });
        dt.fit(&x, &y).unwrap();
        assert!((dt.predict_row(&[100.0]).unwrap() - 4.5).abs() < 1e-9);
        assert_eq!(dt.n_nodes(), 1);
    }

    #[test]
    fn multi_feature_split_selection() {
        // Feature 0 is noise; feature 1 determines y.
        let mut rng = StdRng::seed_from_u64(11);
        let rows: Vec<Vec<f64>> =
            (0..100).map(|i| vec![rng.gen::<f64>(), (i % 2) as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[1] * 100.0).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut dt = DecisionTree::default_config();
        dt.fit(&x, &y).unwrap();
        assert!((dt.predict_row(&[0.5, 0.0]).unwrap() - 0.0).abs() < 1e-9);
        assert!((dt.predict_row(&[0.5, 1.0]).unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn validates_inputs() {
        let mut dt = DecisionTree::default_config();
        assert!(dt.fit(&Matrix::zeros(0, 1), &[]).is_err());
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(dt.fit(&x, &[1.0]).is_err());
        assert!(matches!(
            DecisionTree::default_config().predict_row(&[1.0]),
            Err(MlError::NotFitted(_))
        ));
        dt.fit(&x, &[1.0, 2.0]).unwrap();
        assert!(dt.predict_row(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn footprint_grows_with_tree_size() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut shallow =
            DecisionTree::new(DecisionTreeConfig { max_depth: 2, ..Default::default() });
        let mut deep = DecisionTree::new(DecisionTreeConfig { max_depth: 8, ..Default::default() });
        shallow.fit(&x, &y).unwrap();
        deep.fit(&x, &y).unwrap();
        assert!(deep.footprint_bytes() > shallow.footprint_bytes());
        assert!(shallow.n_leaves() <= 4);
    }
}
