//! Gradient-boosted decision trees with XGBoost-style second-order objective —
//! the paper's "XGB" learner (§III-B4), used for every sensitivity experiment
//! (Figs. 9–11).
//!
//! For squared loss the per-example gradient is `pred − y` and the Hessian is
//! 1, so each boosting round fits a regularized tree to the residuals with the
//! XGBoost gain `½[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ` and leaf
//! weights `G/(H+λ)` scaled by the learning rate.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::binned::BinnedMatrix;
use crate::error::{dim_mismatch, MlError, MlResult};
use crate::grow::{grow_tree, GrowParams, Tree};
use crate::linalg::Matrix;
use crate::traits::{Footprint, Regressor};

/// Hyper-parameters for [`GradientBoosting`].
#[derive(Debug, Clone)]
pub struct GradientBoostingConfig {
    /// Number of boosting rounds.
    pub n_estimators: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// L2 regularization on leaf weights (XGBoost `lambda`).
    pub lambda: f64,
    /// Minimum split gain (XGBoost `gamma`).
    pub gamma: f64,
    /// Row subsampling fraction per round (stochastic gradient boosting).
    pub subsample: f64,
    /// Number of quantile bins for split finding.
    pub max_bins: usize,
    /// RNG seed for row subsampling.
    pub seed: u64,
    /// Early-stop when the training RMSE improvement over a round falls below
    /// this threshold (`0` disables early stopping).
    pub tol: f64,
}

impl Default for GradientBoostingConfig {
    fn default() -> Self {
        GradientBoostingConfig {
            n_estimators: 100,
            learning_rate: 0.1,
            max_depth: 6,
            min_samples_split: 4,
            min_samples_leaf: 2,
            lambda: 1.0,
            gamma: 0.0,
            subsample: 1.0,
            max_bins: 64,
            seed: 42,
            tol: 0.0,
        }
    }
}

/// Boosted tree ensemble: `pred = base + lr · Σ tree_i`.
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    config: GradientBoostingConfig,
    base_score: f64,
    trees: Vec<Tree>,
    n_features: usize,
}

impl GradientBoosting {
    /// Creates an unfitted booster.
    pub fn new(config: GradientBoostingConfig) -> Self {
        GradientBoosting { config, base_score: 0.0, trees: Vec::new(), n_features: 0 }
    }

    /// Unfitted booster with default hyper-parameters.
    pub fn default_config() -> Self {
        GradientBoosting::new(GradientBoostingConfig::default())
    }

    /// Number of boosting rounds actually performed.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total node count across the ensemble.
    pub fn total_nodes(&self) -> usize {
        self.trees.iter().map(Tree::n_nodes).sum()
    }

    /// Deserializes a model written by [`Regressor::save_params`].
    ///
    /// # Errors
    /// Returns [`MlError::Codec`] on I/O failure, truncation, or a malformed
    /// tree arena.
    pub fn read_params(r: &mut dyn std::io::Read) -> MlResult<GradientBoosting> {
        use crate::codec as c;
        let config = GradientBoostingConfig {
            n_estimators: c::read_usize(r)?,
            learning_rate: c::read_f64(r)?,
            max_depth: c::read_usize(r)?,
            min_samples_split: c::read_usize(r)?,
            min_samples_leaf: c::read_usize(r)?,
            lambda: c::read_f64(r)?,
            gamma: c::read_f64(r)?,
            subsample: c::read_f64(r)?,
            max_bins: c::read_usize(r)?,
            seed: c::read_u64(r)?,
            tol: c::read_f64(r)?,
        };
        let base_score = c::read_f64(r)?;
        let n_features = c::read_usize(r)?;
        let n = c::read_len(r, "boosting trees")?;
        let mut trees = Vec::with_capacity(n);
        for _ in 0..n {
            trees.push(Tree::read_from(r)?);
        }
        Ok(GradientBoosting { config, base_score, trees, n_features })
    }
}

impl Footprint for GradientBoosting {
    fn num_parameters(&self) -> usize {
        self.total_nodes() + 1 // + base score
    }

    fn footprint_bytes(&self) -> usize {
        self.total_nodes() * 24 + 64
    }
}

impl Regressor for GradientBoosting {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> MlResult<()> {
        let n = x.rows();
        if n == 0 || x.cols() == 0 {
            return Err(MlError::EmptyInput("GradientBoosting::fit"));
        }
        if y.len() != n {
            return Err(dim_mismatch(format!("y.len() == {n}"), format!("y.len() == {}", y.len())));
        }
        let c = &self.config;
        if c.n_estimators == 0 {
            return Err(MlError::InvalidHyperparameter("n_estimators must be >= 1".into()));
        }
        if !(c.learning_rate > 0.0 && c.learning_rate <= 1.0) {
            return Err(MlError::InvalidHyperparameter(format!(
                "learning_rate = {} must be in (0, 1]",
                c.learning_rate
            )));
        }
        if !(c.subsample > 0.0 && c.subsample <= 1.0) {
            return Err(MlError::InvalidHyperparameter(format!(
                "subsample = {} must be in (0, 1]",
                c.subsample
            )));
        }
        let binned = BinnedMatrix::from_matrix(x, c.max_bins)?;
        let params = GrowParams {
            max_depth: c.max_depth,
            min_samples_split: c.min_samples_split,
            min_samples_leaf: c.min_samples_leaf,
            lambda: c.lambda,
            gamma: c.gamma,
            feature_subsample: None,
        };
        self.base_score = y.iter().sum::<f64>() / n as f64;
        self.n_features = x.cols();
        self.trees.clear();

        let mut rng = StdRng::seed_from_u64(c.seed);
        let mut pred = vec![self.base_score; n];
        let mut residual = vec![0.0f64; n];
        let sub_n = ((n as f64) * c.subsample).round().max(1.0) as usize;
        let mut all_rows: Vec<u32> = (0..n as u32).collect();
        let mut prev_rmse = f64::INFINITY;
        for round in 0..c.n_estimators {
            for i in 0..n {
                residual[i] = y[i] - pred[i];
            }
            let rows: &mut [u32] = if sub_n < n {
                all_rows.shuffle(&mut rng);
                &mut all_rows[..sub_n]
            } else {
                &mut all_rows
            };
            let tree = grow_tree(&binned, &residual, rows, &params, c.seed ^ round as u64);
            // Accumulate shrunken predictions over *all* rows.
            for (i, p) in pred.iter_mut().enumerate() {
                *p += c.learning_rate * tree.predict_row(x.row(i));
            }
            self.trees.push(tree);
            if c.tol > 0.0 {
                let mse =
                    y.iter().zip(&pred).map(|(t, p)| (t - p) * (t - p)).sum::<f64>() / n as f64;
                let cur = mse.sqrt();
                if prev_rmse - cur < c.tol {
                    break;
                }
                prev_rmse = cur;
            }
        }
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> MlResult<f64> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted("GradientBoosting"));
        }
        if row.len() != self.n_features {
            return Err(dim_mismatch(
                format!("row.len() == {}", self.n_features),
                format!("row.len() == {}", row.len()),
            ));
        }
        let mut p = self.base_score;
        for t in &self.trees {
            p += self.config.learning_rate * t.predict_row(row);
        }
        Ok(p)
    }

    fn name(&self) -> &'static str {
        "xgb"
    }

    fn save_params(&self, w: &mut dyn std::io::Write) -> MlResult<()> {
        use crate::codec as c;
        c::write_usize(w, self.config.n_estimators)?;
        c::write_f64(w, self.config.learning_rate)?;
        c::write_usize(w, self.config.max_depth)?;
        c::write_usize(w, self.config.min_samples_split)?;
        c::write_usize(w, self.config.min_samples_leaf)?;
        c::write_f64(w, self.config.lambda)?;
        c::write_f64(w, self.config.gamma)?;
        c::write_f64(w, self.config.subsample)?;
        c::write_usize(w, self.config.max_bins)?;
        c::write_u64(w, self.config.seed)?;
        c::write_f64(w, self.config.tol)?;
        c::write_f64(w, self.base_score)?;
        c::write_usize(w, self.n_features)?;
        c::write_usize(w, self.trees.len())?;
        for tree in &self.trees {
            tree.write_to(w)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{r2, rmse};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn nonlinear(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> =
            (0..n).map(|_| (0..3).map(|_| rng.gen::<f64>() * 2.0).collect()).collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| (r[0] * r[1]).sin() * 5.0 + r[2] * r[2] + rng.gen::<f64>() * 0.05)
            .collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn boosting_beats_a_single_tree() {
        let (x, y) = nonlinear(600, 7);
        let (x_te, y_te) = nonlinear(200, 8);
        let mut single = GradientBoosting::new(GradientBoostingConfig {
            n_estimators: 1,
            learning_rate: 1.0,
            ..Default::default()
        });
        let mut boosted = GradientBoosting::new(GradientBoostingConfig {
            n_estimators: 80,
            ..Default::default()
        });
        single.fit(&x, &y).unwrap();
        boosted.fit(&x, &y).unwrap();
        let e1 = rmse(&y_te, &single.predict(&x_te).unwrap()).unwrap();
        let e2 = rmse(&y_te, &boosted.predict(&x_te).unwrap()).unwrap();
        assert!(e2 < e1, "boosting ({e2}) must beat one tree ({e1})");
        assert!(r2(&y_te, &boosted.predict(&x_te).unwrap()).unwrap() > 0.9);
    }

    #[test]
    fn base_score_is_mean_for_zero_capacity() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let y = vec![3.0, 6.0, 9.0];
        let mut gb = GradientBoosting::new(GradientBoostingConfig {
            n_estimators: 1,
            max_depth: 0,
            ..Default::default()
        });
        gb.fit(&x, &y).unwrap();
        // depth-0 tree adds lr * mean(residual) == 0, so prediction == mean.
        assert!((gb.predict_row(&[0.0]).unwrap() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn early_stopping_reduces_rounds() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = vec![0.0, 1.0, 2.0, 3.0];
        let mut gb = GradientBoosting::new(GradientBoostingConfig {
            n_estimators: 500,
            tol: 1e-9,
            learning_rate: 0.5,
            ..Default::default()
        });
        gb.fit(&x, &y).unwrap();
        assert!(gb.n_trees() < 500, "tol should stop boosting early");
    }

    #[test]
    fn subsampling_still_learns() {
        let (x, y) = nonlinear(500, 9);
        let mut gb = GradientBoosting::new(GradientBoostingConfig {
            subsample: 0.5,
            n_estimators: 60,
            ..Default::default()
        });
        gb.fit(&x, &y).unwrap();
        assert!(r2(&y, &gb.predict(&x).unwrap()).unwrap() > 0.85);
    }

    #[test]
    fn lambda_regularizes_predictions() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let y = vec![0.0, 100.0];
        let mut strong = GradientBoosting::new(GradientBoostingConfig {
            n_estimators: 1,
            learning_rate: 1.0,
            lambda: 100.0,
            min_samples_split: 2,
            min_samples_leaf: 1,
            ..Default::default()
        });
        strong.fit(&x, &y).unwrap();
        // With huge lambda the leaf weights shrink toward zero: predictions
        // stay near the 50.0 base score.
        let p = strong.predict_row(&[1.0]).unwrap();
        assert!((p - 50.0).abs() < 10.0, "lambda should shrink the update, got {p}");
    }

    #[test]
    fn validates_hyperparameters_and_inputs() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let y = vec![0.0, 1.0];
        let bad = |cfg: GradientBoostingConfig| GradientBoosting::new(cfg).fit(&x, &y).is_err();
        assert!(bad(GradientBoostingConfig { n_estimators: 0, ..Default::default() }));
        assert!(bad(GradientBoostingConfig { learning_rate: 0.0, ..Default::default() }));
        assert!(bad(GradientBoostingConfig { subsample: 1.5, ..Default::default() }));
        let mut gb = GradientBoosting::default_config();
        assert!(gb.fit(&x, &[1.0]).is_err());
        assert!(gb.fit(&Matrix::zeros(0, 1), &[]).is_err());
        assert!(matches!(
            GradientBoosting::default_config().predict_row(&[0.0]),
            Err(MlError::NotFitted(_))
        ));
        gb.fit(&x, &y).unwrap();
        assert!(gb.predict_row(&[0.0, 1.0]).is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (x, y) = nonlinear(200, 3);
        let mut a = GradientBoosting::default_config();
        let mut b = GradientBoosting::default_config();
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
    }
}
