//! [`MultiHead`]: per-target composite turning any scalar [`Regressor`] into
//! a multi-output one.
//!
//! Tree ensembles, boosted models, and the MLP in this crate are inherently
//! scalar — each fit produces one response surface. To predict a vector of
//! resource targets (memory / CPU / IO) with those families, `MultiHead`
//! holds one independent head per target and fans [`Regressor::fit_multi`] /
//! [`Regressor::predict_row_multi`] out across them. Models with a natural
//! multi-output formulation (ridge regression solves every target against the
//! same factorized design matrix) implement the trait methods directly and do
//! not need this wrapper.
//!
//! Head 0 is always the primary target: scalar [`Regressor::predict_row`] on
//! a `MultiHead` answers from head 0, which keeps single-target call sites
//! working unchanged when a pipeline is upgraded to vector labels.

use std::io::{Read, Write};

use crate::codec as c;
use crate::error::{dim_mismatch, MlError, MlResult};
use crate::linalg::Matrix;
use crate::traits::{Footprint, Regressor};

/// Decoder for one persisted head payload: the caller knows the concrete
/// model family and supplies the matching `read_params` constructor.
pub type HeadDecoder = dyn Fn(&mut dyn Read) -> MlResult<Box<dyn Regressor>>;

/// A composite regressor with one independent scalar head per target.
///
/// Construct it with `k` *unfitted* heads of the same family, then train all
/// heads at once with [`Regressor::fit_multi`]:
///
/// ```
/// use wmp_mlkit::multi::MultiHead;
/// use wmp_mlkit::ridge::Ridge;
/// use wmp_mlkit::{Matrix, Regressor};
///
/// let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
/// let targets = vec![vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 10.0, 20.0, 30.0]];
/// let mut m = MultiHead::new(vec![Box::new(Ridge::new(1e-6)), Box::new(Ridge::new(1e-6))])
///     .unwrap();
/// m.fit_multi(&x, &targets).unwrap();
/// let out = m.predict_row_multi(&[2.0]).unwrap();
/// assert_eq!(out.len(), 2);
/// assert!((out[1] - 10.0 * out[0]).abs() < 1e-6);
/// ```
pub struct MultiHead {
    heads: Vec<Box<dyn Regressor>>,
}

impl MultiHead {
    /// Wraps `heads` (one per target, in target order) into a composite.
    ///
    /// # Errors
    /// Returns [`MlError::EmptyInput`] when `heads` is empty.
    pub fn new(heads: Vec<Box<dyn Regressor>>) -> MlResult<Self> {
        if heads.is_empty() {
            return Err(MlError::EmptyInput("MultiHead heads"));
        }
        Ok(Self { heads })
    }

    /// The per-target heads, in target order.
    pub fn heads(&self) -> &[Box<dyn Regressor>] {
        &self.heads
    }

    /// Deserializes a composite written by [`Regressor::save_params`].
    ///
    /// The caller supplies `decode_head` because head payloads are typed: the
    /// container format knows which concrete model family it persisted (the
    /// core codec stores a model-kind byte) and passes the matching
    /// `read_params` constructor here.
    ///
    /// # Errors
    /// Returns [`MlError::Codec`] on I/O failure, truncation, a head payload
    /// with trailing bytes, or an empty head list.
    pub fn read_params(r: &mut dyn Read, decode_head: &HeadDecoder) -> MlResult<Self> {
        let n = c::read_len(r, "multi-head count")?;
        let mut heads = Vec::with_capacity(n);
        for i in 0..n {
            let len = c::read_len(r, "multi-head payload")?;
            let mut payload = vec![0u8; len];
            r.read_exact(&mut payload)
                .map_err(|e| c::codec_err(format!("read multi-head payload {i}: {e}")))?;
            let mut slice: &[u8] = &payload;
            let head = decode_head(&mut slice)?;
            if !slice.is_empty() {
                return Err(c::codec_err(format!(
                    "multi-head payload {i}: {} undecoded trailing bytes",
                    slice.len()
                )));
            }
            heads.push(head);
        }
        Self::new(heads)
    }
}

impl Footprint for MultiHead {
    fn num_parameters(&self) -> usize {
        self.heads.iter().map(|h| h.num_parameters()).sum()
    }

    fn footprint_bytes(&self) -> usize {
        // Per-head structural footprints plus the count prefix.
        self.heads.iter().map(|h| h.footprint_bytes()).sum::<usize>() + 8
    }
}

impl Regressor for MultiHead {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> MlResult<()> {
        if self.heads.len() != 1 {
            return Err(dim_mismatch(
                format!("{} target columns (one per head)", self.heads.len()),
                "1 scalar target (use fit_multi)",
            ));
        }
        self.heads[0].fit(x, y)
    }

    fn fit_multi(&mut self, x: &Matrix, targets: &[Vec<f64>]) -> MlResult<()> {
        if targets.len() != self.heads.len() {
            return Err(dim_mismatch(
                format!("{} target columns (one per head)", self.heads.len()),
                format!("{} target columns", targets.len()),
            ));
        }
        for (head, y) in self.heads.iter_mut().zip(targets) {
            head.fit(x, y)?;
        }
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> MlResult<f64> {
        self.heads[0].predict_row(row)
    }

    fn predict_row_multi(&self, row: &[f64]) -> MlResult<Vec<f64>> {
        self.heads.iter().map(|h| h.predict_row(row)).collect()
    }

    fn n_outputs(&self) -> usize {
        self.heads.len()
    }

    fn as_multi_head(&self) -> Option<&MultiHead> {
        Some(self)
    }

    fn name(&self) -> &'static str {
        self.heads[0].name()
    }

    fn save_params(&self, w: &mut dyn Write) -> MlResult<()> {
        c::write_usize(w, self.heads.len())?;
        for head in &self.heads {
            let mut payload = Vec::new();
            head.save_params(&mut payload)?;
            c::write_usize(w, payload.len())?;
            w.write_all(&payload)
                .map_err(|e| c::codec_err(format!("write multi-head payload: {e}")))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ridge::Ridge;
    use crate::tree::DecisionTree;

    fn training_data() -> (Matrix, Vec<Vec<f64>>) {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, (i % 5) as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let targets = vec![
            (0..40).map(|i| i as f64 * 2.0 + 1.0).collect(),
            (0..40).map(|i| 100.0 - i as f64).collect(),
            (0..40).map(|i| (i % 5) as f64 * 7.0).collect(),
        ];
        (x, targets)
    }

    #[test]
    fn fits_one_independent_head_per_target() {
        let (x, targets) = training_data();
        let mut m = MultiHead::new(
            (0..3).map(|_| Box::new(Ridge::new(1e-8)) as Box<dyn Regressor>).collect(),
        )
        .unwrap();
        m.fit_multi(&x, &targets).unwrap();
        assert_eq!(m.n_outputs(), 3);
        let out = m.predict_row_multi(&[10.0, 0.0]).unwrap();
        assert!((out[0] - 21.0).abs() < 1e-6, "head 0: {}", out[0]);
        assert!((out[1] - 90.0).abs() < 1e-6, "head 1: {}", out[1]);
        assert!((out[2] - 0.0).abs() < 1e-5, "head 2: {}", out[2]);
        // Scalar predict_row answers from head 0.
        assert_eq!(m.predict_row(&[10.0, 0.0]).unwrap().to_bits(), out[0].to_bits());
    }

    #[test]
    fn target_count_must_match_head_count() {
        let (x, targets) = training_data();
        let mut m = MultiHead::new(
            (0..2).map(|_| Box::new(Ridge::new(1.0)) as Box<dyn Regressor>).collect(),
        )
        .unwrap();
        assert!(matches!(m.fit_multi(&x, &targets), Err(MlError::DimensionMismatch { .. })));
        assert!(matches!(m.fit(&x, &targets[0]), Err(MlError::DimensionMismatch { .. })));
    }

    #[test]
    fn empty_head_list_is_rejected() {
        assert!(matches!(MultiHead::new(Vec::new()), Err(MlError::EmptyInput(_))));
    }

    #[test]
    fn save_and_read_round_trip_bit_exact() {
        let (x, targets) = training_data();
        let mut m = MultiHead::new(
            (0..3)
                .map(|_| Box::new(DecisionTree::default_config()) as Box<dyn Regressor>)
                .collect(),
        )
        .unwrap();
        m.fit_multi(&x, &targets).unwrap();
        let mut buf = Vec::new();
        m.save_params(&mut buf).unwrap();
        let mut r: &[u8] = &buf;
        let decode: &HeadDecoder =
            &|r| Ok(Box::new(DecisionTree::read_params(r)?) as Box<dyn Regressor>);
        let reloaded = MultiHead::read_params(&mut r, decode).unwrap();
        assert!(r.is_empty());
        assert_eq!(reloaded.n_outputs(), 3);
        let probe = [17.0, 2.0];
        let before = m.predict_row_multi(&probe).unwrap();
        let after = reloaded.predict_row_multi(&probe).unwrap();
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b.to_bits(), a.to_bits());
        }
        assert_eq!(m.footprint_bytes(), reloaded.footprint_bytes());
    }

    #[test]
    fn truncated_head_payload_is_a_codec_error() {
        let (x, targets) = training_data();
        let mut m = MultiHead::new(
            (0..3).map(|_| Box::new(Ridge::new(1.0)) as Box<dyn Regressor>).collect(),
        )
        .unwrap();
        m.fit_multi(&x, &targets).unwrap();
        let mut buf = Vec::new();
        m.save_params(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let mut r: &[u8] = &buf;
        let decode: &HeadDecoder = &|r| Ok(Box::new(Ridge::read_params(r)?) as Box<dyn Regressor>);
        assert!(matches!(MultiHead::read_params(&mut r, decode), Err(MlError::Codec(_))));
    }
}
