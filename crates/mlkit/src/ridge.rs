//! Ridge regression (L2-regularized least squares) solved in closed form via
//! the normal equations and a Cholesky factorization — the paper's linear
//! baseline (§III-B4).
//!
//! Ridge is the one model family in this crate with *native* multi-output
//! support: the normal equations share the centered design matrix across
//! targets, so fitting k resource targets costs one Gram matrix plus k
//! small triangular solves instead of k independent fits.

use crate::error::{dim_mismatch, MlError, MlResult};
use crate::linalg::{dot, Matrix};
use crate::traits::{Footprint, Regressor};

/// Ridge regressor: minimizes `||Xw - y||² + alpha ||w||²` (intercept not
/// penalized, as in scikit-learn).
///
/// After [`Regressor::fit_multi`] the model holds one `(weights, intercept)`
/// head per target; [`Regressor::predict_row`] answers from head 0 and
/// [`Regressor::predict_row_multi`] from all heads.
#[derive(Debug, Clone)]
pub struct Ridge {
    /// L2 penalty strength; `0` recovers ordinary least squares.
    pub alpha: f64,
    weights: Vec<f64>,
    intercept: f64,
    /// Heads for targets 1.. after a multi-output fit (target 0 lives in
    /// `weights`/`intercept` so the legacy scalar payload layout is a prefix
    /// of the multi-output one).
    extra_heads: Vec<(Vec<f64>, f64)>,
    fitted: bool,
}

impl Ridge {
    /// Creates an unfitted ridge model with penalty `alpha`.
    pub fn new(alpha: f64) -> Self {
        Ridge { alpha, weights: Vec::new(), intercept: 0.0, extra_heads: Vec::new(), fitted: false }
    }

    /// Learned coefficients of the primary (first) target (empty before fit).
    pub fn coefficients(&self) -> &[f64] {
        &self.weights
    }

    /// Learned intercept of the primary (first) target.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Deserializes a model written by [`Regressor::save_params`].
    ///
    /// Accepts both layouts: the legacy scalar payload (alpha, weights,
    /// intercept, fitted) and the current one, which appends a count of extra
    /// multi-output heads plus their `(weights, intercept)` pairs. A payload
    /// that ends right after the `fitted` byte decodes as a scalar model —
    /// integrity of the stream is the container checksum's job.
    ///
    /// # Errors
    /// Returns [`MlError::Codec`] on I/O failure or truncation.
    pub fn read_params(r: &mut dyn std::io::Read) -> MlResult<Ridge> {
        use crate::codec as c;
        let alpha = c::read_f64(r)?;
        let weights = c::read_f64_seq(r)?;
        let intercept = c::read_f64(r)?;
        let fitted = c::read_bool(r)?;
        let extra_heads = match c::read_len(r, "ridge extra heads") {
            Ok(n) => {
                let mut heads = Vec::with_capacity(n);
                for _ in 0..n {
                    let w = c::read_f64_seq(r)?;
                    let b = c::read_f64(r)?;
                    heads.push((w, b));
                }
                heads
            }
            // Legacy scalar payload: nothing after the fitted byte.
            Err(_) => Vec::new(),
        };
        Ok(Ridge { alpha, weights, intercept, extra_heads, fitted })
    }

    /// Solves the normal equations once and back-solves every target column
    /// against the shared factorization.
    fn fit_targets(&mut self, x: &Matrix, targets: &[&[f64]]) -> MlResult<()> {
        let n = x.rows();
        let d = x.cols();
        if n == 0 || d == 0 || targets.is_empty() {
            return Err(MlError::EmptyInput("Ridge::fit"));
        }
        for y in targets {
            if y.len() != n {
                return Err(dim_mismatch(
                    format!("y.len() == {n}"),
                    format!("y.len() == {}", y.len()),
                ));
            }
        }
        if self.alpha < 0.0 {
            return Err(MlError::InvalidHyperparameter(format!(
                "alpha = {} must be >= 0",
                self.alpha
            )));
        }
        // Center features and targets so the intercepts absorb the means and
        // stay unpenalized.
        let mut x_mean = vec![0.0; d];
        for row in x.row_iter() {
            for (m, v) in x_mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut x_mean {
            *m /= n as f64;
        }
        let mut xc = x.clone();
        for r in 0..n {
            for (v, m) in xc.row_mut(r).iter_mut().zip(&x_mean) {
                *v -= m;
            }
        }

        // Normal equations: (XᵀX + αI) w = Xᵀy, one right-hand side per
        // target against the same regularized Gram matrix.
        let mut gram = xc.gram();
        // A tiny jitter keeps the system solvable when alpha == 0 and X is
        // rank-deficient (e.g. constant plan-feature columns).
        let jitter = 1e-10;
        for i in 0..d {
            let v = gram.get(i, i) + self.alpha + jitter;
            gram.set(i, i, v);
        }
        let mut heads = Vec::with_capacity(targets.len());
        for y in targets {
            let y_mean = y.iter().sum::<f64>() / n as f64;
            let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();
            let xty = xc.t_matvec(&yc)?;
            let w = gram.cholesky_solve(&xty)?;
            let b = y_mean - dot(&w, &x_mean);
            heads.push((w, b));
        }
        let (w0, b0) = heads.remove(0);
        self.weights = w0;
        self.intercept = b0;
        self.extra_heads = heads;
        self.fitted = true;
        Ok(())
    }
}

impl Footprint for Ridge {
    fn num_parameters(&self) -> usize {
        if self.fitted {
            let per_head: usize = self.extra_heads.iter().map(|(w, _)| w.len() + 1).sum();
            self.weights.len() + 1 + per_head
        } else {
            0
        }
    }
}

impl Regressor for Ridge {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> MlResult<()> {
        self.fit_targets(x, &[y])
    }

    fn fit_multi(&mut self, x: &Matrix, targets: &[Vec<f64>]) -> MlResult<()> {
        let views: Vec<&[f64]> = targets.iter().map(Vec::as_slice).collect();
        self.fit_targets(x, &views)
    }

    fn n_outputs(&self) -> usize {
        1 + self.extra_heads.len()
    }

    fn predict_row(&self, row: &[f64]) -> MlResult<f64> {
        if !self.fitted {
            return Err(MlError::NotFitted("Ridge"));
        }
        if row.len() != self.weights.len() {
            return Err(dim_mismatch(
                format!("row.len() == {}", self.weights.len()),
                format!("row.len() == {}", row.len()),
            ));
        }
        Ok(dot(&self.weights, row) + self.intercept)
    }

    fn predict_row_multi(&self, row: &[f64]) -> MlResult<Vec<f64>> {
        let mut out = Vec::with_capacity(1 + self.extra_heads.len());
        out.push(self.predict_row(row)?);
        for (w, b) in &self.extra_heads {
            out.push(dot(w, row) + b);
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "ridge"
    }

    fn save_params(&self, w: &mut dyn std::io::Write) -> MlResult<()> {
        use crate::codec as c;
        c::write_f64(w, self.alpha)?;
        c::write_f64_seq(w, &self.weights)?;
        c::write_f64(w, self.intercept)?;
        c::write_bool(w, self.fitted)?;
        // Multi-output extension: extra heads appended after the legacy
        // scalar layout so old readers of the prefix stay valid.
        c::write_usize(w, self.extra_heads.len())?;
        for (head_w, head_b) in &self.extra_heads {
            c::write_f64_seq(w, head_w)?;
            c::write_f64(w, *head_b)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn recovers_exact_linear_relationship() {
        // y = 2 x0 - 3 x1 + 5 with no noise; tiny alpha ~ OLS.
        let mut rng = StdRng::seed_from_u64(1);
        let rows: Vec<Vec<f64>> =
            (0..50).map(|_| vec![rng.gen::<f64>() * 10.0, rng.gen::<f64>() * 10.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - 3.0 * r[1] + 5.0).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut m = Ridge::new(1e-8);
        m.fit(&x, &y).unwrap();
        assert!((m.coefficients()[0] - 2.0).abs() < 1e-4);
        assert!((m.coefficients()[1] + 3.0).abs() < 1e-4);
        assert!((m.intercept() - 5.0).abs() < 1e-3);
        let pred = m.predict(&x).unwrap();
        for (p, t) in pred.iter().zip(&y) {
            assert!((p - t).abs() < 1e-3);
        }
    }

    #[test]
    fn large_alpha_shrinks_coefficients_toward_zero() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut small = Ridge::new(1e-6);
        let mut large = Ridge::new(1e6);
        small.fit(&x, &y).unwrap();
        large.fit(&x, &y).unwrap();
        assert!(large.coefficients()[0].abs() < small.coefficients()[0].abs());
        assert!(large.coefficients()[0].abs() < 0.1);
        // With huge shrinkage the prediction collapses to the target mean.
        let y_mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((large.predict_row(&[10.0]).unwrap() - y_mean).abs() < 1.0);
    }

    #[test]
    fn handles_rank_deficient_features() {
        // Second column duplicates the first: singular XᵀX, ridge still solves.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 4.0 * i as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut m = Ridge::new(1e-3);
        m.fit(&x, &y).unwrap();
        let p = m.predict_row(&[5.0, 5.0]).unwrap();
        assert!((p - 20.0).abs() < 0.1);
    }

    #[test]
    fn validates_inputs() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let mut m = Ridge::new(1.0);
        assert!(m.fit(&x, &[1.0]).is_err());
        assert!(m.fit(&Matrix::zeros(0, 1), &[]).is_err());
        let mut neg = Ridge::new(-1.0);
        assert!(neg.fit(&x, &[1.0, 2.0]).is_err());
        assert!(matches!(Ridge::new(1.0).predict_row(&[1.0]), Err(MlError::NotFitted(_))));
        m.fit(&x, &[1.0, 2.0]).unwrap();
        assert!(m.predict_row(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn footprint_counts_coefficients_plus_intercept() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![2.0, 1.0, 0.0]]).unwrap();
        let mut m = Ridge::new(1.0);
        assert_eq!(m.num_parameters(), 0);
        m.fit(&x, &[1.0, 2.0]).unwrap();
        assert_eq!(m.num_parameters(), 4);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Ridge::new(1.0).name(), "ridge");
    }

    #[test]
    fn native_multi_output_solves_every_target() {
        // Targets with different linear laws over the same design matrix.
        let mut rng = StdRng::seed_from_u64(7);
        let rows: Vec<Vec<f64>> =
            (0..60).map(|_| vec![rng.gen::<f64>() * 10.0, rng.gen::<f64>() * 10.0]).collect();
        let t0: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - 3.0 * r[1] + 5.0).collect();
        let t1: Vec<f64> = rows.iter().map(|r| -r[0] + 0.5 * r[1] + 100.0).collect();
        let t2: Vec<f64> = rows.iter().map(|r| 7.0 * r[0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut m = Ridge::new(1e-8);
        m.fit_multi(&x, &[t0.clone(), t1, t2]).unwrap();
        assert_eq!(m.n_outputs(), 3);
        let out = m.predict_row_multi(&[4.0, 2.0]).unwrap();
        assert!((out[0] - 7.0).abs() < 1e-3, "target 0: {}", out[0]);
        assert!((out[1] - 97.0).abs() < 1e-3, "target 1: {}", out[1]);
        assert!((out[2] - 28.0).abs() < 1e-2, "target 2: {}", out[2]);
        // Head 0 is the scalar prediction.
        assert_eq!(m.predict_row(&[4.0, 2.0]).unwrap().to_bits(), out[0].to_bits());
        // Footprint accounts for every head.
        assert_eq!(m.num_parameters(), 3 * 3);
    }

    #[test]
    fn multi_output_payload_round_trips_and_legacy_payload_still_loads() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, (i % 4) as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let t0: Vec<f64> = (0..30).map(|i| i as f64 * 1.5).collect();
        let t1: Vec<f64> = (0..30).map(|i| 90.0 - i as f64).collect();
        let mut m = Ridge::new(1e-6);
        m.fit_multi(&x, &[t0.clone(), t1]).unwrap();
        let mut buf = Vec::new();
        m.save_params(&mut buf).unwrap();
        let mut r: &[u8] = &buf;
        let reloaded = Ridge::read_params(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(reloaded.n_outputs(), 2);
        let probe = [11.0, 3.0];
        let before = m.predict_row_multi(&probe).unwrap();
        let after = reloaded.predict_row_multi(&probe).unwrap();
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b.to_bits(), a.to_bits());
        }

        // A legacy scalar payload ends right after the fitted byte; synthesize
        // one by truncating the extras section and check it decodes as scalar.
        let mut scalar = Ridge::new(1e-6);
        scalar.fit(&x, &t0).unwrap();
        let mut full = Vec::new();
        scalar.save_params(&mut full).unwrap();
        let legacy = &full[..full.len() - 8]; // drop the extras count (0u64)
        let mut r: &[u8] = legacy;
        let old = Ridge::read_params(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(old.n_outputs(), 1);
        assert_eq!(
            old.predict_row(&probe).unwrap().to_bits(),
            scalar.predict_row(&probe).unwrap().to_bits()
        );
    }
}
