//! Ridge regression (L2-regularized least squares) solved in closed form via
//! the normal equations and a Cholesky factorization — the paper's linear
//! baseline (§III-B4).

use crate::error::{dim_mismatch, MlError, MlResult};
use crate::linalg::{dot, Matrix};
use crate::traits::{Footprint, Regressor};

/// Ridge regressor: minimizes `||Xw - y||² + alpha ||w||²` (intercept not
/// penalized, as in scikit-learn).
#[derive(Debug, Clone)]
pub struct Ridge {
    /// L2 penalty strength; `0` recovers ordinary least squares.
    pub alpha: f64,
    weights: Vec<f64>,
    intercept: f64,
    fitted: bool,
}

impl Ridge {
    /// Creates an unfitted ridge model with penalty `alpha`.
    pub fn new(alpha: f64) -> Self {
        Ridge { alpha, weights: Vec::new(), intercept: 0.0, fitted: false }
    }

    /// Learned coefficients (empty before fit).
    pub fn coefficients(&self) -> &[f64] {
        &self.weights
    }

    /// Learned intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Deserializes a model written by [`Regressor::save_params`].
    ///
    /// # Errors
    /// Returns [`MlError::Codec`] on I/O failure or truncation.
    pub fn read_params(r: &mut dyn std::io::Read) -> MlResult<Ridge> {
        use crate::codec as c;
        Ok(Ridge {
            alpha: c::read_f64(r)?,
            weights: c::read_f64_seq(r)?,
            intercept: c::read_f64(r)?,
            fitted: c::read_bool(r)?,
        })
    }
}

impl Footprint for Ridge {
    fn num_parameters(&self) -> usize {
        if self.fitted {
            self.weights.len() + 1
        } else {
            0
        }
    }
}

impl Regressor for Ridge {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> MlResult<()> {
        let n = x.rows();
        let d = x.cols();
        if n == 0 || d == 0 {
            return Err(MlError::EmptyInput("Ridge::fit"));
        }
        if y.len() != n {
            return Err(dim_mismatch(format!("y.len() == {n}"), format!("y.len() == {}", y.len())));
        }
        if self.alpha < 0.0 {
            return Err(MlError::InvalidHyperparameter(format!(
                "alpha = {} must be >= 0",
                self.alpha
            )));
        }
        // Center features and target so the intercept absorbs the means and
        // stays unpenalized.
        let mut x_mean = vec![0.0; d];
        for row in x.row_iter() {
            for (m, v) in x_mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut x_mean {
            *m /= n as f64;
        }
        let y_mean = y.iter().sum::<f64>() / n as f64;

        let mut xc = x.clone();
        for r in 0..n {
            for (v, m) in xc.row_mut(r).iter_mut().zip(&x_mean) {
                *v -= m;
            }
        }
        let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

        // Normal equations: (XᵀX + αI) w = Xᵀy.
        let mut gram = xc.gram();
        // A tiny jitter keeps the system solvable when alpha == 0 and X is
        // rank-deficient (e.g. constant plan-feature columns).
        let jitter = 1e-10;
        for i in 0..d {
            let v = gram.get(i, i) + self.alpha + jitter;
            gram.set(i, i, v);
        }
        let xty = xc.t_matvec(&yc)?;
        self.weights = gram.cholesky_solve(&xty)?;
        self.intercept = y_mean - dot(&self.weights, &x_mean);
        self.fitted = true;
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> MlResult<f64> {
        if !self.fitted {
            return Err(MlError::NotFitted("Ridge"));
        }
        if row.len() != self.weights.len() {
            return Err(dim_mismatch(
                format!("row.len() == {}", self.weights.len()),
                format!("row.len() == {}", row.len()),
            ));
        }
        Ok(dot(&self.weights, row) + self.intercept)
    }

    fn name(&self) -> &'static str {
        "ridge"
    }

    fn save_params(&self, w: &mut dyn std::io::Write) -> MlResult<()> {
        use crate::codec as c;
        c::write_f64(w, self.alpha)?;
        c::write_f64_seq(w, &self.weights)?;
        c::write_f64(w, self.intercept)?;
        c::write_bool(w, self.fitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn recovers_exact_linear_relationship() {
        // y = 2 x0 - 3 x1 + 5 with no noise; tiny alpha ~ OLS.
        let mut rng = StdRng::seed_from_u64(1);
        let rows: Vec<Vec<f64>> =
            (0..50).map(|_| vec![rng.gen::<f64>() * 10.0, rng.gen::<f64>() * 10.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - 3.0 * r[1] + 5.0).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut m = Ridge::new(1e-8);
        m.fit(&x, &y).unwrap();
        assert!((m.coefficients()[0] - 2.0).abs() < 1e-4);
        assert!((m.coefficients()[1] + 3.0).abs() < 1e-4);
        assert!((m.intercept() - 5.0).abs() < 1e-3);
        let pred = m.predict(&x).unwrap();
        for (p, t) in pred.iter().zip(&y) {
            assert!((p - t).abs() < 1e-3);
        }
    }

    #[test]
    fn large_alpha_shrinks_coefficients_toward_zero() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut small = Ridge::new(1e-6);
        let mut large = Ridge::new(1e6);
        small.fit(&x, &y).unwrap();
        large.fit(&x, &y).unwrap();
        assert!(large.coefficients()[0].abs() < small.coefficients()[0].abs());
        assert!(large.coefficients()[0].abs() < 0.1);
        // With huge shrinkage the prediction collapses to the target mean.
        let y_mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((large.predict_row(&[10.0]).unwrap() - y_mean).abs() < 1.0);
    }

    #[test]
    fn handles_rank_deficient_features() {
        // Second column duplicates the first: singular XᵀX, ridge still solves.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 4.0 * i as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut m = Ridge::new(1e-3);
        m.fit(&x, &y).unwrap();
        let p = m.predict_row(&[5.0, 5.0]).unwrap();
        assert!((p - 20.0).abs() < 0.1);
    }

    #[test]
    fn validates_inputs() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let mut m = Ridge::new(1.0);
        assert!(m.fit(&x, &[1.0]).is_err());
        assert!(m.fit(&Matrix::zeros(0, 1), &[]).is_err());
        let mut neg = Ridge::new(-1.0);
        assert!(neg.fit(&x, &[1.0, 2.0]).is_err());
        assert!(matches!(Ridge::new(1.0).predict_row(&[1.0]), Err(MlError::NotFitted(_))));
        m.fit(&x, &[1.0, 2.0]).unwrap();
        assert!(m.predict_row(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn footprint_counts_coefficients_plus_intercept() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![2.0, 1.0, 0.0]]).unwrap();
        let mut m = Ridge::new(1.0);
        assert_eq!(m.num_parameters(), 0);
        m.fit(&x, &[1.0, 2.0]).unwrap();
        assert_eq!(m.num_parameters(), 4);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Ridge::new(1.0).name(), "ridge");
    }
}
