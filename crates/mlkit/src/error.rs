//! Error type shared by every estimator in the ML substrate.

use std::fmt;

/// Errors produced by estimators in this crate.
///
/// Marked `#[non_exhaustive]`: new failure modes appear as the substrate
/// grows, and downstream crates must match with a wildcard arm so that is
/// never a breaking change.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MlError {
    /// Input matrices/vectors disagree on a dimension.
    DimensionMismatch {
        /// What the estimator expected (e.g. "x.rows == y.len()").
        expected: String,
        /// What it actually received.
        got: String,
    },
    /// The training set was empty or degenerate (zero rows or columns).
    EmptyInput(&'static str),
    /// `predict` was called before `fit`.
    NotFitted(&'static str),
    /// A linear system could not be solved (matrix not positive definite /
    /// singular to working precision).
    SingularMatrix,
    /// A hyper-parameter is outside its valid range.
    InvalidHyperparameter(String),
    /// The optimizer failed to make progress (e.g. non-finite loss).
    NumericalFailure(String),
    /// A model artifact could not be encoded or decoded (I/O failure,
    /// truncation, corruption, or an unsupported format version).
    Codec(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            MlError::EmptyInput(what) => write!(f, "empty input: {what}"),
            MlError::NotFitted(what) => write!(f, "estimator not fitted: {what}"),
            MlError::SingularMatrix => write!(f, "matrix is singular or not positive definite"),
            MlError::InvalidHyperparameter(msg) => write!(f, "invalid hyperparameter: {msg}"),
            MlError::NumericalFailure(msg) => write!(f, "numerical failure: {msg}"),
            MlError::Codec(msg) => write!(f, "codec error: {msg}"),
        }
    }
}

impl std::error::Error for MlError {}

/// Convenience alias used across the crate.
pub type MlResult<T> = Result<T, MlError>;

/// Builds a [`MlError::DimensionMismatch`] with formatted operands.
pub fn dim_mismatch(expected: impl Into<String>, got: impl Into<String>) -> MlError {
    MlError::DimensionMismatch { expected: expected.into(), got: got.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = dim_mismatch("x.rows == 3", "x.rows == 4");
        assert!(e.to_string().contains("expected x.rows == 3"));
        assert!(MlError::SingularMatrix.to_string().contains("singular"));
        assert!(MlError::NotFitted("ridge").to_string().contains("ridge"));
        assert!(MlError::EmptyInput("x").to_string().contains("x"));
        assert!(MlError::InvalidHyperparameter("k = 0".into()).to_string().contains("k = 0"));
        assert!(MlError::NumericalFailure("nan loss".into()).to_string().contains("nan"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(MlError::SingularMatrix, MlError::SingularMatrix);
        assert_ne!(MlError::SingularMatrix, MlError::EmptyInput("x"));
    }
}
