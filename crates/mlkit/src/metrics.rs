//! Accuracy metrics used throughout the evaluation: RMSE (paper eq. 12),
//! MAPE (paper eq. 14), and residual-distribution summaries that stand in for
//! the paper's violin plots (quartiles, IQR — paper eq. 13 — and moments).

use crate::error::{dim_mismatch, MlError, MlResult};

fn check_pair(y_true: &[f64], y_pred: &[f64]) -> MlResult<()> {
    if y_true.is_empty() {
        return Err(MlError::EmptyInput("metrics require at least one observation"));
    }
    if y_true.len() != y_pred.len() {
        return Err(dim_mismatch(
            format!("y_pred.len() == {}", y_true.len()),
            format!("y_pred.len() == {}", y_pred.len()),
        ));
    }
    Ok(())
}

/// Root mean squared error (paper eq. 12).
///
/// # Errors
/// Returns an error for empty or mismatched inputs.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> MlResult<f64> {
    check_pair(y_true, y_pred)?;
    let mse = y_true.iter().zip(y_pred).map(|(t, p)| (t - p) * (t - p)).sum::<f64>()
        / y_true.len() as f64;
    Ok(mse.sqrt())
}

/// Mean absolute error.
///
/// # Errors
/// Returns an error for empty or mismatched inputs.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> MlResult<f64> {
    check_pair(y_true, y_pred)?;
    Ok(y_true.iter().zip(y_pred).map(|(t, p)| (t - p).abs()).sum::<f64>() / y_true.len() as f64)
}

/// Mean absolute percentage error in percent (paper eq. 14).
///
/// Observations with `y_true == 0` are skipped, mirroring the standard
/// definition; if all targets are zero an error is returned.
///
/// # Errors
/// Returns an error for empty/mismatched inputs or all-zero targets.
pub fn mape(y_true: &[f64], y_pred: &[f64]) -> MlResult<f64> {
    check_pair(y_true, y_pred)?;
    let mut sum = 0.0;
    let mut n = 0usize;
    for (t, p) in y_true.iter().zip(y_pred) {
        if *t != 0.0 {
            sum += ((t - p) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        return Err(MlError::NumericalFailure("MAPE undefined: all targets are zero".into()));
    }
    Ok(sum / n as f64 * 100.0)
}

/// Coefficient of determination R².
///
/// # Errors
/// Returns an error for empty or mismatched inputs.
pub fn r2(y_true: &[f64], y_pred: &[f64]) -> MlResult<f64> {
    check_pair(y_true, y_pred)?;
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_tot: f64 = y_true.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = y_true.iter().zip(y_pred).map(|(t, p)| (t - p) * (t - p)).sum();
    if ss_tot == 0.0 {
        // Constant target: perfect iff residuals are zero.
        return Ok(if ss_res == 0.0 { 1.0 } else { f64::NEG_INFINITY });
    }
    Ok(1.0 - ss_res / ss_tot)
}

/// Signed residuals `y_true - y_pred` (the quantity the paper's violin plots
/// are drawn from).
///
/// # Errors
/// Returns an error for empty or mismatched inputs.
pub fn residuals(y_true: &[f64], y_pred: &[f64]) -> MlResult<Vec<f64>> {
    check_pair(y_true, y_pred)?;
    Ok(y_true.iter().zip(y_pred).map(|(t, p)| t - p).collect())
}

/// Linear-interpolation quantile (the `qn(·)` of paper eq. 13) over a sorted
/// copy of the data. `q` must be in `[0, 1]`.
///
/// # Errors
/// Returns an error for empty input or `q` outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> MlResult<f64> {
    if values.is_empty() {
        return Err(MlError::EmptyInput("quantile of empty slice"));
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(MlError::InvalidHyperparameter(format!("quantile q = {q} not in [0, 1]")));
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Five-number + moment summary of a residual distribution — the textual
/// equivalent of one violin in the paper's Fig. 5.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualSummary {
    /// Smallest residual.
    pub min: f64,
    /// 25th percentile (lower quartile of eq. 13).
    pub q1: f64,
    /// Median (the white dot of a violin plot).
    pub median: f64,
    /// 75th percentile (upper quartile of eq. 13).
    pub q3: f64,
    /// Largest residual.
    pub max: f64,
    /// Mean residual; far from zero means the model is biased (skewed violin).
    pub mean: f64,
    /// Standard deviation (violin width).
    pub std: f64,
    /// Fisher skewness; sign tells whether the tail points to over- or
    /// under-estimation.
    pub skewness: f64,
}

impl ResidualSummary {
    /// Computes the summary from raw residuals.
    ///
    /// # Errors
    /// Returns an error when `residuals` is empty.
    pub fn from_residuals(residuals: &[f64]) -> MlResult<Self> {
        if residuals.is_empty() {
            return Err(MlError::EmptyInput("ResidualSummary"));
        }
        let n = residuals.len() as f64;
        let mean = residuals.iter().sum::<f64>() / n;
        let var = residuals.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / n;
        let std = var.sqrt();
        let skewness = if std > 0.0 {
            residuals.iter().map(|r| ((r - mean) / std).powi(3)).sum::<f64>() / n
        } else {
            0.0
        };
        Ok(ResidualSummary {
            min: quantile(residuals, 0.0)?,
            q1: quantile(residuals, 0.25)?,
            median: quantile(residuals, 0.5)?,
            q3: quantile(residuals, 0.75)?,
            max: quantile(residuals, 1.0)?,
            mean,
            std,
            skewness,
        })
    }

    /// Interquartile range `q3 - q1` (paper eq. 13) — the thick bar of a
    /// violin plot; smaller and closer to zero means a better model.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// |median|: distance of the violin's center from zero.
    pub fn center_offset(&self) -> f64 {
        self.median.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_known_value() {
        let e = rmse(&[1.0, 2.0, 3.0], &[1.0, 2.0, 5.0]).unwrap();
        assert!((e - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(rmse(&[1.0, 1.0], &[1.0, 1.0]).unwrap(), 0.0);
    }

    #[test]
    fn mae_known_value() {
        assert!((mae(&[0.0, 0.0], &[1.0, -3.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_targets() {
        // Only the nonzero target contributes: |100-110|/100 = 10%.
        let m = mape(&[100.0, 0.0], &[110.0, 5.0]).unwrap();
        assert!((m - 10.0).abs() < 1e-12);
        assert!(mape(&[0.0], &[1.0]).is_err());
    }

    #[test]
    fn r2_perfect_and_mean_predictor() {
        assert!((r2(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]).unwrap() - 1.0).abs() < 1e-12);
        // Predicting the mean gives R² = 0.
        assert!(r2(&[1.0, 2.0, 3.0], &[2.0, 2.0, 2.0]).unwrap().abs() < 1e-12);
        assert_eq!(r2(&[5.0, 5.0], &[5.0, 5.0]).unwrap(), 1.0);
    }

    #[test]
    fn metrics_validate_inputs() {
        assert!(rmse(&[], &[]).is_err());
        assert!(rmse(&[1.0], &[1.0, 2.0]).is_err());
        assert!(mape(&[1.0], &[]).is_err());
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&v, 1.0).unwrap(), 4.0);
        assert!((quantile(&v, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!(quantile(&v, 1.5).is_err());
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn residual_summary_of_symmetric_data_is_centered() {
        let res: Vec<f64> = (-50..=50).map(|i| i as f64).collect();
        let s = ResidualSummary::from_residuals(&res).unwrap();
        assert!(s.median.abs() < 1e-12);
        assert!(s.mean.abs() < 1e-12);
        assert!(s.skewness.abs() < 1e-9);
        assert!((s.iqr() - 50.0).abs() < 1e-9);
        assert_eq!(s.min, -50.0);
        assert_eq!(s.max, 50.0);
    }

    #[test]
    fn residual_summary_detects_bias() {
        // A systematically under-estimating model: residuals all positive.
        let res = vec![10.0, 12.0, 9.0, 14.0, 11.0];
        let s = ResidualSummary::from_residuals(&res).unwrap();
        assert!(s.center_offset() > 8.0);
        assert!(s.mean > 10.0);
    }

    #[test]
    fn residuals_are_signed() {
        let r = residuals(&[3.0, 1.0], &[1.0, 3.0]).unwrap();
        assert_eq!(r, vec![2.0, -2.0]);
    }
}
