//! Quantile binning of a feature matrix into `u8` codes. All tree learners in
//! this crate (CART, Random Forest, GBDT) split on bin boundaries, which turns
//! per-node split finding into O(rows × features) histogram accumulation — the
//! same strategy production gradient-boosting systems use.

use crate::error::{MlError, MlResult};
use crate::linalg::Matrix;

/// Maximum number of bins per feature (255 cut points fit in a `u8` code).
pub const MAX_BINS: usize = 64;

/// A feature matrix quantized to per-feature quantile bins.
#[derive(Debug, Clone)]
pub struct BinnedMatrix {
    n_rows: usize,
    n_cols: usize,
    /// Row-major bin codes, `codes[r * n_cols + c]`.
    codes: Vec<u8>,
    /// Ascending cut points per feature; `bin(v) = #cuts < v`, so splitting at
    /// bin `b` means "go left iff `v <= cuts[b]`".
    cuts: Vec<Vec<f64>>,
}

impl BinnedMatrix {
    /// Bins `x` using up to `max_bins` quantile bins per feature.
    ///
    /// # Errors
    /// - [`MlError::EmptyInput`] for an empty matrix.
    /// - [`MlError::InvalidHyperparameter`] when `max_bins` is 0 or exceeds
    ///   [`MAX_BINS`].
    pub fn from_matrix(x: &Matrix, max_bins: usize) -> MlResult<Self> {
        if x.rows() == 0 || x.cols() == 0 {
            return Err(MlError::EmptyInput("BinnedMatrix::from_matrix"));
        }
        if max_bins == 0 || max_bins > MAX_BINS {
            return Err(MlError::InvalidHyperparameter(format!(
                "max_bins = {max_bins} must be in 1..={MAX_BINS}"
            )));
        }
        let n = x.rows();
        let d = x.cols();
        let mut cuts = Vec::with_capacity(d);
        for c in 0..d {
            let mut col = x.column(c);
            col.sort_by(|a, b| a.partial_cmp(b).expect("NaN feature value"));
            col.dedup();
            let col_cuts = if col.len() <= max_bins {
                // Few distinct values: one bin per value, cut at midpoints.
                col.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect::<Vec<_>>()
            } else {
                // Quantile cuts over the distinct values.
                let mut cs = Vec::with_capacity(max_bins - 1);
                for q in 1..max_bins {
                    let pos = q * (col.len() - 1) / max_bins;
                    let cut = (col[pos] + col[(pos + 1).min(col.len() - 1)]) / 2.0;
                    if cs.last().is_none_or(|&l| cut > l) {
                        cs.push(cut);
                    }
                }
                cs
            };
            cuts.push(col_cuts);
        }
        let mut codes = vec![0u8; n * d];
        for r in 0..n {
            let row = x.row(r);
            for (c, &v) in row.iter().enumerate() {
                codes[r * d + c] = bin_of(&cuts[c], v);
            }
        }
        Ok(BinnedMatrix { n_rows: n, n_cols: d, codes, cuts })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.n_rows
    }

    /// Number of feature columns.
    pub fn cols(&self) -> usize {
        self.n_cols
    }

    /// Bin codes of row `r`.
    #[inline]
    pub fn row_codes(&self, r: usize) -> &[u8] {
        &self.codes[r * self.n_cols..(r + 1) * self.n_cols]
    }

    /// Number of bins for feature `c` (`cuts + 1`).
    pub fn n_bins(&self, c: usize) -> usize {
        self.cuts[c].len() + 1
    }

    /// The raw-value threshold corresponding to splitting feature `c` at bin
    /// boundary `b` ("left iff value <= threshold").
    pub fn threshold(&self, c: usize, b: usize) -> f64 {
        self.cuts[c][b]
    }
}

/// Maps a raw value to its bin code given ascending cut points.
#[inline]
pub fn bin_of(cuts: &[f64], v: f64) -> u8 {
    cuts.partition_point(|&c| v > c) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn few_distinct_values_get_exact_bins() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![1.0], vec![2.0]]).unwrap();
        let b = BinnedMatrix::from_matrix(&x, 16).unwrap();
        assert_eq!(b.n_bins(0), 3);
        assert_eq!(b.row_codes(0)[0], 0);
        assert_eq!(b.row_codes(1)[0], 1);
        assert_eq!(b.row_codes(2)[0], 1);
        assert_eq!(b.row_codes(3)[0], 2);
    }

    #[test]
    fn split_semantics_match_thresholds() {
        let x = Matrix::from_rows(&[vec![0.0], vec![10.0], vec![20.0]]).unwrap();
        let b = BinnedMatrix::from_matrix(&x, 16).unwrap();
        // Splitting at bin 0 must send value 0 left and 10, 20 right.
        let t = b.threshold(0, 0);
        assert!((0.0..10.0).contains(&t));
        assert_eq!(bin_of(&[t], 0.0), 0);
        assert_eq!(bin_of(&[t], 10.0), 1);
    }

    #[test]
    fn many_distinct_values_respect_max_bins() {
        let rows: Vec<Vec<f64>> = (0..1000).map(|i| vec![i as f64]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let b = BinnedMatrix::from_matrix(&x, 32).unwrap();
        assert!(b.n_bins(0) <= 32);
        // Codes must be monotone in the raw value.
        for r in 1..1000 {
            assert!(b.row_codes(r)[0] >= b.row_codes(r - 1)[0]);
        }
    }

    #[test]
    fn constant_column_collapses_to_one_bin() {
        let x = Matrix::from_rows(&[vec![7.0], vec![7.0], vec![7.0]]).unwrap();
        let b = BinnedMatrix::from_matrix(&x, 16).unwrap();
        assert_eq!(b.n_bins(0), 1);
        assert!(b.row_codes(0)[0] == 0 && b.row_codes(2)[0] == 0);
    }

    #[test]
    fn validates_inputs() {
        assert!(BinnedMatrix::from_matrix(&Matrix::zeros(0, 1), 16).is_err());
        let x = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(BinnedMatrix::from_matrix(&x, 0).is_err());
        assert!(BinnedMatrix::from_matrix(&x, MAX_BINS + 1).is_err());
    }

    #[test]
    fn binning_preserves_row_count_and_width() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = BinnedMatrix::from_matrix(&x, 8).unwrap();
        assert_eq!(b.rows(), 2);
        assert_eq!(b.cols(), 2);
        assert_eq!(b.row_codes(1).len(), 2);
    }
}
