//! Feature standardization (zero mean, unit variance), matching the
//! preprocessing the paper applies before k-means template learning and MLP
//! training.

use crate::error::{dim_mismatch, MlError, MlResult};
use crate::linalg::Matrix;

/// Per-feature standard scaler: `x' = (x - mean) / std`.
///
/// Constant features (zero variance) are mapped to zero rather than dividing
/// by zero, which matters for sparse plan-feature columns (an operator type
/// that never appears in a benchmark).
#[derive(Debug, Clone, Default)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Creates an unfitted scaler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Learns per-column means and standard deviations.
    ///
    /// # Errors
    /// Returns [`MlError::EmptyInput`] if `x` has no rows or columns.
    pub fn fit(&mut self, x: &Matrix) -> MlResult<()> {
        if x.rows() == 0 || x.cols() == 0 {
            return Err(MlError::EmptyInput("StandardScaler::fit"));
        }
        let n = x.rows() as f64;
        let d = x.cols();
        let mut means = vec![0.0; d];
        for row in x.row_iter() {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; d];
        for row in x.row_iter() {
            for ((var, v), m) in vars.iter_mut().zip(row).zip(&means) {
                let diff = v - m;
                *var += diff * diff;
            }
        }
        self.stds = vars.iter().map(|v| (v / n).sqrt()).collect();
        self.means = means;
        Ok(())
    }

    /// Returns a standardized copy of `x`.
    ///
    /// # Errors
    /// Returns [`MlError::NotFitted`] before `fit` and a dimension error when
    /// the column count changed.
    pub fn transform(&self, x: &Matrix) -> MlResult<Matrix> {
        if self.means.is_empty() {
            return Err(MlError::NotFitted("StandardScaler"));
        }
        if x.cols() != self.means.len() {
            return Err(dim_mismatch(
                format!("x.cols == {}", self.means.len()),
                format!("x.cols == {}", x.cols()),
            ));
        }
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for ((v, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
                *v = if *s > 0.0 { (*v - m) / s } else { 0.0 };
            }
        }
        Ok(out)
    }

    /// Standardizes a single row in place.
    ///
    /// # Errors
    /// Same conditions as [`StandardScaler::transform`].
    pub fn transform_row(&self, row: &mut [f64]) -> MlResult<()> {
        if self.means.is_empty() {
            return Err(MlError::NotFitted("StandardScaler"));
        }
        if row.len() != self.means.len() {
            return Err(dim_mismatch(
                format!("row.len() == {}", self.means.len()),
                format!("row.len() == {}", row.len()),
            ));
        }
        for ((v, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = if *s > 0.0 { (*v - m) / s } else { 0.0 };
        }
        Ok(())
    }

    /// Convenience: fit then transform.
    ///
    /// # Errors
    /// Propagates errors from [`StandardScaler::fit`].
    pub fn fit_transform(&mut self, x: &Matrix) -> MlResult<Matrix> {
        self.fit(x)?;
        self.transform(x)
    }

    /// Learned means (empty before `fit`).
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Learned standard deviations (empty before `fit`).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Serializes the fitted means and standard deviations.
    ///
    /// # Errors
    /// Returns [`MlError::Codec`] on I/O failure.
    pub fn write_params(&self, w: &mut dyn std::io::Write) -> MlResult<()> {
        crate::codec::write_f64_seq(w, &self.means)?;
        crate::codec::write_f64_seq(w, &self.stds)
    }

    /// Deserializes a scaler written by [`StandardScaler::write_params`].
    ///
    /// # Errors
    /// Returns [`MlError::Codec`] on I/O failure, truncation, or mismatched
    /// mean/std lengths.
    pub fn read_params(r: &mut dyn std::io::Read) -> MlResult<StandardScaler> {
        let means = crate::codec::read_f64_seq(r)?;
        let stds = crate::codec::read_f64_seq(r)?;
        if means.len() != stds.len() {
            return Err(crate::codec::codec_err(format!(
                "scaler means/stds length mismatch: {} vs {}",
                means.len(),
                stds.len()
            )));
        }
        Ok(StandardScaler { means, stds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_variance() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]]).unwrap();
        let mut s = StandardScaler::new();
        let t = s.fit_transform(&x).unwrap();
        for c in 0..2 {
            let col = t.column(c);
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_columns_map_to_zero() {
        let x = Matrix::from_rows(&[vec![5.0, 1.0], vec![5.0, 2.0]]).unwrap();
        let mut s = StandardScaler::new();
        let t = s.fit_transform(&x).unwrap();
        assert_eq!(t.column(0), vec![0.0, 0.0]);
    }

    #[test]
    fn transform_row_matches_matrix_transform() {
        let x = Matrix::from_rows(&[vec![1.0, -4.0], vec![3.0, 4.0]]).unwrap();
        let mut s = StandardScaler::new();
        let t = s.fit_transform(&x).unwrap();
        let mut row = vec![1.0, -4.0];
        s.transform_row(&mut row).unwrap();
        assert_eq!(row, t.row(0).to_vec());
    }

    #[test]
    fn errors_before_fit_and_on_mismatch() {
        let s = StandardScaler::new();
        assert!(matches!(s.transform(&Matrix::zeros(1, 1)), Err(MlError::NotFitted(_))));
        let mut s = StandardScaler::new();
        s.fit(&Matrix::zeros(2, 2)).unwrap();
        assert!(s.transform(&Matrix::zeros(2, 3)).is_err());
        let mut row = vec![0.0; 3];
        assert!(s.transform_row(&mut row).is_err());
        let mut s2 = StandardScaler::new();
        assert!(matches!(s2.fit(&Matrix::zeros(0, 2)), Err(MlError::EmptyInput(_))));
    }
}
