//! DBSCAN density clustering. The paper's related-work section (§V) reports
//! comparing DBSCAN-learned templates against k-means templates (k-means won);
//! this module provides that comparison point and the `ablation_clustering`
//! bench.

use crate::error::{MlError, MlResult};
use crate::linalg::{sq_dist, Matrix};

/// Label assigned to points that belong to no cluster.
pub const NOISE: isize = -1;

/// Hyper-parameters for [`dbscan`].
#[derive(Debug, Clone)]
pub struct DbscanConfig {
    /// Neighborhood radius.
    pub eps: f64,
    /// Minimum neighborhood size (including the point itself) for a core point.
    pub min_pts: usize,
}

impl Default for DbscanConfig {
    fn default() -> Self {
        DbscanConfig { eps: 0.5, min_pts: 5 }
    }
}

/// Runs DBSCAN over the rows of `x`; returns one label per row, with
/// [`NOISE`] (`-1`) for noise points and `0..n_clusters` otherwise.
///
/// # Errors
/// - [`MlError::EmptyInput`] for an empty matrix.
/// - [`MlError::InvalidHyperparameter`] for non-positive `eps` or `min_pts == 0`.
pub fn dbscan(x: &Matrix, config: &DbscanConfig) -> MlResult<Vec<isize>> {
    if x.rows() == 0 || x.cols() == 0 {
        return Err(MlError::EmptyInput("dbscan"));
    }
    if config.eps <= 0.0 || config.eps.is_nan() {
        return Err(MlError::InvalidHyperparameter(format!("eps = {} must be > 0", config.eps)));
    }
    if config.min_pts == 0 {
        return Err(MlError::InvalidHyperparameter("min_pts must be >= 1".into()));
    }
    let n = x.rows();
    let eps2 = config.eps * config.eps;
    let neighbors = |i: usize| -> Vec<usize> {
        let ri = x.row(i);
        (0..n).filter(|&j| sq_dist(ri, x.row(j)) <= eps2).collect()
    };

    const UNVISITED: isize = -2;
    let mut labels = vec![UNVISITED; n];
    let mut cluster: isize = 0;
    for i in 0..n {
        if labels[i] != UNVISITED {
            continue;
        }
        let nbrs = neighbors(i);
        if nbrs.len() < config.min_pts {
            labels[i] = NOISE;
            continue;
        }
        labels[i] = cluster;
        // Expand the cluster with a work queue (classic DBSCAN expansion).
        let mut queue: Vec<usize> = nbrs;
        let mut qi = 0;
        while qi < queue.len() {
            let j = queue[qi];
            qi += 1;
            if labels[j] == NOISE {
                labels[j] = cluster; // border point reachable from a core point
            }
            if labels[j] != UNVISITED {
                continue;
            }
            labels[j] = cluster;
            let jn = neighbors(j);
            if jn.len() >= config.min_pts {
                queue.extend(jn);
            }
        }
        cluster += 1;
    }
    Ok(labels)
}

/// Number of clusters in a DBSCAN labeling (ignoring noise).
pub fn n_clusters(labels: &[isize]) -> usize {
    labels.iter().filter(|&&l| l >= 0).map(|&l| l as usize + 1).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs_with_outlier() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..10 {
            rows.push(vec![0.0 + 0.01 * i as f64, 0.0]);
        }
        for i in 0..10 {
            rows.push(vec![5.0 + 0.01 * i as f64, 5.0]);
        }
        rows.push(vec![100.0, 100.0]); // isolated outlier
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn separates_blobs_and_flags_noise() {
        let x = two_blobs_with_outlier();
        let labels = dbscan(&x, &DbscanConfig { eps: 0.5, min_pts: 3 }).unwrap();
        assert_eq!(n_clusters(&labels), 2);
        assert_eq!(labels[20], NOISE);
        assert!(labels[..10].iter().all(|&l| l == labels[0]));
        assert!(labels[10..20].iter().all(|&l| l == labels[10]));
        assert_ne!(labels[0], labels[10]);
    }

    #[test]
    fn everything_is_noise_with_tiny_eps() {
        let x = two_blobs_with_outlier();
        let labels = dbscan(&x, &DbscanConfig { eps: 1e-6, min_pts: 3 }).unwrap();
        assert!(labels.iter().all(|&l| l == NOISE));
        assert_eq!(n_clusters(&labels), 0);
    }

    #[test]
    fn one_big_cluster_with_huge_eps() {
        let x = two_blobs_with_outlier();
        let labels = dbscan(&x, &DbscanConfig { eps: 1000.0, min_pts: 3 }).unwrap();
        assert_eq!(n_clusters(&labels), 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn border_points_join_a_cluster() {
        // A chain: dense core 0..5 plus one border point within eps of the core
        // but with too few neighbors to be core itself.
        let mut rows: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 * 0.1]).collect();
        rows.push(vec![0.9]); // within 0.5 of point at 0.4 only
        let x = Matrix::from_rows(&rows).unwrap();
        let labels = dbscan(&x, &DbscanConfig { eps: 0.5, min_pts: 4 }).unwrap();
        assert_eq!(labels[5], labels[0], "border point adopts the core's cluster");
    }

    #[test]
    fn validates_inputs() {
        let x = Matrix::from_rows(&[vec![0.0]]).unwrap();
        assert!(dbscan(&Matrix::zeros(0, 1), &DbscanConfig::default()).is_err());
        assert!(dbscan(&x, &DbscanConfig { eps: 0.0, min_pts: 2 }).is_err());
        assert!(dbscan(&x, &DbscanConfig { eps: 1.0, min_pts: 0 }).is_err());
    }
}
