//! Minimal dense linear algebra: a row-major `f64` matrix with exactly the
//! operations the estimators in this crate need (products, transposes,
//! Cholesky solves, power-iteration SVD for the embedding pipeline).

use crate::error::{dim_mismatch, MlError, MlResult};

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    /// Returns [`MlError::DimensionMismatch`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> MlResult<Self> {
        if data.len() != rows * cols {
            return Err(dim_mismatch(
                format!("data.len() == {}", rows * cols),
                format!("data.len() == {}", data.len()),
            ));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from row slices; all rows must have equal length.
    ///
    /// # Errors
    /// Returns [`MlError::EmptyInput`] for zero rows and
    /// [`MlError::DimensionMismatch`] for ragged rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> MlResult<Self> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(MlError::EmptyInput("Matrix::from_rows received no rows"));
        }
        let ncols = rows[0].len();
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(dim_mismatch(
                    format!("row {i}.len() == {ncols}"),
                    format!("row {i}.len() == {}", r.len()),
                ));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix { rows: nrows, cols: ncols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor (panics on out-of-bounds, like slice indexing).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element setter (panics on out-of-bounds, like slice indexing).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Extracts column `c` into a new vector.
    pub fn column(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self · rhs` using an i-k-j loop order, which keeps the
    /// inner loop streaming over contiguous rows of `rhs` (cache friendly —
    /// this product sits on the MLP training hot path).
    ///
    /// # Errors
    /// Returns [`MlError::DimensionMismatch`] when `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> MlResult<Matrix> {
        if self.cols != rhs.rows {
            return Err(dim_mismatch(
                format!("lhs.cols == rhs.rows == {}", self.cols),
                format!("rhs.rows == {}", rhs.rows),
            ));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let lhs_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &lv) in lhs_row.iter().enumerate() {
                if lv == 0.0 {
                    continue; // histograms are sparse; skipping zeros is a real win
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &rv) in out_row.iter_mut().zip(rhs_row) {
                    *o += lv * rv;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self · v`.
    ///
    /// # Errors
    /// Returns [`MlError::DimensionMismatch`] when `self.cols != v.len()`.
    pub fn matvec(&self, v: &[f64]) -> MlResult<Vec<f64>> {
        if self.cols != v.len() {
            return Err(dim_mismatch(
                format!("v.len() == {}", self.cols),
                format!("v.len() == {}", v.len()),
            ));
        }
        Ok(self.row_iter().map(|row| dot(row, v)).collect())
    }

    /// `Aᵀ·A` computed directly (without materializing the transpose), used by
    /// the ridge normal equations.
    pub fn gram(&self) -> Matrix {
        let d = self.cols;
        let mut g = Matrix::zeros(d, d);
        for row in self.row_iter() {
            for (a, &ra) in row.iter().enumerate() {
                if ra == 0.0 {
                    continue;
                }
                let grow = &mut g.data[a * d..(a + 1) * d];
                for (gv, &rb) in grow.iter_mut().zip(row) {
                    *gv += ra * rb;
                }
            }
        }
        g
    }

    /// `Aᵀ·y` without materializing the transpose.
    ///
    /// # Errors
    /// Returns [`MlError::DimensionMismatch`] when `self.rows != y.len()`.
    pub fn t_matvec(&self, y: &[f64]) -> MlResult<Vec<f64>> {
        if self.rows != y.len() {
            return Err(dim_mismatch(
                format!("y.len() == {}", self.rows),
                format!("y.len() == {}", y.len()),
            ));
        }
        let mut out = vec![0.0; self.cols];
        for (row, &w) in self.row_iter().zip(y) {
            if w == 0.0 {
                continue;
            }
            for (o, &v) in out.iter_mut().zip(row) {
                *o += w * v;
            }
        }
        Ok(out)
    }

    /// In-place scalar multiply.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Cholesky factorization of a symmetric positive-definite matrix:
    /// returns lower-triangular `L` with `L·Lᵀ == self`.
    ///
    /// # Errors
    /// Returns [`MlError::SingularMatrix`] if the matrix is not positive
    /// definite to working precision, and [`MlError::DimensionMismatch`] if it
    /// is not square.
    pub fn cholesky(&self) -> MlResult<Matrix> {
        if self.rows != self.cols {
            return Err(dim_mismatch("square matrix", format!("{}x{}", self.rows, self.cols)));
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(MlError::SingularMatrix);
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(l)
    }

    /// Solves `self · x = b` for symmetric positive-definite `self` via
    /// Cholesky (forward then back substitution).
    ///
    /// # Errors
    /// Propagates [`MlError::SingularMatrix`] / dimension errors.
    pub fn cholesky_solve(&self, b: &[f64]) -> MlResult<Vec<f64>> {
        if b.len() != self.rows {
            return Err(dim_mismatch(format!("b.len() == {}", self.rows), format!("{}", b.len())));
        }
        let l = self.cholesky()?;
        let n = self.rows;
        // Forward substitution: L z = b.
        let mut z = vec![0.0; n];
        #[allow(clippy::needless_range_loop)] // i indexes b, z, and L simultaneously
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l.get(i, k) * z[k];
            }
            z[i] = sum / l.get(i, i);
        }
        // Back substitution: Lᵀ x = z.
        let mut x = vec![0.0; n];
        #[allow(clippy::needless_range_loop)] // i indexes z, x, and L simultaneously
        for i in (0..n).rev() {
            let mut sum = z[i];
            for k in (i + 1)..n {
                sum -= l.get(k, i) * x[k];
            }
            x[i] = sum / l.get(i, i);
        }
        Ok(x)
    }
}

/// Dot product of two equal-length slices (panics on length mismatch in debug
/// builds via the zip contract; callers guarantee lengths).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two points.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, MlError::DimensionMismatch { .. }));
        assert!(matches!(Matrix::from_rows(&[]), Err(MlError::EmptyInput(_))));
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transpose(), m);
        assert!(approx(t.get(2, 1), 6.0));
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert!(approx(c.get(0, 0), 58.0));
        assert!(approx(c.get(0, 1), 64.0));
        assert!(approx(c.get(1, 0), 139.0));
        assert!(approx(c.get(1, 1), 154.0));
    }

    #[test]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matvec_and_t_matvec() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let v = a.matvec(&[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(v, vec![-2.0, -2.0]);
        let w = a.t_matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(w, vec![5.0, 7.0, 9.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.t_matvec(&[1.0]).is_err());
    }

    #[test]
    fn gram_equals_transpose_product() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let g = a.gram();
        let expected = a.transpose().matmul(&a).unwrap();
        for r in 0..2 {
            for c in 0..2 {
                assert!(approx(g.get(r, c), expected.get(r, c)));
            }
        }
    }

    #[test]
    fn cholesky_factorizes_spd_matrix() {
        // A = [[4, 2], [2, 3]] is SPD; L = [[2, 0], [1, sqrt(2)]].
        let a = Matrix::from_vec(2, 2, vec![4., 2., 2., 3.]).unwrap();
        let l = a.cholesky().unwrap();
        assert!(approx(l.get(0, 0), 2.0));
        assert!(approx(l.get(1, 0), 1.0));
        assert!(approx(l.get(1, 1), 2.0_f64.sqrt()));
        assert!(approx(l.get(0, 1), 0.0));
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        let a = Matrix::from_vec(2, 2, vec![0., 0., 0., 0.]).unwrap();
        assert_eq!(a.cholesky().unwrap_err(), MlError::SingularMatrix);
        let b = Matrix::from_vec(2, 2, vec![1., 2., 2., 1.]).unwrap(); // indefinite
        assert_eq!(b.cholesky().unwrap_err(), MlError::SingularMatrix);
        assert!(Matrix::zeros(2, 3).cholesky().is_err());
    }

    #[test]
    fn cholesky_solve_recovers_solution() {
        let a = Matrix::from_vec(3, 3, vec![6., 2., 1., 2., 5., 2., 1., 2., 4.]).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = a.cholesky_solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!(approx(*xi, *ti));
        }
        assert!(a.cholesky_solve(&[1.0]).is_err());
    }

    #[test]
    fn vector_helpers() {
        assert!(approx(dot(&[1., 2., 3.], &[4., 5., 6.]), 32.0));
        assert!(approx(sq_dist(&[0., 0.], &[3., 4.]), 25.0));
        assert!(approx(norm(&[3., 4.]), 5.0));
    }

    #[test]
    fn frobenius_and_scale() {
        let mut m = Matrix::from_vec(1, 2, vec![3., 4.]).unwrap();
        assert!(approx(m.frobenius_norm(), 5.0));
        m.scale(2.0);
        assert!(approx(m.frobenius_norm(), 10.0));
    }

    #[test]
    fn column_extraction() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(m.column(1), vec![2.0, 5.0]);
    }
}
