//! Lloyd's k-means with k-means++ initialization, multiple restarts and the
//! elbow heuristic for choosing `k` — the paper's template learner (§III-B1,
//! Algorithm 1) and its `k` tuning method (§III-B1, "elbow method").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{dim_mismatch, MlError, MlResult};
use crate::linalg::{sq_dist, Matrix};
use crate::traits::Footprint;

/// Hyper-parameters for [`KMeans`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters (query templates).
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iter: usize,
    /// Convergence threshold on centroid movement (squared L2).
    pub tol: f64,
    /// Number of k-means++ restarts; the run with the lowest inertia wins.
    pub n_init: usize,
    /// RNG seed for reproducible clustering.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig { k: 8, max_iter: 100, tol: 1e-6, n_init: 4, seed: 42 }
    }
}

/// Trained k-means model: centroids plus the inertia of the winning restart.
#[derive(Debug, Clone)]
pub struct KMeans {
    config: KMeansConfig,
    centroids: Option<Matrix>,
    inertia: f64,
    iterations_run: usize,
}

impl KMeans {
    /// Creates an unfitted model with the given configuration.
    pub fn new(config: KMeansConfig) -> Self {
        KMeans { config, centroids: None, inertia: f64::INFINITY, iterations_run: 0 }
    }

    /// Convenience constructor with default settings for `k` clusters.
    pub fn with_k(k: usize) -> Self {
        KMeans::new(KMeansConfig { k, ..KMeansConfig::default() })
    }

    /// Fits the model and returns the cluster assignment of each input row.
    ///
    /// # Errors
    /// - [`MlError::InvalidHyperparameter`] when `k == 0` or `k > x.rows()`.
    /// - [`MlError::EmptyInput`] when `x` has no rows/columns.
    pub fn fit(&mut self, x: &Matrix) -> MlResult<Vec<usize>> {
        let n = x.rows();
        let d = x.cols();
        if n == 0 || d == 0 {
            return Err(MlError::EmptyInput("KMeans::fit"));
        }
        let k = self.config.k;
        if k == 0 || k > n {
            return Err(MlError::InvalidHyperparameter(format!(
                "k = {k} must be in 1..={n} (number of samples)"
            )));
        }
        let mut best: Option<(f64, Matrix, Vec<usize>, usize)> = None;
        for restart in 0..self.config.n_init.max(1) {
            let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(restart as u64));
            let (inertia, centroids, labels, iters) = self.run_once(x, &mut rng)?;
            if best.as_ref().is_none_or(|(bi, ..)| inertia < *bi) {
                best = Some((inertia, centroids, labels, iters));
            }
        }
        let (inertia, centroids, labels, iters) = best.expect("n_init >= 1 restart ran");
        self.inertia = inertia;
        self.centroids = Some(centroids);
        self.iterations_run = iters;
        Ok(labels)
    }

    fn run_once(&self, x: &Matrix, rng: &mut StdRng) -> MlResult<(f64, Matrix, Vec<usize>, usize)> {
        let n = x.rows();
        let d = x.cols();
        let k = self.config.k;
        let mut centroids = kmeans_pp_init(x, k, rng);
        let mut labels = vec![0usize; n];
        let mut iters = 0;
        for iter in 0..self.config.max_iter {
            iters = iter + 1;
            // Assignment step.
            for (i, row) in x.row_iter().enumerate() {
                labels[i] = nearest(&centroids, row).0;
            }
            // Update step.
            let mut sums = Matrix::zeros(k, d);
            let mut counts = vec![0usize; k];
            for (row, &l) in x.row_iter().zip(&labels) {
                counts[l] += 1;
                for (s, v) in sums.row_mut(l).iter_mut().zip(row) {
                    *s += v;
                }
            }
            let mut movement = 0.0;
            #[allow(clippy::needless_range_loop)] // c indexes both `counts` and matrix rows
            for c in 0..k {
                if counts[c] == 0 {
                    // Empty cluster: reseed on the point farthest from its centroid.
                    let far = x
                        .row_iter()
                        .enumerate()
                        .max_by(|(_, a), (_, b)| {
                            let da = nearest(&centroids, a).1;
                            let db = nearest(&centroids, b).1;
                            da.partial_cmp(&db).expect("finite distances")
                        })
                        .map(|(i, _)| i)
                        .unwrap_or_else(|| rng.gen_range(0..n));
                    let point = x.row(far).to_vec();
                    movement += sq_dist(centroids.row(c), &point);
                    centroids.row_mut(c).copy_from_slice(&point);
                } else {
                    let inv = 1.0 / counts[c] as f64;
                    let mut new_c = sums.row(c).to_vec();
                    for v in &mut new_c {
                        *v *= inv;
                    }
                    movement += sq_dist(centroids.row(c), &new_c);
                    centroids.row_mut(c).copy_from_slice(&new_c);
                }
            }
            if movement < self.config.tol {
                break;
            }
        }
        // Final assignment + inertia against the final centroids.
        let mut inertia = 0.0;
        for (i, row) in x.row_iter().enumerate() {
            let (l, dist) = nearest(&centroids, row);
            labels[i] = l;
            inertia += dist;
        }
        Ok((inertia, centroids, labels, iters))
    }

    /// Assigns each row of `x` to its nearest learned centroid.
    ///
    /// # Errors
    /// Returns [`MlError::NotFitted`] before `fit` or a dimension error.
    pub fn predict(&self, x: &Matrix) -> MlResult<Vec<usize>> {
        x.row_iter().map(|r| self.predict_row(r)).collect()
    }

    /// Assigns a single point to its nearest centroid.
    ///
    /// # Errors
    /// Returns [`MlError::NotFitted`] before `fit` or a dimension error.
    pub fn predict_row(&self, row: &[f64]) -> MlResult<usize> {
        let c = self.centroids.as_ref().ok_or(MlError::NotFitted("KMeans"))?;
        if row.len() != c.cols() {
            return Err(dim_mismatch(
                format!("row.len() == {}", c.cols()),
                format!("row.len() == {}", row.len()),
            ));
        }
        Ok(nearest(c, row).0)
    }

    /// Learned centroids (`None` before fit).
    pub fn centroids(&self) -> Option<&Matrix> {
        self.centroids.as_ref()
    }

    /// Sum of squared distances of samples to their nearest centroid for the
    /// winning restart.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Number of Lloyd iterations the winning restart used.
    pub fn iterations_run(&self) -> usize {
        self.iterations_run
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.config.k
    }

    /// Serializes the configuration and (if fitted) the centroids.
    ///
    /// # Errors
    /// Returns [`MlError::Codec`] on I/O failure.
    pub fn write_params(&self, w: &mut dyn std::io::Write) -> MlResult<()> {
        use crate::codec as c;
        c::write_usize(w, self.config.k)?;
        c::write_usize(w, self.config.max_iter)?;
        c::write_f64(w, self.config.tol)?;
        c::write_usize(w, self.config.n_init)?;
        c::write_u64(w, self.config.seed)?;
        c::write_f64(w, self.inertia)?;
        c::write_usize(w, self.iterations_run)?;
        c::write_bool(w, self.centroids.is_some())?;
        if let Some(cm) = &self.centroids {
            c::write_matrix(w, cm)?;
        }
        Ok(())
    }

    /// Deserializes a model written by [`KMeans::write_params`].
    ///
    /// # Errors
    /// Returns [`MlError::Codec`] on I/O failure or truncation.
    pub fn read_params(r: &mut dyn std::io::Read) -> MlResult<KMeans> {
        use crate::codec as c;
        let config = KMeansConfig {
            k: c::read_usize(r)?,
            max_iter: c::read_usize(r)?,
            tol: c::read_f64(r)?,
            n_init: c::read_usize(r)?,
            seed: c::read_u64(r)?,
        };
        let inertia = c::read_f64(r)?;
        let iterations_run = c::read_usize(r)?;
        let centroids = if c::read_bool(r)? { Some(c::read_matrix(r)?) } else { None };
        Ok(KMeans { config, centroids, inertia, iterations_run })
    }
}

impl Footprint for KMeans {
    fn num_parameters(&self) -> usize {
        self.centroids.as_ref().map_or(0, |c| c.rows() * c.cols())
    }
}

fn nearest(centroids: &Matrix, row: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (c, cr) in centroids.row_iter().enumerate() {
        let d = sq_dist(cr, row);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

/// k-means++ seeding: first centroid uniform, subsequent centroids sampled
/// proportionally to squared distance from the nearest chosen centroid.
fn kmeans_pp_init(x: &Matrix, k: usize, rng: &mut StdRng) -> Matrix {
    let n = x.rows();
    let d = x.cols();
    let mut centroids = Matrix::zeros(k, d);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(x.row(first));
    let mut dist: Vec<f64> = x.row_iter().map(|r| sq_dist(r, centroids.row(0))).collect();
    for c in 1..k {
        let total: f64 = dist.iter().sum();
        let chosen = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut idx = n - 1;
            for (i, &w) in dist.iter().enumerate() {
                if target < w {
                    idx = i;
                    break;
                }
                target -= w;
            }
            idx
        };
        centroids.row_mut(c).copy_from_slice(x.row(chosen));
        for (di, row) in dist.iter_mut().zip(x.row_iter()) {
            let nd = sq_dist(row, centroids.row(c));
            if nd < *di {
                *di = nd;
            }
        }
    }
    centroids
}

/// Runs k-means for each `k` in `ks` and returns `(k, inertia)` pairs — the
/// elbow curve of §III-B1.
///
/// # Errors
/// Propagates fit errors (e.g. a `k` larger than the sample count).
pub fn elbow_curve(x: &Matrix, ks: &[usize], seed: u64) -> MlResult<Vec<(usize, f64)>> {
    let mut out = Vec::with_capacity(ks.len());
    for &k in ks {
        let mut km = KMeans::new(KMeansConfig { k, seed, n_init: 2, ..KMeansConfig::default() });
        km.fit(x)?;
        out.push((k, km.inertia()));
    }
    Ok(out)
}

/// Picks the elbow of an inertia curve by the maximum-distance-to-chord
/// ("kneedle"-style) rule: the point farthest from the straight line joining
/// the first and last curve points.
///
/// # Errors
/// Returns [`MlError::EmptyInput`] when the curve is empty.
pub fn pick_elbow(curve: &[(usize, f64)]) -> MlResult<usize> {
    if curve.is_empty() {
        return Err(MlError::EmptyInput("pick_elbow"));
    }
    if curve.len() < 3 {
        return Ok(curve[0].0);
    }
    let (x0, y0) = (curve[0].0 as f64, curve[0].1);
    let (x1, y1) = (curve[curve.len() - 1].0 as f64, curve[curve.len() - 1].1);
    let dx = x1 - x0;
    let dy = y1 - y0;
    let norm = (dx * dx + dy * dy).sqrt();
    if norm == 0.0 {
        return Ok(curve[0].0);
    }
    let mut best = (curve[0].0, f64::NEG_INFINITY);
    for &(k, inertia) in curve {
        let d = ((k as f64 - x0) * dy - (inertia - y0) * dx).abs() / norm;
        if d > best.1 {
            best = (k, d);
        }
    }
    Ok(best.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated 2-d blobs.
    fn blobs() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        let centers = [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)];
        let mut rng = StdRng::seed_from_u64(7);
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..30 {
                rows.push(vec![cx + rng.gen::<f64>(), cy + rng.gen::<f64>()]);
                truth.push(ci);
            }
        }
        (Matrix::from_rows(&rows).unwrap(), truth)
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let (x, truth) = blobs();
        let mut km = KMeans::with_k(3);
        let labels = km.fit(&x).unwrap();
        // Every ground-truth blob must map to exactly one k-means label.
        for blob in 0..3 {
            let blob_labels: Vec<usize> =
                labels.iter().zip(&truth).filter(|(_, t)| **t == blob).map(|(l, _)| *l).collect();
            assert!(blob_labels.windows(2).all(|w| w[0] == w[1]), "blob {blob} split");
        }
        assert!(km.inertia() < 100.0);
    }

    #[test]
    fn fit_is_deterministic_for_fixed_seed() {
        let (x, _) = blobs();
        let mut a = KMeans::with_k(3);
        let mut b = KMeans::with_k(3);
        assert_eq!(a.fit(&x).unwrap(), b.fit(&x).unwrap());
        assert_eq!(a.inertia(), b.inertia());
    }

    #[test]
    fn predict_matches_fit_labels() {
        let (x, _) = blobs();
        let mut km = KMeans::with_k(3);
        let labels = km.fit(&x).unwrap();
        assert_eq!(km.predict(&x).unwrap(), labels);
    }

    #[test]
    fn handles_k_equals_n() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let mut km = KMeans::with_k(3);
        let labels = km.fit(&x).unwrap();
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "each point gets its own cluster");
        assert!(km.inertia() < 1e-12);
    }

    #[test]
    fn rejects_bad_hyperparameters() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        assert!(KMeans::with_k(0).fit(&x).is_err());
        assert!(KMeans::with_k(5).fit(&x).is_err());
        assert!(KMeans::with_k(1).fit(&Matrix::zeros(0, 2)).is_err());
    }

    #[test]
    fn predict_before_fit_errors() {
        let km = KMeans::with_k(2);
        assert!(matches!(km.predict_row(&[0.0]), Err(MlError::NotFitted(_))));
    }

    #[test]
    fn predict_rejects_wrong_width() {
        let (x, _) = blobs();
        let mut km = KMeans::with_k(3);
        km.fit(&x).unwrap();
        assert!(km.predict_row(&[0.0]).is_err());
    }

    #[test]
    fn inertia_decreases_with_k() {
        let (x, _) = blobs();
        let curve = elbow_curve(&x, &[1, 2, 3, 5], 42).unwrap();
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "inertia must be non-increasing in k");
        }
    }

    #[test]
    fn elbow_picks_true_cluster_count() {
        let (x, _) = blobs();
        let curve = elbow_curve(&x, &[1, 2, 3, 4, 5, 6], 42).unwrap();
        let k = pick_elbow(&curve).unwrap();
        assert_eq!(k, 3);
    }

    #[test]
    fn pick_elbow_edge_cases() {
        assert!(pick_elbow(&[]).is_err());
        assert_eq!(pick_elbow(&[(4, 1.0)]).unwrap(), 4);
        assert_eq!(pick_elbow(&[(1, 5.0), (2, 4.0)]).unwrap(), 1);
    }

    #[test]
    fn footprint_counts_centroid_coordinates() {
        let (x, _) = blobs();
        let mut km = KMeans::with_k(3);
        assert_eq!(km.num_parameters(), 0);
        km.fit(&x).unwrap();
        assert_eq!(km.num_parameters(), 3 * 2);
    }
}
