//! # wmp-mlkit — from-scratch ML substrate for the LearnedWMP reproduction
//!
//! The LearnedWMP paper trains its workload-memory predictors with
//! scikit-learn and XGBoost. This crate provides the same algorithm families
//! implemented from first principles in Rust, behind one [`Regressor`] trait:
//!
//! - [`ridge::Ridge`] — closed-form L2-regularized linear regression,
//! - [`tree::DecisionTree`] — CART with histogram split finding,
//! - [`forest::RandomForest`] — bagged trees with feature subsampling,
//! - [`gbdt::GradientBoosting`] — XGBoost-style second-order boosting,
//! - [`mlp::Mlp`] — multilayer perceptron with SGD / Adam / L-BFGS.
//!
//! Unsupervised pieces used by template learning: [`kmeans::KMeans`]
//! (k-means++ + elbow method) and [`dbscan::dbscan`]. Evaluation lives in
//! [`metrics`] (RMSE, MAPE, residual summaries) and model-size accounting in
//! [`traits::Footprint`].

#![warn(missing_docs)]

pub mod binned;
pub mod codec;
pub mod dbscan;
pub mod error;
pub mod forest;
pub mod gbdt;
pub mod grow;
pub mod kmeans;
pub mod knn;
pub mod linalg;
pub mod metrics;
pub mod mlp;
pub mod multi;
pub mod pca;
pub mod ridge;
pub mod scaler;
pub mod search;
pub mod traits;
pub mod tree;

pub use error::{MlError, MlResult};
pub use linalg::Matrix;
pub use multi::MultiHead;
pub use traits::{Footprint, Regressor};
