//! k-nearest-neighbor regression — a non-parametric reference learner used to
//! sanity-check the parametric models (if k-NN beats a trained model, the
//! model is underfitting its feature space).

use crate::error::{dim_mismatch, MlError, MlResult};
use crate::linalg::{sq_dist, Matrix};
use crate::scaler::StandardScaler;
use crate::traits::{Footprint, Regressor};

/// Distance weighting for neighbor votes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnWeights {
    /// Plain average of the k nearest targets.
    Uniform,
    /// Inverse-distance weighting (exact matches dominate).
    Distance,
}

/// Hyper-parameters for [`KnnRegressor`].
#[derive(Debug, Clone)]
pub struct KnnConfig {
    /// Number of neighbors.
    pub k: usize,
    /// Vote weighting.
    pub weights: KnnWeights,
    /// Standardize features before distance computation (recommended —
    /// cardinality features dwarf count features otherwise).
    pub standardize: bool,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig { k: 5, weights: KnnWeights::Distance, standardize: true }
    }
}

/// Brute-force k-NN regressor (stores the training set).
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    config: KnnConfig,
    scaler: StandardScaler,
    x: Matrix,
    y: Vec<f64>,
    fitted: bool,
}

impl KnnRegressor {
    /// Creates an unfitted model.
    pub fn new(config: KnnConfig) -> Self {
        KnnRegressor {
            config,
            scaler: StandardScaler::new(),
            x: Matrix::zeros(0, 0),
            y: Vec::new(),
            fitted: false,
        }
    }

    /// Unfitted model with defaults.
    pub fn default_config() -> Self {
        KnnRegressor::new(KnnConfig::default())
    }
}

impl Footprint for KnnRegressor {
    fn num_parameters(&self) -> usize {
        // The "model" is the training set itself.
        self.x.rows() * self.x.cols() + self.y.len()
    }
}

impl Regressor for KnnRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> MlResult<()> {
        if x.rows() == 0 || x.cols() == 0 {
            return Err(MlError::EmptyInput("KnnRegressor::fit"));
        }
        if y.len() != x.rows() {
            return Err(dim_mismatch(
                format!("y.len() == {}", x.rows()),
                format!("y.len() == {}", y.len()),
            ));
        }
        if self.config.k == 0 {
            return Err(MlError::InvalidHyperparameter("k must be >= 1".into()));
        }
        self.x = if self.config.standardize { self.scaler.fit_transform(x)? } else { x.clone() };
        self.y = y.to_vec();
        self.fitted = true;
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> MlResult<f64> {
        if !self.fitted {
            return Err(MlError::NotFitted("KnnRegressor"));
        }
        if row.len() != self.x.cols() {
            return Err(dim_mismatch(
                format!("row.len() == {}", self.x.cols()),
                format!("row.len() == {}", row.len()),
            ));
        }
        let mut q = row.to_vec();
        if self.config.standardize {
            self.scaler.transform_row(&mut q)?;
        }
        // Partial selection of the k smallest distances.
        let k = self.config.k.min(self.x.rows());
        let mut dists: Vec<(f64, usize)> =
            self.x.row_iter().enumerate().map(|(i, r)| (sq_dist(r, &q), i)).collect();
        dists
            .select_nth_unstable_by(k - 1, |a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        let neighbors = &dists[..k];
        match self.config.weights {
            KnnWeights::Uniform => {
                Ok(neighbors.iter().map(|&(_, i)| self.y[i]).sum::<f64>() / k as f64)
            }
            KnnWeights::Distance => {
                // An exact match decides outright.
                if let Some(&(_, i)) = neighbors.iter().find(|(d, _)| *d < 1e-24) {
                    return Ok(self.y[i]);
                }
                let mut num = 0.0;
                let mut den = 0.0;
                for &(d, i) in neighbors {
                    let w = 1.0 / d.sqrt();
                    num += w * self.y[i];
                    den += w;
                }
                Ok(num / den)
            }
        }
    }

    fn name(&self) -> &'static str {
        "knn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn wave(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.gen::<f64>() * 6.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| (r[0]).sin() * 10.0).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn interpolates_a_smooth_function() {
        let (x, y) = wave(500, 1);
        let (xt, yt) = wave(100, 2);
        let mut m = KnnRegressor::default_config();
        m.fit(&x, &y).unwrap();
        let preds = m.predict(&xt).unwrap();
        assert!(r2(&yt, &preds).unwrap() > 0.95);
    }

    #[test]
    fn exact_training_point_returns_its_target_under_distance_weights() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let y = vec![5.0, 7.0, 9.0];
        let mut m = KnnRegressor::new(KnnConfig { k: 3, ..Default::default() });
        m.fit(&x, &y).unwrap();
        assert_eq!(m.predict_row(&[1.0]).unwrap(), 7.0);
    }

    #[test]
    fn uniform_weights_average_neighbors() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![10.0]]).unwrap();
        let y = vec![2.0, 4.0, 100.0];
        let mut m =
            KnnRegressor::new(KnnConfig { k: 2, weights: KnnWeights::Uniform, standardize: false });
        m.fit(&x, &y).unwrap();
        assert!((m.predict_row(&[0.4]).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_training_set_is_capped() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let y = vec![1.0, 3.0];
        let mut m = KnnRegressor::new(KnnConfig {
            k: 50,
            weights: KnnWeights::Uniform,
            standardize: false,
        });
        m.fit(&x, &y).unwrap();
        assert!((m.predict_row(&[0.5]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn validates_inputs() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let mut m = KnnRegressor::new(KnnConfig { k: 0, ..Default::default() });
        assert!(m.fit(&x, &[1.0, 2.0]).is_err());
        let mut m = KnnRegressor::default_config();
        assert!(m.fit(&x, &[1.0]).is_err());
        assert!(m.fit(&Matrix::zeros(0, 1), &[]).is_err());
        assert!(matches!(
            KnnRegressor::default_config().predict_row(&[0.0]),
            Err(MlError::NotFitted(_))
        ));
        m.fit(&x, &[1.0, 2.0]).unwrap();
        assert!(m.predict_row(&[0.0, 1.0]).is_err());
    }

    #[test]
    fn footprint_is_the_training_set() {
        let (x, y) = wave(100, 3);
        let mut m = KnnRegressor::default_config();
        m.fit(&x, &y).unwrap();
        assert_eq!(m.num_parameters(), 100 + 100);
        assert_eq!(m.name(), "knn");
    }
}
