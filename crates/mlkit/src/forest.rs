//! Random Forest regressor — bootstrap-aggregated trees with per-node feature
//! subsampling (the paper's "RF" learner, §III-B4). Trees are grown in
//! parallel with scoped threads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::binned::BinnedMatrix;
use crate::error::{dim_mismatch, MlError, MlResult};
use crate::grow::{grow_tree, GrowParams, Tree};
use crate::linalg::Matrix;
use crate::traits::{Footprint, Regressor};

/// Hyper-parameters for [`RandomForest`].
#[derive(Debug, Clone)]
pub struct RandomForestConfig {
    /// Number of trees in the ensemble.
    pub n_trees: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Features sampled per node; `None` considers every feature (the
    /// scikit-learn regression default — bagging alone provides the
    /// de-correlation). Sparse histogram inputs degrade badly under
    /// aggressive feature subsampling, so only set this deliberately.
    pub max_features: Option<usize>,
    /// Number of quantile bins for split finding.
    pub max_bins: usize,
    /// RNG seed (bootstrap + feature sampling).
    pub seed: u64,
    /// Number of worker threads (1 = sequential).
    pub n_threads: usize,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            n_trees: 50,
            max_depth: 10,
            min_samples_split: 4,
            min_samples_leaf: 2,
            max_features: None,
            max_bins: 64,
            seed: 42,
            n_threads: 4,
        }
    }
}

/// Bagged ensemble of regression trees.
#[derive(Debug, Clone)]
pub struct RandomForest {
    config: RandomForestConfig,
    trees: Vec<Tree>,
    n_features: usize,
}

impl RandomForest {
    /// Creates an unfitted forest.
    pub fn new(config: RandomForestConfig) -> Self {
        RandomForest { config, trees: Vec::new(), n_features: 0 }
    }

    /// Unfitted forest with default hyper-parameters.
    pub fn default_config() -> Self {
        RandomForest::new(RandomForestConfig::default())
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total node count across the ensemble.
    pub fn total_nodes(&self) -> usize {
        self.trees.iter().map(Tree::n_nodes).sum()
    }

    /// Deserializes a model written by [`Regressor::save_params`].
    ///
    /// # Errors
    /// Returns [`MlError::Codec`] on I/O failure, truncation, or a malformed
    /// tree arena.
    pub fn read_params(r: &mut dyn std::io::Read) -> MlResult<RandomForest> {
        use crate::codec as c;
        let config = RandomForestConfig {
            n_trees: c::read_usize(r)?,
            max_depth: c::read_usize(r)?,
            min_samples_split: c::read_usize(r)?,
            min_samples_leaf: c::read_usize(r)?,
            max_features: if c::read_bool(r)? { Some(c::read_usize(r)?) } else { None },
            max_bins: c::read_usize(r)?,
            seed: c::read_u64(r)?,
            n_threads: c::read_usize(r)?,
        };
        let n_features = c::read_usize(r)?;
        let n = c::read_len(r, "forest trees")?;
        let mut trees = Vec::with_capacity(n);
        for _ in 0..n {
            trees.push(Tree::read_from(r)?);
        }
        Ok(RandomForest { config, trees, n_features })
    }
}

impl Footprint for RandomForest {
    fn num_parameters(&self) -> usize {
        self.total_nodes()
    }

    fn footprint_bytes(&self) -> usize {
        self.total_nodes() * 24 + 64
    }
}

impl Regressor for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> MlResult<()> {
        let n = x.rows();
        if n == 0 || x.cols() == 0 {
            return Err(MlError::EmptyInput("RandomForest::fit"));
        }
        if y.len() != n {
            return Err(dim_mismatch(format!("y.len() == {n}"), format!("y.len() == {}", y.len())));
        }
        if self.config.n_trees == 0 {
            return Err(MlError::InvalidHyperparameter("n_trees must be >= 1".into()));
        }
        let binned = BinnedMatrix::from_matrix(x, self.config.max_bins)?;
        let feature_subsample = self.config.max_features.map(|m| m.clamp(1, x.cols()));
        let params = GrowParams {
            max_depth: self.config.max_depth,
            min_samples_split: self.config.min_samples_split,
            min_samples_leaf: self.config.min_samples_leaf,
            lambda: 0.0,
            gamma: 1e-12,
            feature_subsample,
        };

        let n_trees = self.config.n_trees;
        let n_threads = self.config.n_threads.max(1).min(n_trees);
        let seed = self.config.seed;
        let mut trees: Vec<Option<Tree>> = vec![None; n_trees];
        // Grow trees in parallel: chunk the output slice across scoped threads;
        // each tree has an independent seed so results do not depend on the
        // thread count.
        std::thread::scope(|scope| {
            let chunk = n_trees.div_ceil(n_threads);
            let binned = &binned;
            let params = &params;
            for (ti, slot_chunk) in trees.chunks_mut(chunk).enumerate() {
                let first_tree = ti * chunk;
                scope.spawn(move || {
                    for (off, slot) in slot_chunk.iter_mut().enumerate() {
                        let tree_idx = first_tree + off;
                        let tree_seed =
                            seed.wrapping_add(tree_idx as u64).wrapping_mul(0x9E37_79B9);
                        let mut rng = StdRng::seed_from_u64(tree_seed);
                        // Bootstrap sample (with replacement).
                        let mut rows: Vec<u32> =
                            (0..n).map(|_| rng.gen_range(0..n) as u32).collect();
                        *slot = Some(grow_tree(binned, y, &mut rows, params, tree_seed ^ 0xABCD));
                    }
                });
            }
        });
        self.trees = trees.into_iter().map(|t| t.expect("every tree slot filled")).collect();
        self.n_features = x.cols();
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> MlResult<f64> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted("RandomForest"));
        }
        if row.len() != self.n_features {
            return Err(dim_mismatch(
                format!("row.len() == {}", self.n_features),
                format!("row.len() == {}", row.len()),
            ));
        }
        let sum: f64 = self.trees.iter().map(|t| t.predict_row(row)).sum();
        Ok(sum / self.trees.len() as f64)
    }

    fn name(&self) -> &'static str {
        "rf"
    }

    fn save_params(&self, w: &mut dyn std::io::Write) -> MlResult<()> {
        use crate::codec as c;
        c::write_usize(w, self.config.n_trees)?;
        c::write_usize(w, self.config.max_depth)?;
        c::write_usize(w, self.config.min_samples_split)?;
        c::write_usize(w, self.config.min_samples_leaf)?;
        c::write_bool(w, self.config.max_features.is_some())?;
        if let Some(m) = self.config.max_features {
            c::write_usize(w, m)?;
        }
        c::write_usize(w, self.config.max_bins)?;
        c::write_u64(w, self.config.seed)?;
        c::write_usize(w, self.config.n_threads)?;
        c::write_usize(w, self.n_features)?;
        c::write_usize(w, self.trees.len())?;
        for tree in &self.trees {
            tree.write_to(w)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{r2, rmse};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn friedman_like(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> =
            (0..n).map(|_| (0..4).map(|_| rng.gen::<f64>()).collect::<Vec<f64>>()).collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| 10.0 * r[0] * r[1] + 5.0 * r[2] - 3.0 * r[3] + rng.gen::<f64>() * 0.1)
            .collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn fits_nonlinear_target_with_good_r2() {
        let (x, y) = friedman_like(500, 5);
        let mut rf = RandomForest::new(RandomForestConfig { n_trees: 30, ..Default::default() });
        rf.fit(&x, &y).unwrap();
        let pred = rf.predict(&x).unwrap();
        assert!(r2(&y, &pred).unwrap() > 0.9);
    }

    #[test]
    fn generalizes_to_held_out_data() {
        let (x_tr, y_tr) = friedman_like(800, 5);
        let (x_te, y_te) = friedman_like(200, 99);
        let mut rf = RandomForest::default_config();
        rf.fit(&x_tr, &y_tr).unwrap();
        let pred = rf.predict(&x_te).unwrap();
        assert!(r2(&y_te, &pred).unwrap() > 0.8);
    }

    #[test]
    fn deterministic_for_fixed_seed_regardless_of_threads() {
        let (x, y) = friedman_like(200, 1);
        let mut a = RandomForest::new(RandomForestConfig {
            n_trees: 8,
            n_threads: 1,
            ..Default::default()
        });
        let mut b = RandomForest::new(RandomForestConfig {
            n_trees: 8,
            n_threads: 4,
            ..Default::default()
        });
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        let pa = a.predict(&x).unwrap();
        let pb = b.predict(&x).unwrap();
        assert_eq!(pa, pb);
    }

    #[test]
    fn more_trees_do_not_hurt_much() {
        let (x, y) = friedman_like(300, 2);
        let (x_te, y_te) = friedman_like(150, 3);
        let mut small = RandomForest::new(RandomForestConfig { n_trees: 2, ..Default::default() });
        let mut big = RandomForest::new(RandomForestConfig { n_trees: 40, ..Default::default() });
        small.fit(&x, &y).unwrap();
        big.fit(&x, &y).unwrap();
        let e_small = rmse(&y_te, &small.predict(&x_te).unwrap()).unwrap();
        let e_big = rmse(&y_te, &big.predict(&x_te).unwrap()).unwrap();
        assert!(e_big <= e_small * 1.1, "bagging should not degrade error");
    }

    #[test]
    fn validates_inputs() {
        let (x, y) = friedman_like(10, 0);
        let mut rf = RandomForest::new(RandomForestConfig { n_trees: 0, ..Default::default() });
        assert!(rf.fit(&x, &y).is_err());
        let mut rf = RandomForest::default_config();
        assert!(rf.fit(&Matrix::zeros(0, 2), &[]).is_err());
        assert!(rf.fit(&x, &y[..5]).is_err());
        assert!(matches!(
            RandomForest::default_config().predict_row(&[0.0]),
            Err(MlError::NotFitted(_))
        ));
        rf.fit(&x, &y).unwrap();
        assert!(rf.predict_row(&[0.0]).is_err());
    }

    #[test]
    fn footprint_scales_with_ensemble() {
        let (x, y) = friedman_like(100, 4);
        let mut rf = RandomForest::new(RandomForestConfig { n_trees: 4, ..Default::default() });
        rf.fit(&x, &y).unwrap();
        assert_eq!(rf.n_trees(), 4);
        assert!(rf.footprint_bytes() > 4 * 24);
        assert_eq!(rf.num_parameters(), rf.total_nodes());
    }
}
