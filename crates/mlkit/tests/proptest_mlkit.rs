//! Property-based tests of the ML substrate's core numerical invariants.

use proptest::prelude::*;

use wmp_mlkit::forest::{RandomForest, RandomForestConfig};
use wmp_mlkit::kmeans::KMeans;
use wmp_mlkit::linalg::Matrix;
use wmp_mlkit::ridge::Ridge;
use wmp_mlkit::scaler::StandardScaler;
use wmp_mlkit::tree::DecisionTree;
use wmp_mlkit::Regressor;

/// Strategy: a small random matrix with bounded entries.
fn arb_matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized data"))
    })
}

/// Strategy: a supervised dataset (x, y) with consistent lengths.
fn arb_dataset() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (5usize..40, 1usize..4).prop_flat_map(|(n, d)| {
        (
            prop::collection::vec(-50.0f64..50.0, n * d)
                .prop_map(move |data| Matrix::from_vec(n, d, data).expect("sized data")),
            prop::collection::vec(-1000.0f64..1000.0, n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transpose_is_an_involution(m in arb_matrix(1..8, 1..8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_with_identity_is_identity(m in arb_matrix(1..8, 1..8)) {
        let i = Matrix::identity(m.cols());
        prop_assert_eq!(m.matmul(&i).expect("shapes agree"), m.clone());
        let i = Matrix::identity(m.rows());
        prop_assert_eq!(i.matmul(&m).expect("shapes agree"), m);
    }

    #[test]
    fn gram_matrix_is_symmetric_psd_diagonal(m in arb_matrix(2..10, 1..6)) {
        let g = m.gram();
        for r in 0..g.rows() {
            prop_assert!(g.get(r, r) >= -1e-9, "diagonal of AᵀA is nonnegative");
            for c in 0..g.cols() {
                prop_assert!((g.get(r, c) - g.get(c, r)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn cholesky_solve_solves(dim in 1usize..6, seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Build an SPD matrix A = BᵀB + I.
        let b = {
            let data: Vec<f64> = (0..dim * dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
            Matrix::from_vec(dim, dim, data).expect("sized")
        };
        let mut a = b.gram();
        for i in 0..dim {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        let x_true: Vec<f64> = (0..dim).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let rhs = a.matvec(&x_true).expect("shapes agree");
        let x = a.cholesky_solve(&rhs).expect("SPD system solves");
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-6, "{xi} vs {ti}");
        }
    }

    #[test]
    fn scaler_output_has_zero_mean((x, _) in arb_dataset()) {
        let mut s = StandardScaler::new();
        let t = s.fit_transform(&x).expect("fit");
        for c in 0..t.cols() {
            let col = t.column(c);
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            prop_assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn kmeans_labels_are_in_range((x, _) in arb_dataset(), k in 1usize..5) {
        let k = k.min(x.rows());
        let mut km = KMeans::with_k(k);
        let labels = km.fit(&x).expect("fit");
        prop_assert!(labels.iter().all(|&l| l < k));
        // Predict agrees with in-range contract too.
        for r in 0..x.rows() {
            prop_assert!(km.predict_row(x.row(r)).expect("predict") < k);
        }
    }

    #[test]
    fn tree_predictions_stay_within_target_range((x, y) in arb_dataset()) {
        let mut dt = DecisionTree::default_config();
        dt.fit(&x, &y).expect("fit");
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for r in 0..x.rows() {
            let p = dt.predict_row(x.row(r)).expect("predict");
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "leaf means stay in range");
        }
    }

    #[test]
    fn forest_predictions_stay_within_target_range((x, y) in arb_dataset()) {
        let mut rf = RandomForest::new(RandomForestConfig {
            n_trees: 5,
            n_threads: 1,
            ..Default::default()
        });
        rf.fit(&x, &y).expect("fit");
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for r in 0..x.rows() {
            let p = rf.predict_row(x.row(r)).expect("predict");
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "averages of leaf means stay in range");
        }
    }

    #[test]
    fn ridge_is_finite_everywhere((x, y) in arb_dataset()) {
        let mut m = Ridge::new(1.0);
        m.fit(&x, &y).expect("fit");
        for r in 0..x.rows() {
            prop_assert!(m.predict_row(x.row(r)).expect("predict").is_finite());
        }
    }

    #[test]
    fn heavier_ridge_regularization_never_grows_coefficients((x, y) in arb_dataset()) {
        let mut light = Ridge::new(0.1);
        let mut heavy = Ridge::new(1000.0);
        light.fit(&x, &y).expect("fit");
        heavy.fit(&x, &y).expect("fit");
        let norm = |m: &Ridge| m.coefficients().iter().map(|c| c * c).sum::<f64>();
        prop_assert!(norm(&heavy) <= norm(&light) + 1e-9);
    }
}
