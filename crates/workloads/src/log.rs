//! The executed-query log (`Q_train` of the paper): every generated query is
//! planned, featurized, run through the executor simulator (the multi-resource
//! truth label — memory, CPU, I/O), and priced by the DBMS heuristic (the
//! SingleWMP-DBMS baseline estimate).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use wmp_plan::error::PlanResult;
use wmp_plan::features::featurize_plan;
use wmp_plan::planner::Planner;
use wmp_plan::query::QuerySpec;
use wmp_plan::sql::render_sql;
use wmp_plan::{Catalog, ResourceVector};
use wmp_sim::{DbmsHeuristicEstimator, ExecutorSimulator};

/// Template hint assigned to text-ingested queries, which have no
/// generator template. Diagnostics only; models never read hints.
pub const NO_TEMPLATE_HINT: usize = usize::MAX;

/// A line of a SQL log that failed to parse or lower (see
/// [`QueryLog::from_sql_lines`]).
#[derive(Debug, Clone)]
pub struct SqlLineError {
    /// 1-based line number in the input text.
    pub line: usize,
    /// The typed, span-carrying rejection.
    pub error: wmp_sql::ParseError,
}

/// One executed query: the paper's `q = (e, p, m)` generalized to a
/// multi-resource label, plus the baseline estimate.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Stable query id within the log.
    pub id: u64,
    /// Logical spec (renders to `e` via [`render_sql`]).
    pub spec: QuerySpec,
    /// Plan features: `(count, Σ est. cardinality)` per operator kind plus
    /// the structural tail (see `wmp_plan::features`).
    pub features: Vec<f64>,
    /// Measured resource consumption — the label. Its memory component is
    /// the paper's `m`; CPU and I/O come from the cost model under true
    /// cardinalities.
    pub resources: ResourceVector,
    /// The optimizer heuristic's resource estimate (SingleWMP-DBMS), driven
    /// by estimated cardinalities.
    pub dbms_estimate: ResourceVector,
    /// The generator's template id (diagnostics only; models never see it).
    pub template_hint: usize,
}

impl QueryRecord {
    /// SQL text of the query.
    pub fn sql(&self) -> String {
        render_sql(&self.spec)
    }

    /// Actual peak working memory in MB — the memory projection of
    /// [`QueryRecord::resources`] (the paper's scalar label `m`).
    pub fn true_memory_mb(&self) -> f64 {
        self.resources.memory_mb
    }

    /// The optimizer heuristic's memory estimate in MB — the memory
    /// projection of [`QueryRecord::dbms_estimate`].
    pub fn dbms_estimate_mb(&self) -> f64 {
        self.dbms_estimate.memory_mb
    }
}

/// A benchmark's generated query log plus its catalog.
#[derive(Debug, Clone)]
pub struct QueryLog {
    /// Benchmark name ("tpcds", "job", "tpcc").
    pub benchmark: String,
    /// The catalog queries run against.
    pub catalog: Catalog,
    /// Executed queries.
    pub records: Vec<QueryRecord>,
}

impl QueryLog {
    /// Number of queries.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Shuffled train/test split by fraction (the paper uses 80/20).
    pub fn train_test_split(&self, train_frac: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
        let mut idx: Vec<usize> = (0..self.records.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let n_train = ((self.records.len() as f64) * train_frac).round() as usize;
        let n_train = n_train.min(self.records.len());
        let test = idx.split_off(n_train);
        (idx, test)
    }

    /// Replays the log as a stream of arrival chunks of at most `chunk_size`
    /// queries — the shape a serving engine ingests: an unbounded arrival
    /// stream consumed a few queries at a time, rather than a materialized
    /// batch. The final chunk may be shorter; a `chunk_size` of 0 yields an
    /// empty stream (a resident server must not panic on a bad knob).
    pub fn replay(&self, chunk_size: usize) -> Replay<'_> {
        Replay { records: &self.records, chunk_size }
    }

    /// Builds a log from raw SQL text, one statement per line, parsed under
    /// `dialect` — the ingestion path for a real DBMS query log. Blank lines
    /// and `--` comment lines are skipped. Lines that fail to parse or lower
    /// are *collected*, not fatal: a multi-million-query production log
    /// always contains statements outside the supported subset, and the
    /// caller decides whether the rejection rate is acceptable.
    ///
    /// Records get sequential ids, template hint [`NO_TEMPLATE_HINT`] (text
    /// ingestion has no generator template), and selectivities from the
    /// lowering defaults (`wmp_sql::lower`).
    ///
    /// # Errors
    /// Propagates *planning* errors only — lowering already resolved every
    /// identifier, so these indicate a catalog inconsistency, not bad input.
    pub fn from_sql_lines(
        benchmark: &str,
        catalog: Catalog,
        sql_lines: &str,
        dialect: &dyn wmp_sql::Dialect,
    ) -> PlanResult<(QueryLog, Vec<SqlLineError>)> {
        let mut specs = Vec::new();
        let mut errors = Vec::new();
        let mut next_id = 0u64;
        for (i, line) in sql_lines.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with("--") {
                continue;
            }
            match wmp_sql::parse_to_spec(trimmed, dialect, &catalog) {
                Ok(mut spec) => {
                    spec.id = next_id;
                    next_id += 1;
                    specs.push((spec, NO_TEMPLATE_HINT));
                }
                Err(error) => errors.push(SqlLineError { line: i + 1, error }),
            }
        }
        let log = build_log(benchmark, catalog, specs)?;
        Ok((log, errors))
    }

    /// Mean true memory (MB) across the log — useful to sanity-check scale.
    pub fn mean_true_memory_mb(&self) -> f64 {
        self.mean_resources().memory_mb
    }

    /// Mean per-resource consumption across the log.
    pub fn mean_resources(&self) -> ResourceVector {
        if self.records.is_empty() {
            return ResourceVector::ZERO;
        }
        self.records
            .iter()
            .map(|r| r.resources)
            .sum::<ResourceVector>()
            .scale(1.0 / self.records.len() as f64)
    }
}

/// Streaming iterator over a [`QueryLog`], created by [`QueryLog::replay`]:
/// yields consecutive record chunks in log order until the log is exhausted.
#[derive(Debug, Clone)]
pub struct Replay<'a> {
    records: &'a [QueryRecord],
    chunk_size: usize,
}

impl<'a> Replay<'a> {
    /// Queries not yet yielded.
    pub fn remaining(&self) -> usize {
        self.records.len()
    }
}

impl<'a> Iterator for Replay<'a> {
    type Item = &'a [QueryRecord];

    fn next(&mut self) -> Option<Self::Item> {
        if self.chunk_size == 0 || self.records.is_empty() {
            return None;
        }
        let take = self.chunk_size.min(self.records.len());
        let (chunk, rest) = self.records.split_at(take);
        self.records = rest;
        Some(chunk)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.chunk_size == 0 {
            return (0, Some(0));
        }
        let n = self.records.len().div_ceil(self.chunk_size);
        (n, Some(n))
    }
}

impl ExactSizeIterator for Replay<'_> {}

/// Plans, simulates, and featurizes one query spec into a [`QueryRecord`].
///
/// # Errors
/// Propagates planning errors (unknown tables/columns/aliases).
pub fn build_record(
    catalog: &Catalog,
    planner: &Planner<'_>,
    simulator: &ExecutorSimulator,
    heuristic: &DbmsHeuristicEstimator,
    spec: QuerySpec,
    template_hint: usize,
) -> PlanResult<QueryRecord> {
    let plan = planner.plan(&spec)?;
    let features = featurize_plan(&plan);
    let resources = simulator.true_resources(&plan, spec.id);
    let dbms_estimate = heuristic.estimate_resources(&plan);
    let _ = catalog; // catalog is implicit in the planner; kept for signature clarity
    Ok(QueryRecord { id: spec.id, spec, features, resources, dbms_estimate, template_hint })
}

/// Builds a full log from specs (convenience wrapper over [`build_record`]).
///
/// # Errors
/// Propagates planning errors.
pub fn build_log(
    benchmark: &str,
    catalog: Catalog,
    specs: Vec<(QuerySpec, usize)>,
) -> PlanResult<QueryLog> {
    build_log_with(benchmark, catalog, specs, wmp_plan::PlannerConfig::default())
}

/// [`build_log`] with explicit planner tunables (used by the
/// `ablation_planner` experiment to compare greedy vs. FROM-order joins).
///
/// # Errors
/// Propagates planning errors.
pub fn build_log_with(
    benchmark: &str,
    catalog: Catalog,
    specs: Vec<(QuerySpec, usize)>,
    planner_config: wmp_plan::PlannerConfig,
) -> PlanResult<QueryLog> {
    let planner = Planner::with_config(&catalog, planner_config);
    let simulator = ExecutorSimulator::new();
    let heuristic = DbmsHeuristicEstimator::new();
    let mut records = Vec::with_capacity(specs.len());
    for (spec, hint) in specs {
        records.push(build_record(&catalog, &planner, &simulator, &heuristic, spec, hint)?);
    }
    Ok(QueryLog { benchmark: benchmark.to_string(), catalog, records })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmp_plan::query::TableRef;
    use wmp_plan::schema::{Column, ColumnType, Table};

    fn tiny_log(n: usize) -> QueryLog {
        let mut catalog = Catalog::new();
        catalog.add_table(Table::new(
            "t",
            10_000,
            vec![Column::new("a", ColumnType::Int, 100), Column::new("b", ColumnType::Int, 10)],
        ));
        let specs: Vec<(QuerySpec, usize)> = (0..n)
            .map(|i| {
                (
                    QuerySpec {
                        id: i as u64,
                        tables: vec![TableRef::plain("t")],
                        order_by: vec![("t".into(), "a".into())],
                        ..QuerySpec::default()
                    },
                    i % 3,
                )
            })
            .collect();
        build_log("toy", catalog, specs).unwrap()
    }

    #[test]
    fn build_log_produces_complete_records() {
        let log = tiny_log(5);
        assert_eq!(log.len(), 5);
        assert!(!log.is_empty());
        for r in &log.records {
            assert_eq!(r.features.len(), wmp_plan::features::N_PLAN_FEATURES);
            assert!(r.true_memory_mb() > 0.0);
            assert!(r.dbms_estimate_mb() > 0.0);
            assert!(r.sql().starts_with("SELECT"));
        }
        assert!(log.mean_true_memory_mb() > 0.0);
    }

    #[test]
    fn split_covers_everything_once() {
        let log = tiny_log(10);
        let (train, test) = log.train_test_split(0.8, 42);
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 2);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic_and_seed_sensitive() {
        let log = tiny_log(20);
        assert_eq!(log.train_test_split(0.8, 1), log.train_test_split(0.8, 1));
        assert_ne!(log.train_test_split(0.8, 1).0, log.train_test_split(0.8, 2).0);
    }

    #[test]
    fn extreme_fractions_are_safe() {
        let log = tiny_log(4);
        let (train, test) = log.train_test_split(1.0, 0);
        assert_eq!(train.len(), 4);
        assert!(test.is_empty());
        let (train, test) = log.train_test_split(0.0, 0);
        assert!(train.is_empty());
        assert_eq!(test.len(), 4);
    }

    #[test]
    fn replay_streams_every_record_in_order() {
        let log = tiny_log(10);
        let chunks: Vec<&[QueryRecord]> = log.replay(3).collect();
        assert_eq!(chunks.len(), 4, "10 records in chunks of 3 = 3+3+3+1");
        assert_eq!(chunks[3].len(), 1, "final partial chunk is kept");
        let ids: Vec<u64> = chunks.iter().flat_map(|c| c.iter()).map(|r| r.id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<u64>>(), "log order, no loss");
    }

    #[test]
    fn replay_tracks_progress_and_sizes() {
        let log = tiny_log(7);
        let mut replay = log.replay(2);
        assert_eq!(replay.len(), 4);
        assert_eq!(replay.remaining(), 7);
        replay.next().unwrap();
        assert_eq!(replay.remaining(), 5);
        assert_eq!(replay.len(), 3);
        // Exact division: no trailing empty chunk.
        assert_eq!(log.replay(7).count(), 1);
        // Oversized chunks degrade to one full-log chunk.
        assert_eq!(log.replay(100).next().unwrap().len(), 7);
    }

    #[test]
    fn replay_edge_knobs_do_not_panic() {
        let log = tiny_log(4);
        assert_eq!(log.replay(0).count(), 0, "chunk_size 0 is an empty stream");
        assert_eq!(tiny_log(0).replay(5).count(), 0, "empty log is an empty stream");
    }

    #[test]
    fn from_sql_lines_builds_records_and_collects_rejects() {
        let mut catalog = Catalog::new();
        catalog.add_table(Table::new(
            "t",
            10_000,
            vec![Column::new("a", ColumnType::Int, 100), Column::new("b", ColumnType::Int, 10)],
        ));
        let text = "\
-- replayed production log
SELECT t.a FROM t WHERE t.a = 5

SELECT COUNT(*) FROM t WHERE t.b > 3
DELETE FROM t
SELECT t.a FROM t WHERE t.a = 1 OR t.b = 2
SELECT t.a FROM nope
";
        let (log, errors) =
            QueryLog::from_sql_lines("replay", catalog, text, &wmp_sql::Ansi).unwrap();
        assert_eq!(log.len(), 2, "two parseable statements");
        assert_eq!(log.benchmark, "replay");
        assert_eq!(log.records[0].id, 0);
        assert_eq!(log.records[1].id, 1);
        for r in &log.records {
            assert_eq!(r.template_hint, NO_TEMPLATE_HINT);
            assert!(r.true_memory_mb() > 0.0);
        }
        assert_eq!(errors.len(), 3);
        assert_eq!(errors[0].line, 5, "line numbers point into the original text");
        assert_eq!(errors[0].error.kind(), "unexpected_token"); // DELETE
        assert_eq!(errors[1].error.kind(), "unsupported"); // OR
        assert_eq!(errors[2].error.kind(), "unknown_table"); // nope
    }

    #[test]
    fn from_sql_lines_on_empty_text_is_empty_not_an_error() {
        let (log, errors) =
            QueryLog::from_sql_lines("replay", Catalog::new(), "\n-- nothing\n", &wmp_sql::Ansi)
                .unwrap();
        assert!(log.is_empty());
        assert!(errors.is_empty());
    }

    #[test]
    fn empty_log_mean_is_zero() {
        let log = tiny_log(0);
        assert_eq!(log.mean_true_memory_mb(), 0.0);
        assert!(log.is_empty());
    }
}
