//! TPC-DS-style analytic workload generator.
//!
//! The paper generates 93,000 queries from the 99 TPC-DS templates. We cannot
//! ship the TPC kit, so this module builds the same *shape*: a 17-table retail
//! star schema (3 sales channels + returns + inventory + dimensions), a
//! deterministic derivation of **99 distinct query templates** (fact ×
//! dimension-subset × query shape), and parameterized instantiation with
//! realistic predicate mixes (date ranges, skewed category equalities,
//! IN-lists). The substitution is documented in DESIGN.md §2.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wmp_plan::error::PlanResult;
use wmp_plan::query::{AggFunc, Aggregate, JoinEdge, Predicate, QuerySpec, TableRef};
use wmp_plan::schema::{Column, ColumnType, Distribution, Table};
use wmp_plan::Catalog;

use crate::log::QueryLog;
use crate::params::{draw_eq, draw_in, draw_range};

/// Number of distinct query templates (matches TPC-DS's 99).
pub const N_TEMPLATES: usize = 99;

/// The paper's TPC-DS corpus size.
pub const DEFAULT_QUERY_COUNT: usize = 93_000;

/// Builds the TPC-DS-style catalog (17 tables, star schema, correlated
/// dimension attributes, skewed join edges on the date dimension).
pub fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    // Fact tables.
    cat.add_table(Table::new(
        "store_sales",
        28_800_000,
        vec![
            Column::new("ss_sold_date_sk", ColumnType::Int, 73_049),
            Column::new("ss_item_sk", ColumnType::Int, 102_000),
            Column::new("ss_customer_sk", ColumnType::Int, 500_000),
            Column::new("ss_store_sk", ColumnType::Int, 12),
            Column::new("ss_promo_sk", ColumnType::Int, 300),
            Column::new("ss_hdemo_sk", ColumnType::Int, 7_200),
            Column::new("ss_quantity", ColumnType::Int, 100),
            Column::new("ss_sales_price", ColumnType::Decimal, 200_000),
            Column::new("ss_net_profit", ColumnType::Decimal, 500_000),
        ],
    ));
    cat.add_table(Table::new(
        "catalog_sales",
        14_400_000,
        vec![
            Column::new("cs_sold_date_sk", ColumnType::Int, 73_049),
            Column::new("cs_item_sk", ColumnType::Int, 102_000),
            Column::new("cs_bill_customer_sk", ColumnType::Int, 500_000),
            Column::new("cs_warehouse_sk", ColumnType::Int, 5),
            Column::new("cs_promo_sk", ColumnType::Int, 300),
            Column::new("cs_quantity", ColumnType::Int, 100),
            Column::new("cs_sales_price", ColumnType::Decimal, 150_000),
            Column::new("cs_net_profit", ColumnType::Decimal, 400_000),
        ],
    ));
    cat.add_table(Table::new(
        "web_sales",
        7_200_000,
        vec![
            Column::new("ws_sold_date_sk", ColumnType::Int, 73_049),
            Column::new("ws_item_sk", ColumnType::Int, 102_000),
            Column::new("ws_bill_customer_sk", ColumnType::Int, 500_000),
            Column::new("ws_web_site_sk", ColumnType::Int, 30),
            Column::new("ws_promo_sk", ColumnType::Int, 300),
            Column::new("ws_quantity", ColumnType::Int, 100),
            Column::new("ws_sales_price", ColumnType::Decimal, 100_000),
            Column::new("ws_net_profit", ColumnType::Decimal, 300_000),
        ],
    ));
    cat.add_table(Table::new(
        "store_returns",
        2_880_000,
        vec![
            Column::new("sr_returned_date_sk", ColumnType::Int, 73_049),
            Column::new("sr_item_sk", ColumnType::Int, 102_000),
            Column::new("sr_customer_sk", ColumnType::Int, 500_000),
            Column::new("sr_return_amt", ColumnType::Decimal, 100_000),
        ],
    ));
    cat.add_table(Table::new(
        "inventory",
        12_000_000,
        vec![
            Column::new("inv_date_sk", ColumnType::Int, 73_049),
            Column::new("inv_item_sk", ColumnType::Int, 102_000),
            Column::new("inv_warehouse_sk", ColumnType::Int, 5),
            Column::new("inv_quantity_on_hand", ColumnType::Int, 1_000),
        ],
    ));
    // Dimensions.
    cat.add_table(Table::new(
        "date_dim",
        73_049,
        vec![
            Column::new("d_date_sk", ColumnType::Int, 73_049),
            Column::new("d_date", ColumnType::Date, 73_049),
            Column::new("d_year", ColumnType::Int, 200),
            Column::new("d_moy", ColumnType::Int, 12),
            Column::new("d_qoy", ColumnType::Int, 4),
            Column::new("d_day_name", ColumnType::Char(9), 7),
        ],
    ));
    cat.add_table(Table::new(
        "item",
        102_000,
        vec![
            Column::new("i_item_sk", ColumnType::Int, 102_000),
            Column::new("i_category", ColumnType::Char(10), 10)
                .with_distribution(Distribution::Zipf(1.2)),
            Column::new("i_brand", ColumnType::Char(20), 700)
                .with_distribution(Distribution::Zipf(1.0)),
            Column::new("i_class", ColumnType::Char(10), 100),
            Column::new("i_current_price", ColumnType::Decimal, 9_000),
            Column::new("i_manufact_id", ColumnType::Int, 2_000),
        ],
    ));
    cat.add_table(Table::new(
        "customer",
        500_000,
        vec![
            Column::new("c_customer_sk", ColumnType::Int, 500_000),
            Column::new("c_current_addr_sk", ColumnType::Int, 250_000),
            Column::new("c_birth_year", ColumnType::Int, 70),
            Column::new("c_birth_country", ColumnType::Char(20), 200)
                .with_distribution(Distribution::Zipf(1.3)),
            Column::new("c_preferred_cust_flag", ColumnType::Char(1), 2),
        ],
    ));
    cat.add_table(Table::new(
        "customer_address",
        250_000,
        vec![
            Column::new("ca_address_sk", ColumnType::Int, 250_000),
            Column::new("ca_state", ColumnType::Char(2), 51)
                .with_distribution(Distribution::Zipf(1.1)),
            Column::new("ca_city", ColumnType::Char(20), 1_000),
            Column::new("ca_country", ColumnType::Char(20), 20),
        ],
    ));
    cat.add_table(Table::new(
        "customer_demographics",
        1_000_000,
        vec![
            Column::new("cd_demo_sk", ColumnType::Int, 1_000_000),
            Column::new("cd_gender", ColumnType::Char(1), 2),
            Column::new("cd_marital_status", ColumnType::Char(1), 5),
            Column::new("cd_education_status", ColumnType::Char(15), 7),
        ],
    ));
    cat.add_table(Table::new(
        "household_demographics",
        7_200,
        vec![
            Column::new("hd_demo_sk", ColumnType::Int, 7_200),
            Column::new("hd_income_band_sk", ColumnType::Int, 20),
            Column::new("hd_buy_potential", ColumnType::Char(15), 6),
        ],
    ));
    cat.add_table(Table::new(
        "store",
        12,
        vec![
            Column::new("s_store_sk", ColumnType::Int, 12),
            Column::new("s_state", ColumnType::Char(2), 10),
            Column::new("s_city", ColumnType::Char(20), 12),
        ],
    ));
    cat.add_table(Table::new(
        "warehouse",
        5,
        vec![
            Column::new("w_warehouse_sk", ColumnType::Int, 5),
            Column::new("w_state", ColumnType::Char(2), 5),
        ],
    ));
    cat.add_table(Table::new(
        "promotion",
        300,
        vec![
            Column::new("p_promo_sk", ColumnType::Int, 300),
            Column::new("p_channel_email", ColumnType::Char(1), 2),
        ],
    ));
    cat.add_table(Table::new(
        "web_site",
        30,
        vec![
            Column::new("web_site_sk", ColumnType::Int, 30),
            Column::new("web_class", ColumnType::Char(10), 5),
        ],
    ));
    cat.add_table(Table::new(
        "time_dim",
        86_400,
        vec![
            Column::new("t_time_sk", ColumnType::Int, 86_400),
            Column::new("t_hour", ColumnType::Int, 24),
            Column::new("t_shift", ColumnType::Char(10), 3),
        ],
    ));
    cat.add_table(Table::new(
        "income_band",
        20,
        vec![
            Column::new("ib_income_band_sk", ColumnType::Int, 20),
            Column::new("ib_lower_bound", ColumnType::Int, 20),
        ],
    ));

    // Primary-key indexes on the dimensions (fact FKs are unindexed, as in
    // typical analytic deployments).
    for (t, c) in [
        ("date_dim", "d_date_sk"),
        ("item", "i_item_sk"),
        ("customer", "c_customer_sk"),
        ("customer_address", "ca_address_sk"),
        ("customer_demographics", "cd_demo_sk"),
        ("household_demographics", "hd_demo_sk"),
        ("store", "s_store_sk"),
        ("warehouse", "w_warehouse_sk"),
        ("promotion", "p_promo_sk"),
        ("web_site", "web_site_sk"),
        ("time_dim", "t_time_sk"),
        ("income_band", "ib_income_band_sk"),
    ] {
        cat.add_index(t, c, true);
    }

    // Hidden data model: correlated dimension attributes and date-skewed
    // fact-dimension joins (sales concentrate in recent periods).
    cat.correlations.set_predicate_correlation("item", "i_category", "i_brand", 0.9);
    cat.correlations.set_predicate_correlation("item", "i_category", "i_class", 0.8);
    cat.correlations.set_predicate_correlation("customer_address", "ca_state", "ca_city", 0.95);
    cat.correlations.set_predicate_correlation("customer", "c_birth_country", "c_birth_year", 0.3);
    cat.correlations.set_predicate_correlation("date_dim", "d_year", "d_moy", 0.1);
    cat.correlations.set_join_skew("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk", 1.6);
    cat.correlations.set_join_skew(
        "catalog_sales",
        "cs_sold_date_sk",
        "date_dim",
        "d_date_sk",
        1.5,
    );
    cat.correlations.set_join_skew("web_sales", "ws_sold_date_sk", "date_dim", "d_date_sk", 1.5);
    cat.correlations.set_join_skew("inventory", "inv_date_sk", "date_dim", "d_date_sk", 1.2);
    cat.correlations.set_join_skew("store_sales", "ss_item_sk", "item", "i_item_sk", 1.3);
    cat.correlations.set_join_skew(
        "store_sales",
        "ss_customer_sk",
        "customer",
        "c_customer_sk",
        1.2,
    );
    cat
}

/// The fact table of a template with its join/value columns.
#[derive(Debug, Clone, Copy)]
struct FactDef {
    table: &'static str,
    alias: &'static str,
    date_col: &'static str,
    item_col: &'static str,
    cust_col: &'static str,
    /// (channel dimension table, fact FK, dimension PK).
    channel: (&'static str, &'static str, &'static str),
    /// Numeric columns usable in aggregates.
    value_cols: [&'static str; 2],
    /// "extra" small dimension join: (dim table, fact FK, dim PK).
    extra: (&'static str, &'static str, &'static str),
}

const FACTS: [FactDef; 3] = [
    FactDef {
        table: "store_sales",
        alias: "ss",
        date_col: "ss_sold_date_sk",
        item_col: "ss_item_sk",
        cust_col: "ss_customer_sk",
        channel: ("store", "ss_store_sk", "s_store_sk"),
        value_cols: ["ss_quantity", "ss_net_profit"],
        extra: ("household_demographics", "ss_hdemo_sk", "hd_demo_sk"),
    },
    FactDef {
        table: "catalog_sales",
        alias: "cs",
        date_col: "cs_sold_date_sk",
        item_col: "cs_item_sk",
        cust_col: "cs_bill_customer_sk",
        channel: ("warehouse", "cs_warehouse_sk", "w_warehouse_sk"),
        value_cols: ["cs_quantity", "cs_net_profit"],
        extra: ("promotion", "cs_promo_sk", "p_promo_sk"),
    },
    FactDef {
        table: "web_sales",
        alias: "ws",
        date_col: "ws_sold_date_sk",
        item_col: "ws_item_sk",
        cust_col: "ws_bill_customer_sk",
        channel: ("web_site", "ws_web_site_sk", "web_site_sk"),
        value_cols: ["ws_quantity", "ws_net_profit"],
        extra: ("promotion", "ws_promo_sk", "p_promo_sk"),
    },
];

/// A derived query template: a fact, a set of dimension joins, and a shape.
#[derive(Debug, Clone)]
pub struct TpcdsTemplate {
    /// Template id in `0..N_TEMPLATES`.
    pub id: usize,
    fact: FactDef,
    /// Which dimensions to join (subset index 0..7).
    dimset: usize,
    /// Query shape (0..5): grouping/ordering/distinct/scalar variants.
    pub shape: usize,
}

/// Derives the 99 templates: 3 facts × 7 dimension subsets × 5 shapes = 105
/// combinations, truncated to 99 (as TPC-DS has 99 templates).
pub fn templates() -> Vec<TpcdsTemplate> {
    let mut out = Vec::with_capacity(N_TEMPLATES);
    'outer: for fact in FACTS {
        for dimset in 0..7 {
            for shape in 0..5 {
                out.push(TpcdsTemplate { id: out.len(), fact, dimset, shape });
                if out.len() == N_TEMPLATES {
                    break 'outer;
                }
            }
        }
    }
    out
}

/// Joined dimensions of a template as `(table, alias, fact_fk, dim_pk)`.
fn dims_of(t: &TpcdsTemplate) -> Vec<(&'static str, &'static str, &'static str, &'static str)> {
    let f = &t.fact;
    let date = ("date_dim", "d", f.date_col, "d_date_sk");
    let item = ("item", "i", f.item_col, "i_item_sk");
    let cust = ("customer", "c", f.cust_col, "c_customer_sk");
    let chan = (f.channel.0, "ch", f.channel.1, f.channel.2);
    let extra = (f.extra.0, "x", f.extra.1, f.extra.2);
    match t.dimset {
        0 => vec![date],
        1 => vec![date, item],
        2 => vec![date, item, cust],
        3 => vec![date, chan],
        4 => vec![date, item, chan],
        5 => vec![item, cust],
        _ => vec![date, cust, extra],
    }
}

/// Adds a realistic predicate on a joined dimension.
///
/// The *shape* (which column, which operator, how wide a range) comes from
/// `struct_rng`, which is seeded by the template id — a TPC-DS template fixes
/// its predicate structure and varies only bind values. The *bind values*
/// (literals and their true selectivities) come from the per-query `rng`.
fn add_dim_predicate(
    cat: &Catalog,
    preds: &mut Vec<Predicate>,
    table: &str,
    alias: &str,
    struct_rng: &mut StdRng,
    rng: &mut StdRng,
) {
    let col = |name: &str| cat.column(table, name).expect("catalog column").1;
    let p = match table {
        "date_dim" => {
            if struct_rng.gen_bool(0.6) {
                let frac = [0.02, 0.05, 0.1, 0.2][struct_rng.gen_range(0..4)];
                draw_range(alias, col("d_date"), frac, rng)
            } else if struct_rng.gen_bool(0.5) {
                draw_eq(alias, col("d_year"), rng)
            } else {
                draw_eq(alias, col("d_moy"), rng)
            }
        }
        "item" => {
            if struct_rng.gen_bool(0.5) {
                draw_eq(alias, col("i_category"), rng)
            } else if struct_rng.gen_bool(0.5) {
                draw_eq(alias, col("i_brand"), rng)
            } else {
                draw_in(alias, col("i_class"), struct_rng.gen_range(2..6), rng)
            }
        }
        "customer" => {
            if struct_rng.gen_bool(0.7) {
                draw_eq(alias, col("c_birth_country"), rng)
            } else {
                draw_eq(alias, col("c_birth_year"), rng)
            }
        }
        "store" => draw_eq(alias, col("s_state"), rng),
        "warehouse" => draw_eq(alias, col("w_state"), rng),
        "web_site" => draw_eq(alias, col("web_class"), rng),
        "promotion" => draw_eq(alias, col("p_channel_email"), rng),
        "household_demographics" => draw_eq(alias, col("hd_buy_potential"), rng),
        _ => return,
    };
    preds.push(p);
}

/// Group-by candidates available on a template's joined dimensions.
fn group_candidates(
    dims: &[(&'static str, &'static str, &'static str, &'static str)],
) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for (table, alias, _, _) in dims {
        // Real TPC-DS groups both at coarse grain (year, category, state) and
        // at entity grain (item, customer) — the latter drive the big
        // aggregation hash tables.
        let cols: &[&str] = match *table {
            "date_dim" => &["d_year", "d_moy"],
            "item" => &["i_category", "i_brand", "i_item_sk", "i_manufact_id"],
            "customer" => &["c_birth_country", "c_customer_sk"],
            "store" => &["s_state"],
            "warehouse" => &["w_state"],
            "web_site" => &["web_class"],
            "promotion" => &["p_channel_email"],
            "household_demographics" => &["hd_buy_potential"],
            _ => &[],
        };
        for c in cols {
            out.push((alias.to_string(), c.to_string()));
        }
    }
    out
}

/// Instantiates one query from a template with sampled parameters.
///
/// Structure (which dimensions are filtered, which columns are grouped, range
/// widths) is derived deterministically from the template id — as in the real
/// TPC-DS kit, a template fixes the query skeleton and only bind values vary
/// from query to query.
pub fn instantiate(cat: &Catalog, t: &TpcdsTemplate, id: u64, rng: &mut StdRng) -> QuerySpec {
    let mut struct_rng =
        StdRng::seed_from_u64(0x7E4B_5EED ^ (t.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let f = &t.fact;
    let dims = dims_of(t);
    let mut tables = vec![TableRef::new(f.table, f.alias)];
    let mut joins = Vec::new();
    for (table, alias, fk, pk) in &dims {
        tables.push(TableRef::new(table, alias));
        joins.push(JoinEdge {
            left_alias: f.alias.to_string(),
            left_col: fk.to_string(),
            right_alias: alias.to_string(),
            right_col: pk.to_string(),
        });
    }
    let mut predicates = Vec::new();
    for (table, alias, _, _) in &dims {
        // Most dims are filtered; occasionally one is left open (fixed per
        // template).
        if struct_rng.gen_bool(0.85) {
            add_dim_predicate(cat, &mut predicates, table, alias, &mut struct_rng, rng);
        }
    }
    // Some templates filter the fact itself on quantity.
    if struct_rng.gen_bool(0.3) {
        let qty = cat.column(f.table, f.value_cols[0]).expect("fact value column").1;
        predicates.push(draw_range(f.alias, qty, struct_rng.gen_range(0.1..0.6), rng));
    }

    let candidates = group_candidates(&dims);
    let mut group_by = Vec::new();
    let mut aggregates = Vec::new();
    let mut order_by = Vec::new();
    let mut distinct = false;
    let mut limit = None;
    let agg = |func, col: &str| Aggregate {
        func,
        table_alias: f.alias.to_string(),
        column: col.to_string(),
    };
    match t.shape {
        0 => {
            group_by.push(candidates[struct_rng.gen_range(0..candidates.len())].clone());
            aggregates.push(agg(AggFunc::Sum, f.value_cols[1]));
            aggregates.push(agg(AggFunc::Count, f.value_cols[0]));
            order_by = group_by.clone();
            limit = Some(100);
        }
        1 => {
            let first = struct_rng.gen_range(0..candidates.len());
            group_by.push(candidates[first].clone());
            if candidates.len() > 1 {
                let mut second = struct_rng.gen_range(0..candidates.len());
                if second == first {
                    second = (second + 1) % candidates.len();
                }
                group_by.push(candidates[second].clone());
            }
            aggregates.push(agg(AggFunc::Sum, f.value_cols[1]));
            aggregates.push(agg(AggFunc::Avg, f.value_cols[0]));
            order_by = group_by.clone();
        }
        2 => {
            group_by.push(candidates[struct_rng.gen_range(0..candidates.len())].clone());
            aggregates.push(agg(AggFunc::Sum, f.value_cols[1]));
        }
        3 => {
            aggregates.push(agg(AggFunc::Sum, f.value_cols[1]));
            aggregates.push(agg(AggFunc::Count, f.value_cols[0]));
        }
        _ => {
            distinct = true;
            order_by.push(candidates[struct_rng.gen_range(0..candidates.len())].clone());
            limit = Some(1000);
        }
    }

    QuerySpec { id, tables, joins, predicates, group_by, aggregates, order_by, distinct, limit }
}

/// Generates a TPC-DS-style query log of `n` queries.
///
/// # Errors
/// Propagates planning errors (which would indicate a template/catalog bug).
pub fn generate(n: usize, seed: u64) -> PlanResult<QueryLog> {
    generate_with_planner(n, seed, wmp_plan::PlannerConfig::default())
}

/// [`generate`] under explicit planner tunables (the `ablation_planner`
/// experiment re-plans the same logical queries without greedy join
/// ordering).
///
/// # Errors
/// Propagates planning errors.
pub fn generate_with_planner(
    n: usize,
    seed: u64,
    planner_config: wmp_plan::PlannerConfig,
) -> PlanResult<QueryLog> {
    let cat = catalog();
    let templates = templates();
    let mut specs = Vec::with_capacity(n);
    for i in 0..n {
        let t = &templates[i % templates.len()];
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        specs.push((instantiate(&cat, t, i as u64, &mut rng), t.id));
    }
    crate::log::build_log_with("tpcds", cat, specs, planner_config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_seventeen_tables() {
        let cat = catalog();
        assert_eq!(cat.tables().len(), 17);
        assert!(cat.table("store_sales").is_some());
        assert!(cat.has_index("date_dim", "d_date_sk"));
    }

    #[test]
    fn exactly_ninety_nine_distinct_templates() {
        let ts = templates();
        assert_eq!(ts.len(), N_TEMPLATES);
        for (i, t) in ts.iter().enumerate() {
            assert_eq!(t.id, i);
        }
        // Distinctness: (fact, dimset, shape) triples never repeat.
        let mut seen = std::collections::HashSet::new();
        for t in &ts {
            assert!(seen.insert((t.fact.table, t.dimset, t.shape)));
        }
    }

    #[test]
    fn instantiation_produces_plannable_queries() {
        let cat = catalog();
        let ts = templates();
        let planner = wmp_plan::Planner::new(&cat);
        for (i, t) in ts.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(i as u64);
            let spec = instantiate(&cat, t, i as u64, &mut rng);
            assert!(!spec.tables.is_empty());
            assert_eq!(spec.joins.len(), spec.tables.len() - 1, "star joins");
            planner.plan(&spec).unwrap_or_else(|e| panic!("template {i} failed to plan: {e}"));
        }
    }

    #[test]
    fn generate_produces_requested_count_with_template_rotation() {
        let log = generate(200, 7).unwrap();
        assert_eq!(log.len(), 200);
        assert_eq!(log.benchmark, "tpcds");
        // All 99 templates appear at least once in 200 queries.
        let hints: std::collections::HashSet<usize> =
            log.records.iter().map(|r| r.template_hint).collect();
        assert_eq!(hints.len(), N_TEMPLATES);
        // Analytic queries should demand nontrivial memory on average, and
        // the analytic scans/joins must dominate OLTP on every resource.
        assert!(log.mean_true_memory_mb() > 1.0, "mean = {}", log.mean_true_memory_mb());
        let mean = log.mean_resources();
        assert!(mean.cpu_ms > 1.0, "analytic CPU cost is nontrivial: {mean}");
        assert!(mean.io_pages > 10.0, "analytic I/O volume is nontrivial: {mean}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(30, 11).unwrap();
        let b = generate(30, 11).unwrap();
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.features, rb.features);
            assert_eq!(ra.resources, rb.resources, "full label vector is deterministic");
        }
        let c = generate(30, 12).unwrap();
        let same =
            a.records.iter().zip(&c.records).all(|(x, y)| x.true_memory_mb() == y.true_memory_mb());
        assert!(!same, "different seeds must differ");
    }

    #[test]
    fn same_template_queries_have_similar_plans() {
        let log = generate(198, 3).unwrap(); // each template twice
        let group: Vec<&crate::log::QueryRecord> =
            log.records.iter().filter(|r| r.template_hint == 0).collect();
        assert_eq!(group.len(), 2);
        // Join methods and access paths may flip with sampled selectivities,
        // but the structural totals (scans = #tables, joins = #tables - 1)
        // are template invariants.
        let totals = |r: &crate::log::QueryRecord| -> (f64, f64) {
            use wmp_plan::OpKind::*;
            let count = |k: wmp_plan::OpKind| r.features[2 * k.index()];
            (
                count(TableScan) + count(IndexScan),
                count(HashJoin) + count(NestedLoopJoin) + count(MergeJoin),
            )
        };
        assert_eq!(totals(group[0]), totals(group[1]));
        let (scans, joins) = totals(group[0]);
        assert_eq!(scans, joins + 1.0);
    }
}
