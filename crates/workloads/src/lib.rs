//! # wmp-workloads — benchmark workload generators
//!
//! The paper evaluates on TPC-DS (93,000 queries from 99 templates), the Join
//! Order Benchmark (2,300 queries from 113 variants over IMDB), and TPC-C
//! (3,958 transactional statements). The TPC kits and IMDB snapshot cannot be
//! shipped, so each module rebuilds the benchmark's *shape* — schema,
//! statistics, correlation structure, query templates, and parameter
//! distributions — and produces a [`log::QueryLog`] of executed queries with
//! plan features, simulator-measured memory labels, and heuristic estimates.
//! DESIGN.md §2 documents each substitution.

#![warn(missing_docs)]

pub mod arrival;
pub mod job;
pub mod log;
pub mod params;
pub mod tpcc;
pub mod tpcds;
pub mod tpch;

pub use arrival::ArrivalProcess;
pub use log::{build_log, build_record, QueryLog, QueryRecord, SqlLineError, NO_TEMPLATE_HINT};
