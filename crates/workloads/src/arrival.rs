//! Arrival processes: how workload windows are spaced in virtual time when
//! a query log is replayed against a scheduler or serving loop.
//!
//! The generators produce *inter-arrival gaps* in ticks, deterministically
//! from a seeded [`rand::rngs::StdRng`], so a replay is reproducible from
//! `(log seed, arrival seed)` alone. Three shapes cover the evaluation
//! regimes:
//!
//! - [`ArrivalProcess::Uniform`] — fixed spacing, the closed-form sanity
//!   case;
//! - [`ArrivalProcess::Poisson`] — exponential gaps (memoryless open
//!   arrivals), the steady-state cloud regime;
//! - [`ArrivalProcess::Bursty`] — an on/off modulated Poisson: bursts of
//!   tightly spaced arrivals separated by quiet gaps, the regime where
//!   queueing (and thus prediction-aware placement) actually matters.

use rand::rngs::StdRng;
use rand::Rng;

/// An inter-arrival gap generator (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Every arrival exactly `gap_ticks` after the previous one.
    Uniform {
        /// Fixed gap between consecutive arrivals (clamped to ≥ 1).
        gap_ticks: u64,
    },
    /// Exponential gaps with the given mean (a Poisson arrival process).
    Poisson {
        /// Mean inter-arrival gap in ticks (must be > 0).
        mean_gap_ticks: f64,
    },
    /// Markov-modulated Poisson: while "on", gaps are exponential with
    /// `burst_gap_ticks`; each arrival ends the burst with probability
    /// `1 / mean_burst_len`, inserting an additional exponential
    /// `idle_gap_ticks` pause before the next burst.
    Bursty {
        /// Mean gap between arrivals inside a burst (must be > 0).
        burst_gap_ticks: f64,
        /// Mean gap between bursts (must be > 0).
        idle_gap_ticks: f64,
        /// Mean number of arrivals per burst (clamped to ≥ 1).
        mean_burst_len: f64,
    },
}

impl ArrivalProcess {
    /// Samples the gap (ticks, ≥ 1) between the previous arrival and the
    /// next one. Deterministic in the RNG state.
    pub fn next_gap(&self, rng: &mut StdRng) -> u64 {
        let gap = match *self {
            ArrivalProcess::Uniform { gap_ticks } => gap_ticks.max(1) as f64,
            ArrivalProcess::Poisson { mean_gap_ticks } => exponential(rng, mean_gap_ticks),
            ArrivalProcess::Bursty { burst_gap_ticks, idle_gap_ticks, mean_burst_len } => {
                let mut gap = exponential(rng, burst_gap_ticks);
                if rng.gen_bool(1.0 / mean_burst_len.max(1.0)) {
                    gap += exponential(rng, idle_gap_ticks);
                }
                gap
            }
        };
        (gap.round() as u64).max(1)
    }

    /// The process's long-run mean gap in ticks (exact, not sampled) —
    /// useful for sizing cluster capacity against offered load.
    pub fn mean_gap_ticks(&self) -> f64 {
        match *self {
            ArrivalProcess::Uniform { gap_ticks } => gap_ticks.max(1) as f64,
            ArrivalProcess::Poisson { mean_gap_ticks } => mean_gap_ticks.max(f64::MIN_POSITIVE),
            ArrivalProcess::Bursty { burst_gap_ticks, idle_gap_ticks, mean_burst_len } => {
                burst_gap_ticks + idle_gap_ticks / mean_burst_len.max(1.0)
            }
        }
    }
}

/// Exponential sample with the given mean via inverse transform. The
/// uniform draw is clamped away from 1 so the log argument stays positive.
fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen::<f64>().min(1.0 - 1e-12);
    -mean.max(f64::MIN_POSITIVE) * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_gaps_are_constant_and_nonzero() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = ArrivalProcess::Uniform { gap_ticks: 7 };
        for _ in 0..10 {
            assert_eq!(p.next_gap(&mut rng), 7);
        }
        assert_eq!(ArrivalProcess::Uniform { gap_ticks: 0 }.next_gap(&mut rng), 1);
    }

    #[test]
    fn poisson_gaps_average_near_the_mean() {
        let mut rng = StdRng::seed_from_u64(42);
        let p = ArrivalProcess::Poisson { mean_gap_ticks: 100.0 };
        let n = 20_000;
        let total: u64 = (0..n).map(|_| p.next_gap(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 100.0).abs() < 5.0, "sampled mean {mean} too far from 100");
        assert!((p.mean_gap_ticks() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn bursty_mixes_tight_and_idle_gaps() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = ArrivalProcess::Bursty {
            burst_gap_ticks: 10.0,
            idle_gap_ticks: 1_000.0,
            mean_burst_len: 20.0,
        };
        let gaps: Vec<u64> = (0..5_000).map(|_| p.next_gap(&mut rng)).collect();
        let tight = gaps.iter().filter(|&&g| g < 100).count();
        let idle = gaps.iter().filter(|&&g| g >= 100).count();
        assert!(tight > idle * 5, "most gaps are intra-burst ({tight} vs {idle})");
        assert!(idle > 50, "idle periods do occur ({idle})");
        // Long-run mean = 10 + 1000/20 = 60.
        assert!((p.mean_gap_ticks() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn gaps_are_deterministic_in_the_seed() {
        let sample = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = ArrivalProcess::Poisson { mean_gap_ticks: 50.0 };
            (0..100).map(|_| p.next_gap(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(sample(3), sample(3));
        assert_ne!(sample(3), sample(4));
    }
}
