//! Predicate-parameter sampling: given a column's statistics, draw the
//! literal, the optimizer's *estimated* selectivity, and the *true*
//! selectivity against the synthetic data.
//!
//! The estimate always follows the optimizer playbook (`1/ndv` for equality,
//! magic constants for LIKE); the truth deviates according to the column's
//! declared value distribution — uniform columns behave, Zipf columns have
//! heavy-tailed equality selectivities, and LIKE truths are close to
//! arbitrary. These controlled deviations are the cardinality-error engine
//! behind every benchmark.

use rand::rngs::StdRng;
use rand::Rng;

use wmp_plan::query::{CmpOp, Predicate};
use wmp_plan::schema::{Column, ColumnType, Distribution};

/// The optimizer's default selectivity guess for LIKE predicates (real
/// systems hard-code a constant of this magnitude).
pub const LIKE_DEFAULT_SELECTIVITY: f64 = 0.05;

/// Draws a standard normal via Box-Muller.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0f64);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Multiplicative log-normal deviation `exp(N(0, sigma))`.
fn lognormal(rng: &mut StdRng, sigma: f64) -> f64 {
    (sigma * standard_normal(rng)).exp()
}

/// How much equality-selectivity truth deviates from `1/ndv` for a column:
/// uniform columns deviate mildly, skewed columns heavily.
fn eq_truth_sigma(col: &Column) -> f64 {
    match col.distribution {
        Distribution::Uniform => 0.18,
        Distribution::Zipf(theta) => 0.45 + 0.25 * theta.min(2.0),
    }
}

/// Renders a literal for a column (deterministic in the RNG stream).
pub fn literal_for(col: &Column, rng: &mut StdRng) -> String {
    match col.ty {
        ColumnType::Int | ColumnType::BigInt => {
            format!("{}", rng.gen_range(0..col.ndv.max(1)))
        }
        ColumnType::Decimal => format!("{:.2}", rng.gen::<f64>() * 1000.0),
        ColumnType::Char(_) | ColumnType::Varchar(_) => {
            format!("'{}_{}'", col.name.to_uppercase(), rng.gen_range(0..col.ndv.max(1)))
        }
        ColumnType::Date => {
            let year = 1998 + rng.gen_range(0..6);
            let month = rng.gen_range(1..=12);
            let day = rng.gen_range(1..=28);
            format!("'{year:04}-{month:02}-{day:02}'")
        }
    }
}

/// Per-bind estimate jitter: a real optimizer's selectivity estimate depends
/// on which histogram bucket the literal lands in, so two binds of the same
/// template get slightly different estimates. This keeps per-query plan
/// features continuous (as on a real system) instead of constant per
/// template.
fn bind_jitter(rng: &mut StdRng) -> f64 {
    lognormal(rng, 0.05)
}

/// Equality predicate `alias.col = literal`.
pub fn draw_eq(alias: &str, col: &Column, rng: &mut StdRng) -> Predicate {
    let sel_est = (1.0 / col.ndv.max(1) as f64 * bind_jitter(rng)).clamp(1e-9, 1.0);
    let sel_true = (sel_est * lognormal(rng, eq_truth_sigma(col))).clamp(1e-9, 1.0);
    Predicate {
        table_alias: alias.to_string(),
        column: col.name.clone(),
        op: CmpOp::Eq,
        literal: literal_for(col, rng),
        sel_est,
        sel_true,
    }
}

/// IN-list predicate with `k` items.
pub fn draw_in(alias: &str, col: &Column, k: u8, rng: &mut StdRng) -> Predicate {
    let k_eff = (k as u64).min(col.ndv.max(1)) as u8;
    let sel_est = (k_eff as f64 / col.ndv.max(1) as f64 * bind_jitter(rng)).min(1.0);
    let sel_true = (sel_est * lognormal(rng, eq_truth_sigma(col) * 0.8)).clamp(1e-9, 1.0);
    let items: Vec<String> = (0..k_eff).map(|_| literal_for(col, rng)).collect();
    Predicate {
        table_alias: alias.to_string(),
        column: col.name.clone(),
        op: CmpOp::InList(k_eff),
        literal: items.join(", "),
        sel_est,
        sel_true,
    }
}

/// Range predicate (`BETWEEN`) spanning roughly `frac` of the domain.
pub fn draw_range(alias: &str, col: &Column, frac: f64, rng: &mut StdRng) -> Predicate {
    let sel_est = (frac * bind_jitter(rng)).clamp(1e-6, 1.0);
    let sel_true = (sel_est * lognormal(rng, 0.2)).clamp(1e-9, 1.0);
    let lo = literal_for(col, rng);
    let hi = literal_for(col, rng);
    Predicate {
        table_alias: alias.to_string(),
        column: col.name.clone(),
        op: CmpOp::Between,
        literal: format!("{lo} AND {hi}"),
        sel_est,
        sel_true,
    }
}

/// LIKE predicate: the estimate is the optimizer's hard-coded default; the
/// truth is drawn log-uniformly over several orders of magnitude — matching
/// how wildly pattern-match selectivities actually vary (a major error source
/// in JOB-style workloads).
pub fn draw_like(alias: &str, col: &Column, rng: &mut StdRng) -> Predicate {
    let sel_true = 10f64.powf(rng.gen_range(-2.5..-0.8));
    Predicate {
        table_alias: alias.to_string(),
        column: col.name.clone(),
        op: CmpOp::Like,
        literal: format!("'%{}%'", literal_for(col, rng).trim_matches('\'')),
        sel_est: LIKE_DEFAULT_SELECTIVITY,
        sel_true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn uniform_col() -> Column {
        Column::new("c_key", ColumnType::Int, 1000)
    }

    fn zipf_col() -> Column {
        Column::new("c_cat", ColumnType::Char(8), 100).with_distribution(Distribution::Zipf(1.5))
    }

    #[test]
    fn eq_estimate_is_one_over_ndv() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = draw_eq("t", &uniform_col(), &mut rng);
        // Bind-dependent estimate: close to 1/ndv but not exactly it.
        assert!((p.sel_est / 0.001).ln().abs() < 0.3);
        assert!(p.sel_true > 0.0 && p.sel_true <= 1.0);
        assert_eq!(p.op, CmpOp::Eq);
        assert_eq!(p.table_alias, "t");
    }

    #[test]
    fn zipf_truth_varies_more_than_uniform() {
        let spread = |col: &Column| {
            let mut rng = StdRng::seed_from_u64(3);
            let ratios: Vec<f64> = (0..400)
                .map(|_| draw_eq("t", col, &mut rng).sel_true / (1.0 / col.ndv as f64))
                .collect();
            let logs: Vec<f64> = ratios.iter().map(|r| r.ln()).collect();
            let mean = logs.iter().sum::<f64>() / logs.len() as f64;
            (logs.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / logs.len() as f64).sqrt()
        };
        assert!(spread(&zipf_col()) > spread(&uniform_col()) * 2.0);
    }

    #[test]
    fn in_list_scales_estimate_with_k() {
        let mut rng = StdRng::seed_from_u64(2);
        let col = uniform_col();
        let p = draw_in("t", &col, 5, &mut rng);
        assert!((p.sel_est / 0.005).ln().abs() < 0.3);
        assert_eq!(p.op, CmpOp::InList(5));
        assert_eq!(p.literal.split(", ").count(), 5);
    }

    #[test]
    fn in_list_caps_k_at_ndv() {
        let mut rng = StdRng::seed_from_u64(2);
        let col = Column::new("c", ColumnType::Int, 3);
        let p = draw_in("t", &col, 10, &mut rng);
        assert_eq!(p.op, CmpOp::InList(3));
        assert!(p.sel_est > 0.8 && p.sel_est <= 1.0);
    }

    #[test]
    fn range_estimate_matches_requested_fraction() {
        let mut rng = StdRng::seed_from_u64(4);
        let col = Column::new("d_date", ColumnType::Date, 2000);
        let p = draw_range("t", &col, 0.08, &mut rng);
        assert!((p.sel_est / 0.08).ln().abs() < 0.3);
        assert!(p.literal.contains(" AND "));
        assert_eq!(p.op, CmpOp::Between);
    }

    #[test]
    fn like_uses_default_estimate_with_wild_truth() {
        let mut rng = StdRng::seed_from_u64(5);
        let col = Column::new("title", ColumnType::Varchar(100), 100_000);
        let mut min_t = f64::INFINITY;
        let mut max_t = f64::NEG_INFINITY;
        for _ in 0..200 {
            let p = draw_like("t", &col, &mut rng);
            assert_eq!(p.sel_est, LIKE_DEFAULT_SELECTIVITY);
            min_t = min_t.min(p.sel_true);
            max_t = max_t.max(p.sel_true);
        }
        assert!(max_t / min_t > 20.0, "LIKE truths span orders of magnitude");
    }

    #[test]
    fn literals_match_column_types() {
        let mut rng = StdRng::seed_from_u64(6);
        let int_lit = literal_for(&Column::new("a", ColumnType::Int, 50), &mut rng);
        assert!(int_lit.parse::<u64>().is_ok());
        let char_lit = literal_for(&Column::new("b", ColumnType::Char(5), 10), &mut rng);
        assert!(char_lit.starts_with('\'') && char_lit.ends_with('\''));
        let date_lit = literal_for(&Column::new("c", ColumnType::Date, 100), &mut rng);
        assert_eq!(date_lit.len(), 12); // 'YYYY-MM-DD'
        let dec_lit = literal_for(&Column::new("d", ColumnType::Decimal, 10), &mut rng);
        assert!(dec_lit.parse::<f64>().is_ok());
    }

    #[test]
    fn draws_are_deterministic_in_the_seed() {
        let col = uniform_col();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(draw_eq("t", &col, &mut a), draw_eq("t", &col, &mut b));
    }
}
