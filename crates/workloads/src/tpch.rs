//! TPC-H-style analytic workload generator, routed through SQL *text*.
//!
//! Unlike the other generators (which hand their [`QuerySpec`]s straight to
//! the planner), TPC-H exercises the full ingestion path a production
//! deployment would use: each instantiated template is rendered to SQL,
//! parsed back by `wmp_sql`, and lowered against the catalog — so the
//! text front-end is on the hot path of an entire benchmark, not just in
//! tests. The generator's hidden-truth selectivities are grafted back onto
//! the lowered spec (predicate order survives the round trip), keeping the
//! memory labels honest while the *structure* of every query provably
//! survives render → parse → lower.
//!
//! The 22 templates follow the TPC-H query suite, restricted to the SELECT
//! subset the plan model covers: correlated/EXISTS/scalar subqueries are
//! replaced by their driving join + filter shape (the memory-relevant part),
//! and CASE projections are dropped. Q7's two `nation` bindings keep the
//! multi-alias path honest.

use rand::rngs::StdRng;
use rand::SeedableRng;

use wmp_plan::error::PlanResult;
use wmp_plan::query::{AggFunc, Aggregate, CmpOp, JoinEdge, Predicate, QuerySpec, TableRef};
use wmp_plan::schema::{Column, ColumnType, Distribution, Table};
use wmp_plan::sql::render_sql;
use wmp_plan::Catalog;
use wmp_sql::{parse_to_spec, Ansi};

use crate::log::{build_log, QueryLog};
use crate::params::{draw_eq, draw_in, draw_like, draw_range, literal_for};

/// Number of query templates (the full TPC-H suite).
pub const N_TEMPLATES: usize = 22;

/// Default corpus size: 100 query streams of the 22-template suite.
pub const DEFAULT_QUERY_COUNT: usize = 2_200;

/// Template names in template-id order (`q1` … `q22`).
pub const TEMPLATE_NAMES: [&str; N_TEMPLATES] = [
    "q1_pricing_summary",
    "q2_minimum_cost_supplier",
    "q3_shipping_priority",
    "q4_order_priority",
    "q5_local_supplier_volume",
    "q6_forecasting_revenue",
    "q7_volume_shipping",
    "q8_national_market_share",
    "q9_product_type_profit",
    "q10_returned_items",
    "q11_important_stock",
    "q12_shipping_modes",
    "q13_customer_distribution",
    "q14_promotion_effect",
    "q15_top_supplier",
    "q16_parts_supplier_relation",
    "q17_small_quantity_revenue",
    "q18_large_volume_customer",
    "q19_discounted_revenue",
    "q20_potential_promotion",
    "q21_suppliers_kept_waiting",
    "q22_global_sales_opportunity",
];

/// Builds the 8-table TPC-H catalog at a reduced scale (lineitem ≈ 1.2M
/// rows), with the spec's key structure and a few skewed columns.
pub fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(Table::new(
        "region",
        5,
        vec![
            Column::new("r_regionkey", ColumnType::Int, 5),
            Column::new("r_name", ColumnType::Varchar(25), 5),
        ],
    ));
    cat.add_table(Table::new(
        "nation",
        25,
        vec![
            Column::new("n_nationkey", ColumnType::Int, 25),
            Column::new("n_name", ColumnType::Varchar(25), 25),
            Column::new("n_regionkey", ColumnType::Int, 5),
        ],
    ));
    cat.add_table(Table::new(
        "supplier",
        2_000,
        vec![
            Column::new("s_suppkey", ColumnType::Int, 2_000),
            Column::new("s_name", ColumnType::Varchar(25), 2_000),
            Column::new("s_nationkey", ColumnType::Int, 25),
            Column::new("s_acctbal", ColumnType::Decimal, 2_000),
        ],
    ));
    cat.add_table(Table::new(
        "customer",
        30_000,
        vec![
            Column::new("c_custkey", ColumnType::Int, 30_000),
            Column::new("c_name", ColumnType::Varchar(25), 30_000),
            Column::new("c_nationkey", ColumnType::Int, 25),
            Column::new("c_acctbal", ColumnType::Decimal, 25_000),
            Column::new("c_mktsegment", ColumnType::Char(10), 5),
        ],
    ));
    cat.add_table(Table::new(
        "part",
        40_000,
        vec![
            Column::new("p_partkey", ColumnType::Int, 40_000),
            Column::new("p_name", ColumnType::Varchar(55), 39_000),
            Column::new("p_brand", ColumnType::Char(10), 25),
            Column::new("p_type", ColumnType::Varchar(25), 150)
                .with_distribution(Distribution::Zipf(1.1)),
            Column::new("p_size", ColumnType::Int, 50),
            Column::new("p_container", ColumnType::Char(10), 40),
            Column::new("p_retailprice", ColumnType::Decimal, 20_000),
        ],
    ));
    cat.add_table(Table::new(
        "partsupp",
        160_000,
        vec![
            Column::new("ps_partkey", ColumnType::Int, 40_000),
            Column::new("ps_suppkey", ColumnType::Int, 2_000),
            Column::new("ps_availqty", ColumnType::Int, 10_000),
            Column::new("ps_supplycost", ColumnType::Decimal, 100_000),
        ],
    ));
    cat.add_table(Table::new(
        "orders",
        300_000,
        vec![
            Column::new("o_orderkey", ColumnType::Int, 300_000),
            Column::new("o_custkey", ColumnType::Int, 30_000),
            Column::new("o_orderdate", ColumnType::Date, 2_400),
            Column::new("o_orderpriority", ColumnType::Char(15), 5),
            Column::new("o_totalprice", ColumnType::Decimal, 250_000),
        ],
    ));
    cat.add_table(Table::new(
        "lineitem",
        1_200_000,
        vec![
            Column::new("l_orderkey", ColumnType::Int, 300_000),
            Column::new("l_partkey", ColumnType::Int, 40_000),
            Column::new("l_suppkey", ColumnType::Int, 2_000),
            Column::new("l_quantity", ColumnType::Int, 50),
            Column::new("l_extendedprice", ColumnType::Decimal, 500_000),
            Column::new("l_discount", ColumnType::Decimal, 11),
            Column::new("l_returnflag", ColumnType::Char(1), 3),
            Column::new("l_linestatus", ColumnType::Char(1), 2),
            Column::new("l_shipdate", ColumnType::Date, 2_400),
            Column::new("l_receiptdate", ColumnType::Date, 2_400),
            Column::new("l_shipmode", ColumnType::Char(10), 7)
                .with_distribution(Distribution::Zipf(0.8)),
        ],
    ));

    for (t, c, unique) in [
        ("region", "r_regionkey", true),
        ("nation", "n_nationkey", true),
        ("supplier", "s_suppkey", true),
        ("customer", "c_custkey", true),
        ("part", "p_partkey", true),
        ("partsupp", "ps_partkey", false),
        ("partsupp", "ps_suppkey", false),
        ("orders", "o_orderkey", true),
        ("orders", "o_custkey", false),
        ("lineitem", "l_orderkey", false),
        ("lineitem", "l_partkey", false),
        ("lineitem", "l_suppkey", false),
    ] {
        cat.add_index(t, c, unique);
    }
    // Ship dates correlate with receipt dates, and order dates with ship
    // dates across the join — the classic TPC-H estimator traps.
    cat.correlations.set_predicate_correlation("lineitem", "l_shipdate", "l_receiptdate", 0.8);
    cat.correlations.set_predicate_correlation("lineitem", "l_shipdate", "l_shipmode", 0.3);
    cat
}

/// A single-sided range predicate (`<`, `<=`, `>`, `>=`) spanning roughly
/// `frac` of the domain.
fn one_sided(alias: &str, col: &Column, op: CmpOp, frac: f64, rng: &mut StdRng) -> Predicate {
    let mut p = draw_range(alias, col, frac, rng);
    p.op = op;
    p.literal = literal_for(col, rng);
    p
}

fn join(l: &str, lc: &str, r: &str, rc: &str) -> JoinEdge {
    JoinEdge {
        left_alias: l.into(),
        left_col: lc.into(),
        right_alias: r.into(),
        right_col: rc.into(),
    }
}

fn agg(func: AggFunc, alias: &str, column: &str) -> Aggregate {
    Aggregate { func, table_alias: alias.into(), column: column.into() }
}

fn count_star() -> Aggregate {
    Aggregate { func: AggFunc::Count, table_alias: String::new(), column: String::new() }
}

fn by(alias: &str, col: &str) -> (String, String) {
    (alias.into(), col.into())
}

/// Instantiates one query from template `template` (0-based, `q{t+1}`).
pub fn instantiate(cat: &Catalog, template: usize, id: u64, rng: &mut StdRng) -> QuerySpec {
    let col = |t: &str, c: &str| cat.column(t, c).expect("catalog column").1;
    let t = |name: &str, alias: &str| TableRef::new(name, alias);
    let mut q = QuerySpec { id, ..QuerySpec::default() };
    match template {
        0 => {
            // Q1: pricing summary report over almost all of lineitem.
            q.tables = vec![t("lineitem", "l")];
            q.predicates =
                vec![one_sided("l", col("lineitem", "l_shipdate"), CmpOp::Le, 0.95, rng)];
            q.group_by = vec![by("l", "l_returnflag"), by("l", "l_linestatus")];
            q.aggregates = vec![
                agg(AggFunc::Sum, "l", "l_extendedprice"),
                agg(AggFunc::Sum, "l", "l_discount"),
                agg(AggFunc::Avg, "l", "l_quantity"),
                count_star(),
            ];
            q.order_by = vec![by("l", "l_returnflag"), by("l", "l_linestatus")];
        }
        1 => {
            // Q2: minimum-cost supplier (subquery flattened to its join core).
            q.tables = vec![
                t("part", "p"),
                t("partsupp", "ps"),
                t("supplier", "s"),
                t("nation", "n"),
                t("region", "r"),
            ];
            q.joins = vec![
                join("p", "p_partkey", "ps", "ps_partkey"),
                join("ps", "ps_suppkey", "s", "s_suppkey"),
                join("s", "s_nationkey", "n", "n_nationkey"),
                join("n", "n_regionkey", "r", "r_regionkey"),
            ];
            q.predicates = vec![
                draw_eq("p", col("part", "p_size"), rng),
                draw_like("p", col("part", "p_type"), rng),
                draw_eq("r", col("region", "r_name"), rng),
            ];
            q.group_by = vec![by("p", "p_partkey")];
            q.aggregates = vec![agg(AggFunc::Min, "ps", "ps_supplycost")];
            q.order_by = vec![by("p", "p_partkey")];
            q.limit = Some(100);
        }
        2 => {
            // Q3: shipping priority.
            q.tables = vec![t("customer", "c"), t("orders", "o"), t("lineitem", "l")];
            q.joins = vec![
                join("c", "c_custkey", "o", "o_custkey"),
                join("o", "o_orderkey", "l", "l_orderkey"),
            ];
            q.predicates = vec![
                draw_eq("c", col("customer", "c_mktsegment"), rng),
                one_sided("o", col("orders", "o_orderdate"), CmpOp::Lt, 0.5, rng),
                one_sided("l", col("lineitem", "l_shipdate"), CmpOp::Gt, 0.5, rng),
            ];
            q.group_by = vec![by("o", "o_orderkey")];
            q.aggregates = vec![agg(AggFunc::Sum, "l", "l_extendedprice")];
            q.order_by = vec![by("o", "o_orderkey")];
            q.limit = Some(10);
        }
        3 => {
            // Q4: order priority checking (EXISTS replaced by the join).
            q.tables = vec![t("orders", "o"), t("lineitem", "l")];
            q.joins = vec![join("o", "o_orderkey", "l", "l_orderkey")];
            q.predicates = vec![
                draw_range("o", col("orders", "o_orderdate"), 0.07, rng),
                draw_range("l", col("lineitem", "l_receiptdate"), 0.25, rng),
            ];
            q.group_by = vec![by("o", "o_orderpriority")];
            q.aggregates = vec![count_star()];
            q.order_by = vec![by("o", "o_orderpriority")];
        }
        4 => {
            // Q5: local supplier volume (6-way join).
            q.tables = vec![
                t("customer", "c"),
                t("orders", "o"),
                t("lineitem", "l"),
                t("supplier", "s"),
                t("nation", "n"),
                t("region", "r"),
            ];
            q.joins = vec![
                join("c", "c_custkey", "o", "o_custkey"),
                join("o", "o_orderkey", "l", "l_orderkey"),
                join("l", "l_suppkey", "s", "s_suppkey"),
                join("s", "s_nationkey", "n", "n_nationkey"),
                join("n", "n_regionkey", "r", "r_regionkey"),
            ];
            q.predicates = vec![
                draw_eq("r", col("region", "r_name"), rng),
                draw_range("o", col("orders", "o_orderdate"), 0.16, rng),
            ];
            q.group_by = vec![by("n", "n_name")];
            q.aggregates = vec![agg(AggFunc::Sum, "l", "l_extendedprice")];
            q.order_by = vec![by("n", "n_name")];
        }
        5 => {
            // Q6: forecasting revenue change — scan + aggregate, no join.
            q.tables = vec![t("lineitem", "l")];
            q.predicates = vec![
                draw_range("l", col("lineitem", "l_shipdate"), 0.16, rng),
                draw_range("l", col("lineitem", "l_discount"), 0.27, rng),
                one_sided("l", col("lineitem", "l_quantity"), CmpOp::Lt, 0.5, rng),
            ];
            q.aggregates = vec![agg(AggFunc::Sum, "l", "l_extendedprice")];
        }
        6 => {
            // Q7: volume shipping between two nations (nation bound twice).
            q.tables = vec![
                t("supplier", "s"),
                t("lineitem", "l"),
                t("orders", "o"),
                t("customer", "c"),
                t("nation", "n1"),
                t("nation", "n2"),
            ];
            q.joins = vec![
                join("s", "s_suppkey", "l", "l_suppkey"),
                join("o", "o_orderkey", "l", "l_orderkey"),
                join("c", "c_custkey", "o", "o_custkey"),
                join("s", "s_nationkey", "n1", "n_nationkey"),
                join("c", "c_nationkey", "n2", "n_nationkey"),
            ];
            q.predicates = vec![
                draw_eq("n1", col("nation", "n_name"), rng),
                draw_eq("n2", col("nation", "n_name"), rng),
                draw_range("l", col("lineitem", "l_shipdate"), 0.3, rng),
            ];
            q.group_by = vec![by("n1", "n_name")];
            q.aggregates = vec![agg(AggFunc::Sum, "l", "l_extendedprice")];
            q.order_by = vec![by("n1", "n_name")];
        }
        7 => {
            // Q8: national market share.
            q.tables = vec![
                t("part", "p"),
                t("lineitem", "l"),
                t("supplier", "s"),
                t("orders", "o"),
                t("customer", "c"),
                t("nation", "n"),
                t("region", "r"),
            ];
            q.joins = vec![
                join("p", "p_partkey", "l", "l_partkey"),
                join("s", "s_suppkey", "l", "l_suppkey"),
                join("l", "l_orderkey", "o", "o_orderkey"),
                join("o", "o_custkey", "c", "c_custkey"),
                join("c", "c_nationkey", "n", "n_nationkey"),
                join("n", "n_regionkey", "r", "r_regionkey"),
            ];
            q.predicates = vec![
                draw_eq("r", col("region", "r_name"), rng),
                draw_range("o", col("orders", "o_orderdate"), 0.33, rng),
                draw_eq("p", col("part", "p_type"), rng),
            ];
            q.group_by = vec![by("o", "o_orderdate")];
            q.aggregates = vec![agg(AggFunc::Sum, "l", "l_extendedprice")];
            q.order_by = vec![by("o", "o_orderdate")];
        }
        8 => {
            // Q9: product type profit measure.
            q.tables = vec![
                t("part", "p"),
                t("supplier", "s"),
                t("lineitem", "l"),
                t("partsupp", "ps"),
                t("orders", "o"),
                t("nation", "n"),
            ];
            q.joins = vec![
                join("s", "s_suppkey", "l", "l_suppkey"),
                join("ps", "ps_suppkey", "l", "l_suppkey"),
                join("ps", "ps_partkey", "l", "l_partkey"),
                join("p", "p_partkey", "l", "l_partkey"),
                join("o", "o_orderkey", "l", "l_orderkey"),
                join("s", "s_nationkey", "n", "n_nationkey"),
            ];
            q.predicates = vec![draw_like("p", col("part", "p_name"), rng)];
            q.group_by = vec![by("n", "n_name")];
            q.aggregates = vec![agg(AggFunc::Sum, "l", "l_extendedprice")];
            q.order_by = vec![by("n", "n_name")];
        }
        9 => {
            // Q10: returned-item reporting.
            q.tables =
                vec![t("customer", "c"), t("orders", "o"), t("lineitem", "l"), t("nation", "n")];
            q.joins = vec![
                join("c", "c_custkey", "o", "o_custkey"),
                join("o", "o_orderkey", "l", "l_orderkey"),
                join("c", "c_nationkey", "n", "n_nationkey"),
            ];
            q.predicates = vec![
                draw_eq("l", col("lineitem", "l_returnflag"), rng),
                draw_range("o", col("orders", "o_orderdate"), 0.08, rng),
            ];
            q.group_by = vec![by("c", "c_custkey")];
            q.aggregates = vec![agg(AggFunc::Sum, "l", "l_extendedprice")];
            q.order_by = vec![by("c", "c_custkey")];
            q.limit = Some(20);
        }
        10 => {
            // Q11: important stock identification.
            q.tables = vec![t("partsupp", "ps"), t("supplier", "s"), t("nation", "n")];
            q.joins = vec![
                join("ps", "ps_suppkey", "s", "s_suppkey"),
                join("s", "s_nationkey", "n", "n_nationkey"),
            ];
            q.predicates = vec![draw_eq("n", col("nation", "n_name"), rng)];
            q.group_by = vec![by("ps", "ps_partkey")];
            q.aggregates = vec![agg(AggFunc::Sum, "ps", "ps_supplycost")];
            q.order_by = vec![by("ps", "ps_partkey")];
            q.limit = Some(100);
        }
        11 => {
            // Q12: shipping-mode and order-priority.
            q.tables = vec![t("orders", "o"), t("lineitem", "l")];
            q.joins = vec![join("o", "o_orderkey", "l", "l_orderkey")];
            q.predicates = vec![
                draw_in("l", col("lineitem", "l_shipmode"), 2, rng),
                draw_range("l", col("lineitem", "l_receiptdate"), 0.16, rng),
            ];
            q.group_by = vec![by("l", "l_shipmode")];
            q.aggregates = vec![count_star()];
            q.order_by = vec![by("l", "l_shipmode")];
        }
        12 => {
            // Q13: customer order distribution (outer join approximated).
            q.tables = vec![t("customer", "c"), t("orders", "o")];
            q.joins = vec![join("c", "c_custkey", "o", "o_custkey")];
            q.group_by = vec![by("c", "c_custkey")];
            q.aggregates = vec![agg(AggFunc::Count, "o", "o_orderkey")];
            q.order_by = vec![by("c", "c_custkey")];
            q.limit = Some(100);
        }
        13 => {
            // Q14: promotion effect.
            q.tables = vec![t("lineitem", "l"), t("part", "p")];
            q.joins = vec![join("l", "l_partkey", "p", "p_partkey")];
            q.predicates = vec![draw_range("l", col("lineitem", "l_shipdate"), 0.014, rng)];
            q.aggregates = vec![agg(AggFunc::Sum, "l", "l_extendedprice")];
        }
        14 => {
            // Q15: top supplier (view body inlined).
            q.tables = vec![t("lineitem", "l"), t("supplier", "s")];
            q.joins = vec![join("l", "l_suppkey", "s", "s_suppkey")];
            q.predicates = vec![draw_range("l", col("lineitem", "l_shipdate"), 0.04, rng)];
            q.group_by = vec![by("s", "s_suppkey")];
            q.aggregates = vec![agg(AggFunc::Sum, "l", "l_extendedprice")];
            q.order_by = vec![by("s", "s_suppkey")];
        }
        15 => {
            // Q16: parts/supplier relationship.
            q.tables = vec![t("partsupp", "ps"), t("part", "p")];
            q.joins = vec![join("p", "p_partkey", "ps", "ps_partkey")];
            q.predicates = vec![
                draw_eq("p", col("part", "p_brand"), rng),
                draw_in("p", col("part", "p_size"), 8, rng),
            ];
            q.distinct = true;
            q.group_by = vec![by("p", "p_brand")];
            q.aggregates = vec![agg(AggFunc::Count, "ps", "ps_suppkey")];
            q.order_by = vec![by("p", "p_brand")];
        }
        16 => {
            // Q17: small-quantity-order revenue.
            q.tables = vec![t("lineitem", "l"), t("part", "p")];
            q.joins = vec![join("p", "p_partkey", "l", "l_partkey")];
            q.predicates = vec![
                draw_eq("p", col("part", "p_brand"), rng),
                draw_eq("p", col("part", "p_container"), rng),
                one_sided("l", col("lineitem", "l_quantity"), CmpOp::Lt, 0.2, rng),
            ];
            q.aggregates = vec![agg(AggFunc::Avg, "l", "l_extendedprice")];
        }
        17 => {
            // Q18: large-volume customer.
            q.tables = vec![t("customer", "c"), t("orders", "o"), t("lineitem", "l")];
            q.joins = vec![
                join("c", "c_custkey", "o", "o_custkey"),
                join("o", "o_orderkey", "l", "l_orderkey"),
            ];
            q.predicates =
                vec![one_sided("o", col("orders", "o_totalprice"), CmpOp::Gt, 0.02, rng)];
            q.group_by = vec![by("o", "o_orderkey")];
            q.aggregates = vec![agg(AggFunc::Sum, "l", "l_quantity")];
            q.order_by = vec![by("o", "o_orderkey")];
            q.limit = Some(100);
        }
        18 => {
            // Q19: discounted revenue (OR arms folded into one conjunct set).
            q.tables = vec![t("lineitem", "l"), t("part", "p")];
            q.joins = vec![join("p", "p_partkey", "l", "l_partkey")];
            q.predicates = vec![
                draw_eq("p", col("part", "p_brand"), rng),
                draw_in("p", col("part", "p_container"), 4, rng),
                draw_range("l", col("lineitem", "l_quantity"), 0.2, rng),
            ];
            q.aggregates = vec![agg(AggFunc::Sum, "l", "l_extendedprice")];
        }
        19 => {
            // Q20: potential part promotion (nested INs flattened).
            q.tables =
                vec![t("supplier", "s"), t("nation", "n"), t("partsupp", "ps"), t("part", "p")];
            q.joins = vec![
                join("s", "s_nationkey", "n", "n_nationkey"),
                join("ps", "ps_suppkey", "s", "s_suppkey"),
                join("ps", "ps_partkey", "p", "p_partkey"),
            ];
            q.predicates = vec![
                draw_eq("n", col("nation", "n_name"), rng),
                draw_like("p", col("part", "p_name"), rng),
            ];
            q.distinct = true;
            q.order_by = vec![by("s", "s_name")];
        }
        20 => {
            // Q21: suppliers who kept orders waiting.
            q.tables =
                vec![t("supplier", "s"), t("lineitem", "l"), t("orders", "o"), t("nation", "n")];
            q.joins = vec![
                join("s", "s_suppkey", "l", "l_suppkey"),
                join("o", "o_orderkey", "l", "l_orderkey"),
                join("s", "s_nationkey", "n", "n_nationkey"),
            ];
            q.predicates = vec![
                draw_eq("n", col("nation", "n_name"), rng),
                draw_eq("o", col("orders", "o_orderpriority"), rng),
            ];
            q.group_by = vec![by("s", "s_name")];
            q.aggregates = vec![count_star()];
            q.order_by = vec![by("s", "s_name")];
            q.limit = Some(100);
        }
        _ => {
            // Q22: global sales opportunity (substring subquery dropped).
            q.tables = vec![t("customer", "c")];
            q.predicates = vec![
                one_sided("c", col("customer", "c_acctbal"), CmpOp::Gt, 0.1, rng),
                draw_in("c", col("customer", "c_nationkey"), 7, rng),
            ];
            q.group_by = vec![by("c", "c_nationkey")];
            q.aggregates = vec![count_star(), agg(AggFunc::Sum, "c", "c_acctbal")];
            q.order_by = vec![by("c", "c_nationkey")];
        }
    }
    q
}

/// Renders `spec` to SQL, parses it back, lowers it against `cat`, and
/// grafts the generator's hidden-truth selectivities onto the lowered spec.
///
/// # Panics
/// When the round trip fails or changes the number of predicates — both are
/// template/renderer bugs, not data errors.
pub fn roundtrip_through_sql(cat: &Catalog, spec: &QuerySpec) -> QuerySpec {
    let sql = render_sql(spec);
    let mut lowered = parse_to_spec(&sql, &Ansi, cat)
        .unwrap_or_else(|e| panic!("TPC-H SQL round trip failed for {sql:?}: {e}"));
    assert_eq!(
        lowered.predicates.len(),
        spec.predicates.len(),
        "round trip changed the predicate count for {sql:?}"
    );
    for (l, o) in lowered.predicates.iter_mut().zip(&spec.predicates) {
        l.sel_est = o.sel_est;
        l.sel_true = o.sel_true;
    }
    lowered.id = spec.id;
    lowered
}

/// Generates a TPC-H-style query log of `n` statements: round-robin query
/// streams over the 22 templates (as the official throughput test runs
/// them), each routed through SQL text via [`roundtrip_through_sql`].
///
/// # Errors
/// Propagates planning errors (which would indicate a template/catalog bug).
pub fn generate(n: usize, seed: u64) -> PlanResult<QueryLog> {
    let cat = catalog();
    let mut specs = Vec::with_capacity(n);
    for i in 0..n {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let template = i % N_TEMPLATES;
        let spec = instantiate(&cat, template, i as u64, &mut rng);
        specs.push((roundtrip_through_sql(&cat, &spec), template));
    }
    build_log("tpch", cat, specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmp_sql::{all_dialects, render_sql_dialect};

    #[test]
    fn catalog_has_eight_tables() {
        let cat = catalog();
        assert_eq!(cat.tables().len(), 8);
        assert!(cat.has_index("lineitem", "l_orderkey"));
        assert_eq!(cat.table("lineitem").unwrap().row_count, 1_200_000);
    }

    #[test]
    fn every_template_survives_the_sql_round_trip_exactly() {
        let cat = catalog();
        for (t, name) in TEMPLATE_NAMES.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(t as u64);
            let spec = instantiate(&cat, t, t as u64, &mut rng);
            let lowered = roundtrip_through_sql(&cat, &spec);
            assert_eq!(lowered, spec, "template {name} is not lossless through SQL");
        }
    }

    #[test]
    fn every_template_parses_under_every_dialect() {
        let cat = catalog();
        for (t, name) in TEMPLATE_NAMES.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(100 + t as u64);
            let spec = instantiate(&cat, t, t as u64, &mut rng);
            for d in all_dialects() {
                let sql = render_sql_dialect(&spec, d);
                parse_to_spec(&sql, d, &cat)
                    .unwrap_or_else(|e| panic!("{name} under {}: {e}\n{sql}", d.name()));
            }
        }
    }

    #[test]
    fn every_template_plans_successfully() {
        let cat = catalog();
        let planner = wmp_plan::Planner::new(&cat);
        for (t, name) in TEMPLATE_NAMES.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(200 + t as u64);
            let spec = roundtrip_through_sql(&cat, &instantiate(&cat, t, t as u64, &mut rng));
            planner.plan(&spec).unwrap_or_else(|e| panic!("template {name} failed: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic_and_covers_all_templates() {
        let a = generate(44, 7).unwrap();
        let b = generate(44, 7).unwrap();
        assert_eq!(a.len(), 44);
        assert_eq!(
            a.records.iter().map(|r| r.true_memory_mb()).sum::<f64>(),
            b.records.iter().map(|r| r.true_memory_mb()).sum::<f64>()
        );
        let hints: std::collections::HashSet<usize> =
            a.records.iter().map(|r| r.template_hint).collect();
        assert_eq!(hints.len(), N_TEMPLATES, "round-robin streams cover the suite");
    }

    #[test]
    fn analytic_memory_dwarfs_oltp() {
        // TPC-C's point lookups sit near 0.1 MB; TPC-H's joins and sorts
        // should land orders of magnitude higher on average, with heavy
        // queries far above that.
        let log = generate(44, 3).unwrap();
        assert!(
            log.mean_true_memory_mb() > 2.0,
            "TPC-H joins and sorts should be memory-hungry, mean = {} MB",
            log.mean_true_memory_mb()
        );
        let max = log.records.iter().map(|r| r.true_memory_mb()).fold(f64::NEG_INFINITY, f64::max);
        assert!(max > 20.0, "heavy queries should spike, max = {max} MB");
    }

    #[test]
    fn tpch_cpu_and_io_labels_scale_with_the_joins() {
        let analytic = generate(44, 3).unwrap().mean_resources();
        let oltp = crate::tpcc::generate(44, 3).unwrap().mean_resources();
        assert!(analytic.cpu_ms > 5.0 * oltp.cpu_ms, "analytic {analytic} vs oltp {oltp}");
        assert!(analytic.io_pages > 5.0 * oltp.io_pages, "analytic {analytic} vs oltp {oltp}");
        assert!(analytic.memory_mb > 5.0 * oltp.memory_mb, "analytic {analytic} vs oltp {oltp}");
    }

    #[test]
    fn grafted_selectivities_keep_the_hidden_truth() {
        let cat = catalog();
        let mut rng = StdRng::seed_from_u64(11);
        let spec = instantiate(&cat, 8, 0, &mut rng); // Q9 has a LIKE
        let lowered = roundtrip_through_sql(&cat, &spec);
        for (l, o) in lowered.predicates.iter().zip(&spec.predicates) {
            assert_eq!(l.sel_est, o.sel_est);
            assert_eq!(l.sel_true, o.sel_true);
            // LIKE truths are drawn, not the parser default — grafting must
            // preserve the est/true gap the paper's error model needs.
        }
        assert!(spec.predicates.iter().any(|p| p.sel_est != p.sel_true));
    }
}
