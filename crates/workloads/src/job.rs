//! Join Order Benchmark (JOB) style workload generator.
//!
//! JOB runs 113 analytic queries (33 families with a/b/c variants) against the
//! real IMDB database; its defining property is *correlated* predicates and
//! join edges that break the optimizer's independence assumption by orders of
//! magnitude (Leis et al., "How good are query optimizers, really?"). We
//! rebuild that shape: a 21-table IMDB-style catalog with strong join skew and
//! predicate correlations, 33 join-shape families derived from composable
//! blocks around the `title` hub, and 113 variant specs instantiated to the
//! paper's 2,300 queries. All queries are `SELECT MIN(...)` scalar aggregates
//! over large multi-way joins, as in the real benchmark.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wmp_plan::error::PlanResult;
use wmp_plan::query::{AggFunc, Aggregate, JoinEdge, Predicate, QuerySpec, TableRef};
use wmp_plan::schema::{Column, ColumnType, Distribution, Table};
use wmp_plan::Catalog;

use crate::log::{build_log, QueryLog};
use crate::params::{draw_eq, draw_like, draw_range};

/// Number of query families (matches JOB's 33).
pub const N_FAMILIES: usize = 33;

/// Number of distinct variant specs (matches JOB's 113 queries).
pub const N_VARIANTS: usize = 113;

/// The paper's JOB corpus size.
pub const DEFAULT_QUERY_COUNT: usize = 2_300;

/// Builds the IMDB-style catalog (21 tables).
pub fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(Table::new(
        "title",
        1_000_000,
        vec![
            Column::new("id", ColumnType::Int, 1_000_000),
            Column::new("kind_id", ColumnType::Int, 7),
            Column::new("production_year", ColumnType::Int, 130)
                .with_distribution(Distribution::Zipf(1.1)),
            Column::new("title", ColumnType::Varchar(100), 900_000),
            Column::new("episode_nr", ColumnType::Int, 2_000).with_null_frac(0.7),
        ],
    ));
    cat.add_table(Table::new(
        "movie_info",
        2_000_000,
        vec![
            Column::new("movie_id", ColumnType::Int, 1_000_000),
            Column::new("info_type_id", ColumnType::Int, 113),
            Column::new("info", ColumnType::Varchar(50), 500_000)
                .with_distribution(Distribution::Zipf(1.4)),
        ],
    ));
    cat.add_table(Table::new(
        "movie_info_idx",
        600_000,
        vec![
            Column::new("movie_id", ColumnType::Int, 450_000),
            Column::new("info_type_id", ColumnType::Int, 113),
            Column::new("info", ColumnType::Varchar(10), 1_000),
        ],
    ));
    cat.add_table(Table::new(
        "movie_keyword",
        1_500_000,
        vec![
            Column::new("movie_id", ColumnType::Int, 500_000),
            Column::new("keyword_id", ColumnType::Int, 134_170),
        ],
    ));
    cat.add_table(Table::new(
        "keyword",
        134_170,
        vec![
            Column::new("id", ColumnType::Int, 134_170),
            Column::new("keyword", ColumnType::Varchar(30), 134_170)
                .with_distribution(Distribution::Zipf(1.5)),
        ],
    ));
    cat.add_table(Table::new(
        "movie_companies",
        1_000_000,
        vec![
            Column::new("movie_id", ColumnType::Int, 600_000),
            Column::new("company_id", ColumnType::Int, 235_000),
            Column::new("company_type_id", ColumnType::Int, 4),
        ],
    ));
    cat.add_table(Table::new(
        "company_name",
        235_000,
        vec![
            Column::new("id", ColumnType::Int, 235_000),
            Column::new("name", ColumnType::Varchar(50), 230_000),
            Column::new("country_code", ColumnType::Char(6), 100)
                .with_distribution(Distribution::Zipf(1.5)),
        ],
    ));
    cat.add_table(Table::new(
        "company_type",
        4,
        vec![
            Column::new("id", ColumnType::Int, 4),
            Column::new("kind", ColumnType::Varchar(20), 4),
        ],
    ));
    cat.add_table(Table::new(
        "cast_info",
        3_600_000,
        vec![
            Column::new("movie_id", ColumnType::Int, 900_000),
            Column::new("person_id", ColumnType::Int, 1_000_000),
            Column::new("role_id", ColumnType::Int, 12),
            Column::new("person_role_id", ColumnType::Int, 500_000).with_null_frac(0.5),
            Column::new("note", ColumnType::Varchar(40), 100_000).with_null_frac(0.6),
        ],
    ));
    cat.add_table(Table::new(
        "name",
        1_000_000,
        vec![
            Column::new("id", ColumnType::Int, 1_000_000),
            Column::new("name", ColumnType::Varchar(50), 995_000),
            Column::new("gender", ColumnType::Char(1), 3).with_null_frac(0.3),
        ],
    ));
    cat.add_table(Table::new(
        "char_name",
        500_000,
        vec![
            Column::new("id", ColumnType::Int, 500_000),
            Column::new("name", ColumnType::Varchar(50), 495_000),
        ],
    ));
    cat.add_table(Table::new(
        "role_type",
        12,
        vec![
            Column::new("id", ColumnType::Int, 12),
            Column::new("role", ColumnType::Varchar(20), 12),
        ],
    ));
    cat.add_table(Table::new(
        "info_type",
        113,
        vec![
            Column::new("id", ColumnType::Int, 113),
            Column::new("info", ColumnType::Varchar(30), 113),
        ],
    ));
    cat.add_table(Table::new(
        "kind_type",
        7,
        vec![
            Column::new("id", ColumnType::Int, 7),
            Column::new("kind", ColumnType::Varchar(15), 7),
        ],
    ));
    cat.add_table(Table::new(
        "aka_name",
        200_000,
        vec![
            Column::new("person_id", ColumnType::Int, 150_000),
            Column::new("name", ColumnType::Varchar(50), 195_000),
        ],
    ));
    cat.add_table(Table::new(
        "aka_title",
        100_000,
        vec![
            Column::new("movie_id", ColumnType::Int, 80_000),
            Column::new("title", ColumnType::Varchar(100), 95_000),
        ],
    ));
    cat.add_table(Table::new(
        "movie_link",
        30_000,
        vec![
            Column::new("movie_id", ColumnType::Int, 20_000),
            Column::new("linked_movie_id", ColumnType::Int, 20_000),
            Column::new("link_type_id", ColumnType::Int, 18),
        ],
    ));
    cat.add_table(Table::new(
        "link_type",
        18,
        vec![
            Column::new("id", ColumnType::Int, 18),
            Column::new("link", ColumnType::Varchar(20), 18),
        ],
    ));
    cat.add_table(Table::new(
        "person_info",
        500_000,
        vec![
            Column::new("person_id", ColumnType::Int, 300_000),
            Column::new("info_type_id", ColumnType::Int, 113),
            Column::new("info", ColumnType::Varchar(50), 400_000),
        ],
    ));
    cat.add_table(Table::new(
        "complete_cast",
        135_000,
        vec![
            Column::new("movie_id", ColumnType::Int, 100_000),
            Column::new("subject_id", ColumnType::Int, 4),
            Column::new("status_id", ColumnType::Int, 4),
        ],
    ));
    cat.add_table(Table::new(
        "comp_cast_type",
        4,
        vec![
            Column::new("id", ColumnType::Int, 4),
            Column::new("kind", ColumnType::Varchar(30), 4),
        ],
    ));

    // Primary keys only on true entity tables; IMDB link tables are scanned.
    for t in [
        "title",
        "keyword",
        "company_name",
        "company_type",
        "name",
        "char_name",
        "role_type",
        "info_type",
        "kind_type",
        "link_type",
        "comp_cast_type",
    ] {
        cat.add_index(t, "id", true);
    }

    // JOB's defining property: heavily correlated join edges → the estimator
    // under-estimates intermediate results by large factors.
    let cx = &mut cat.correlations;
    cx.set_join_skew("title", "id", "cast_info", "movie_id", 4.0);
    cx.set_join_skew("title", "id", "movie_info", "movie_id", 3.0);
    cx.set_join_skew("title", "id", "movie_keyword", "movie_id", 2.5);
    cx.set_join_skew("title", "id", "movie_companies", "movie_id", 2.0);
    cx.set_join_skew("title", "id", "movie_info_idx", "movie_id", 1.8);
    cx.set_join_skew("cast_info", "person_id", "name", "id", 1.5);
    cx.set_join_skew("movie_companies", "company_id", "company_name", "id", 1.7);
    cx.set_join_skew("movie_keyword", "keyword_id", "keyword", "id", 1.6);
    cx.set_predicate_correlation("movie_info", "info_type_id", "info", 0.95);
    cx.set_predicate_correlation("title", "production_year", "kind_id", 0.6);
    cx.set_predicate_correlation("company_name", "country_code", "name", 0.5);
    cx.set_predicate_correlation("cast_info", "role_id", "note", 0.7);
    cat
}

/// Composable join blocks around the `title` hub.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Block {
    /// movie_info ⋈ info_type
    Mi,
    /// movie_keyword ⋈ keyword
    Mk,
    /// movie_companies ⋈ company_name (+ company_type)
    Mc,
    /// cast_info ⋈ name (+ role_type)
    Ci,
    /// kind_type lookup on title
    Kt,
    /// movie_link ⋈ link_type
    Ml,
    /// complete_cast ⋈ comp_cast_type
    Cc,
    /// movie_info_idx ⋈ info_type (second alias)
    Mix,
}

/// A JOB family: the block set joined to `title`.
#[derive(Debug, Clone)]
pub struct JobFamily {
    /// Family id in `0..N_FAMILIES`.
    pub id: usize,
    blocks: Vec<Block>,
}

/// Derives the 33 families: all non-empty subsets of the four main blocks
/// (15), the same subsets with the `kind_type` lookup added (15), and three
/// wide families with link/complete-cast/info-idx blocks.
pub fn families() -> Vec<JobFamily> {
    use Block::*;
    let main = [Mi, Mk, Mc, Ci];
    let mut out = Vec::with_capacity(N_FAMILIES);
    for mask in 1u32..16 {
        let blocks: Vec<Block> = main
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, b)| *b)
            .collect();
        out.push(JobFamily { id: out.len(), blocks });
    }
    for mask in 1u32..16 {
        let mut blocks: Vec<Block> = main
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, b)| *b)
            .collect();
        blocks.push(Kt);
        out.push(JobFamily { id: out.len(), blocks });
    }
    out.push(JobFamily { id: out.len(), blocks: vec![Mi, Mk, Ml] });
    out.push(JobFamily { id: out.len(), blocks: vec![Mi, Mc, Cc] });
    out.push(JobFamily { id: out.len(), blocks: vec![Mi, Mix, Mc] });
    debug_assert_eq!(out.len(), N_FAMILIES);
    out
}

/// A variant = (family, predicate style). JOB's `1a`, `1b`, ... become
/// `(family 0, style 0)`, `(family 0, style 1)`, ...
#[derive(Debug, Clone)]
pub struct JobVariant {
    /// Variant index in `0..N_VARIANTS`.
    pub id: usize,
    /// The underlying family.
    pub family: JobFamily,
    /// Predicate style (0 = LIKE-heavy, 1 = type-equality, 2 = year-range,
    /// 3 = extra predicates).
    pub style: usize,
}

/// Derives the 113 variants: every family × 3 styles, plus a 4th style for
/// the first 14 families (33·3 + 14 = 113).
pub fn variants() -> Vec<JobVariant> {
    let fams = families();
    let mut out = Vec::with_capacity(N_VARIANTS);
    for style in 0..3 {
        for fam in &fams {
            out.push(JobVariant { id: out.len(), family: fam.clone(), style });
        }
    }
    for fam in fams.iter().take(N_VARIANTS - out.len()) {
        out.push(JobVariant { id: out.len(), family: fam.clone(), style: 3 });
    }
    debug_assert_eq!(out.len(), N_VARIANTS);
    out
}

/// Instantiates one query from a variant with sampled parameters.
///
/// The skeleton (joins, which predicates exist, range widths) is fixed by the
/// variant id; per-query randomness only affects bind values and their true
/// selectivities — matching how JOB's 113 queries are re-parameterized.
pub fn instantiate(cat: &Catalog, v: &JobVariant, id: u64, rng: &mut StdRng) -> QuerySpec {
    let mut struct_rng =
        StdRng::seed_from_u64(0x10B_5EED ^ (v.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let col = |t: &str, c: &str| cat.column(t, c).expect("catalog column").1;
    let mut tables = vec![TableRef::new("title", "t")];
    let mut joins: Vec<JoinEdge> = Vec::new();
    let mut predicates: Vec<Predicate> = Vec::new();
    let mut aggregates =
        vec![Aggregate { func: AggFunc::Min, table_alias: "t".into(), column: "title".into() }];
    let like_heavy = v.style == 0;
    let extra_preds = v.style == 3;

    let join = |tables: &mut Vec<TableRef>,
                joins: &mut Vec<JoinEdge>,
                la: &str,
                lc: &str,
                table: &str,
                alias: &str,
                rc: &str| {
        tables.push(TableRef::new(table, alias));
        joins.push(JoinEdge {
            left_alias: la.into(),
            left_col: lc.into(),
            right_alias: alias.into(),
            right_col: rc.into(),
        });
    };

    // Title predicate: year range (always in style 2; often otherwise).
    if v.style == 2 || struct_rng.gen_bool(0.6) {
        let frac = [0.05, 0.1, 0.2, 0.4][struct_rng.gen_range(0..4)];
        predicates.push(draw_range("t", col("title", "production_year"), frac, rng));
    }

    for block in &v.family.blocks {
        match block {
            Block::Mi => {
                join(&mut tables, &mut joins, "t", "id", "movie_info", "mi", "movie_id");
                join(&mut tables, &mut joins, "mi", "info_type_id", "info_type", "it", "id");
                predicates.push(draw_eq("it", col("info_type", "info"), rng));
                if like_heavy || extra_preds {
                    predicates.push(draw_like("mi", col("movie_info", "info"), rng));
                }
            }
            Block::Mk => {
                join(&mut tables, &mut joins, "t", "id", "movie_keyword", "mk", "movie_id");
                join(&mut tables, &mut joins, "mk", "keyword_id", "keyword", "k", "id");
                if like_heavy {
                    predicates.push(draw_like("k", col("keyword", "keyword"), rng));
                } else {
                    predicates.push(draw_eq("k", col("keyword", "keyword"), rng));
                }
            }
            Block::Mc => {
                join(&mut tables, &mut joins, "t", "id", "movie_companies", "mc", "movie_id");
                join(&mut tables, &mut joins, "mc", "company_id", "company_name", "cn", "id");
                predicates.push(draw_eq("cn", col("company_name", "country_code"), rng));
                if extra_preds {
                    join(
                        &mut tables,
                        &mut joins,
                        "mc",
                        "company_type_id",
                        "company_type",
                        "ct",
                        "id",
                    );
                    predicates.push(draw_eq("ct", col("company_type", "kind"), rng));
                }
                aggregates.push(Aggregate {
                    func: AggFunc::Min,
                    table_alias: "cn".into(),
                    column: "name".into(),
                });
            }
            Block::Ci => {
                join(&mut tables, &mut joins, "t", "id", "cast_info", "ci", "movie_id");
                join(&mut tables, &mut joins, "ci", "person_id", "name", "n", "id");
                if like_heavy {
                    predicates.push(draw_like("n", col("name", "name"), rng));
                } else {
                    predicates.push(draw_eq("n", col("name", "gender"), rng));
                }
                if extra_preds {
                    join(&mut tables, &mut joins, "ci", "role_id", "role_type", "rt", "id");
                    predicates.push(draw_eq("rt", col("role_type", "role"), rng));
                }
                aggregates.push(Aggregate {
                    func: AggFunc::Min,
                    table_alias: "n".into(),
                    column: "name".into(),
                });
            }
            Block::Kt => {
                join(&mut tables, &mut joins, "t", "kind_id", "kind_type", "kt", "id");
                predicates.push(draw_eq("kt", col("kind_type", "kind"), rng));
            }
            Block::Ml => {
                join(&mut tables, &mut joins, "t", "id", "movie_link", "ml", "movie_id");
                join(&mut tables, &mut joins, "ml", "link_type_id", "link_type", "lt", "id");
                predicates.push(draw_eq("lt", col("link_type", "link"), rng));
            }
            Block::Cc => {
                join(&mut tables, &mut joins, "t", "id", "complete_cast", "cc", "movie_id");
                join(&mut tables, &mut joins, "cc", "subject_id", "comp_cast_type", "cct", "id");
                predicates.push(draw_eq("cct", col("comp_cast_type", "kind"), rng));
            }
            Block::Mix => {
                join(&mut tables, &mut joins, "t", "id", "movie_info_idx", "mix", "movie_id");
                join(&mut tables, &mut joins, "mix", "info_type_id", "info_type", "it2", "id");
                predicates.push(draw_eq("it2", col("info_type", "info"), rng));
            }
        }
    }

    QuerySpec {
        id,
        tables,
        joins,
        predicates,
        group_by: Vec::new(),
        aggregates,
        order_by: Vec::new(),
        distinct: false,
        limit: None,
    }
}

/// Generates a JOB-style query log of `n` queries.
///
/// # Errors
/// Propagates planning errors (which would indicate a family/catalog bug).
pub fn generate(n: usize, seed: u64) -> PlanResult<QueryLog> {
    let cat = catalog();
    let vars = variants();
    let mut specs = Vec::with_capacity(n);
    for i in 0..n {
        let v = &vars[i % vars.len()];
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        specs.push((instantiate(&cat, v, i as u64, &mut rng), v.id));
    }
    build_log("job", cat, specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_twenty_one_tables() {
        let cat = catalog();
        assert_eq!(cat.tables().len(), 21);
        assert!(cat.has_index("title", "id"));
        assert!(!cat.has_index("movie_info", "movie_id"));
    }

    #[test]
    fn thirty_three_families_and_113_variants() {
        let fams = families();
        assert_eq!(fams.len(), N_FAMILIES);
        let mut seen = std::collections::HashSet::new();
        for f in &fams {
            assert!(seen.insert(f.blocks.clone()), "family blocks must be unique");
        }
        let vars = variants();
        assert_eq!(vars.len(), N_VARIANTS);
    }

    #[test]
    fn all_variants_plan_successfully() {
        let cat = catalog();
        let planner = wmp_plan::Planner::new(&cat);
        for (i, v) in variants().iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(i as u64);
            let spec = instantiate(&cat, v, i as u64, &mut rng);
            planner.plan(&spec).unwrap_or_else(|e| panic!("variant {i} failed: {e}"));
        }
    }

    #[test]
    fn queries_are_scalar_min_aggregates() {
        let cat = catalog();
        let vars = variants();
        let mut rng = StdRng::seed_from_u64(0);
        for v in vars.iter().take(20) {
            let spec = instantiate(&cat, v, 0, &mut rng);
            assert!(spec.group_by.is_empty());
            assert!(spec.order_by.is_empty());
            assert!(!spec.aggregates.is_empty());
            assert!(spec.aggregates.iter().all(|a| a.func == AggFunc::Min));
            assert!(wmp_plan::sql::render_sql(&spec).contains("MIN("));
        }
    }

    #[test]
    fn generate_covers_all_variants() {
        let log = generate(226, 3).unwrap(); // two per variant
        assert_eq!(log.len(), 226);
        let hints: std::collections::HashSet<usize> =
            log.records.iter().map(|r| r.template_hint).collect();
        assert_eq!(hints.len(), N_VARIANTS);
    }

    #[test]
    fn joins_dominate_memory() {
        // JOB queries have no sorts/group-bys: their memory is hash joins.
        let log = generate(50, 1).unwrap();
        use wmp_plan::OpKind;
        for r in &log.records {
            let sorts = r.features[2 * OpKind::Sort.index()];
            let hashaggs = r.features[2 * OpKind::HashAggregate.index()];
            assert_eq!(sorts, 0.0);
            assert_eq!(hashaggs, 0.0);
        }
        assert!(log.mean_true_memory_mb() > 1.0);
    }

    #[test]
    fn dbms_estimates_skew_low_on_job() {
        // Join skew makes truths systematically exceed heuristic estimates in
        // aggregate: the big joins are badly under-estimated (the residual
        // tail the paper's violins show), even though tiny queries get padded
        // by base reservations.
        let log = generate(300, 5).unwrap();
        let mean_est: f64 =
            log.records.iter().map(|r| r.dbms_estimate_mb()).sum::<f64>() / log.len() as f64;
        let mean_true = log.mean_true_memory_mb();
        assert!(
            mean_true > 2.0 * mean_est,
            "aggregate under-estimation expected: est {mean_est:.2} vs true {mean_true:.2}"
        );
        // Among the memory-heavy half, under-estimation dominates.
        let mut sorted: Vec<&crate::log::QueryRecord> = log.records.iter().collect();
        sorted.sort_by(|a, b| b.true_memory_mb().partial_cmp(&a.true_memory_mb()).unwrap());
        let heavy = &sorted[..sorted.len() / 2];
        let under = heavy.iter().filter(|r| r.dbms_estimate_mb() < r.true_memory_mb()).count();
        assert!(
            under as f64 > 0.55 * heavy.len() as f64,
            "heavy queries should under-estimate: {under}/{}",
            heavy.len()
        );
    }
}
