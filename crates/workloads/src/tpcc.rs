//! TPC-C-style transactional workload generator.
//!
//! The paper's third benchmark is OLTP: 3,958 short queries drawn from the
//! five TPC-C transactions. We model the 9-table schema and decompose each
//! transaction into its constituent SELECT statements (12 statement
//! templates), sampled with the official transaction mix. Point lookups and
//! tiny sorts keep per-query memory small and tightly clustered — the
//! opposite regime from the analytic benchmarks, which is what makes the
//! paper's TPC-C sensitivity results (few templates suffice) come out.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wmp_plan::error::PlanResult;
use wmp_plan::query::{AggFunc, Aggregate, JoinEdge, QuerySpec, TableRef};
use wmp_plan::schema::{Column, ColumnType, Distribution, Table};
use wmp_plan::Catalog;

use crate::log::{build_log, QueryLog};
use crate::params::{draw_eq, draw_range};

/// Number of statement templates (5 transactions decomposed).
pub const N_TEMPLATES: usize = 12;

/// The paper's TPC-C corpus size.
pub const DEFAULT_QUERY_COUNT: usize = 3_958;

/// Builds the TPC-C-style catalog (9 tables, W = 100 warehouses).
pub fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(Table::new(
        "warehouse",
        100,
        vec![
            Column::new("w_id", ColumnType::Int, 100),
            Column::new("w_name", ColumnType::Varchar(10), 100),
            Column::new("w_state", ColumnType::Char(2), 50),
        ],
    ));
    cat.add_table(Table::new(
        "district",
        1_000,
        vec![
            Column::new("d_id", ColumnType::Int, 1_000),
            Column::new("d_w_id", ColumnType::Int, 100),
            Column::new("d_next_o_id", ColumnType::Int, 3_000),
        ],
    ));
    cat.add_table(Table::new(
        "customer",
        300_000,
        vec![
            Column::new("c_id", ColumnType::Int, 300_000),
            Column::new("c_w_id", ColumnType::Int, 100),
            Column::new("c_d_id", ColumnType::Int, 10),
            Column::new("c_last", ColumnType::Varchar(16), 1_000)
                .with_distribution(Distribution::Zipf(1.2)),
            Column::new("c_first", ColumnType::Varchar(16), 150_000),
            Column::new("c_credit", ColumnType::Char(2), 2),
            Column::new("c_balance", ColumnType::Decimal, 100_000),
        ],
    ));
    cat.add_table(Table::new(
        "history",
        300_000,
        vec![
            Column::new("h_c_id", ColumnType::Int, 200_000),
            Column::new("h_amount", ColumnType::Decimal, 10_000),
        ],
    ));
    cat.add_table(Table::new(
        "new_order",
        90_000,
        vec![
            Column::new("no_o_id", ColumnType::Int, 90_000),
            Column::new("no_w_id", ColumnType::Int, 100),
        ],
    ));
    cat.add_table(Table::new(
        "orders",
        300_000,
        vec![
            Column::new("o_id", ColumnType::Int, 300_000),
            Column::new("o_c_id", ColumnType::Int, 100_000),
            Column::new("o_w_id", ColumnType::Int, 100),
            Column::new("o_entry_d", ColumnType::Date, 3_000),
            Column::new("o_carrier_id", ColumnType::Int, 10),
        ],
    ));
    cat.add_table(Table::new(
        "order_line",
        3_000_000,
        vec![
            Column::new("ol_o_id", ColumnType::Int, 300_000),
            Column::new("ol_w_id", ColumnType::Int, 100),
            Column::new("ol_i_id", ColumnType::Int, 100_000),
            Column::new("ol_quantity", ColumnType::Int, 10),
            Column::new("ol_amount", ColumnType::Decimal, 50_000),
            Column::new("ol_delivery_d", ColumnType::Date, 3_000),
        ],
    ));
    cat.add_table(Table::new(
        "item",
        100_000,
        vec![
            Column::new("i_id", ColumnType::Int, 100_000),
            Column::new("i_name", ColumnType::Varchar(24), 98_000),
            Column::new("i_price", ColumnType::Decimal, 9_000),
        ],
    ));
    cat.add_table(Table::new(
        "stock",
        1_000_000,
        vec![
            Column::new("s_i_id", ColumnType::Int, 100_000),
            Column::new("s_w_id", ColumnType::Int, 100),
            Column::new("s_quantity", ColumnType::Int, 100),
        ],
    ));

    for (t, c, unique) in [
        ("warehouse", "w_id", true),
        ("district", "d_id", true),
        ("customer", "c_id", true),
        ("customer", "c_last", false),
        ("new_order", "no_o_id", true),
        ("orders", "o_id", true),
        ("orders", "o_c_id", false),
        ("order_line", "ol_o_id", false),
        ("item", "i_id", true),
        ("stock", "s_i_id", false),
    ] {
        cat.add_index(t, c, unique);
    }
    // OLTP data mostly satisfies the estimator's assumptions; only customer
    // last names are skewed (per the TPC-C spec's non-uniform generator).
    cat.correlations.set_predicate_correlation("customer", "c_w_id", "c_d_id", 0.2);
    cat
}

/// Statement-template names in template-id order (diagnostics / reporting).
pub const TEMPLATE_NAMES: [&str; N_TEMPLATES] = [
    "neworder_item",
    "neworder_stock",
    "neworder_customer",
    "payment_warehouse",
    "payment_district",
    "payment_customer_by_lastname",
    "orderstatus_customer",
    "orderstatus_last_order",
    "orderstatus_order_lines",
    "delivery_oldest_new_order",
    "delivery_sum_order_lines",
    "stocklevel_recent_items",
];

/// Samples a template id following the TPC-C transaction mix (New-Order 45%,
/// Payment 43%, Order-Status 4%, Delivery 4%, Stock-Level 4%).
pub fn sample_template(rng: &mut StdRng) -> usize {
    let r: f64 = rng.gen();
    if r < 0.45 {
        rng.gen_range(0..3)
    } else if r < 0.88 {
        3 + rng.gen_range(0..3)
    } else if r < 0.92 {
        6 + rng.gen_range(0..3)
    } else if r < 0.96 {
        9 + rng.gen_range(0..2)
    } else {
        11
    }
}

/// Instantiates one statement from a template.
pub fn instantiate(cat: &Catalog, template: usize, id: u64, rng: &mut StdRng) -> QuerySpec {
    let col = |t: &str, c: &str| cat.column(t, c).expect("catalog column").1;
    let point = |t: &str, c: &str, rng: &mut StdRng| QuerySpec {
        id,
        tables: vec![TableRef::plain(t)],
        predicates: vec![draw_eq(t, col(t, c), rng)],
        ..QuerySpec::default()
    };
    match template {
        0 => point("item", "i_id", rng),
        1 => {
            let mut q = point("stock", "s_i_id", rng);
            q.predicates.push(draw_eq("stock", col("stock", "s_w_id"), rng));
            q
        }
        2 => point("customer", "c_id", rng),
        3 => point("warehouse", "w_id", rng),
        4 => point("district", "d_id", rng),
        5 => {
            // Customer by last name, ordered by first name (tiny sort).
            let mut q = point("customer", "c_last", rng);
            q.predicates.push(draw_eq("customer", col("customer", "c_w_id"), rng));
            q.order_by = vec![("customer".into(), "c_first".into())];
            q
        }
        6 => {
            let mut q = point("customer", "c_last", rng);
            q.order_by = vec![("customer".into(), "c_first".into())];
            q
        }
        7 => {
            // Most recent order of a customer.
            let mut q = point("orders", "o_c_id", rng);
            q.order_by = vec![("orders".into(), "o_id".into())];
            q.limit = Some(1);
            q
        }
        8 => point("order_line", "ol_o_id", rng),
        9 => QuerySpec {
            id,
            tables: vec![TableRef::plain("new_order")],
            predicates: vec![draw_eq("new_order", col("new_order", "no_w_id"), rng)],
            aggregates: vec![Aggregate {
                func: AggFunc::Min,
                table_alias: "new_order".into(),
                column: "no_o_id".into(),
            }],
            ..QuerySpec::default()
        },
        10 => {
            let mut q = point("order_line", "ol_o_id", rng);
            q.aggregates = vec![Aggregate {
                func: AggFunc::Sum,
                table_alias: "order_line".into(),
                column: "ol_amount".into(),
            }];
            q
        }
        _ => {
            // Stock-Level: recent order lines joined to low-stock items,
            // COUNT(DISTINCT s_i_id) — the only multi-table OLTP statement.
            QuerySpec {
                id,
                tables: vec![TableRef::new("order_line", "ol"), TableRef::new("stock", "s")],
                joins: vec![JoinEdge {
                    left_alias: "ol".into(),
                    left_col: "ol_i_id".into(),
                    right_alias: "s".into(),
                    right_col: "s_i_id".into(),
                }],
                predicates: vec![
                    draw_range("ol", col("order_line", "ol_o_id"), 20.0 / 300_000.0, rng),
                    draw_range("s", col("stock", "s_quantity"), 0.1, rng),
                ],
                distinct: true,
                ..QuerySpec::default()
            }
        }
    }
}

/// Generates a TPC-C-style query log of `n` statements.
///
/// # Errors
/// Propagates planning errors (which would indicate a template/catalog bug).
pub fn generate(n: usize, seed: u64) -> PlanResult<QueryLog> {
    let cat = catalog();
    let mut specs = Vec::with_capacity(n);
    for i in 0..n {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
        let template = sample_template(&mut rng);
        specs.push((instantiate(&cat, template, i as u64, &mut rng), template));
    }
    build_log("tpcc", cat, specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_nine_tables() {
        let cat = catalog();
        assert_eq!(cat.tables().len(), 9);
        assert!(cat.has_index("customer", "c_last"));
    }

    #[test]
    fn all_templates_plan_successfully() {
        let cat = catalog();
        let planner = wmp_plan::Planner::new(&cat);
        for (t, name) in TEMPLATE_NAMES.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(t as u64);
            let spec = instantiate(&cat, t, t as u64, &mut rng);
            planner.plan(&spec).unwrap_or_else(|e| panic!("template {name} failed: {e}"));
        }
    }

    #[test]
    fn transaction_mix_roughly_matches_spec() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; N_TEMPLATES];
        let n = 20_000;
        for _ in 0..n {
            counts[sample_template(&mut rng)] += 1;
        }
        let neworder: usize = counts[0..3].iter().sum();
        let payment: usize = counts[3..6].iter().sum();
        let stocklevel = counts[11];
        assert!((neworder as f64 / n as f64 - 0.45).abs() < 0.02);
        assert!((payment as f64 / n as f64 - 0.43).abs() < 0.02);
        assert!((stocklevel as f64 / n as f64 - 0.04).abs() < 0.01);
    }

    #[test]
    fn oltp_memory_is_small_and_tight() {
        let log = generate(400, 2).unwrap();
        assert_eq!(log.len(), 400);
        let mean = log.mean_true_memory_mb();
        assert!(mean < 20.0, "OLTP queries should be light, mean = {mean} MB");
        // Compared to the analytic benchmarks the ceiling is low too.
        let max = log.records.iter().map(|r| r.true_memory_mb()).fold(f64::NEG_INFINITY, f64::max);
        assert!(max < 300.0, "max = {max} MB");
    }

    #[test]
    fn resource_labels_are_complete_and_correlated() {
        let log = generate(400, 2).unwrap();
        for r in &log.records {
            assert!(r.resources.is_finite(), "query {}", r.id);
            assert!(r.resources.cpu_ms > 0.0, "every query burns CPU");
            assert!(r.dbms_estimate.cpu_ms > 0.0);
        }
        // CPU cost tracks memory across the log: the heaviest-memory half
        // must also be the CPU-heavier half on average (shared cardinality
        // driver).
        let mut by_mem: Vec<&crate::QueryRecord> = log.records.iter().collect();
        by_mem.sort_by(|a, b| b.true_memory_mb().partial_cmp(&a.true_memory_mb()).unwrap());
        let (heavy, light) = by_mem.split_at(by_mem.len() / 2);
        let mean_cpu = |rs: &[&crate::QueryRecord]| {
            rs.iter().map(|r| r.resources.cpu_ms).sum::<f64>() / rs.len() as f64
        };
        assert!(mean_cpu(heavy) > mean_cpu(light), "CPU correlates with memory");
    }

    #[test]
    fn point_lookups_use_index_scans() {
        let cat = catalog();
        let planner = wmp_plan::Planner::new(&cat);
        let mut rng = StdRng::seed_from_u64(5);
        let spec = instantiate(&cat, 0, 0, &mut rng); // item point lookup
        let plan = planner.plan(&spec).unwrap();
        assert_eq!(plan.op.kind(), wmp_plan::OpKind::IndexScan);
    }

    #[test]
    fn generation_is_deterministic_and_covers_templates() {
        let a = generate(500, 9).unwrap();
        let b = generate(500, 9).unwrap();
        assert_eq!(
            a.records.iter().map(|r| r.true_memory_mb()).sum::<f64>(),
            b.records.iter().map(|r| r.true_memory_mb()).sum::<f64>()
        );
        let hints: std::collections::HashSet<usize> =
            a.records.iter().map(|r| r.template_hint).collect();
        assert!(hints.len() >= 10, "most templates appear in 500 statements");
    }
}
