//! Ablations of the design choices DESIGN.md §5 calls out:
//!
//! 1. label mode — sum vs. max workload labels (paper eq. 1 vs. prose);
//! 2. histogram normalization — counts vs. frequencies;
//! 3. clustering algorithm — k-means vs. DBSCAN templates (§V);
//! 4. feature set — (count, cardinality) pairs vs. counts-only vs.
//!    cardinalities-only;
//! 5. planner realism — greedy join ordering vs. FROM-order joins.
//!
//! All ablations run LearnedWMP-XGB on TPC-DS.

use learnedwmp_core::{
    EvalConfig, EvalContext, HistogramMode, LabelMode, LearnedWmp, ModelKind, TemplateSpec,
    WorkloadPredictor,
};
use wmp_bench::{print_table, Benchmarks, Options};
use wmp_mlkit::metrics::{mape, rmse};
use wmp_workloads::{QueryLog, QueryRecord};

fn eval_learned_with(
    log: &QueryLog,
    cfg: &EvalConfig,
    label_mode: LabelMode,
    histogram_mode: HistogramMode,
    templates: TemplateSpec,
) -> (f64, f64) {
    let cfg = EvalConfig { label_mode, histogram_mode, ..cfg.clone() };
    let ctx = EvalContext::new(log, cfg.clone());
    let wmp = LearnedWmp::builder()
        .model(ModelKind::Xgb)
        .templates(templates)
        .batch_size(cfg.batch_size)
        .label_mode(label_mode)
        .histogram_mode(histogram_mode)
        .seed(cfg.seed)
        .fit_refs(&ctx.train, &log.catalog)
        .expect("training");
    let predictor: &dyn WorkloadPredictor = &wmp;
    let preds = predictor.predict_workloads(&ctx.test, &ctx.test_workloads).expect("prediction");
    (rmse(&ctx.y_test, &preds).expect("rmse"), mape(&ctx.y_test, &preds).expect("mape"))
}

/// Clones a log with half of each feature vector zeroed: `keep_counts` keeps
/// the even (count) slots, otherwise the odd (cardinality) slots survive.
fn mask_features(log: &QueryLog, keep_counts: bool) -> QueryLog {
    let mut masked = log.clone();
    for r in &mut masked.records {
        for (i, v) in r.features.iter_mut().enumerate() {
            let is_count_slot = i % 2 == 0;
            if is_count_slot != keep_counts {
                *v = 0.0;
            }
        }
    }
    masked
}

fn sum_mem(records: &[&QueryRecord]) -> f64 {
    records.iter().map(|r| r.true_memory_mb()).sum()
}

fn main() {
    let opts = Options::from_args();
    let benches = Benchmarks::generate(opts.experiment_config());
    let (_, log, cfg) =
        benches.datasets().into_iter().find(|(n, _, _)| *n == "TPC-DS").expect("TPC-DS");
    let k = cfg.k_templates;
    let seed = cfg.seed;
    let km = || TemplateSpec::PlanKMeans { k, seed };
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut push = |name: &str, (rmse, mape): (f64, f64)| {
        rows.push(vec![name.to_string(), format!("{rmse:.1}"), format!("{mape:.1}")]);
    };

    // 1. Label mode.
    push(
        "label=sum (paper prose)",
        eval_learned_with(log, &cfg, LabelMode::Sum, HistogramMode::Counts, km()),
    );
    push(
        "label=max (paper eq. 1)",
        eval_learned_with(log, &cfg, LabelMode::Max, HistogramMode::Counts, km()),
    );
    // 2. Histogram normalization.
    push(
        "hist=counts (paper)",
        eval_learned_with(log, &cfg, LabelMode::Sum, HistogramMode::Counts, km()),
    );
    push(
        "hist=frequencies",
        eval_learned_with(log, &cfg, LabelMode::Sum, HistogramMode::Frequencies, km()),
    );
    // 3. Clustering algorithm.
    push(
        "cluster=kmeans (paper)",
        eval_learned_with(log, &cfg, LabelMode::Sum, HistogramMode::Counts, km()),
    );
    push(
        "cluster=dbscan (SV comparison)",
        eval_learned_with(
            log,
            &cfg,
            LabelMode::Sum,
            HistogramMode::Counts,
            TemplateSpec::Dbscan { eps: 1.0, min_pts: 5 },
        ),
    );
    // 4. Feature set.
    let counts_only = mask_features(log, true);
    let cards_only = mask_features(log, false);
    push(
        "features=count+card (paper)",
        eval_learned_with(log, &cfg, LabelMode::Sum, HistogramMode::Counts, km()),
    );
    push(
        "features=counts only",
        eval_learned_with(&counts_only, &cfg, LabelMode::Sum, HistogramMode::Counts, km()),
    );
    push(
        "features=cards only",
        eval_learned_with(&cards_only, &cfg, LabelMode::Sum, HistogramMode::Counts, km()),
    );
    // 5. Planner realism: regenerate the same logical corpus without greedy
    // join ordering (FROM-order, left-deep).
    let fixed_order = wmp_workloads::tpcds::generate_with_planner(
        log.len(),
        benches.cfg.tpcds.gen_seed,
        wmp_plan::PlannerConfig { greedy_join_ordering: false, ..Default::default() },
    )
    .expect("fixed-order generation");
    push(
        "planner=greedy (default)",
        eval_learned_with(log, &cfg, LabelMode::Sum, HistogramMode::Counts, km()),
    );
    push(
        "planner=from-order",
        eval_learned_with(&fixed_order, &cfg, LabelMode::Sum, HistogramMode::Counts, km()),
    );

    println!("\nAblations (LearnedWMP-XGB on TPC-DS)");
    print_table(&["configuration", "rmse", "mape%"], &rows);

    // Context: how much memory the two planner modes actually consume.
    let refs_a: Vec<&QueryRecord> = log.records.iter().collect();
    let refs_b: Vec<&QueryRecord> = fixed_order.records.iter().collect();
    println!(
        "  note: total true memory greedy = {:.0} MB vs from-order = {:.0} MB",
        sum_mem(&refs_a),
        sum_mem(&refs_b)
    );
}
