//! Fig. 8 — model size (kB). LearnedWMP's tree/DNN models are smaller (fewer
//! training rows → fewer nodes; smaller tuned network); Ridge is the paper's
//! documented exception (k histogram features > plan features).

use learnedwmp_core::{EvalContext, ModelKind};
use wmp_bench::{print_table, Benchmarks, Options};

fn main() {
    let opts = Options::from_args();
    let benches = Benchmarks::generate(opts.experiment_config());
    for (name, log, cfg) in benches.datasets() {
        let ctx = EvalContext::new(log, cfg);
        println!("\nFig. 8 ({name}): model size (kB)");
        let mut rows = Vec::new();
        for kind in ModelKind::ALL {
            let single = ctx.evaluate_single(kind).expect("single");
            let learned = ctx.evaluate_learned(kind).expect("learned");
            rows.push(vec![
                kind.label().to_string(),
                format!("{:.1}", single.model_kb),
                format!("{:.1}", learned.model_kb),
                format!("{:+.0}%", (learned.model_kb / single.model_kb.max(1e-9) - 1.0) * 100.0),
            ]);
        }
        print_table(&["model", "SingleWMP", "LearnedWMP", "learned vs single"], &rows);
    }
}
