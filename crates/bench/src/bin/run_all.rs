//! Runs the complete Fig. 4–8 measurement sweep once per dataset and prints
//! every table plus the paper's headline claims (error reduction vs. DBMS,
//! training/inference speedups, model-size ratios). Sensitivity sweeps
//! (Figs. 9–11) and ablations have their own binaries.

use learnedwmp_core::{EvalContext, ModelKind, ModelReport};
use wmp_bench::{print_table, Benchmarks, Options};

fn main() {
    let opts = Options::from_args();
    let cfg = opts.experiment_config();
    println!(
        "Generating benchmarks (scale {:.2}): TPC-DS {} / JOB {} / TPC-C {} queries",
        opts.scale, cfg.tpcds.n_queries, cfg.job.n_queries, cfg.tpcc.n_queries
    );
    let benches = Benchmarks::generate(cfg);
    let mut all: Vec<(&'static str, Vec<ModelReport>)> = Vec::new();
    for (name, log, cfg) in benches.datasets() {
        let ctx = EvalContext::new(log, cfg);
        println!(
            "\n##### {name}: {} queries, {} train / {} test, {} test workloads, mean workload y = {:.1} MB",
            log.len(),
            ctx.train.len(),
            ctx.test.len(),
            ctx.test_workloads.len(),
            ctx.y_test.iter().sum::<f64>() / ctx.y_test.len().max(1) as f64
        );
        let reports = ctx.evaluate_all(&ModelKind::ALL).expect("evaluation");
        let rows: Vec<Vec<String>> = reports
            .iter()
            .map(|r| {
                let s = &r.residual_summary;
                vec![
                    r.tag(),
                    format!("{:.1}", r.rmse),
                    format!("{:.1}", r.mape),
                    format!("{:.1}", s.median),
                    format!("{:.1}", s.iqr()),
                    format!("{:.1}", r.train_ms),
                    format!("{:.1}", r.infer_us_per_workload),
                    format!("{:.1}", r.model_kb),
                ]
            })
            .collect();
        print_table(
            &["model", "rmse", "mape%", "res_med", "res_iqr", "train_ms", "infer_us", "size_kb"],
            &rows,
        );
        all.push((name, reports));
    }

    println!("\n##### Headline claims");
    for (name, reports) in &all {
        let dbms = reports.iter().find(|r| r.approach == "SingleWMP-DBMS").expect("dbms");
        let best_learned = reports
            .iter()
            .filter(|r| r.approach == "LearnedWMP")
            .min_by(|a, b| a.rmse.partial_cmp(&b.rmse).expect("finite"))
            .expect("learned");
        let pick = |approach: &str, kind: ModelKind| {
            reports
                .iter()
                .find(|r| r.approach == approach && r.model == kind.label())
                .expect("report")
        };
        let mut train_speedups = Vec::new();
        let mut infer_speedups = Vec::new();
        let mut size_ratios = Vec::new();
        for kind in ModelKind::ALL {
            let s = pick("SingleWMP", kind);
            let l = pick("LearnedWMP", kind);
            train_speedups.push(s.train_ms / l.train_ms.max(1e-9));
            infer_speedups.push(s.infer_us_per_workload / l.infer_us_per_workload.max(1e-9));
            size_ratios.push(l.model_kb / s.model_kb.max(1e-9));
        }
        let fmax = |v: &[f64]| v.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let fmin = |v: &[f64]| v.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        println!(
            "{name}: error reduction vs DBMS {:.1}% ({}) | train speedup {:.1}x..{:.1}x | infer speedup {:.1}x..{:.1}x | learned/single size {:.2}..{:.2}",
            (1.0 - best_learned.rmse / dbms.rmse) * 100.0,
            best_learned.tag(),
            fmin(&train_speedups),
            fmax(&train_speedups),
            fmin(&infer_speedups),
            fmax(&infer_speedups),
            fmin(&size_ratios),
            fmax(&size_ratios),
        );
    }
}
