//! Fig. 9 — accuracy of LearnedWMP-XGB on JOB under five template-learning
//! methods: query-plan k-means (the paper's method), rule-based,
//! bag-of-words, text-mining, and word embeddings — plus the §V DBSCAN
//! comparison as a bonus row.

use learnedwmp_core::{
    EvalContext, LearnedWmp, ModelKind, TemplateSpec, TextMode, WorkloadPredictor,
};
use wmp_bench::{print_table, Benchmarks, Options};
use wmp_mlkit::metrics::{mape, rmse};

fn main() {
    let opts = Options::from_args();
    let benches = Benchmarks::generate(opts.experiment_config());
    let (name, log, cfg) =
        benches.datasets().into_iter().find(|(n, _, _)| *n == "JOB").expect("JOB dataset");
    let k = cfg.k_templates;
    let seed = cfg.seed;
    let ctx = EvalContext::new(log, cfg.clone());
    let specs = [
        TemplateSpec::PlanKMeans { k, seed },
        TemplateSpec::RuleBased,
        TemplateSpec::Text { mode: TextMode::BagOfWords, k, seed },
        TemplateSpec::Text { mode: TextMode::TextMining, k, seed },
        TemplateSpec::Text { mode: TextMode::Embedding, k, seed },
        TemplateSpec::Dbscan { eps: 1.0, min_pts: 5 },
    ];
    println!("\nFig. 9 ({name}): LearnedWMP-XGB accuracy by template-learning method");
    let mut rows = Vec::new();
    for spec in specs {
        let wmp = LearnedWmp::builder()
            .model(ModelKind::Xgb)
            .templates(spec)
            .batch_size(cfg.batch_size)
            .seed(seed)
            .fit_refs(&ctx.train, &log.catalog)
            .expect("training");
        let predictor: &dyn WorkloadPredictor = &wmp;
        let preds =
            predictor.predict_workloads(&ctx.test, &ctx.test_workloads).expect("prediction");
        rows.push(vec![
            wmp.templates().name().to_string(),
            format!("{}", wmp.templates().n_templates()),
            format!("{:.1}", rmse(&ctx.y_test, &preds).expect("rmse")),
            format!("{:.1}", mape(&ctx.y_test, &preds).expect("mape")),
        ]);
    }
    print_table(&["method", "templates", "rmse", "mape%"], &rows);
    println!("  -> the paper's query-plan method should lead; rule/text methods trail");
}
