//! Fig. 9 — accuracy of LearnedWMP-XGB on JOB under five template-learning
//! methods: query-plan k-means (the paper's method), rule-based,
//! bag-of-words, text-mining, and word embeddings — plus the §V DBSCAN
//! comparison as a bonus row.

use learnedwmp_core::{
    DbscanTemplates, EvalContext, LearnedWmp, LearnedWmpConfig, ModelKind, PlanKMeansTemplates,
    RuleBasedTemplates, TemplateLearner, TextMode, TextTemplates,
};
use wmp_bench::{print_table, Benchmarks, Options};
use wmp_mlkit::metrics::{mape, rmse};

fn main() {
    let opts = Options::from_args();
    let benches = Benchmarks::generate(opts.experiment_config());
    let (name, log, cfg) =
        benches.datasets().into_iter().find(|(n, _, _)| *n == "JOB").expect("JOB dataset");
    let k = cfg.k_templates;
    let seed = cfg.seed;
    let ctx = EvalContext::new(log, cfg.clone());
    let learners: Vec<Box<dyn TemplateLearner>> = vec![
        Box::new(PlanKMeansTemplates::new(k, seed)),
        Box::new(RuleBasedTemplates::new()),
        Box::new(TextTemplates::new(TextMode::BagOfWords, k, seed)),
        Box::new(TextTemplates::new(TextMode::TextMining, k, seed)),
        Box::new(TextTemplates::new(TextMode::Embedding, k, seed)),
        Box::new(DbscanTemplates::new(1.0, 5)),
    ];
    println!("\nFig. 9 ({name}): LearnedWMP-XGB accuracy by template-learning method");
    let mut rows = Vec::new();
    for learner in learners {
        let label = learner.name().to_string();
        let wmp = LearnedWmp::train(
            LearnedWmpConfig {
                model: ModelKind::Xgb,
                batch_size: cfg.batch_size,
                seed,
                ..LearnedWmpConfig::default()
            },
            learner,
            &ctx.train,
            &log.catalog,
        )
        .expect("training");
        let preds = wmp.predict_workloads(&ctx.test, &ctx.test_workloads).expect("prediction");
        rows.push(vec![
            label,
            format!("{}", wmp.templates().n_templates()),
            format!("{:.1}", rmse(&ctx.y_test, &preds).expect("rmse")),
            format!("{:.1}", mape(&ctx.y_test, &preds).expect("mape")),
        ]);
    }
    print_table(&["method", "templates", "rmse", "mape%"], &rows);
    println!("  -> the paper's query-plan method should lead; rule/text methods trail");
}
