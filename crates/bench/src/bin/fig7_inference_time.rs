//! Fig. 7 — inference time per workload (µs). LearnedWMP performs one
//! histogram-level prediction where SingleWMP performs `s` per-query
//! predictions, giving the paper's 3–10× acceleration.

use learnedwmp_core::{EvalContext, ModelKind};
use wmp_bench::{print_table, Benchmarks, Options};

fn main() {
    let opts = Options::from_args();
    let benches = Benchmarks::generate(opts.experiment_config());
    for (name, log, cfg) in benches.datasets() {
        let ctx = EvalContext::new(log, cfg);
        println!("\nFig. 7 ({name}): inference time per workload (us)");
        let mut rows = Vec::new();
        for kind in ModelKind::ALL {
            let single = ctx.evaluate_single(kind).expect("single");
            let learned = ctx.evaluate_learned(kind).expect("learned");
            rows.push(vec![
                kind.label().to_string(),
                format!("{:.1}", single.infer_us_per_workload),
                format!("{:.1}", learned.infer_us_per_workload),
                format!(
                    "{:.2}x",
                    single.infer_us_per_workload / learned.infer_us_per_workload.max(1e-9)
                ),
            ]);
        }
        print_table(&["model", "SingleWMP", "LearnedWMP", "speedup"], &rows);
    }
}
