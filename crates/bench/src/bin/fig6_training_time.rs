//! Fig. 6 — ML model training time (ms). LearnedWMP variants train on ~s×
//! fewer examples than SingleWMP and are correspondingly faster. The DBMS
//! baseline has no training cost and is excluded, as in the paper.

use learnedwmp_core::{EvalContext, ModelKind};
use wmp_bench::{print_table, Benchmarks, Options};

fn main() {
    let opts = Options::from_args();
    let benches = Benchmarks::generate(opts.experiment_config());
    for (name, log, cfg) in benches.datasets() {
        let ctx = EvalContext::new(log, cfg);
        println!("\nFig. 6 ({name}): training time (ms)");
        let mut rows = Vec::new();
        for kind in ModelKind::ALL {
            let single = ctx.evaluate_single(kind).expect("single");
            let learned = ctx.evaluate_learned(kind).expect("learned");
            rows.push(vec![
                kind.label().to_string(),
                format!("{:.1}", single.train_ms),
                format!("{:.1}", learned.train_ms),
                format!("{:.1}", learned.total_train_ms),
                format!("{:.2}x", single.train_ms / learned.train_ms.max(1e-9)),
            ]);
        }
        print_table(
            &["model", "SingleWMP", "LearnedWMP", "LearnedWMP(+templates)", "speedup"],
            &rows,
        );
    }
}
