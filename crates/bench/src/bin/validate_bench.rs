//! Validates the persisted `BENCH_*.json` perf-trajectory files at the
//! repository root against the schema in [`wmp_bench::report`]. Exits
//! non-zero (listing every violation) when any file is missing, unparsable,
//! or schema-invalid — the CI gate that keeps the trajectory machine-readable.
//!
//! Usage: `validate_bench [file ...]` — with no arguments, validates every
//! `BENCH_*.json` found at the repository root (at least one must exist).

use wmp_bench::report::{repo_root, validate_report};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let files: Vec<std::path::PathBuf> = if args.is_empty() {
        let root = repo_root();
        let mut found: Vec<_> = std::fs::read_dir(&root)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .map(|e| e.path())
                    .filter(|p| {
                        p.file_name()
                            .and_then(|n| n.to_str())
                            .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                    })
                    .collect()
            })
            .unwrap_or_default();
        found.sort();
        found
    } else {
        args.iter().map(std::path::PathBuf::from).collect()
    };

    if files.is_empty() {
        eprintln!("no BENCH_*.json files found at {}", repo_root().display());
        std::process::exit(2);
    }

    let mut failures = 0;
    for path in &files {
        let verdict = std::fs::read_to_string(path)
            .map_err(|e| format!("unreadable: {e}"))
            .and_then(|text| validate_report(&text));
        match verdict {
            Ok(()) => println!("ok      {}", path.display()),
            Err(e) => {
                println!("INVALID {}: {e}", path.display());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} invalid bench report(s)");
        std::process::exit(1);
    }
}
