//! Extension experiment (paper §I future work): variable-length workloads.
//!
//! Trains LearnedWMP-XGB on workloads whose sizes vary uniformly in
//! [5, 15] and evaluates on variable-size batches, comparing against the
//! fixed-s=10 pipeline and against auto-selected k (elbow method).

use learnedwmp_core::{
    batch_workloads_variable, EvalContext, LabelMode, LearnedWmp, ModelKind, PlanKMeansTemplates,
    TemplateSpec, WorkloadPredictor,
};
use wmp_bench::{print_table, Benchmarks, Options};
use wmp_mlkit::metrics::{mape, rmse};

fn main() {
    let opts = Options::from_args();
    let benches = Benchmarks::generate(opts.experiment_config());
    let (name, log, cfg) =
        benches.datasets().into_iter().find(|(n, _, _)| *n == "TPC-DS").expect("TPC-DS dataset");
    let ctx = EvalContext::new(log, cfg.clone());

    // Variable-size test batches shared by both models.
    let test_ws = batch_workloads_variable(&ctx.test, 5, 15, 99, LabelMode::Sum);
    let y: Vec<f64> = test_ws.iter().map(|w| w.y_mb()).collect();

    let builder = |k: usize| {
        LearnedWmp::builder()
            .model(ModelKind::Xgb)
            .templates(TemplateSpec::PlanKMeans { k, seed: cfg.seed })
            .batch_size(cfg.batch_size)
            .seed(cfg.seed)
    };

    // Fixed-length training (the paper's design).
    let fixed = builder(cfg.k_templates).fit_refs(&ctx.train, &log.catalog).expect("fixed");

    // Variable-length training (the extension).
    let train_ws = batch_workloads_variable(&ctx.train, 5, 15, cfg.seed, LabelMode::Sum);
    let variable = builder(cfg.k_templates)
        .fit_workloads(&ctx.train, &log.catalog, train_ws)
        .expect("variable training");

    // Elbow-selected k as a third point.
    let auto_k = PlanKMeansTemplates::auto_k(&ctx.train, &[10, 20, 40, 60, 80, 100], cfg.seed)
        .expect("auto k");
    let auto = builder(auto_k)
        .fit_workloads(
            &ctx.train,
            &log.catalog,
            batch_workloads_variable(&ctx.train, 5, 15, cfg.seed, LabelMode::Sum),
        )
        .expect("auto-k training");

    let eval = |m: &dyn WorkloadPredictor| -> (f64, f64) {
        let preds = m.predict_workloads(&ctx.test, &test_ws).expect("prediction");
        (rmse(&y, &preds).expect("rmse"), mape(&y, &preds).expect("mape"))
    };
    let (fr, fm) = eval(&fixed);
    let (vr, vm) = eval(&variable);
    let (ar, am) = eval(&auto);
    println!("\nExtension ({name}): variable-length workloads (test batches of 5..=15 queries)");
    print_table(
        &["training regime", "rmse", "mape%"],
        &[
            vec!["fixed s=10 (paper)".into(), format!("{fr:.1}"), format!("{fm:.1}")],
            vec!["variable s in [5,15]".into(), format!("{vr:.1}"), format!("{vm:.1}")],
            vec![format!("variable + elbow k={auto_k}"), format!("{ar:.1}"), format!("{am:.1}")],
        ],
    );
    println!("  -> training on variable batches should track variable test batches better");
}
