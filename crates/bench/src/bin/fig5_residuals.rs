//! Fig. 5 — estimation-error residual distributions (violin-plot summaries):
//! quartiles, IQR, mean, and skew of `y − ŷ` per model. A good model has a
//! narrow violin centered at zero; the DBMS baseline is wide and skewed.

use learnedwmp_core::{EvalContext, ModelKind};
use wmp_bench::{print_table, Benchmarks, Options};

fn main() {
    let opts = Options::from_args();
    let benches = Benchmarks::generate(opts.experiment_config());
    for (name, log, cfg) in benches.datasets() {
        let ctx = EvalContext::new(log, cfg);
        let reports = ctx.evaluate_all(&ModelKind::ALL).expect("evaluation");
        println!("\nFig. 5 ({name}): residual distributions (MB; residual = actual - predicted)");
        let rows: Vec<Vec<String>> = reports
            .iter()
            .map(|r| {
                let s = &r.residual_summary;
                vec![
                    r.tag(),
                    format!("{:.1}", s.min),
                    format!("{:.1}", s.q1),
                    format!("{:.1}", s.median),
                    format!("{:.1}", s.q3),
                    format!("{:.1}", s.max),
                    format!("{:.1}", s.iqr()),
                    format!("{:.1}", s.mean),
                    format!("{:.2}", s.skewness),
                ]
            })
            .collect();
        print_table(&["model", "min", "q1", "median", "q3", "max", "iqr", "mean", "skew"], &rows);
    }
}
