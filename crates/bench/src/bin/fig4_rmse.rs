//! Fig. 4 — RMSE of every model on TPC-DS / JOB / TPC-C (smaller is better),
//! plus the headline error-reduction percentages vs. the DBMS baseline.

use learnedwmp_core::{EvalContext, ModelKind};
use wmp_bench::{print_table, Benchmarks, Options};

fn main() {
    let opts = Options::from_args();
    let benches = Benchmarks::generate(opts.experiment_config());
    for (name, log, cfg) in benches.datasets() {
        let ctx = EvalContext::new(log, cfg);
        let reports = ctx.evaluate_all(&ModelKind::ALL).expect("evaluation");
        println!("\nFig. 4 ({name}): Root Mean Squared Error (MB, smaller is better)");
        let rows: Vec<Vec<String>> =
            reports.iter().map(|r| vec![r.tag(), format!("{:.1}", r.rmse)]).collect();
        print_table(&["model", "rmse"], &rows);
        let dbms = reports.iter().find(|r| r.approach == "SingleWMP-DBMS").expect("baseline");
        let best = reports
            .iter()
            .filter(|r| r.approach == "LearnedWMP")
            .min_by(|a, b| a.rmse.partial_cmp(&b.rmse).expect("finite"))
            .expect("learned rows");
        println!(
            "  -> best LearnedWMP ({}) reduces DBMS estimation error by {:.1}%",
            best.tag(),
            (1.0 - best.rmse / dbms.rmse) * 100.0
        );
    }
}
