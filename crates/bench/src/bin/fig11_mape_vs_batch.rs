//! Fig. 11 — MAPE of LearnedWMP-XGB on TPC-DS as the workload batch size s
//! sweeps the paper's values [1, 2, 3, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50];
//! accuracy improves steeply with batching, then flattens. At s = 1 the
//! SingleWMP-XGB model wins (the paper's closing observation).

use learnedwmp_core::{EvalConfig, EvalContext, ModelKind};
use wmp_bench::{print_table, Benchmarks, Options};

fn main() {
    let opts = Options::from_args();
    let benches = Benchmarks::generate(opts.experiment_config());
    let (name, log, cfg) =
        benches.datasets().into_iter().find(|(n, _, _)| *n == "TPC-DS").expect("TPC-DS dataset");
    println!("\nFig. 11 ({name}): MAPE (%) of LearnedWMP-XGB vs batch size s");
    let mut rows = Vec::new();
    for s in [1usize, 2, 3, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50] {
        let ctx = EvalContext::new(log, EvalConfig { batch_size: s, ..cfg.clone() });
        let r = ctx.evaluate_learned(ModelKind::Xgb).expect("evaluation");
        rows.push(vec![format!("{s}"), format!("{:.1}", r.mape)]);
    }
    print_table(&["s", "mape%"], &rows);
    // The paper's s = 1 reference: SingleWMP beats LearnedWMP on single
    // queries because templates quantize away per-query signal.
    let ctx = EvalContext::new(log, EvalConfig { batch_size: 1, ..cfg });
    let learned = ctx.evaluate_learned(ModelKind::Xgb).expect("learned");
    let single = ctx.evaluate_single(ModelKind::Xgb).expect("single");
    println!(
        "  -> at s=1: LearnedWMP-XGB MAPE {:.1}% vs SingleWMP-XGB MAPE {:.1}% (single-query models win at s=1)",
        learned.mape, single.mape
    );
}
