//! Fig. 10 — MAPE of LearnedWMP-XGB as the number of templates k sweeps
//! 10..=100, per dataset. The paper observes TPC-DS improving toward k = 100
//! while JOB and TPC-C peak at moderate k (20–40).

use learnedwmp_core::{EvalConfig, EvalContext, ModelKind};
use wmp_bench::{print_table, Benchmarks, Options};

fn main() {
    let opts = Options::from_args();
    let benches = Benchmarks::generate(opts.experiment_config());
    for (name, log, cfg) in benches.datasets() {
        println!("\nFig. 10 ({name}): MAPE (%) of LearnedWMP-XGB vs number of templates");
        let mut rows = Vec::new();
        for k in (10..=100).step_by(10) {
            let ctx = EvalContext::new(log, EvalConfig { k_templates: k, ..cfg.clone() });
            let r = ctx.evaluate_learned(ModelKind::Xgb).expect("evaluation");
            rows.push(vec![format!("{k}"), format!("{:.1}", r.mape)]);
        }
        print_table(&["k", "mape%"], &rows);
    }
}
