//! # wmp-bench — the experiment harness
//!
//! One binary per figure of the paper's evaluation (§IV): `fig4_rmse`
//! through `fig11_mape_vs_batch`, plus `ablations` and `run_all`. Criterion
//! benches (`training`, `inference`, `pipeline`) cover the timing-sensitive
//! paths. Every binary accepts `--scale <f>` (default 1.0 = the paper's
//! corpus sizes) and `--seed <n>`.

#![warn(missing_docs)]

pub mod report;

use learnedwmp_core::{EvalConfig, ExperimentConfig};
use wmp_workloads::QueryLog;

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Corpus scale in `(0, 1]`; 1.0 reproduces the paper's sizes.
    pub scale: f64,
    /// Split/batching seed.
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options { scale: 1.0, seed: 42 }
    }
}

impl Options {
    /// Parses `--scale <f>` and `--seed <n>` from `std::env::args`.
    /// Unknown arguments abort with a usage message.
    pub fn from_args() -> Self {
        let mut opts = Options::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    opts.scale = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("missing/invalid value for --scale"));
                    i += 2;
                }
                "--seed" => {
                    opts.seed = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("missing/invalid value for --seed"));
                    i += 2;
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown argument: {other}")),
            }
        }
        opts
    }

    /// The experiment configuration at this scale.
    pub fn experiment_config(&self) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::scaled(self.scale);
        cfg.split_seed = self.seed;
        cfg
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <figure-binary> [--scale <0..1>] [--seed <n>]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

/// The three generated benchmark logs.
pub struct Benchmarks {
    /// TPC-DS-style log.
    pub tpcds: QueryLog,
    /// JOB-style log.
    pub job: QueryLog,
    /// TPC-C-style log.
    pub tpcc: QueryLog,
    /// The configuration they were generated with.
    pub cfg: ExperimentConfig,
}

impl Benchmarks {
    /// Generates all three benchmarks at the configured scale.
    ///
    /// # Panics
    /// Panics on generator bugs (planning failures) — these are programming
    /// errors, not runtime conditions.
    pub fn generate(cfg: ExperimentConfig) -> Self {
        let tpcds = wmp_workloads::tpcds::generate(cfg.tpcds.n_queries, cfg.tpcds.gen_seed)
            .expect("tpcds generation");
        let job = wmp_workloads::job::generate(cfg.job.n_queries, cfg.job.gen_seed)
            .expect("job generation");
        let tpcc = wmp_workloads::tpcc::generate(cfg.tpcc.n_queries, cfg.tpcc.gen_seed)
            .expect("tpcc generation");
        Benchmarks { tpcds, job, tpcc, cfg }
    }

    /// `(name, log, eval-config)` triples in the paper's dataset order.
    pub fn datasets(&self) -> Vec<(&'static str, &QueryLog, EvalConfig)> {
        let mk = |k: usize| EvalConfig {
            batch_size: self.cfg.batch_size,
            k_templates: k,
            train_frac: self.cfg.train_frac,
            seed: self.cfg.split_seed,
            ..EvalConfig::default()
        };
        vec![
            ("TPC-DS", &self.tpcds, mk(self.cfg.tpcds.k_templates)),
            ("JOB", &self.job, mk(self.cfg.job.k_templates)),
            ("TPC-C", &self.tpcc, mk(self.cfg.tpcc.k_templates)),
        ]
    }
}

/// Prints an aligned table: a header row then value rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let parts: Vec<String> =
            cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
        println!("  {}", parts.join("  "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_paper_scale() {
        let o = Options::default();
        assert_eq!(o.scale, 1.0);
        let cfg = o.experiment_config();
        assert_eq!(cfg.tpcds.n_queries, 93_000);
    }

    #[test]
    fn benchmarks_generate_at_tiny_scale() {
        let b = Benchmarks::generate(ExperimentConfig::quick());
        assert!(!b.tpcds.is_empty());
        assert!(!b.job.is_empty());
        assert!(!b.tpcc.is_empty());
        let ds = b.datasets();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds[0].0, "TPC-DS");
        assert_eq!(ds[2].2.k_templates, b.cfg.tpcc.k_templates);
    }
}
