//! Persisted benchmark trajectory: every perf-sensitive bench writes a
//! `BENCH_<name>.json` file at the repository root so regressions are
//! visible across commits (compare the file in git history against the
//! current run).
//!
//! # Schema (version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "bench": "serving_throughput",
//!   "git": "<git describe --always --dirty, or \"unknown\">",
//!   "test_mode": false,
//!   "config": { "<key>": <number|string>, ... },
//!   "results": [
//!     {
//!       "name": "handle_1_reader",
//!       "qps": 123456.0,
//!       "ns_per_query": 8100.0,
//!       "p50_us": 81.5,
//!       "p99_us": 130.0
//!     }
//!   ]
//! }
//! ```
//!
//! `config` keys are bench-specific (corpus size, window size, reader
//! counts). Every entry in `results` carries at least `name` and `qps`;
//! `ns_per_query` is `1e9 / qps`, and the latency quantiles (`p50_us`,
//! `p99_us`, interpolated from a [`wmp_obs::Histogram`]) are present when
//! the bench records per-operation latencies. `test_mode` marks reduced
//! CI runs (`cargo bench ... -- --test`), whose numbers are smoke-test
//! artifacts, not trajectory points.

use std::path::PathBuf;

use wmp_obs::JsonValue;

/// Current schema version written by [`BenchReport::write`].
pub const SCHEMA_VERSION: f64 = 1.0;

/// One bench's persisted result file, accumulated then written at the end
/// of the bench run.
pub struct BenchReport {
    bench: String,
    test_mode: bool,
    config: Vec<(String, JsonValue)>,
    results: Vec<JsonValue>,
}

impl BenchReport {
    /// Starts a report for `bench` (the `BENCH_<bench>.json` stem).
    /// `test_mode` marks reduced CI runs.
    pub fn new(bench: &str, test_mode: bool) -> Self {
        BenchReport { bench: bench.to_string(), test_mode, config: Vec::new(), results: Vec::new() }
    }

    /// Records one numeric configuration entry.
    pub fn config_num(&mut self, key: &str, value: f64) -> &mut Self {
        self.config.push((key.to_string(), JsonValue::Number(value)));
        self
    }

    /// Records one string configuration entry.
    pub fn config_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.config.push((key.to_string(), JsonValue::String(value.to_string())));
        self
    }

    /// Records one named throughput result. `latency` adds interpolated
    /// p50/p99 (µs) when the bench tracked per-operation latencies.
    pub fn result(
        &mut self,
        name: &str,
        qps: f64,
        latency: Option<&wmp_obs::Histogram>,
    ) -> &mut Self {
        let mut fields = vec![
            ("name".to_string(), JsonValue::String(name.to_string())),
            ("qps".to_string(), JsonValue::Number(qps)),
            (
                "ns_per_query".to_string(),
                JsonValue::Number(if qps > 0.0 { 1e9 / qps } else { 0.0 }),
            ),
        ];
        if let Some(h) = latency {
            fields.push(("p50_us".to_string(), JsonValue::Number(h.quantile(0.50))));
            fields.push(("p99_us".to_string(), JsonValue::Number(h.quantile(0.99))));
        }
        self.results.push(JsonValue::Object(fields));
        self
    }

    /// Records one named result with extra numeric metric fields (e.g.
    /// per-resource MAE) alongside the mandatory `qps`/`ns_per_query` pair.
    pub fn result_metrics(&mut self, name: &str, qps: f64, extras: &[(&str, f64)]) -> &mut Self {
        let mut fields = vec![
            ("name".to_string(), JsonValue::String(name.to_string())),
            ("qps".to_string(), JsonValue::Number(qps)),
            (
                "ns_per_query".to_string(),
                JsonValue::Number(if qps > 0.0 { 1e9 / qps } else { 0.0 }),
            ),
        ];
        for (key, value) in extras {
            fields.push(((*key).to_string(), JsonValue::Number(*value)));
        }
        self.results.push(JsonValue::Object(fields));
        self
    }

    /// The report as a JSON value (what [`BenchReport::write`] persists).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("schema_version".to_string(), JsonValue::Number(SCHEMA_VERSION)),
            ("bench".to_string(), JsonValue::String(self.bench.clone())),
            ("git".to_string(), JsonValue::String(git_describe())),
            ("test_mode".to_string(), JsonValue::Bool(self.test_mode)),
            ("config".to_string(), JsonValue::Object(self.config.clone())),
            ("results".to_string(), JsonValue::Array(self.results.clone())),
        ])
    }

    /// Writes `BENCH_<bench>.json` at the repository root and returns the
    /// path. Failures are printed, not fatal — a read-only checkout must
    /// not fail the bench itself.
    pub fn write(&self) -> Option<PathBuf> {
        let path = repo_root().join(format!("BENCH_{}.json", self.bench));
        let mut body = self.to_json().render();
        body.push('\n');
        match std::fs::write(&path, body) {
            Ok(()) => {
                println!("wrote {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("could not write {}: {e}", path.display());
                None
            }
        }
    }
}

/// The repository root (two levels above this crate's manifest).
pub fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// when git is unavailable (e.g. a source tarball).
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .current_dir(repo_root())
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Validates one persisted bench report against the schema (used by the
/// `validate_bench` binary and tests).
///
/// # Errors
/// Returns a description of the first violation found.
pub fn validate_report(text: &str) -> Result<(), String> {
    let value = JsonValue::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let version = value
        .get("schema_version")
        .and_then(JsonValue::as_f64)
        .ok_or("missing numeric schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(format!("unsupported schema_version {version}"));
    }
    value.get("bench").and_then(JsonValue::as_str).ok_or("missing string bench")?;
    value.get("git").and_then(JsonValue::as_str).ok_or("missing string git")?;
    value.get("config").ok_or("missing config object")?;
    let results =
        value.get("results").and_then(JsonValue::as_array).ok_or("missing results array")?;
    if results.is_empty() {
        return Err("results array is empty".to_string());
    }
    for (i, entry) in results.iter().enumerate() {
        entry
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or(format!("results[{i}]: missing name"))?;
        let qps = entry
            .get("qps")
            .and_then(JsonValue::as_f64)
            .ok_or(format!("results[{i}]: missing numeric qps"))?;
        if !qps.is_finite() || qps <= 0.0 {
            return Err(format!("results[{i}]: qps must be finite and positive, got {qps}"));
        }
        entry
            .get("ns_per_query")
            .and_then(JsonValue::as_f64)
            .ok_or(format!("results[{i}]: missing numeric ns_per_query"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_the_validator() {
        let latency = wmp_obs::Histogram::default();
        for us in [50, 80, 120, 90, 75] {
            latency.record(us);
        }
        let mut report = BenchReport::new("unit_test", true);
        report
            .config_num("n_queries", 200.0)
            .config_str("dataset", "tpcc")
            .result("fast_path", 125_000.0, Some(&latency))
            .result("slow_path", 2_500.0, None);
        let text = report.to_json().render();
        validate_report(&text).expect("fresh report validates");
        let value = JsonValue::parse(&text).unwrap();
        assert_eq!(value.get("bench").and_then(JsonValue::as_str), Some("unit_test"));
        let results = value.get("results").and_then(JsonValue::as_array).unwrap();
        assert_eq!(results.len(), 2);
        let fast = &results[0];
        assert!(fast.get("p50_us").and_then(JsonValue::as_f64).unwrap() > 0.0);
        let ns = fast.get("ns_per_query").and_then(JsonValue::as_f64).unwrap();
        assert!((ns - 8_000.0).abs() < 1.0, "1e9/125k = 8000, got {ns}");
        assert!(results[1].get("p50_us").is_none(), "no latency histogram, no quantiles");
    }

    #[test]
    fn validator_rejects_malformed_reports() {
        assert!(validate_report("not json").is_err());
        assert!(validate_report("{}").is_err());
        assert!(validate_report(
            r#"{"schema_version": 1, "bench": "x", "git": "g", "config": {}, "results": []}"#
        )
        .is_err());
        assert!(validate_report(
            r#"{"schema_version": 1, "bench": "x", "git": "g", "config": {},
                "results": [{"name": "a", "qps": 0, "ns_per_query": 0}]}"#
        )
        .is_err());
        assert!(validate_report(
            r#"{"schema_version": 2, "bench": "x", "git": "g", "config": {}, "results": []}"#
        )
        .is_err());
    }

    #[test]
    fn git_describe_reports_this_checkout() {
        // In the repo this returns a short hash; in a tarball "unknown".
        assert!(!git_describe().is_empty());
    }
}
