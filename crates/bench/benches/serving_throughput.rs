//! Multi-threaded serving throughput: N reader threads predicting workload
//! windows through one shared [`PredictorHandle`] — with and without a
//! writer hot-swapping the model underneath them — plus the full
//! [`Engine`] submit → window → resolve path. Besides the per-iteration
//! criterion timings, the bench prints **aggregate queries/sec** for each
//! concurrency level, the number a capacity planner actually wants, and
//! persists the run as `BENCH_serving_throughput.json` at the repository
//! root (schema: [`wmp_bench::report`]) so throughput is tracked across
//! commits.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use learnedwmp_core::{LearnedWmp, ModelKind, PredictorHandle, TemplateSpec};
use wmp_bench::report::BenchReport;
use wmp_obs::Histogram;
use wmp_serve::{Engine, WindowPolicy};
use wmp_workloads::QueryRecord;

const WINDOW: usize = 10;

fn trained(log: &wmp_workloads::QueryLog, kind: ModelKind, seed: u64) -> LearnedWmp {
    LearnedWmp::builder()
        .model(kind)
        .templates(TemplateSpec::PlanKMeans { k: 20, seed })
        .fit(log)
        .expect("training")
}

/// Runs `readers` threads, each predicting every window once through the
/// handle (snapshot per window, as the engine does), recording per-window
/// latencies into `latency`, and returns aggregate queries scored per
/// second.
fn aggregate_qps(
    handle: &PredictorHandle,
    windows: &[Vec<&QueryRecord>],
    readers: usize,
    latency: &Histogram,
) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..readers {
            scope.spawn(|| {
                for w in windows {
                    let w0 = Instant::now();
                    black_box(handle.snapshot().predict_workload(w).expect("prediction"));
                    latency.record_duration(w0.elapsed());
                }
            });
        }
    });
    (readers * windows.len() * WINDOW) as f64 / t0.elapsed().as_secs_f64()
}

fn bench_serving_throughput(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let n_queries = if test_mode { 200 } else { 2_000 };
    let log = wmp_workloads::tpcc::generate(n_queries, 42).expect("generation");
    let model = trained(&log, ModelKind::Xgb, 42);
    let alt = trained(&log, ModelKind::Ridge, 43);
    let handle = PredictorHandle::new(model);
    let refs: Vec<&QueryRecord> = log.records.iter().collect();
    let windows: Vec<Vec<&QueryRecord>> =
        refs.chunks(WINDOW).map(<[&QueryRecord]>::to_vec).collect();

    let mut group = c.benchmark_group("serving_throughput");
    group.bench_function("handle_1_reader_all_windows", |b| {
        b.iter(|| {
            for w in &windows {
                black_box(handle.snapshot().predict_workload(w).expect("prediction"));
            }
        })
    });
    group.bench_function("handle_4_readers_all_windows", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        for w in &windows {
                            black_box(handle.snapshot().predict_workload(w).expect("prediction"));
                        }
                    });
                }
            });
        })
    });
    group.bench_function("handle_4_readers_under_hot_swap", |b| {
        b.iter(|| {
            // The writer keeps installing codec clones until the last
            // reader finishes — a much higher swap rate than any real
            // retraining loop produces.
            let running = AtomicUsize::new(4);
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    while running.load(Ordering::Acquire) > 0 {
                        handle.swap(alt.codec_clone().expect("codec clone"));
                    }
                });
                for _ in 0..4 {
                    scope.spawn(|| {
                        for w in &windows {
                            black_box(handle.snapshot().predict_workload(w).expect("prediction"));
                        }
                        running.fetch_sub(1, Ordering::Release);
                    });
                }
            });
        })
    });
    group.bench_function("engine_submit_window_resolve", |b| {
        let engine = Engine::new(handle.clone(), WindowPolicy::Count(WINDOW));
        b.iter(|| {
            let tickets: Vec<_> = log.records.iter().map(|r| engine.submit(r.clone())).collect();
            engine.drain();
            for t in &tickets {
                black_box(t.wait().expect("decision"));
            }
        })
    });
    group.finish();

    // Aggregate throughput: the headline queries/sec numbers, persisted as
    // the BENCH_serving_throughput.json trajectory point. Test mode runs
    // the same path on the reduced corpus so CI exercises (and validates)
    // the report format.
    let reader_counts: &[usize] = if test_mode { &[1, 2] } else { &[1, 2, 4, 8] };
    let mut report = BenchReport::new("serving_throughput", test_mode);
    report
        .config_num("n_queries", n_queries as f64)
        .config_num("window", WINDOW as f64)
        .config_str("dataset", "tpcc")
        .config_str("model", "LearnedWMP-XGB");
    for &readers in reader_counts {
        let latency = Histogram::default();
        let qps = aggregate_qps(&handle, &windows, readers, &latency);
        println!(
            "serving_throughput/aggregate {readers} reader(s): {qps:>10.0} queries/sec \
             ({:.0} windows/sec)",
            qps / WINDOW as f64
        );
        report.result(&format!("handle_{readers}_readers"), qps, Some(&latency));
    }
    // The full engine path (submit → window → resolve), single-threaded.
    {
        let engine = Engine::new(handle.clone(), WindowPolicy::Count(WINDOW));
        let latency = Histogram::default();
        let t0 = Instant::now();
        let iterations = if test_mode { 2 } else { 20 };
        for _ in 0..iterations {
            let i0 = Instant::now();
            let tickets: Vec<_> = log.records.iter().map(|r| engine.submit(r.clone())).collect();
            engine.drain();
            for t in &tickets {
                black_box(t.wait().expect("decision"));
            }
            latency.record_duration(i0.elapsed());
        }
        let qps = (iterations * log.records.len()) as f64 / t0.elapsed().as_secs_f64();
        report.result("engine_submit_window_resolve", qps, None);
        println!("serving_throughput/engine: {qps:>10.0} queries/sec");
    }
    report.write();
}

criterion_group!(benches, bench_serving_throughput);
criterion_main!(benches);
