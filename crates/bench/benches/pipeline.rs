//! Criterion bench for the substrate hot paths: planning, featurization,
//! memory simulation, template assignment, and histogram construction —
//! the per-query costs behind the paper's TR/IN pipeline steps.

use criterion::{criterion_group, criterion_main, Criterion};
use learnedwmp_core::{build_histogram, HistogramMode, PlanKMeansTemplates, TemplateLearner};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wmp_plan::features::featurize_plan;
use wmp_plan::Planner;
use wmp_sim::{DbmsHeuristicEstimator, ExecutorSimulator};
use wmp_workloads::QueryRecord;

fn bench_pipeline(c: &mut Criterion) {
    let cat = wmp_workloads::tpcds::catalog();
    let templates = wmp_workloads::tpcds::templates();
    let mut rng = StdRng::seed_from_u64(7);
    let spec = wmp_workloads::tpcds::instantiate(&cat, &templates[1], 1, &mut rng);
    let planner = Planner::new(&cat);
    let plan = planner.plan(&spec).expect("plan");
    let sim = ExecutorSimulator::new();
    let heur = DbmsHeuristicEstimator::new();

    c.bench_function("planner_plan_star_query", |b| b.iter(|| planner.plan(&spec).expect("plan")));
    c.bench_function("featurize_plan", |b| b.iter(|| featurize_plan(&plan)));
    c.bench_function("executor_simulate_memory", |b| b.iter(|| sim.peak_memory_mb(&plan, 1)));
    c.bench_function("dbms_heuristic_estimate", |b| b.iter(|| heur.estimate_mb(&plan)));

    let log = wmp_workloads::tpcc::generate(1_000, 3).expect("tpcc generation");
    let refs: Vec<&QueryRecord> = log.records.iter().collect();
    let mut learner = PlanKMeansTemplates::new(12, 42);
    learner.fit(&refs, &log.catalog).expect("template fit");
    c.bench_function("template_assign_query", |b| {
        b.iter(|| learner.assign(refs[0]).expect("assign"))
    });
    let assignments: Vec<usize> =
        refs[..10].iter().map(|r| learner.assign(r).expect("assign")).collect();
    c.bench_function("histogram_build_s10", |b| {
        b.iter(|| build_histogram(&assignments, 12, HistogramMode::Counts).expect("histogram"))
    });
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
