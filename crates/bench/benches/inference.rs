//! Criterion bench backing Fig. 7: per-workload inference latency.
//! LearnedWMP performs one histogram prediction; SingleWMP performs `s`
//! per-query predictions.

use criterion::{criterion_group, criterion_main, Criterion};
use learnedwmp_core::{
    EvalConfig, EvalContext, LearnedWmp, LearnedWmpConfig, ModelKind, PlanKMeansTemplates,
    SingleWmp,
};
use wmp_workloads::QueryRecord;

fn bench_inference(c: &mut Criterion) {
    let log = wmp_workloads::job::generate(2_300, 2).expect("job generation");
    let ctx = EvalContext::new(&log, EvalConfig { k_templates: 40, ..Default::default() });
    let workload: Vec<&QueryRecord> = ctx.test[..10].to_vec();
    let mut group = c.benchmark_group("fig7_inference");
    for kind in [ModelKind::Ridge, ModelKind::Xgb] {
        let learned = LearnedWmp::train(
            LearnedWmpConfig { model: kind, ..Default::default() },
            Box::new(PlanKMeansTemplates::new(40, 42)),
            &ctx.train,
            &log.catalog,
        )
        .expect("training");
        let single = SingleWmp::train(kind, &ctx.train).expect("training");
        group.bench_function(format!("learnedwmp_{}", kind.label()), |b| {
            b.iter(|| learned.predict_workload(&workload).expect("prediction"))
        });
        group.bench_function(format!("singlewmp_{}", kind.label()), |b| {
            b.iter(|| single.predict_workload(&workload).expect("prediction"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
