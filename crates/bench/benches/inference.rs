//! Criterion bench backing Fig. 7: per-workload inference latency.
//! LearnedWMP performs one histogram prediction; SingleWMP performs `s`
//! per-query predictions.

use criterion::{criterion_group, criterion_main, Criterion};
use learnedwmp_core::{
    EvalConfig, EvalContext, LearnedWmp, ModelKind, SingleWmp, TemplateSpec, WorkloadPredictor,
};
use wmp_workloads::QueryRecord;

fn bench_inference(c: &mut Criterion) {
    let log = wmp_workloads::job::generate(2_300, 2).expect("job generation");
    let ctx = EvalContext::new(&log, EvalConfig { k_templates: 40, ..Default::default() });
    let workload: Vec<&QueryRecord> = ctx.test[..10].to_vec();
    let mut group = c.benchmark_group("fig7_inference");
    for kind in [ModelKind::Ridge, ModelKind::Xgb] {
        let learned = LearnedWmp::builder()
            .model(kind)
            .templates(TemplateSpec::PlanKMeans { k: 40, seed: 42 })
            .fit_refs(&ctx.train, &log.catalog)
            .expect("training");
        let single = SingleWmp::train(kind, &ctx.train).expect("training");
        let predictors: [(&str, &dyn WorkloadPredictor); 2] =
            [("learnedwmp", &learned), ("singlewmp", &single)];
        for (label, p) in predictors {
            group.bench_function(format!("{label}_{}", kind.label()), |b| {
                b.iter(|| p.predict_workload(&workload).expect("prediction"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
