//! Criterion bench for the multi-resource prediction path: one trained
//! model answers memory + CPU + IO per workload through
//! `WorkloadPredictor::predict_resources_many`, and the eval harness scores
//! every axis (per-resource MAE, within-one-bucket accuracy). The run is
//! persisted as `BENCH_multi_resource_eval.json` at the repository root
//! (schema: [`wmp_bench::report`]) so per-axis accuracy and inference
//! throughput are tracked across commits.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use learnedwmp_core::{EvalConfig, EvalContext, ModelKind, WorkloadPredictor};
use wmp_bench::report::BenchReport;
use wmp_obs::Histogram;
use wmp_plan::ResourceKind;

fn bench_multi_resource_eval(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let n_queries = if test_mode { 500 } else { 4_000 };
    let k_templates = if test_mode { 12 } else { 40 };
    let log = wmp_workloads::tpcds::generate(n_queries, 11).expect("tpcds generation");
    let ctx = EvalContext::new(&log, EvalConfig { k_templates, ..Default::default() });

    let mut report = BenchReport::new("multi_resource_eval", test_mode);
    report
        .config_num("n_queries", n_queries as f64)
        .config_num("k_templates", k_templates as f64)
        .config_num("n_test_workloads", ctx.test_workloads.len() as f64)
        .config_str("dataset", "tpcds");

    println!("multi-resource evaluation ({} test workloads):", ctx.test_workloads.len());
    for kind in [ModelKind::Ridge, ModelKind::Xgb] {
        let eval = ctx.evaluate_learned(kind).expect("evaluation");
        println!("  {:<16} {}", eval.tag(), eval.resource_summary());

        // Time the full-vector batched inference path for the trajectory.
        let model = learnedwmp_core::LearnedWmp::builder()
            .model(kind)
            .templates(learnedwmp_core::TemplateSpec::PlanKMeans {
                k: ctx.config.k_templates,
                seed: ctx.config.seed,
            })
            .fit_refs(&ctx.train, &log.catalog)
            .expect("training");
        let predictor: &dyn WorkloadPredictor = &model;
        if kind == ModelKind::Ridge {
            c.bench_function("predict_resources_many_ridge", |b| {
                b.iter(|| {
                    predictor
                        .predict_resources_many(&ctx.test, &ctx.test_workloads)
                        .expect("prediction")
                })
            });
        }
        let passes = if test_mode { 3 } else { 20 };
        let latency = Histogram::default();
        let t0 = Instant::now();
        for _ in 0..passes {
            let p0 = Instant::now();
            black_box(
                predictor
                    .predict_resources_many(&ctx.test, &ctx.test_workloads)
                    .expect("prediction"),
            );
            latency.record_duration(p0.elapsed());
        }
        let qps = (passes * ctx.test_workloads.len()) as f64 / t0.elapsed().as_secs_f64();

        let mut extras: Vec<(&str, f64)> = Vec::new();
        let metric_names = [
            ("mae_memory_mb", "within_one_bucket_memory"),
            ("mae_cpu_ms", "within_one_bucket_cpu"),
            ("mae_io_pages", "within_one_bucket_io"),
        ];
        for kind in ResourceKind::ALL {
            let i = kind.index();
            extras.push((metric_names[i].0, eval.resource_mae[i]));
            extras.push((metric_names[i].1, eval.within_one_bucket[i]));
        }
        extras.push(("p50_us", latency.quantile(0.50)));
        let tag = eval.tag().to_lowercase().replace('-', "_");
        report.result_metrics(&tag, qps, &extras);
    }
    report.write();
}

criterion_group!(benches, bench_multi_resource_eval);
criterion_main!(benches);
