//! Criterion bench for the closed-loop scheduler: a TPC-H-style window
//! stream replayed through the `wmp_sched` discrete-event simulator under
//! the three demand regimes (nominal baseline / LearnedWMP predictions /
//! oracle). Measures replay throughput (windows/s) and records each
//! regime's cost breakdown — SLA penalty, stranded capacity, utilization —
//! as `BENCH_scheduler_replay.json` at the repository root, so prediction
//! quality is tracked *as scheduling outcomes* across commits.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use learnedwmp_core::{LearnedWmp, ModelKind, TemplateSpec, WorkloadPredictor};
use wmp_bench::report::BenchReport;
use wmp_plan::ResourceVector;
use wmp_sched::{
    replay, BestFit, CostModel, DemandSource, FirstFit, PlacementPolicy, PredictionAware,
    ReplayConfig, Scheduler, SlaClass,
};
use wmp_sim::Cluster;
use wmp_workloads::{ArrivalProcess, QueryRecord};

const WINDOW: usize = 10;

fn scheduler(policy: Box<dyn PlacementPolicy>) -> Scheduler {
    Scheduler::new(Cluster::uniform(4, ResourceVector::new(256.0, 8_000.0, f64::INFINITY)), policy)
        .with_sla_classes(vec![SlaClass::new(1_000, 10.0), SlaClass::new(4_000, 2.0)])
        .with_cost_model(CostModel { stranded_per_mb_tick: 1e-6 })
}

fn config() -> ReplayConfig {
    ReplayConfig {
        window: WINDOW,
        arrivals: ArrivalProcess::Bursty {
            burst_gap_ticks: 120.0,
            idle_gap_ticks: 3_000.0,
            mean_burst_len: 40.0,
        },
        seed: 11,
    }
}

fn bench_scheduler_replay(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let n_queries = if test_mode { 2_000 } else { 60_000 };
    let n_train = if test_mode { 1_000 } else { 15_000 };
    let log = wmp_workloads::tpch::generate(n_queries, 7).expect("tpch generation");
    let train: Vec<&QueryRecord> = log.records.iter().take(n_train).collect();
    let model = LearnedWmp::builder()
        .model(ModelKind::Ridge)
        .templates(TemplateSpec::PlanKMeans { k: 22, seed: 42 })
        .batch_size(WINDOW)
        .fit_refs(&train, &log.catalog)
        .expect("training");
    let predictor: &dyn WorkloadPredictor = &model;

    let mean_window: ResourceVector = log
        .records
        .iter()
        .map(|r| r.resources)
        .sum::<ResourceVector>()
        .scale(WINDOW as f64 / log.len() as f64);
    let nominal = mean_window.scale(3.0);
    let windows = log.len().div_ceil(WINDOW);

    let mut report = BenchReport::new("scheduler_replay", test_mode);
    report
        .config_num("n_queries", n_queries as f64)
        .config_num("n_windows", windows as f64)
        .config_num("executors", 4.0)
        .config_num("window", WINDOW as f64)
        .config_str("dataset", "tpch")
        .config_str("arrivals", "bursty");

    // Criterion timing: the oracle replay is the pure simulator hot path
    // (no prediction cost), so its throughput isolates the scheduler.
    c.bench_function("scheduler_replay_oracle", |b| {
        b.iter(|| {
            black_box(
                replay(&log, DemandSource::Oracle, scheduler(Box::new(BestFit)), &config())
                    .expect("oracle replay"),
            )
        })
    });

    println!("scheduler replay ({windows} windows, 4 executors):");
    let regimes: Vec<(&str, DemandSource<'_>, Box<dyn PlacementPolicy>)> = vec![
        ("baseline_nominal", DemandSource::Nominal(nominal), Box::new(FirstFit)),
        (
            "prediction_aware",
            DemandSource::Predictor(predictor),
            Box::new(PredictionAware::new(1.1)),
        ),
        ("oracle", DemandSource::Oracle, Box::new(BestFit)),
    ];
    for (name, source, policy) in regimes {
        let t0 = Instant::now();
        let r = replay(&log, source, scheduler(policy), &config()).expect("replay");
        let windows_per_sec = windows as f64 / t0.elapsed().as_secs_f64();
        println!(
            "  {:<18} total cost {:>10.1}  (sla {:>9.1}, stranded {:>7.1})  util mem {:>3.0}%",
            name,
            r.total_cost(),
            r.sla_penalty,
            r.stranded_cost,
            r.mean_utilization.memory_mb * 100.0,
        );
        report.result_metrics(
            name,
            windows_per_sec,
            &[
                ("total_cost", r.total_cost()),
                ("sla_penalty", r.sla_penalty),
                ("sla_violations", r.sla_violations as f64),
                ("stranded_cost", r.stranded_cost),
                ("overflow_events", r.overflow_events as f64),
                ("placed_deferred", r.placed_deferred as f64),
                ("rejected", r.rejected as f64),
                ("mean_util_memory", r.mean_utilization.memory_mb),
                ("mean_util_cpu", r.mean_utilization.cpu_ms),
                ("makespan_ticks", r.makespan_ticks as f64),
            ],
        );
    }
    report.write();
}

criterion_group!(benches, bench_scheduler_replay);
criterion_main!(benches);
