//! Criterion bench backing Fig. 6: LearnedWMP vs. SingleWMP training time.
//! Uses the full JOB corpus (2,300 queries) — small enough for repeated
//! measurement, large enough to show the ~s× training-row advantage.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use learnedwmp_core::{EvalConfig, EvalContext, LearnedWmp, ModelKind, SingleWmp, TemplateSpec};

fn bench_training(c: &mut Criterion) {
    let log = wmp_workloads::job::generate(2_300, 2).expect("job generation");
    let ctx = EvalContext::new(&log, EvalConfig { k_templates: 40, ..Default::default() });
    let mut group = c.benchmark_group("fig6_training");
    group.sample_size(10);
    for kind in [ModelKind::Ridge, ModelKind::Dt, ModelKind::Xgb] {
        group.bench_function(format!("learnedwmp_{}", kind.label()), |b| {
            b.iter_batched(
                || {
                    LearnedWmp::builder()
                        .model(kind)
                        .templates(TemplateSpec::PlanKMeans { k: 40, seed: 42 })
                },
                |builder| builder.fit_refs(&ctx.train, &log.catalog).expect("training"),
                BatchSize::LargeInput,
            )
        });
        group.bench_function(format!("singlewmp_{}", kind.label()), |b| {
            b.iter(|| SingleWmp::train(kind, &ctx.train).expect("training"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
