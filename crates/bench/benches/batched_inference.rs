//! Criterion bench for the batched-inference hot path behind
//! `WorkloadPredictor::predict_workloads`: the memoized path assigns each
//! distinct record to its template once and reuses assignments across
//! workloads, versus the naive path re-running template assignment for
//! every workload membership. The gap is the serving-side win for a daemon
//! scoring many overlapping batches per tick.

use criterion::{criterion_group, criterion_main, Criterion};
use learnedwmp_core::{
    batch_workloads, EvalConfig, EvalContext, LabelMode, LearnedWmp, ModelKind, TemplateSpec,
    WorkloadPredictor,
};
use wmp_workloads::QueryRecord;

fn bench_batched_inference(c: &mut Criterion) {
    let log = wmp_workloads::job::generate(2_300, 2).expect("job generation");
    let ctx = EvalContext::new(&log, EvalConfig { k_templates: 40, ..Default::default() });
    let model = LearnedWmp::builder()
        .model(ModelKind::Xgb)
        .templates(TemplateSpec::PlanKMeans { k: 40, seed: 42 })
        .fit_refs(&ctx.train, &log.catalog)
        .expect("training");
    let predictor: &dyn WorkloadPredictor = &model;

    // Many overlapping batches over the same test partition — the serving
    // shape: each record participates in several concurrent workloads.
    let mut workloads = Vec::new();
    for seed in 0..4 {
        workloads.extend(batch_workloads(&ctx.test, 10, seed, LabelMode::Sum));
    }

    let mut group = c.benchmark_group("batched_inference");
    group.bench_function("memoized_trait_path", |b| {
        b.iter(|| predictor.predict_workloads(&ctx.test, &workloads).expect("prediction"))
    });
    group.bench_function("naive_per_workload", |b| {
        b.iter(|| {
            workloads
                .iter()
                .map(|w| {
                    let queries: Vec<&QueryRecord> =
                        w.query_indices.iter().map(|&i| ctx.test[i]).collect();
                    predictor.predict_workload(&queries).expect("prediction")
                })
                .collect::<Vec<f64>>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_batched_inference);
criterion_main!(benches);
