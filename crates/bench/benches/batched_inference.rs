//! Criterion bench for the batched-inference hot path behind
//! `WorkloadPredictor::predict_workloads`: the memoized path assigns each
//! distinct record to its template once and reuses assignments across
//! workloads, versus the naive path re-running template assignment for
//! every workload membership. The gap is the serving-side win for a daemon
//! scoring many overlapping batches per tick. The run is persisted as
//! `BENCH_batched_inference.json` at the repository root (schema:
//! [`wmp_bench::report`]).

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use learnedwmp_core::{
    batch_workloads, EvalConfig, EvalContext, LabelMode, LearnedWmp, ModelKind, TemplateSpec,
    WorkloadPredictor,
};
use wmp_bench::report::BenchReport;
use wmp_obs::Histogram;
use wmp_workloads::QueryRecord;

fn bench_batched_inference(c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let n_queries = if test_mode { 400 } else { 2_300 };
    let log = wmp_workloads::job::generate(n_queries, 2).expect("job generation");
    let ctx = EvalContext::new(&log, EvalConfig { k_templates: 40, ..Default::default() });
    let model = LearnedWmp::builder()
        .model(ModelKind::Xgb)
        .templates(TemplateSpec::PlanKMeans { k: 40, seed: 42 })
        .fit_refs(&ctx.train, &log.catalog)
        .expect("training");
    let predictor: &dyn WorkloadPredictor = &model;

    // Many overlapping batches over the same test partition — the serving
    // shape: each record participates in several concurrent workloads.
    let mut workloads = Vec::new();
    for seed in 0..4 {
        workloads.extend(batch_workloads(&ctx.test, 10, seed, LabelMode::Sum));
    }
    let total_queries: usize = workloads.iter().map(|w| w.query_indices.len()).sum();

    let mut group = c.benchmark_group("batched_inference");
    group.bench_function("memoized_trait_path", |b| {
        b.iter(|| predictor.predict_workloads(&ctx.test, &workloads).expect("prediction"))
    });
    group.bench_function("naive_per_workload", |b| {
        b.iter(|| {
            workloads
                .iter()
                .map(|w| {
                    let queries: Vec<&QueryRecord> =
                        w.query_indices.iter().map(|&i| ctx.test[i]).collect();
                    predictor.predict_workload(&queries).expect("prediction")
                })
                .collect::<Vec<f64>>()
        })
    });
    group.finish();

    // Aggregate queries/sec for the trajectory file. Each pass scores every
    // workload membership once; per-pass latencies feed the quantiles.
    let passes = if test_mode { 3 } else { 20 };
    let mut report = BenchReport::new("batched_inference", test_mode);
    report
        .config_num("n_queries", n_queries as f64)
        .config_num("n_workloads", workloads.len() as f64)
        .config_num("queries_per_pass", total_queries as f64)
        .config_str("dataset", "job")
        .config_str("model", "LearnedWMP-XGB");

    let memo_latency = Histogram::default();
    let t0 = Instant::now();
    for _ in 0..passes {
        let p0 = Instant::now();
        black_box(predictor.predict_workloads(&ctx.test, &workloads).expect("prediction"));
        memo_latency.record_duration(p0.elapsed());
    }
    let memo_qps = (passes * total_queries) as f64 / t0.elapsed().as_secs_f64();
    report.result("memoized_trait_path", memo_qps, Some(&memo_latency));

    let naive_latency = Histogram::default();
    let t0 = Instant::now();
    for _ in 0..passes {
        let p0 = Instant::now();
        for w in &workloads {
            let queries: Vec<&QueryRecord> = w.query_indices.iter().map(|&i| ctx.test[i]).collect();
            black_box(predictor.predict_workload(&queries).expect("prediction"));
        }
        naive_latency.record_duration(p0.elapsed());
    }
    let naive_qps = (passes * total_queries) as f64 / t0.elapsed().as_secs_f64();
    report.result("naive_per_workload", naive_qps, Some(&naive_latency));

    println!(
        "batched_inference: memoized {memo_qps:.0} q/s vs naive {naive_qps:.0} q/s \
         ({:.1}x speedup)",
        memo_qps / naive_qps
    );
    report.write();
}

criterion_group!(benches, bench_batched_inference);
criterion_main!(benches);
