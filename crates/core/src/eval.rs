//! The evaluation harness behind every figure: trains LearnedWMP and
//! SingleWMP variants on a benchmark log, evaluates them on held-out test
//! workloads, and reports accuracy (RMSE/MAPE/residuals), timing, and model
//! size — the full set of measurements Figs. 4–8 are drawn from.

use std::time::Instant;

use wmp_mlkit::metrics::{mape, residuals, rmse, ResidualSummary};
use wmp_mlkit::MlResult;
use wmp_plan::{ResourceKind, ResourceVector, N_RESOURCES};
use wmp_workloads::{QueryLog, QueryRecord};

use crate::builder::TemplateSpec;
use crate::histogram::HistogramMode;
use crate::learned::LearnedWmp;
use crate::model::ModelKind;
use crate::predictor::WorkloadPredictor;
use crate::single::{SingleWmp, SingleWmpDbms};
use crate::workload::{batch_workloads, LabelMode, Workload};

/// Evaluation protocol parameters.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Workload batch size `s`.
    pub batch_size: usize,
    /// Number of templates `k` for LearnedWMP.
    pub k_templates: usize,
    /// Train fraction (paper: 0.8).
    pub train_frac: f64,
    /// Split / batching seed.
    pub seed: u64,
    /// Label aggregation.
    pub label_mode: LabelMode,
    /// Histogram normalization.
    pub histogram_mode: HistogramMode,
    /// Per-resource bucket widths for the within-one-bucket metric: a
    /// prediction "hits" when its absolute error on an axis is at most that
    /// axis's width (memory MB / CPU ms / IO pages).
    pub bucket_widths: ResourceVector,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            batch_size: 10,
            k_templates: 30,
            train_frac: 0.8,
            seed: 42,
            label_mode: LabelMode::Sum,
            histogram_mode: HistogramMode::Counts,
            // 100 MB matches the serving layer's quality-gauge bucket; CPU
            // and IO widths are scaled to a 10-query TPC-C-like workload.
            bucket_widths: ResourceVector::new(100.0, 100.0, 10_000.0),
        }
    }
}

/// One evaluated model — one bar in Figs. 4–8.
#[derive(Debug, Clone)]
#[must_use = "an evaluation report is the experiment's result — render or assert on it"]
pub struct ModelReport {
    /// "LearnedWMP", "SingleWMP", or "SingleWMP-DBMS".
    pub approach: &'static str,
    /// Learner label ("DNN", ..., or "heuristic").
    pub model: String,
    /// RMSE over test workloads (Fig. 4).
    pub rmse: f64,
    /// MAPE over test workloads (Figs. 10–11 use this metric).
    pub mape: f64,
    /// Violin summary of residuals (Fig. 5).
    pub residual_summary: ResidualSummary,
    /// Raw signed residuals `y − ŷ`.
    pub residuals: Vec<f64>,
    /// Regressor fit time in ms (Fig. 6).
    pub train_ms: f64,
    /// End-to-end training including template learning (LearnedWMP only).
    pub total_train_ms: f64,
    /// Mean inference latency per workload in µs (Fig. 7).
    pub infer_us_per_workload: f64,
    /// Model size in kB (Fig. 8).
    pub model_kb: f64,
    /// Mean absolute error per resource axis (memory MB / CPU ms /
    /// IO pages), in [`ResourceKind::ALL`] order.
    pub resource_mae: [f64; N_RESOURCES],
    /// Fraction of test workloads whose per-axis absolute error is within
    /// one [`EvalConfig::bucket_widths`] bucket, in [`ResourceKind::ALL`]
    /// order.
    pub within_one_bucket: [f64; N_RESOURCES],
}

impl ModelReport {
    /// Tag used in figure outputs, e.g. "LearnedWMP-XGB".
    pub fn tag(&self) -> String {
        if self.approach == "SingleWMP-DBMS" {
            self.approach.to_string()
        } else {
            format!("{}-{}", self.approach, self.model)
        }
    }

    /// One-line per-resource accuracy summary, e.g.
    /// `memory MAE 41.2 MB (93% ±1 bucket) | cpu MAE 12.4 ms (88%) | ...`.
    pub fn resource_summary(&self) -> String {
        ResourceKind::ALL
            .iter()
            .map(|kind| {
                let i = kind.index();
                format!(
                    "{} MAE {:.2} {} ({:.0}% ±1 bucket)",
                    kind.label(),
                    self.resource_mae[i],
                    kind.unit(),
                    self.within_one_bucket[i] * 100.0
                )
            })
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

#[allow(clippy::too_many_arguments)] // one call site; a struct would just rename the fields
fn report_from_predictions(
    approach: &'static str,
    model: String,
    y: &[f64],
    preds: &[f64],
    train_ms: f64,
    total_train_ms: f64,
    infer_us_per_workload: f64,
    model_kb: f64,
    resource_mae: [f64; N_RESOURCES],
    within_one_bucket: [f64; N_RESOURCES],
) -> MlResult<ModelReport> {
    let res = residuals(y, preds)?;
    Ok(ModelReport {
        approach,
        model,
        rmse: rmse(y, preds)?,
        mape: mape(y, preds)?,
        residual_summary: ResidualSummary::from_residuals(&res)?,
        residuals: res,
        train_ms,
        total_train_ms,
        infer_us_per_workload,
        model_kb,
        resource_mae,
        within_one_bucket,
    })
}

/// Per-axis mean absolute error and within-one-bucket hit rates between
/// actual and predicted resource vectors.
fn resource_accuracy(
    actual: &[ResourceVector],
    predicted: &[ResourceVector],
    bucket_widths: ResourceVector,
) -> ([f64; N_RESOURCES], [f64; N_RESOURCES]) {
    let n = actual.len().max(1) as f64;
    let mut mae = [0.0; N_RESOURCES];
    let mut hits = [0.0; N_RESOURCES];
    for (a, p) in actual.iter().zip(predicted) {
        let err = a.abs_diff(*p).as_array();
        let widths = bucket_widths.as_array();
        for i in 0..N_RESOURCES {
            mae[i] += err[i];
            if err[i] <= widths[i] {
                hits[i] += 1.0;
            }
        }
    }
    for i in 0..N_RESOURCES {
        mae[i] /= n;
        hits[i] /= n;
    }
    (mae, hits)
}

/// A prepared train/test environment for one benchmark log.
pub struct EvalContext<'a> {
    /// The benchmark log.
    pub log: &'a QueryLog,
    /// Protocol parameters.
    pub config: EvalConfig,
    /// Training-partition records.
    pub train: Vec<&'a QueryRecord>,
    /// Test-partition records.
    pub test: Vec<&'a QueryRecord>,
    /// Batched test workloads with labels.
    pub test_workloads: Vec<Workload>,
    /// Test labels `y` per workload (memory axis, MB).
    pub y_test: Vec<f64>,
    /// Full per-workload resource labels (memory / CPU / IO).
    pub y_test_resources: Vec<ResourceVector>,
}

impl<'a> EvalContext<'a> {
    /// Splits the log and batches the test partition into workloads.
    pub fn new(log: &'a QueryLog, config: EvalConfig) -> Self {
        let (train_idx, test_idx) = log.train_test_split(config.train_frac, config.seed);
        let train: Vec<&QueryRecord> = train_idx.iter().map(|&i| &log.records[i]).collect();
        let test: Vec<&QueryRecord> = test_idx.iter().map(|&i| &log.records[i]).collect();
        let test_workloads = batch_workloads(
            &test,
            config.batch_size,
            config.seed.wrapping_add(1),
            config.label_mode,
        );
        let y_test: Vec<f64> = test_workloads.iter().map(Workload::y_mb).collect();
        let y_test_resources: Vec<ResourceVector> = test_workloads.iter().map(|w| w.y).collect();
        EvalContext { log, config, train, test, test_workloads, y_test, y_test_resources }
    }

    /// Evaluates any predictor — accuracy, timed batched inference, and
    /// model size all flow through the [`WorkloadPredictor`] trait, so every
    /// family (and future ones) is measured by identical code.
    ///
    /// `approach`/`model` label the report row; `train_ms`/`total_train_ms`
    /// are training facts the trait deliberately does not expose.
    ///
    /// # Errors
    /// Propagates prediction and metric errors.
    pub fn evaluate_predictor(
        &self,
        predictor: &dyn WorkloadPredictor,
        approach: &'static str,
        model: String,
        train_ms: f64,
        total_train_ms: f64,
    ) -> MlResult<ModelReport> {
        let t0 = Instant::now();
        let vec_preds = predictor.predict_resources_many(&self.test, &self.test_workloads)?;
        let infer_us = t0.elapsed().as_secs_f64() * 1e6 / self.test_workloads.len().max(1) as f64;
        // Head 0 of every predictor is bit-identical to its scalar memory
        // path, so the projection preserves the legacy RMSE/MAPE numbers.
        let preds: Vec<f64> = vec_preds.iter().map(|v| v.memory_mb).collect();
        let (resource_mae, within_one_bucket) =
            resource_accuracy(&self.y_test_resources, &vec_preds, self.config.bucket_widths);
        report_from_predictions(
            approach,
            model,
            &self.y_test,
            &preds,
            train_ms,
            total_train_ms,
            infer_us,
            predictor.footprint_bytes() as f64 / 1024.0,
            resource_mae,
            within_one_bucket,
        )
    }

    /// Evaluates the SingleWMP-DBMS heuristic baseline.
    ///
    /// # Errors
    /// Propagates metric errors (e.g. empty test set).
    pub fn evaluate_dbms(&self) -> MlResult<ModelReport> {
        self.evaluate_predictor(&SingleWmpDbms, "SingleWMP-DBMS", "heuristic".to_string(), 0.0, 0.0)
    }

    /// Trains and evaluates a LearnedWMP variant with plan-k-means templates.
    ///
    /// # Errors
    /// Propagates training/prediction errors.
    pub fn evaluate_learned(&self, model: ModelKind) -> MlResult<ModelReport> {
        let wmp = LearnedWmp::builder()
            .model(model)
            .templates(TemplateSpec::PlanKMeans {
                k: self.config.k_templates,
                seed: self.config.seed,
            })
            .batch_size(self.config.batch_size)
            .label_mode(self.config.label_mode)
            .histogram_mode(self.config.histogram_mode)
            .seed(self.config.seed)
            .fit_refs(&self.train, &self.log.catalog)?;
        self.evaluate_predictor(
            &wmp,
            "LearnedWMP",
            model.label().to_string(),
            wmp.timings.fit_ms,
            wmp.timings.total_ms(),
        )
    }

    /// Trains and evaluates a SingleWMP ML variant.
    ///
    /// # Errors
    /// Propagates training/prediction errors.
    pub fn evaluate_single(&self, model: ModelKind) -> MlResult<ModelReport> {
        let m = SingleWmp::train(model, &self.train)?;
        self.evaluate_predictor(&m, "SingleWMP", m.model().label().to_string(), m.fit_ms, m.fit_ms)
    }

    /// Full benchmark sweep: DBMS baseline + every learner under both
    /// approaches (the content of one subfigure of Figs. 4–8).
    ///
    /// # Errors
    /// Propagates any model's failure.
    pub fn evaluate_all(&self, models: &[ModelKind]) -> MlResult<Vec<ModelReport>> {
        let mut out = Vec::with_capacity(1 + 2 * models.len());
        out.push(self.evaluate_dbms()?);
        for &m in models {
            out.push(self.evaluate_single(m)?);
        }
        for &m in models {
            out.push(self.evaluate_learned(m)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_log() -> QueryLog {
        wmp_workloads::tpcc::generate(800, 5).unwrap()
    }

    #[test]
    fn context_splits_and_batches() {
        let log = ctx_log();
        let ctx = EvalContext::new(&log, EvalConfig::default());
        assert_eq!(ctx.train.len(), 640);
        assert_eq!(ctx.test.len(), 160);
        assert_eq!(ctx.test_workloads.len(), 16);
        assert_eq!(ctx.y_test.len(), 16);
        assert!(ctx.y_test.iter().all(|y| *y > 0.0));
    }

    #[test]
    fn dbms_baseline_reports_metrics() {
        let log = ctx_log();
        let ctx = EvalContext::new(&log, EvalConfig::default());
        let r = ctx.evaluate_dbms().unwrap();
        assert_eq!(r.tag(), "SingleWMP-DBMS");
        assert!(r.rmse > 0.0);
        assert!(r.mape > 0.0);
        assert_eq!(r.train_ms, 0.0);
        assert_eq!(r.model_kb, 0.0);
        assert_eq!(r.residuals.len(), 16);
    }

    #[test]
    fn learned_beats_dbms_on_rmse() {
        let log = ctx_log();
        let ctx = EvalContext::new(&log, EvalConfig { k_templates: 12, ..Default::default() });
        let dbms = ctx.evaluate_dbms().unwrap();
        let learned = ctx.evaluate_learned(ModelKind::Xgb).unwrap();
        assert!(
            learned.rmse < dbms.rmse,
            "LearnedWMP-XGB ({}) must beat DBMS ({})",
            learned.rmse,
            dbms.rmse
        );
        assert_eq!(learned.tag(), "LearnedWMP-XGB");
        assert!(learned.model_kb > 0.0);
        assert!(learned.train_ms > 0.0);
        assert!(learned.total_train_ms >= learned.train_ms);
    }

    #[test]
    fn single_ml_also_reports() {
        let log = ctx_log();
        let ctx = EvalContext::new(&log, EvalConfig::default());
        let single = ctx.evaluate_single(ModelKind::Dt).unwrap();
        assert_eq!(single.tag(), "SingleWMP-DT");
        assert!(single.rmse.is_finite());
        assert!(single.infer_us_per_workload > 0.0);
    }

    #[test]
    fn reports_carry_per_resource_accuracy() {
        let log = ctx_log();
        let ctx = EvalContext::new(&log, EvalConfig { k_templates: 12, ..Default::default() });
        assert_eq!(ctx.y_test_resources.len(), ctx.y_test.len());
        assert!(ctx
            .y_test_resources
            .iter()
            .zip(&ctx.y_test)
            .all(|(v, y)| v.memory_mb.to_bits() == y.to_bits()));
        let r = ctx.evaluate_learned(ModelKind::Ridge).unwrap();
        for i in 0..N_RESOURCES {
            assert!(
                r.resource_mae[i].is_finite() && r.resource_mae[i] > 0.0,
                "{:?}",
                r.resource_mae
            );
            assert!((0.0..=1.0).contains(&r.within_one_bucket[i]), "{:?}", r.within_one_bucket);
        }
        let summary = r.resource_summary();
        assert!(summary.contains("memory MAE") && summary.contains("cpu MAE"), "{summary}");
    }

    #[test]
    fn evaluate_all_produces_one_row_per_model() {
        let log = ctx_log();
        let ctx = EvalContext::new(&log, EvalConfig { k_templates: 8, ..Default::default() });
        let rows = ctx.evaluate_all(&[ModelKind::Ridge, ModelKind::Dt]).unwrap();
        assert_eq!(rows.len(), 5); // DBMS + 2 single + 2 learned
        let tags: Vec<String> = rows.iter().map(|r| r.tag()).collect();
        assert!(tags.contains(&"SingleWMP-Ridge".to_string()));
        assert!(tags.contains(&"LearnedWMP-DT".to_string()));
    }
}
