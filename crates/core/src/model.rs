//! The five learner families of the paper (§III-B3/B4) with per-approach
//! hyper-parameters: DNN (MLP), Ridge, Decision Tree, Random Forest, and
//! XGBoost-style gradient boosting.

use wmp_mlkit::forest::{RandomForest, RandomForestConfig};
use wmp_mlkit::gbdt::{GradientBoosting, GradientBoostingConfig};
use wmp_mlkit::mlp::{Activation, Mlp, MlpConfig, OptimizerKind};
use wmp_mlkit::ridge::Ridge;
use wmp_mlkit::tree::{DecisionTree, DecisionTreeConfig};
use wmp_mlkit::{MultiHead, Regressor};

/// Which learner family to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Multilayer perceptron (the paper's deep-learning variant).
    Dnn,
    /// Regularized linear regression.
    Ridge,
    /// Single CART regression tree.
    Dt,
    /// Random Forest.
    Rf,
    /// XGBoost-style gradient boosting.
    Xgb,
}

/// Whether the model predicts per-workload histograms (LearnedWMP) or
/// per-query plan features (SingleWMP) — the two pipelines of §IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// Distribution regression over workload histograms.
    Learned,
    /// Per-query regression summed over the workload.
    Single,
}

impl ModelKind {
    /// All learner families, in the paper's reporting order.
    pub const ALL: [ModelKind; 5] =
        [ModelKind::Dnn, ModelKind::Ridge, ModelKind::Dt, ModelKind::Rf, ModelKind::Xgb];

    /// Stable one-byte code used by the model codec. Codes are append-only:
    /// existing values must never be reassigned across releases.
    pub fn code(self) -> u8 {
        match self {
            ModelKind::Dnn => 0,
            ModelKind::Ridge => 1,
            ModelKind::Dt => 2,
            ModelKind::Rf => 3,
            ModelKind::Xgb => 4,
        }
    }

    /// Inverse of [`ModelKind::code`].
    pub fn from_code(code: u8) -> Option<ModelKind> {
        ModelKind::ALL.into_iter().find(|k| k.code() == code)
    }

    /// Display label used in figures ("DNN", "Ridge", ...).
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Dnn => "DNN",
            ModelKind::Ridge => "Ridge",
            ModelKind::Dt => "DT",
            ModelKind::Rf => "RF",
            ModelKind::Xgb => "XGB",
        }
    }

    /// Builds an unfitted regressor with hyper-parameters appropriate for the
    /// approach and expected training-set size.
    ///
    /// Notable choices mirroring the paper:
    /// - **LearnedWMP-DNN** uses the tuned 48-39-27-16-7-5 architecture
    ///   (§III-B3) and switches from Adam to L-BFGS on small training sets
    ///   (the paper found L-BFGS better for small data, Adam for large).
    /// - **SingleWMP-DNN** uses the larger capacity its randomized search
    ///   favors on per-query data — which is also why SingleWMP-DNN models
    ///   are bigger (Fig. 8).
    /// - Tree learners share depths; the LearnedWMP variants end up smaller
    ///   simply because they see ~s× fewer training rows.
    pub fn build(self, approach: Approach, n_train: usize) -> Box<dyn Regressor> {
        // Tree learners are regularized harder under the Learned approach:
        // histogram training sets are ~s× smaller, and the histogram → memory
        // relationship is near-additive, so coarse leaves generalize better
        // (this per-approach tuning mirrors the paper's randomized search and
        // produces its Fig. 8 size relationship).
        let (min_split, min_leaf) = match approach {
            Approach::Learned => (8, 4),
            Approach::Single => (4, 2),
        };
        match self {
            ModelKind::Ridge => Box::new(Ridge::new(1.0)),
            ModelKind::Dt => Box::new(DecisionTree::new(DecisionTreeConfig {
                max_depth: 10,
                min_samples_split: min_split,
                min_samples_leaf: min_leaf,
                max_bins: 64,
            })),
            ModelKind::Rf => Box::new(RandomForest::new(RandomForestConfig {
                n_trees: 40,
                max_depth: 10,
                min_samples_split: min_split,
                min_samples_leaf: min_leaf,
                n_threads: 4,
                seed: 42,
                ..RandomForestConfig::default()
            })),
            ModelKind::Xgb => Box::new(GradientBoosting::new(GradientBoostingConfig {
                n_estimators: 80,
                learning_rate: 0.12,
                max_depth: if approach == Approach::Learned { 5 } else { 6 },
                min_samples_split: min_split,
                min_samples_leaf: min_leaf,
                lambda: 1.0,
                seed: 42,
                ..GradientBoostingConfig::default()
            })),
            ModelKind::Dnn => {
                let (hidden, optimizer, max_iter, batch_size) = match approach {
                    Approach::Learned => {
                        let hidden = vec![48, 39, 27, 16, 7, 5];
                        if n_train < 1_500 {
                            (hidden, OptimizerKind::Lbfgs { history: 10 }, 150, 32)
                        } else {
                            let epochs = (2_000_000 / n_train.max(1)).clamp(20, 150);
                            (hidden, OptimizerKind::Adam { lr: 1e-3 }, epochs, 32)
                        }
                    }
                    Approach::Single => {
                        let hidden = vec![128, 96, 64, 32];
                        if n_train < 1_500 {
                            (hidden, OptimizerKind::Lbfgs { history: 10 }, 120, 64)
                        } else {
                            let epochs = (1_500_000 / n_train.max(1)).clamp(8, 60);
                            (hidden, OptimizerKind::Adam { lr: 1e-3 }, epochs, 256)
                        }
                    }
                };
                Box::new(Mlp::new(MlpConfig {
                    hidden_layers: hidden,
                    activation: Activation::Relu,
                    optimizer,
                    alpha: 1e-4,
                    max_iter,
                    batch_size,
                    tol: 1e-7,
                    seed: 42,
                }))
            }
        }
    }
}

impl ModelKind {
    /// Builds an unfitted regressor that predicts `n_targets` outputs per
    /// row — the multi-resource counterpart of [`ModelKind::build`].
    ///
    /// Ridge solves every target natively against one shared factorization;
    /// the inherently scalar families (trees, boosting, the MLP) are wrapped
    /// in a [`MultiHead`] with one independently configured head per target.
    /// `n_targets == 1` degenerates to [`ModelKind::build`].
    ///
    /// # Panics
    /// Panics when `n_targets` is 0 — a regressor with no outputs is a
    /// construction bug, not a runtime condition.
    pub fn build_multi(
        self,
        approach: Approach,
        n_train: usize,
        n_targets: usize,
    ) -> Box<dyn Regressor> {
        assert!(n_targets >= 1, "a regressor needs at least one target");
        if n_targets == 1 || self == ModelKind::Ridge {
            return self.build(approach, n_train);
        }
        let heads = (0..n_targets).map(|_| self.build(approach, n_train)).collect();
        // lint: allow(no_hot_panic, guarded by the n_targets assert above — the documented panic contract of build_multi)
        Box::new(MultiHead::new(heads).expect("n_targets >= 1 heads"))
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmp_mlkit::Matrix;

    #[test]
    fn all_kinds_build_and_fit() {
        let x =
            Matrix::from_rows(&(0..40).map(|i| vec![i as f64, (i % 5) as f64]).collect::<Vec<_>>())
                .unwrap();
        let y: Vec<f64> = (0..40).map(|i| (i * 2) as f64).collect();
        for kind in ModelKind::ALL {
            for approach in [Approach::Learned, Approach::Single] {
                let mut m = kind.build(approach, 40);
                m.fit(&x, &y).unwrap_or_else(|e| panic!("{kind} {approach:?}: {e}"));
                let p = m.predict_row(&[10.0, 0.0]).unwrap();
                assert!(p.is_finite());
            }
        }
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = ModelKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["DNN", "Ridge", "DT", "RF", "XGB"]);
        assert_eq!(format!("{}", ModelKind::Xgb), "XGB");
    }

    #[test]
    fn single_dnn_has_more_capacity_than_learned_dnn() {
        // Train both briefly and compare parameter counts (Fig. 8's driver).
        let x =
            Matrix::from_rows(&(0..30).map(|i| vec![i as f64; 20]).collect::<Vec<_>>()).unwrap();
        let y: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let mut learned = ModelKind::Dnn.build(Approach::Learned, 30);
        let mut single = ModelKind::Dnn.build(Approach::Single, 30);
        learned.fit(&x, &y).unwrap();
        single.fit(&x, &y).unwrap();
        assert!(single.footprint_bytes() > 2 * learned.footprint_bytes());
    }

    #[test]
    fn build_multi_fits_and_predicts_every_family() {
        let x =
            Matrix::from_rows(&(0..40).map(|i| vec![i as f64, (i % 5) as f64]).collect::<Vec<_>>())
                .unwrap();
        let targets = vec![
            (0..40).map(|i| (i * 2) as f64).collect::<Vec<f64>>(),
            (0..40).map(|i| 500.0 - i as f64).collect(),
            (0..40).map(|i| (i % 5) as f64 * 10.0).collect(),
        ];
        for kind in ModelKind::ALL {
            let mut m = kind.build_multi(Approach::Learned, 40, 3);
            assert_eq!(m.name(), kind.build(Approach::Learned, 40).name(), "{kind}");
            m.fit_multi(&x, &targets).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(m.n_outputs(), 3, "{kind}");
            let out = m.predict_row_multi(&[10.0, 0.0]).unwrap();
            assert_eq!(out.len(), 3, "{kind}");
            assert!(out.iter().all(|v| v.is_finite()), "{kind}: {out:?}");
            // Head 0 answers scalar predictions.
            assert_eq!(m.predict_row(&[10.0, 0.0]).unwrap().to_bits(), out[0].to_bits());
        }
    }

    #[test]
    fn build_multi_with_one_target_is_the_scalar_build() {
        let m = ModelKind::Xgb.build_multi(Approach::Single, 100, 1);
        assert_eq!(m.n_outputs(), 1);
        assert!(m.as_multi_head().is_none());
    }

    #[test]
    fn dnn_optimizer_switches_with_training_size() {
        // Indirect check: building must not panic for either regime and the
        // epoch budget shrinks for huge n.
        let _small = ModelKind::Dnn.build(Approach::Learned, 100);
        let _large = ModelKind::Dnn.build(Approach::Single, 100_000);
    }
}
